//! Integration tests for the distributed provenance query engine and its
//! optimizations, exercised over real protocol runs.

use nettrails::{NetTrails, NetTrailsConfig};
use provenance::{proql, QueryKind, QueryOptions, QueryResult, TraversalOrder};
use simnet::Topology;

fn platform() -> NetTrails {
    let mut nt = NetTrails::new(
        protocols::pathvector::PROGRAM,
        Topology::ladder(3),
        NetTrailsConfig::default(),
    )
    .unwrap();
    nt.seed_links_from_topology();
    nt.run_to_fixpoint();
    nt
}

#[test]
fn derivation_counts_are_positive_and_consistent_with_lineage() {
    let mut nt = platform();
    for (node, tuple) in nt.relation("bestPathCost").into_iter().take(10) {
        let (count, _) = nt.query(
            &node,
            &tuple,
            QueryKind::DerivationCount,
            &QueryOptions::default(),
        );
        let QueryResult::DerivationCount(count) = count else {
            panic!()
        };
        assert!(count >= 1, "{tuple} should have at least one derivation");
        let (lineage, _) = nt.query(&node, &tuple, QueryKind::Lineage, &QueryOptions::default());
        let QueryResult::Lineage(tree) = lineage else {
            panic!()
        };
        assert!(!tree.derivations.is_empty());
        assert!(tree.size() as u64 >= count.min(1));
    }
}

#[test]
fn base_tuples_of_protocol_state_are_always_links() {
    let mut nt = platform();
    for (node, tuple) in nt.relation("path").into_iter().take(20) {
        let (result, _) = nt.query(
            &node,
            &tuple,
            QueryKind::BaseTuples,
            &QueryOptions::default(),
        );
        let QueryResult::BaseTuples(bases) = result else {
            panic!()
        };
        assert!(!bases.is_empty());
        for (_, base) in bases {
            assert_eq!(base.unwrap().relation, "link");
        }
    }
}

#[test]
fn caching_reduces_traffic_for_repeated_and_overlapping_queries() {
    let mut nt = platform();
    let targets: Vec<_> = nt.relation("bestPathCost").into_iter().take(6).collect();

    // Without caching: query everything twice and count messages.
    let mut uncached_messages = 0;
    for (node, tuple) in targets.iter().chain(targets.iter()) {
        let (_, stats) = nt.query(node, tuple, QueryKind::Lineage, &QueryOptions::default());
        uncached_messages += stats.messages;
    }
    // With caching.
    nt.clear_query_cache();
    let cached_opts = QueryOptions::cached();
    let mut cached_messages = 0;
    for (node, tuple) in targets.iter().chain(targets.iter()) {
        let (_, stats) = nt.query(node, tuple, QueryKind::Lineage, &cached_opts);
        cached_messages += stats.messages;
    }
    assert!(
        cached_messages < uncached_messages,
        "caching should reduce traffic: {cached_messages} vs {uncached_messages}"
    );
}

#[test]
fn pruning_bounds_the_result_and_reduces_traffic() {
    let mut nt = platform();
    let (node, tuple) = nt
        .relation("bestPathCost")
        .into_iter()
        .max_by_key(|(_, t)| t.values[2].as_int())
        .unwrap();
    let (full, full_stats) = nt.query(&node, &tuple, QueryKind::Lineage, &QueryOptions::default());
    let pruned_opts = QueryOptions {
        max_depth: Some(2),
        max_derivations_per_vertex: Some(1),
        ..QueryOptions::default()
    };
    let (pruned, pruned_stats) = nt.query(&node, &tuple, QueryKind::Lineage, &pruned_opts);
    let (QueryResult::Lineage(full), QueryResult::Lineage(pruned)) = (full, pruned) else {
        panic!()
    };
    assert!(pruned.size() <= full.size());
    assert!(pruned.depth() <= 3);
    assert!(pruned_stats.messages <= full_stats.messages);
}

#[test]
fn traversal_orders_agree_on_results_and_differ_on_latency() {
    let mut nt = platform();
    let (node, tuple) = nt.relation("bestPathCost").into_iter().next_back().unwrap();
    let dfs = QueryOptions {
        traversal: TraversalOrder::DepthFirst,
        ..QueryOptions::default()
    };
    let bfs = QueryOptions {
        traversal: TraversalOrder::BreadthFirst,
        ..QueryOptions::default()
    };
    let (r1, s1) = nt.query(&node, &tuple, QueryKind::BaseTuples, &dfs);
    let (r2, s2) = nt.query(&node, &tuple, QueryKind::BaseTuples, &bfs);
    assert_eq!(r1, r2, "traversal order must not change the answer");
    assert_eq!(s1.messages, s2.messages);
    assert!(s2.latency_ms <= s1.latency_ms);
}

#[test]
fn proql_queries_agree_with_the_query_engine() {
    let mut nt = platform();
    let graph = nt.provenance_graph();
    // ProQL: all base tuples reachable backwards from bestPathCost tuples at n1.
    let q = proql::parse_query("from bestPathCost@n1 back bases").unwrap();
    let proql_bases = match proql::evaluate(&graph, &q) {
        provenance::ProqlResult::Vertices(v) => v,
        other => panic!("unexpected {other:?}"),
    };
    assert!(!proql_bases.is_empty());
    assert!(proql_bases.iter().all(|l| l.contains("link(")));

    // The per-tuple query engine agrees that every contributing base tuple of
    // an n1 tuple appears in the ProQL result.
    let targets: Vec<_> = nt
        .relation("bestPathCost")
        .into_iter()
        .filter(|(n, _)| n == "n1")
        .collect();
    for (node, tuple) in targets {
        let (result, _) = nt.query(
            &node,
            &tuple,
            QueryKind::BaseTuples,
            &QueryOptions::default(),
        );
        let QueryResult::BaseTuples(bases) = result else {
            panic!()
        };
        for (_, base) in bases {
            let label = base.unwrap().to_string();
            assert!(
                proql_bases.contains(&label),
                "{label} missing from ProQL result"
            );
        }
    }
}
