//! Integration tests for the distributed provenance query protocol and its
//! optimizations, exercised over real protocol runs. Queries execute in
//! [`provenance::QueryMode::Distributed`] by default: every cross-node hop
//! is a `prov-query` frame through the simulated network, and latency is
//! measured off the network clock.

use nettrails::{NetTrails, NetTrailsConfig};
use provenance::{proql, QueryKind, QueryMode, QueryResult, TraversalOrder};
use simnet::Topology;

fn platform() -> NetTrails {
    let mut nt = NetTrails::new(
        protocols::pathvector::PROGRAM,
        Topology::ladder(3),
        NetTrailsConfig::default(),
    )
    .unwrap();
    nt.seed_links_from_topology();
    nt.run_to_fixpoint();
    nt
}

#[test]
fn derivation_counts_are_positive_and_consistent_with_lineage() {
    let mut nt = platform();
    for (node, tuple) in nt.relation("bestPathCost").into_iter().take(10) {
        let (count, _) = nt
            .query(&tuple)
            .from_node(&node)
            .kind(QueryKind::DerivationCount)
            .run();
        let QueryResult::DerivationCount(count) = count else {
            panic!()
        };
        assert!(count >= 1, "{tuple} should have at least one derivation");
        let (lineage, _) = nt.query(&tuple).from_node(&node).run();
        let QueryResult::Lineage(tree) = lineage else {
            panic!()
        };
        assert!(!tree.derivations.is_empty());
        assert!(tree.size() as u64 >= count.min(1));
    }
}

#[test]
fn base_tuples_of_protocol_state_are_always_links() {
    let mut nt = platform();
    for (node, tuple) in nt.relation("path").into_iter().take(20) {
        let (result, _) = nt
            .query(&tuple)
            .from_node(&node)
            .kind(QueryKind::BaseTuples)
            .run();
        let QueryResult::BaseTuples(bases) = result else {
            panic!()
        };
        assert!(!bases.is_empty());
        for (_, base) in bases {
            assert_eq!(base.unwrap().relation, "link");
        }
    }
}

#[test]
fn caching_reduces_traffic_for_repeated_and_overlapping_queries() {
    let mut nt = platform();
    let targets: Vec<_> = nt.relation("bestPathCost").into_iter().take(6).collect();

    // Without caching: query everything twice and count messages.
    let mut uncached_messages = 0;
    for (node, tuple) in targets.iter().chain(targets.iter()) {
        let (_, stats) = nt.query(tuple).from_node(node).run();
        uncached_messages += stats.messages;
    }
    // With caching.
    nt.clear_query_cache();
    let mut cached_messages = 0;
    for (node, tuple) in targets.iter().chain(targets.iter()) {
        let (_, stats) = nt.query(tuple).from_node(node).cached().run();
        cached_messages += stats.messages;
    }
    assert!(
        cached_messages < uncached_messages,
        "caching should reduce traffic: {cached_messages} vs {uncached_messages}"
    );
}

#[test]
fn pruning_bounds_the_result_and_reduces_traffic() {
    let mut nt = platform();
    let (node, tuple) = nt
        .relation("bestPathCost")
        .into_iter()
        .max_by_key(|(_, t)| t.values[2].as_int())
        .unwrap();
    let (full, full_stats) = nt.query(&tuple).from_node(&node).run();
    let (pruned, pruned_stats) = nt
        .query(&tuple)
        .from_node(&node)
        .max_depth(2)
        .max_derivations(1)
        .run();
    let (QueryResult::Lineage(full), QueryResult::Lineage(pruned)) = (full, pruned) else {
        panic!()
    };
    assert!(pruned.size() <= full.size());
    assert!(pruned.depth() <= 3);
    assert!(pruned_stats.messages <= full_stats.messages);
    assert!(pruned_stats.records <= full_stats.records);
}

#[test]
fn traversal_orders_agree_on_results_and_differ_on_measured_latency() {
    let mut nt = platform();
    let (node, tuple) = nt.relation("bestPathCost").into_iter().next_back().unwrap();
    let (r1, s1) = nt
        .query(&tuple)
        .from_node(&node)
        .kind(QueryKind::BaseTuples)
        .traversal(TraversalOrder::DepthFirst)
        .run();
    let (r2, s2) = nt
        .query(&tuple)
        .from_node(&node)
        .kind(QueryKind::BaseTuples)
        .traversal(TraversalOrder::BreadthFirst)
        .run();
    assert_eq!(r1, r2, "traversal order must not change the answer");
    // Same protocol records either way; breadth-first coalesces same-flush
    // records into fewer frames and finishes sooner on the simulated clock.
    assert_eq!(s1.records, s2.records);
    assert!(s2.messages <= s1.messages);
    assert!(s2.latency_ms <= s1.latency_ms);
}

/// Distributed sessions and the in-process oracle agree on answers and
/// work counts over a real protocol run (spot check; the exhaustive version
/// is `tests/proptest_query_equivalence.rs`).
#[test]
fn distributed_mode_matches_local_mode() {
    let mut nt = platform();
    let targets: Vec<_> = nt.relation("bestPathCost").into_iter().take(6).collect();
    for (node, tuple) in &targets {
        for kind in [
            QueryKind::Lineage,
            QueryKind::BaseTuples,
            QueryKind::ParticipatingNodes,
            QueryKind::DerivationCount,
        ] {
            let (dist, dist_stats) = nt.query(tuple).from_node(node).kind(kind).run();
            let (local, local_stats) = nt
                .query(tuple)
                .from_node(node)
                .kind(kind)
                .mode(QueryMode::Local)
                .run();
            assert_eq!(dist, local);
            assert_eq!(dist_stats.vertices_visited, local_stats.vertices_visited);
            assert_eq!(dist_stats.messages, local_stats.messages, "DFS frame count");
        }
    }
}

#[test]
fn proql_queries_agree_with_the_query_engine() {
    let mut nt = platform();
    let graph = nt.provenance_graph();
    // ProQL: all base tuples reachable backwards from bestPathCost tuples at n1.
    let q = proql::parse_query("from bestPathCost@n1 back bases").unwrap();
    let proql_bases = match proql::evaluate(&graph, &q) {
        provenance::ProqlResult::Vertices(v) => v,
        other => panic!("unexpected {other:?}"),
    };
    assert!(!proql_bases.is_empty());
    assert!(proql_bases.iter().all(|l| l.contains("link(")));

    // The per-tuple query engine agrees that every contributing base tuple of
    // an n1 tuple appears in the ProQL result.
    let targets: Vec<_> = nt
        .relation("bestPathCost")
        .into_iter()
        .filter(|(n, _)| n == "n1")
        .collect();
    for (node, tuple) in targets {
        let (result, _) = nt
            .query(&tuple)
            .from_node(&node)
            .kind(QueryKind::BaseTuples)
            .run();
        let QueryResult::BaseTuples(bases) = result else {
            panic!()
        };
        for (_, base) in bases {
            let label = base.unwrap().to_string();
            assert!(
                proql_bases.contains(&label),
                "{label} missing from ProQL result"
            );
        }
    }
}
