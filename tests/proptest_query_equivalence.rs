//! Query-mode equivalence: a message-driven distributed query session must
//! be observationally identical to the legacy in-process recursion.
//!
//! For random topologies, protocols, link churn, targets, query kinds,
//! traversal orders and pruning/caching options, `QueryMode::Distributed`
//! must produce the same [`provenance::QueryResult`] (bit-identical trees:
//! same derivation order, same pruned flags), the same vertex-visit and
//! cache-hit counts, and — for the sequential depth-first schedule, where
//! frames cannot coalesce — the same frame count as `QueryMode::Local`.
//! Breadth-first fan-out may only *reduce* frames (same-flush coalescing),
//! and its measured completion latency on multi-hop proofs must not exceed
//! depth-first's.
//!
//! The third property covers the query service's cross-session frame
//! merging: with `NetTrailsConfig::merge_query_frames`, concurrent
//! sessions' records share one frame per (source, destination, direction),
//! and every session must still be bit-identical — results, visits, cache
//! hits, records, frames charged, measured latency — to per-session
//! sealing, across kinds × traversals × cancellation storms.

use nettrails::{NetTrails, NetTrailsConfig};
use proptest::prelude::*;
use provenance::{
    QueryHandle, QueryKind, QueryMode, QueryOptions, QueryResult, QueryStats, TraversalOrder,
};
use simnet::{Topology, TopologyEvent};
use std::collections::BTreeMap;

fn topology_for(kind: usize, size: usize) -> Topology {
    match kind % 3 {
        0 => Topology::line(2 + size % 3),
        1 => Topology::ring(3 + size % 3),
        _ => Topology::ladder(2 + size % 2),
    }
}

fn kind_for(i: usize) -> QueryKind {
    match i % 4 {
        0 => QueryKind::Lineage,
        1 => QueryKind::BaseTuples,
        2 => QueryKind::ParticipatingNodes,
        _ => QueryKind::DerivationCount,
    }
}

fn options_for(traversal: usize, cache: bool, depth: usize, derivs: usize) -> QueryOptions {
    QueryOptions {
        use_cache: cache,
        traversal: if traversal.is_multiple_of(2) {
            TraversalOrder::DepthFirst
        } else {
            TraversalOrder::BreadthFirst
        },
        // 0 = unbounded; small bounds exercise both pruning paths.
        max_depth: (!depth.is_multiple_of(4)).then_some(depth % 4),
        max_derivations_per_vertex: (!derivs.is_multiple_of(3)).then_some(derivs % 3),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    #[test]
    fn distributed_queries_match_the_local_oracle(
        topo_kind in 0usize..3,
        size in 0usize..6,
        program_idx in 0usize..2,
        churn in proptest::collection::vec((0usize..8, 0usize..8), 0..3),
        queries in proptest::collection::vec(
            // (target, kind × traversal, cache, max_depth, max_derivations)
            (0usize..64, 0usize..8, 0usize..2, 0usize..4, 0usize..3),
            1..6,
        ),
    ) {
        let topology = topology_for(topo_kind, size);
        let nodes: Vec<String> = topology.nodes().map(str::to_string).collect();
        let program = if program_idx == 0 {
            protocols::mincost::PROGRAM
        } else {
            protocols::pathvector::PROGRAM
        };
        let mut nt = NetTrails::new(program, topology, NetTrailsConfig::default())
            .expect("program compiles");
        nt.seed_links_from_topology();
        nt.run_to_fixpoint();
        for (a, b) in churn {
            nt.apply_topology_event(&TopologyEvent::LinkDown {
                a: nodes[a % nodes.len()].clone(),
                b: nodes[b % nodes.len()].clone(),
            });
        }
        let targets = if program_idx == 0 {
            nt.relation("minCost")
        } else {
            nt.relation("bestPathCost")
        };
        if targets.is_empty() {
            return Ok(());
        }

        // Run the random query mix twice per mode, in the same order, so
        // cache evolution is comparable between the two engines.
        for (t, kind_and_traversal, cache, depth, derivs) in queries {
            let (querier, target) = &targets[t % targets.len()];
            let kind = kind_for(kind_and_traversal % 4);
            let options = options_for(kind_and_traversal / 4, cache == 1, depth, derivs);
            for _ in 0..2 {
                let (local, ls) = nt
                    .query(target)
                    .from_node(querier)
                    .kind(kind)
                    .options(options.clone())
                    .mode(QueryMode::Local)
                    .run();
                let (dist, ds) = nt
                    .query(target)
                    .from_node(querier)
                    .kind(kind)
                    .options(options.clone())
                    .run();
                prop_assert_eq!(&local, &dist, "result for {:?} {:?}", kind, options);
                if let QueryResult::Lineage(tree) = &dist {
                    let QueryResult::Lineage(local_tree) = &local else {
                        unreachable!()
                    };
                    prop_assert_eq!(tree.pruned, local_tree.pruned);
                    prop_assert_eq!(tree.size(), local_tree.size());
                }
                prop_assert_eq!(
                    ls.vertices_visited, ds.vertices_visited,
                    "visits for {:?} {:?}", kind, options
                );
                prop_assert_eq!(
                    ls.cache_hits, ds.cache_hits,
                    "cache hits for {:?} {:?}", kind, options
                );
                prop_assert_eq!(
                    ls.records, ds.records,
                    "hop records for {:?} {:?}", kind, options
                );
                match options.traversal {
                    TraversalOrder::DepthFirst => {
                        prop_assert_eq!(ls.messages, ds.messages, "sequential frame count");
                    }
                    TraversalOrder::BreadthFirst => {
                        prop_assert!(ds.messages <= ls.messages, "fan-out only coalesces");
                    }
                }
            }
        }
    }

    /// Cross-session frame merging is observationally invisible: for random
    /// mixes of concurrent sessions — kinds × traversals × depth pruning —
    /// interrupted by cancellation storms at random pump steps, every
    /// session's result, visit count, cache hits, records, charged frames
    /// and measured latency are bit-identical to per-session sealing, and
    /// the run-wide byte totals match. (Sessions run uncached here:
    /// cross-session cache *fill* is schedule-dependent by design — whether
    /// one session's freshly cached subtree is visible to another depends
    /// on frame arrival interleaving — while per-session cache equivalence
    /// against the local oracle is covered above.)
    #[test]
    fn merged_frame_sealing_matches_per_session_sealing(
        topo_kind in 0usize..3,
        size in 0usize..6,
        program_idx in 0usize..2,
        sessions in proptest::collection::vec(
            // (target, querier, kind, traversal, max_depth)
            (0usize..64, 0usize..8, 0usize..4, 0usize..2, 0usize..4),
            2..10,
        ),
        storm in proptest::collection::vec(
            // (session to cancel, pump step to cancel at)
            (0usize..16, 1usize..8),
            0..4,
        ),
    ) {
        let topology = topology_for(topo_kind, size);
        let program = if program_idx == 0 {
            protocols::mincost::PROGRAM
        } else {
            protocols::pathvector::PROGRAM
        };
        let relation = if program_idx == 0 { "minCost" } else { "bestPathCost" };
        let run = |merge: bool| {
            let config = if merge {
                NetTrailsConfig::with_merged_query_frames()
            } else {
                NetTrailsConfig::default()
            };
            let mut nt = NetTrails::new(program, topology.clone(), config)
                .expect("program compiles");
            nt.seed_links_from_topology();
            nt.run_to_fixpoint();
            let targets = nt.relation(relation);
            if targets.is_empty() {
                return (Vec::new(), (0, 0), 0);
            }
            let nodes: Vec<String> = nt.nodes().iter().map(|a| a.as_str().to_string()).collect();
            let handles: Vec<QueryHandle> = sessions
                .iter()
                .map(|&(t, q, kind, traversal, depth)| {
                    let (_, target) = &targets[t % targets.len()];
                    let options = QueryOptions {
                        use_cache: false,
                        traversal: if traversal == 0 {
                            TraversalOrder::DepthFirst
                        } else {
                            TraversalOrder::BreadthFirst
                        },
                        max_depth: (depth > 0).then_some(depth),
                        max_derivations_per_vertex: None,
                    };
                    nt.query(target)
                        .from_node(&nodes[q % nodes.len()])
                        .kind(kind_for(kind))
                        .options(options)
                        .submit()
                })
                .collect();
            let mut cancel_at: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
            for &(s, step) in &storm {
                cancel_at.entry(step).or_default().push(s % handles.len());
            }
            // Drive the flock to completion, firing the cancellation storm
            // at its scheduled pump steps. Cancelled sessions keep the
            // stats they accrued up to the cancel.
            let mut cancelled: BTreeMap<usize, QueryStats> = BTreeMap::new();
            let mut step = 0usize;
            while handles.iter().any(|h| !nt.query_done(*h)) {
                if let Some(victims) = cancel_at.get(&step) {
                    for &v in victims {
                        if !nt.query_done(handles[v]) {
                            let stats = nt.cancel_query(handles[v]);
                            cancelled.insert(v, stats);
                        }
                    }
                }
                if handles.iter().all(|h| nt.query_done(*h)) {
                    break;
                }
                assert!(nt.poll_queries(), "sessions stalled");
                step += 1;
                assert!(step < 100_000, "sessions failed to converge");
            }
            let mut outcomes = Vec::new();
            let mut totals = (0u64, 0u64);
            for (i, handle) in handles.iter().enumerate() {
                // Per-session bytes are summed, not compared individually:
                // first-use dictionary attribution follows frame order
                // within a flush, so merging may shift a shared symbol's
                // charge between concurrent sessions.
                let (result, stats) = match nt.try_wait_query(*handle) {
                    Some((result, stats)) => (Some(result), stats),
                    None => (None, cancelled.remove(&i).expect("cancelled session")),
                };
                totals.0 += stats.bytes;
                totals.1 += stats.dict_bytes;
                outcomes.push((
                    result,
                    stats.messages,
                    stats.records,
                    stats.vertices_visited,
                    stats.cache_hits,
                    stats.latency_ms,
                ));
            }
            (outcomes, totals, nt.query_executor().traffic().messages)
        };
        let (merged, merged_totals, merged_frames) = run(true);
        let (split, split_totals, split_frames) = run(false);
        prop_assert_eq!(merged, split, "per-session outcomes must be identical");
        prop_assert_eq!(merged_totals, split_totals, "run-wide byte totals");
        prop_assert!(
            merged_frames <= split_frames,
            "merging never ships more frames ({} vs {})",
            merged_frames,
            split_frames
        );
    }

    /// On multi-hop proofs the measured breadth-first completion time is
    /// never worse than depth-first's — the max(hop-chain) vs sum(hop)
    /// trade the paper describes, read off the simulated clock.
    #[test]
    fn breadth_first_measured_latency_is_never_worse(
        topo_kind in 0usize..3,
        size in 0usize..6,
        program_idx in 0usize..2,
    ) {
        let topology = topology_for(topo_kind, size);
        let program = if program_idx == 0 {
            protocols::mincost::PROGRAM
        } else {
            protocols::pathvector::PROGRAM
        };
        let mut nt = NetTrails::new(program, topology, NetTrailsConfig::default())
            .expect("program compiles");
        nt.seed_links_from_topology();
        nt.run_to_fixpoint();
        let targets = if program_idx == 0 {
            nt.relation("minCost")
        } else {
            nt.relation("bestPathCost")
        };
        if targets.is_empty() {
            return Ok(());
        }
        for (querier, target) in targets.iter().take(6) {
            let (rd, dfs) = nt
                .query(target)
                .from_node(querier)
                .traversal(TraversalOrder::DepthFirst)
                .run();
            let (rb, bfs) = nt
                .query(target)
                .from_node(querier)
                .traversal(TraversalOrder::BreadthFirst)
                .run();
            prop_assert_eq!(rd, rb);
            // Chain-shaped proofs (every vertex a single derivation) have
            // nothing to overlap, so equality is legitimate; the strict
            // multi-hop gate lives in scripts/check_bench_schema.py over
            // branching ladder scenarios.
            prop_assert!(
                bfs.latency_ms <= dfs.latency_ms,
                "measured BFS {}ms must not exceed DFS {}ms ({} records)",
                bfs.latency_ms, dfs.latency_ms, dfs.records
            );
        }
    }
}
