//! Query-mode equivalence: a message-driven distributed query session must
//! be observationally identical to the legacy in-process recursion.
//!
//! For random topologies, protocols, link churn, targets, query kinds,
//! traversal orders and pruning/caching options, `QueryMode::Distributed`
//! must produce the same [`provenance::QueryResult`] (bit-identical trees:
//! same derivation order, same pruned flags), the same vertex-visit and
//! cache-hit counts, and — for the sequential depth-first schedule, where
//! frames cannot coalesce — the same frame count as `QueryMode::Local`.
//! Breadth-first fan-out may only *reduce* frames (same-flush coalescing),
//! and its measured completion latency on multi-hop proofs must not exceed
//! depth-first's.

use nettrails::{NetTrails, NetTrailsConfig};
use proptest::prelude::*;
use provenance::{QueryKind, QueryMode, QueryOptions, QueryResult, TraversalOrder};
use simnet::{Topology, TopologyEvent};

fn topology_for(kind: usize, size: usize) -> Topology {
    match kind % 3 {
        0 => Topology::line(2 + size % 3),
        1 => Topology::ring(3 + size % 3),
        _ => Topology::ladder(2 + size % 2),
    }
}

fn kind_for(i: usize) -> QueryKind {
    match i % 4 {
        0 => QueryKind::Lineage,
        1 => QueryKind::BaseTuples,
        2 => QueryKind::ParticipatingNodes,
        _ => QueryKind::DerivationCount,
    }
}

fn options_for(traversal: usize, cache: bool, depth: usize, derivs: usize) -> QueryOptions {
    QueryOptions {
        use_cache: cache,
        traversal: if traversal.is_multiple_of(2) {
            TraversalOrder::DepthFirst
        } else {
            TraversalOrder::BreadthFirst
        },
        // 0 = unbounded; small bounds exercise both pruning paths.
        max_depth: (!depth.is_multiple_of(4)).then_some(depth % 4),
        max_derivations_per_vertex: (!derivs.is_multiple_of(3)).then_some(derivs % 3),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    #[test]
    fn distributed_queries_match_the_local_oracle(
        topo_kind in 0usize..3,
        size in 0usize..6,
        program_idx in 0usize..2,
        churn in proptest::collection::vec((0usize..8, 0usize..8), 0..3),
        queries in proptest::collection::vec(
            // (target, kind × traversal, cache, max_depth, max_derivations)
            (0usize..64, 0usize..8, 0usize..2, 0usize..4, 0usize..3),
            1..6,
        ),
    ) {
        let topology = topology_for(topo_kind, size);
        let nodes: Vec<String> = topology.nodes().map(str::to_string).collect();
        let program = if program_idx == 0 {
            protocols::mincost::PROGRAM
        } else {
            protocols::pathvector::PROGRAM
        };
        let mut nt = NetTrails::new(program, topology, NetTrailsConfig::default())
            .expect("program compiles");
        nt.seed_links_from_topology();
        nt.run_to_fixpoint();
        for (a, b) in churn {
            nt.apply_topology_event(&TopologyEvent::LinkDown {
                a: nodes[a % nodes.len()].clone(),
                b: nodes[b % nodes.len()].clone(),
            });
        }
        let targets = if program_idx == 0 {
            nt.relation("minCost")
        } else {
            nt.relation("bestPathCost")
        };
        if targets.is_empty() {
            return Ok(());
        }

        // Run the random query mix twice per mode, in the same order, so
        // cache evolution is comparable between the two engines.
        for (t, kind_and_traversal, cache, depth, derivs) in queries {
            let (querier, target) = &targets[t % targets.len()];
            let kind = kind_for(kind_and_traversal % 4);
            let options = options_for(kind_and_traversal / 4, cache == 1, depth, derivs);
            for _ in 0..2 {
                let (local, ls) = nt
                    .query(target)
                    .from_node(querier)
                    .kind(kind)
                    .options(options.clone())
                    .mode(QueryMode::Local)
                    .run();
                let (dist, ds) = nt
                    .query(target)
                    .from_node(querier)
                    .kind(kind)
                    .options(options.clone())
                    .run();
                prop_assert_eq!(&local, &dist, "result for {:?} {:?}", kind, options);
                if let QueryResult::Lineage(tree) = &dist {
                    let QueryResult::Lineage(local_tree) = &local else {
                        unreachable!()
                    };
                    prop_assert_eq!(tree.pruned, local_tree.pruned);
                    prop_assert_eq!(tree.size(), local_tree.size());
                }
                prop_assert_eq!(
                    ls.vertices_visited, ds.vertices_visited,
                    "visits for {:?} {:?}", kind, options
                );
                prop_assert_eq!(
                    ls.cache_hits, ds.cache_hits,
                    "cache hits for {:?} {:?}", kind, options
                );
                prop_assert_eq!(
                    ls.records, ds.records,
                    "hop records for {:?} {:?}", kind, options
                );
                match options.traversal {
                    TraversalOrder::DepthFirst => {
                        prop_assert_eq!(ls.messages, ds.messages, "sequential frame count");
                    }
                    TraversalOrder::BreadthFirst => {
                        prop_assert!(ds.messages <= ls.messages, "fan-out only coalesces");
                    }
                }
            }
        }
    }

    /// On multi-hop proofs the measured breadth-first completion time is
    /// never worse than depth-first's — the max(hop-chain) vs sum(hop)
    /// trade the paper describes, read off the simulated clock.
    #[test]
    fn breadth_first_measured_latency_is_never_worse(
        topo_kind in 0usize..3,
        size in 0usize..6,
        program_idx in 0usize..2,
    ) {
        let topology = topology_for(topo_kind, size);
        let program = if program_idx == 0 {
            protocols::mincost::PROGRAM
        } else {
            protocols::pathvector::PROGRAM
        };
        let mut nt = NetTrails::new(program, topology, NetTrailsConfig::default())
            .expect("program compiles");
        nt.seed_links_from_topology();
        nt.run_to_fixpoint();
        let targets = if program_idx == 0 {
            nt.relation("minCost")
        } else {
            nt.relation("bestPathCost")
        };
        if targets.is_empty() {
            return Ok(());
        }
        for (querier, target) in targets.iter().take(6) {
            let (rd, dfs) = nt
                .query(target)
                .from_node(querier)
                .traversal(TraversalOrder::DepthFirst)
                .run();
            let (rb, bfs) = nt
                .query(target)
                .from_node(querier)
                .traversal(TraversalOrder::BreadthFirst)
                .run();
            prop_assert_eq!(rd, rb);
            // Chain-shaped proofs (every vertex a single derivation) have
            // nothing to overlap, so equality is legitimate; the strict
            // multi-hop gate lives in scripts/check_bench_schema.py over
            // branching ladder scenarios.
            prop_assert!(
                bfs.latency_ms <= dfs.latency_ms,
                "measured BFS {}ms must not exceed DFS {}ms ({} records)",
                bfs.latency_ms, dfs.latency_ms, dfs.records
            );
        }
    }
}
