//! Incremental maintenance: after arbitrary sequences of topology events, the
//! incrementally maintained state must equal recomputation from scratch, and
//! the provenance store must stay consistent with the derived state.

use nettrails::{NetTrails, NetTrailsConfig};
use simnet::{Link, Topology, TopologyEvent};

fn normalized(nt: &NetTrails, relation: &str) -> Vec<String> {
    let mut rows: Vec<String> = nt
        .relation(relation)
        .into_iter()
        .map(|(n, t)| format!("{n}:{t}"))
        .collect();
    rows.sort();
    rows
}

fn check_incremental_equals_scratch(
    program: &str,
    result_relation: &str,
    events: &[TopologyEvent],
) {
    let mut nt = NetTrails::new(program, Topology::ring(5), NetTrailsConfig::default()).unwrap();
    nt.seed_links_from_topology();
    nt.run_to_fixpoint();
    for event in events {
        nt.apply_topology_event(event);
        let (fresh, _) = nt.recompute_from_scratch().unwrap();
        assert_eq!(
            normalized(&nt, result_relation),
            normalized(&fresh, result_relation),
            "incremental vs scratch divergence after {event:?}"
        );
    }
}

fn event_sequence() -> Vec<TopologyEvent> {
    vec![
        TopologyEvent::LinkDown {
            a: "n1".into(),
            b: "n2".into(),
        },
        TopologyEvent::CostChange {
            a: "n3".into(),
            b: "n4".into(),
            cost: 5,
        },
        TopologyEvent::LinkUp(Link::new("n1", "n3", 2)),
        TopologyEvent::LinkDown {
            a: "n4".into(),
            b: "n5".into(),
        },
        TopologyEvent::LinkUp(Link::new("n1", "n2", 1)),
    ]
}

#[test]
fn mincost_incremental_maintenance_is_exact() {
    check_incremental_equals_scratch(protocols::mincost::PROGRAM, "minCost", &event_sequence());
}

#[test]
fn distance_vector_incremental_maintenance_is_exact() {
    check_incremental_equals_scratch(
        protocols::distancevector::PROGRAM,
        "shortestCost",
        &event_sequence(),
    );
}

#[test]
fn dsr_incremental_maintenance_is_exact() {
    check_incremental_equals_scratch(protocols::dsr::PROGRAM, "shortestRoute", &event_sequence());
}

#[test]
fn provenance_tracks_every_derived_min_cost_tuple_after_churn() {
    let mut nt = NetTrails::new(
        protocols::mincost::PROGRAM,
        Topology::ladder(3),
        NetTrailsConfig::default(),
    )
    .unwrap();
    nt.seed_links_from_topology();
    nt.run_to_fixpoint();
    nt.apply_topology_event(&TopologyEvent::LinkDown {
        a: "n2".into(),
        b: "n5".into(),
    });
    nt.apply_topology_event(&TopologyEvent::LinkUp(Link::new("n2", "n5", 3)));

    // Every currently stored minCost tuple has a vertex in the provenance
    // graph at its home node.
    for (node, tuple) in nt.relation("minCost") {
        let store = nt.provenance().store(node).expect("store exists");
        assert!(
            store.has_vertex(tuple.id()),
            "{tuple} at {node} missing from the provenance store"
        );
    }
    // And the graph is still acyclic after churn.
    assert!(nt.provenance_graph().is_acyclic());
}

#[test]
fn incremental_work_is_less_than_recompute_for_local_changes() {
    let mut nt = NetTrails::new(
        protocols::mincost::PROGRAM,
        Topology::grid(3, 4),
        NetTrailsConfig::default(),
    )
    .unwrap();
    nt.seed_links_from_topology();
    let initial = nt.run_to_fixpoint();
    // A cost change on one edge far from most of the graph.
    let report = nt.apply_topology_event(&TopologyEvent::CostChange {
        a: "n1".into(),
        b: "n2".into(),
        cost: 2,
    });
    assert!(
        report.tuples_touched() < initial.tuples_touched(),
        "incremental ({}) should touch fewer tuples than initial convergence ({})",
        report.tuples_touched(),
        initial.tuples_touched()
    );
}

/// End-to-end check of the morsel-driven parallel fixpoint: a platform whose
/// engines dispatch every generation through the worker pool
/// (`fixpoint_workers` 4, dispatch threshold 0) must converge — and churn —
/// to exactly the state and provenance digest of the sequential platform.
#[test]
fn parallel_fixpoint_platform_matches_sequential() {
    let run = |workers: usize| {
        let config = NetTrailsConfig {
            fixpoint_workers: workers,
            fixpoint_dispatch_threshold: if workers > 1 { 0 } else { 64 },
            ..NetTrailsConfig::default()
        };
        let mut nt =
            NetTrails::new(protocols::mincost::PROGRAM, Topology::ladder(4), config).unwrap();
        nt.seed_links_from_topology();
        nt.run_to_fixpoint();
        for event in event_sequence() {
            nt.apply_topology_event(&event);
        }
        (
            normalized(&nt, "minCost"),
            normalized(&nt, "cost"),
            format!("{:?}", nt.stats()),
        )
    };
    let sequential = run(1);
    for workers in [2, 4] {
        assert_eq!(
            sequential,
            run(workers),
            "parallel platform (W={workers}) diverged from the sequential run"
        );
    }
}
