//! Integration tests for the legacy-application (BGP) use case.

use bgp::{AsTopology, BgpHarness, TraceEventKind, TraceGenerator};
use provenance::{QueryEngine, QueryKind, QueryOptions, QueryResult};

fn run_harness(seed: u64) -> (BgpHarness, Vec<bgp::TraceEvent>) {
    let topology = AsTopology::generate(2, 4, 8, seed);
    let trace = TraceGenerator {
        prefixes_per_origin: 1,
        churn_events: 5,
        seed,
    }
    .generate(&topology);
    let mut harness = BgpHarness::new(topology);
    harness.run_trace(&trace);
    (harness, trace)
}

#[test]
fn routes_propagate_and_respect_origins() {
    let (harness, trace) = run_harness(21);
    // For every prefix still announced at the end of the trace, any AS that
    // has a route must agree on the origin.
    for event in &trace {
        if event.kind != TraceEventKind::Announce {
            continue;
        }
        let still_announced = trace
            .iter()
            .rfind(|e| e.prefix == event.prefix)
            .map(|e| e.kind == TraceEventKind::Announce)
            .unwrap_or(false);
        if !still_announced {
            continue;
        }
        for asn in harness.topology().ases() {
            if let Some(route) = harness.best_route(asn, &event.prefix) {
                assert_eq!(
                    route.origin(),
                    Some(event.origin.as_str()),
                    "{asn} has a route for {} with the wrong origin",
                    event.prefix
                );
                // AS paths are loop free.
                let mut seen = std::collections::BTreeSet::new();
                for hop in &route.as_path {
                    assert!(seen.insert(hop.clone()), "loop in {:?}", route.as_path);
                }
            }
        }
    }
}

#[test]
fn derivation_histories_reach_the_origin_announcement() {
    let (harness, trace) = run_harness(33);
    let mut qe = QueryEngine::new();
    let mut checked = 0;
    for event in trace.iter().filter(|e| e.kind == TraceEventKind::Announce) {
        for asn in harness.topology().ases().take(6) {
            let Some(target) = harness.fib_tuple(asn, &event.prefix) else {
                continue;
            };
            let (result, _) = qe.query(
                harness.provenance(),
                asn,
                &target,
                QueryKind::BaseTuples,
                &QueryOptions::default(),
            );
            let QueryResult::BaseTuples(bases) = result else {
                panic!()
            };
            if asn == event.origin {
                continue;
            }
            checked += 1;
            assert!(
                bases.iter().any(|(_, t)| t
                    .as_ref()
                    .map(|t| t.values[0].as_addr() == Some(event.origin.as_str()))
                    .unwrap_or(false)),
                "route at {asn} for {} does not trace back to {}",
                event.prefix,
                event.origin
            );
        }
    }
    assert!(checked > 0, "at least one remote FIB entry was checked");
}

#[test]
fn maybe_rules_attribute_most_transit_announcements() {
    let (harness, _) = run_harness(55);
    let stats = harness.stats();
    assert!(stats.messages > 0);
    assert!(
        stats.maybe_matches > stats.maybe_unmatched,
        "most announcements are re-advertisements and should match br1 \
         ({} matched vs {} unmatched)",
        stats.maybe_matches,
        stats.maybe_unmatched
    );
}

#[test]
fn provenance_state_grows_with_trace_volume() {
    let topology = AsTopology::generate(2, 3, 6, 9);
    let small_trace = TraceGenerator {
        prefixes_per_origin: 1,
        churn_events: 1,
        seed: 9,
    }
    .generate(&topology);
    let big_trace = TraceGenerator {
        prefixes_per_origin: 2,
        churn_events: 10,
        seed: 9,
    }
    .generate(&topology);

    let mut small = BgpHarness::new(topology.clone());
    small.run_trace(&small_trace);
    let mut big = BgpHarness::new(topology);
    big.run_trace(&big_trace);
    assert!(
        big.provenance().stats().rule_execs > small.provenance().stats().rule_execs,
        "more updates -> more provenance"
    );
}
