//! Integration tests for the log store, replay and the visualizer backend.

use logstore::{LogStore, NodeSnapshot, Replay, SnapshotDiff, SystemSnapshot};
use nettrails::{NetTrails, NetTrailsConfig};
use provenance::{QueryKind, QueryResult};
use simnet::{Topology, TopologyEvent};
use vis::{provenance_to_dot, render_proof_tree, topology_to_dot, HypertreeLayout};

fn snapshot(nt: &NetTrails) -> SystemSnapshot {
    let mut snap = SystemSnapshot {
        time: nt.now(),
        topology: nt.network().topology().clone(),
        graph: nt.provenance_graph(),
        traffic: nt.network().stats().clone(),
        ..Default::default()
    };
    for node in nt.nodes() {
        let engine = nt.engine(&node).unwrap();
        snap.nodes.insert(
            node,
            NodeSnapshot::capture(&node, engine.database(), nt.provenance()),
        );
    }
    snap.stamp_dictionary();
    snap
}

fn platform() -> NetTrails {
    let mut nt = NetTrails::new(
        protocols::mincost::PROGRAM,
        Topology::ladder(3),
        NetTrailsConfig::default(),
    )
    .unwrap();
    nt.seed_links_from_topology();
    nt.run_to_fixpoint();
    nt
}

#[test]
fn snapshots_capture_the_live_state_faithfully() {
    let nt = platform();
    let snap = snapshot(&nt);
    // The snapshot's view of minCost equals the live platform's view.
    let mut live: Vec<String> = nt
        .relation("minCost")
        .into_iter()
        .map(|(n, t)| format!("{n}:{t}"))
        .collect();
    live.sort();
    let snap_rows: Vec<String> = snap
        .relation("minCost")
        .into_iter()
        .map(|(n, t)| format!("{n}:{t}"))
        .collect();
    assert_eq!(live, snap_rows);
    assert!(snap.tuple_count() > 0);
    assert!(snap.graph.is_acyclic());
}

#[test]
fn log_store_json_round_trip_preserves_snapshots() {
    let mut nt = platform();
    let mut store = LogStore::new();
    store.add(snapshot(&nt));
    nt.apply_topology_event(&TopologyEvent::LinkDown {
        a: "n1".into(),
        b: "n2".into(),
    });
    store.add(snapshot(&nt));
    let json = store.to_json().unwrap();
    let loaded = LogStore::from_json(&json).unwrap();
    assert_eq!(loaded.len(), 2);
    assert_eq!(
        loaded.snapshots()[0].relation("minCost"),
        store.snapshots()[0].relation("minCost")
    );
}

#[test]
fn replay_diffs_reflect_the_topology_change() {
    let mut nt = platform();
    let mut store = LogStore::new();
    store.add(snapshot(&nt));
    nt.apply_topology_event(&TopologyEvent::LinkDown {
        a: "n1".into(),
        b: "n2".into(),
    });
    store.add(snapshot(&nt));

    let mut replay = Replay::new(&store);
    let diff: SnapshotDiff = replay.step().expect("one step");
    assert!(diff.links_removed.contains(&("n1".into(), "n2".into())));
    assert!(
        !diff.appeared.is_empty() || !diff.disappeared.is_empty(),
        "protocol state changed with the topology"
    );
    assert!(replay.step().is_none());
}

#[test]
fn visualizer_exports_are_well_formed_for_real_provenance() {
    let mut nt = platform();
    let graph = nt.provenance_graph();
    let dot = provenance_to_dot(&graph);
    assert!(dot.starts_with("digraph"));
    assert!(dot.matches("->").count() >= graph.edges.len());
    let topo_dot = topology_to_dot(nt.network().topology());
    assert!(topo_dot.contains("n1"));

    let (node, target) = nt.relation("minCost").into_iter().next_back().unwrap();
    let (result, _) = nt
        .query(&target)
        .from_node(&node)
        .kind(QueryKind::Lineage)
        .run();
    let QueryResult::Lineage(tree) = result else {
        panic!()
    };
    let text = render_proof_tree(&tree);
    assert!(text.contains("minCost"));
    assert!(text.contains("[base]"));

    let layout = HypertreeLayout::of_proof_tree(&tree);
    assert_eq!(
        layout.vertices.values().filter(|v| v.is_tuple).count()
            + layout.vertices.values().filter(|v| !v.is_tuple).count(),
        layout.len()
    );
    assert!(layout.max_norm() < 1.0);
}
