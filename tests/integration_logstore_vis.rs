//! Integration tests for the log store, replay and the visualizer backend.

use logstore::{KvBackend, LogStore, Replay, SnapshotCapturer, SnapshotDiff, SystemSnapshot};
use nettrails::{NetTrails, NetTrailsConfig};
use nt_runtime::Interner;
use provenance::{QueryKind, QueryResult};
use simnet::{Topology, TopologyEvent};
use vis::{
    provenance_to_dot, render_proof_tree, render_replay_timeline, topology_to_dot, HypertreeLayout,
};

fn snapshot(nt: &NetTrails) -> SystemSnapshot {
    nt.capture_snapshot()
}

fn platform() -> NetTrails {
    let mut nt = NetTrails::new(
        protocols::mincost::PROGRAM,
        Topology::ladder(3),
        NetTrailsConfig::default(),
    )
    .unwrap();
    nt.seed_links_from_topology();
    nt.run_to_fixpoint();
    nt
}

#[test]
fn snapshots_capture_the_live_state_faithfully() {
    let nt = platform();
    let snap = snapshot(&nt);
    // The snapshot's view of minCost equals the live platform's view.
    let mut live: Vec<String> = nt
        .relation("minCost")
        .into_iter()
        .map(|(n, t)| format!("{n}:{t}"))
        .collect();
    live.sort();
    let snap_rows: Vec<String> = snap
        .relation("minCost")
        .into_iter()
        .map(|(n, t)| format!("{n}:{t}"))
        .collect();
    assert_eq!(live, snap_rows);
    assert!(snap.tuple_count() > 0);
    assert!(snap.graph.is_acyclic());
}

#[test]
fn log_store_json_round_trip_preserves_snapshots() {
    let mut nt = platform();
    let mut store = LogStore::new();
    store.add(snapshot(&nt));
    nt.apply_topology_event(&TopologyEvent::LinkDown {
        a: "n1".into(),
        b: "n2".into(),
    });
    store.add(snapshot(&nt));
    let json = store.to_json().unwrap();
    let loaded = LogStore::from_json(&json).unwrap();
    assert_eq!(loaded.len(), 2);
    assert_eq!(
        loaded.snapshots()[0].relation("minCost"),
        store.snapshots()[0].relation("minCost")
    );
}

#[test]
fn replay_diffs_reflect_the_topology_change() {
    let mut nt = platform();
    let mut store = LogStore::new();
    store.add(snapshot(&nt));
    nt.apply_topology_event(&TopologyEvent::LinkDown {
        a: "n1".into(),
        b: "n2".into(),
    });
    store.add(snapshot(&nt));

    let mut replay = Replay::new(&store);
    let diff: SnapshotDiff = replay.step().expect("one step");
    assert!(diff.links_removed.contains(&("n1".into(), "n2".into())));
    assert!(
        !diff.appeared.is_empty() || !diff.disappeared.is_empty(),
        "protocol state changed with the topology"
    );
    assert!(replay.step().is_none());
}

#[test]
fn visualizer_exports_are_well_formed_for_real_provenance() {
    let mut nt = platform();
    let graph = nt.provenance_graph();
    let dot = provenance_to_dot(&graph);
    assert!(dot.starts_with("digraph"));
    assert!(dot.matches("->").count() >= graph.edges.len());
    let topo_dot = topology_to_dot(nt.network().topology());
    assert!(topo_dot.contains("n1"));

    let (node, target) = nt.relation("minCost").into_iter().next_back().unwrap();
    let (result, _) = nt
        .query(&target)
        .from_node(&node)
        .kind(QueryKind::Lineage)
        .run();
    let QueryResult::Lineage(tree) = result else {
        panic!()
    };
    let text = render_proof_tree(&tree);
    assert!(text.contains("minCost"));
    assert!(text.contains("[base]"));

    let layout = HypertreeLayout::of_proof_tree(&tree);
    assert_eq!(
        layout.vertices.values().filter(|v| v.is_tuple).count()
            + layout.vertices.values().filter(|v| !v.is_tuple).count(),
        layout.len()
    );
    assert!(layout.max_norm() < 1.0);
}

#[test]
fn incremental_chain_replays_and_renders_through_a_kv_backend() {
    let mut nt = platform();
    let mut full = LogStore::new();
    let mut store = LogStore::with_backend(Box::new(KvBackend::new()));
    let mut capturer = SnapshotCapturer::new(3);
    let events = [
        TopologyEvent::LinkDown {
            a: "n1".into(),
            b: "n2".into(),
        },
        TopologyEvent::LinkDown {
            a: "n2".into(),
            b: "n5".into(),
        },
        TopologyEvent::LinkUp(simnet::Link::new("n1", "n2", 2)),
    ];
    let snap = snapshot(&nt);
    full.add(snap.clone());
    store.append_record(capturer.capture_with_watermark(snap, Interner::watermark()));
    for event in &events {
        nt.apply_topology_event(event);
        let snap = snapshot(&nt);
        full.add(snap.clone());
        store.append_record(capturer.capture_with_watermark(snap, Interner::watermark()));
    }

    assert_eq!(store.backend_name(), "kv");
    assert_eq!(store.checkpoint_count(), 2);
    assert_eq!(store.delta_count(), 2);
    assert_eq!(
        store.snapshots(),
        full.snapshots(),
        "delta chains materialize exactly what full uploads stored"
    );
    assert!(
        store.uploaded_bytes() < full.uploaded_bytes(),
        "deltas upload less than full snapshots ({} vs {})",
        store.uploaded_bytes(),
        full.uploaded_bytes()
    );

    // The replay walk over the incremental chain sees the same link churn
    // the full chain records.
    let mut replay = Replay::new(&store);
    let mut removed = Vec::new();
    while let Some(diff) = replay.step() {
        removed.extend(diff.links_removed);
    }
    assert!(removed.contains(&("n1".into(), "n2".into())));
    assert!(removed.contains(&("n2".into(), "n5".into())));

    // The timeline renderer reads the store through the backend trait only.
    let timeline = render_replay_timeline(&store);
    assert!(timeline.contains("[kv]"));
    assert!(timeline.contains("4 records (2 checkpoints, 2 deltas)"));
}
