//! Cross-crate integration tests for the MINCOST use case: the distributed
//! NDlog computation must agree with a reference shortest-path algorithm and
//! the captured provenance must be structurally sound.

use nettrails::{NetTrails, NetTrailsConfig};
use provenance::{QueryEngine, QueryKind, QueryOptions, QueryResult};
use simnet::Topology;
use std::collections::BTreeMap;

/// Reference all-pairs shortest paths (Dijkstra from every node would be
/// overkill at this scale; Floyd–Warshall is simpler and obviously correct).
fn reference_costs(topology: &Topology) -> BTreeMap<(String, String), i64> {
    let nodes: Vec<String> = topology.nodes().map(str::to_string).collect();
    let mut dist: BTreeMap<(String, String), i64> = BTreeMap::new();
    for l in topology.links() {
        let entry = dist.entry((l.from.clone(), l.to.clone())).or_insert(l.cost);
        *entry = (*entry).min(l.cost);
    }
    for k in &nodes {
        for i in &nodes {
            for j in &nodes {
                let (Some(&ik), Some(&kj)) = (
                    dist.get(&(i.clone(), k.clone())),
                    dist.get(&(k.clone(), j.clone())),
                ) else {
                    continue;
                };
                let candidate = ik + kj;
                let entry = dist.entry((i.clone(), j.clone())).or_insert(i64::MAX);
                if candidate < *entry {
                    *entry = candidate;
                }
            }
        }
    }
    // Drop self-distances of 0 that MINCOST does not derive (it has no
    // zero-length path rule); keep i==j entries only if a real cycle exists.
    dist
}

fn run_mincost(topology: Topology) -> NetTrails {
    let mut nt = NetTrails::new(
        protocols::mincost::PROGRAM,
        topology,
        NetTrailsConfig::default(),
    )
    .unwrap();
    nt.seed_links_from_topology();
    let report = nt.run_to_fixpoint();
    assert!(!report.truncated, "MINCOST must converge");
    nt
}

fn min_costs(nt: &NetTrails) -> BTreeMap<(String, String), i64> {
    nt.relation("minCost")
        .into_iter()
        .map(|(_, t)| {
            (
                (
                    t.values[0].as_addr().unwrap().to_string(),
                    t.values[1].as_addr().unwrap().to_string(),
                ),
                t.values[2].as_int().unwrap(),
            )
        })
        .collect()
}

#[test]
fn mincost_matches_reference_shortest_paths_on_standard_topologies() {
    for topology in [
        Topology::line(5),
        Topology::ring(6),
        Topology::star(5),
        Topology::ladder(4),
        Topology::random(8, 0.2, 4, 3),
    ] {
        let reference = reference_costs(&topology);
        let nt = run_mincost(topology);
        let computed = min_costs(&nt);
        for ((s, d), cost) in &computed {
            if s == d {
                continue; // round trips via a neighbour are legal derivations
            }
            assert_eq!(
                reference.get(&(s.clone(), d.clone())),
                Some(cost),
                "minCost({s},{d}) disagrees with the reference"
            );
        }
        // Completeness: every reachable pair has a minCost entry.
        for ((s, d), cost) in &reference {
            if s == d || *cost >= 255 {
                continue;
            }
            assert!(
                computed.contains_key(&(s.clone(), d.clone())),
                "missing minCost({s},{d})"
            );
        }
    }
}

#[test]
fn provenance_graph_is_acyclic_and_rooted_in_links() {
    let nt = run_mincost(Topology::ladder(3));
    let graph = nt.provenance_graph();
    assert!(graph.is_acyclic());
    assert!(graph.tuple_vertex_count() > 0);
    assert!(graph.rule_exec_count() > 0);
    // Every base vertex is a link tuple.
    for id in graph.base_vertices() {
        if let Some(provenance::ProvVertex::Tuple { tuple: Some(t), .. }) = graph.vertices.get(&id)
        {
            assert_eq!(t.relation, "link", "base vertices are links, got {t}");
        }
    }
}

#[test]
fn every_min_cost_tuple_has_provenance_and_link_ancestry() {
    let nt = run_mincost(Topology::ring(5));
    let mut qe = QueryEngine::new();
    for (node, tuple) in nt.relation("minCost") {
        let (result, _) = qe.query(
            nt.provenance(),
            &node,
            &tuple,
            QueryKind::BaseTuples,
            &QueryOptions::default(),
        );
        let QueryResult::BaseTuples(bases) = result else {
            panic!()
        };
        assert!(!bases.is_empty(), "{tuple} has no contributing base tuples");
        for (_, base) in bases {
            let base = base.expect("base tuple content is known");
            assert_eq!(base.relation, "link");
        }
    }
}

#[test]
fn disabling_provenance_does_not_change_protocol_results() {
    let topo = Topology::random(7, 0.3, 3, 11);
    let with = run_mincost(topo.clone());
    let mut without = NetTrails::new(
        protocols::mincost::PROGRAM,
        topo,
        NetTrailsConfig::without_provenance(),
    )
    .unwrap();
    without.seed_links_from_topology();
    without.run_to_fixpoint();
    assert_eq!(min_costs(&with), min_costs(&without));
    assert_eq!(without.stats().provenance.prov_entries, 0);
    assert!(with.stats().provenance.prov_entries > 0);
}
