//! Full-vs-incremental snapshot equivalence, across every log backend.
//!
//! For random topologies, programs and link-churn schedules, a platform is
//! captured after the initial fixpoint and after every churn event. Two
//! chains are built from the same captures: a *full* chain (every capture a
//! checkpoint, in-memory backend — the pre-incremental behavior) and an
//! *incremental* chain (periodic checkpoints + deltas via
//! `SnapshotCapturer`) through each of the three backends. The materialized
//! snapshot at every capture index and at every probed `at(time)` must be
//! bit-identical between the chains — the same discipline the worker and
//! storage-backing refactors of earlier PRs used.

use logstore::{
    KvBackend, LogStore, MemBackend, SegmentFileBackend, SnapshotCapturer, SystemSnapshot,
};
use nettrails::{NetTrails, NetTrailsConfig};
use nt_runtime::Interner;
use proptest::prelude::*;
use simnet::{SimTime, Topology, TopologyEvent};
use std::sync::atomic::{AtomicUsize, Ordering};

fn topology_for(kind: usize, size: usize) -> Topology {
    match kind % 3 {
        0 => Topology::line(2 + size % 3),
        1 => Topology::ring(3 + size % 3),
        _ => Topology::ladder(2 + size % 2),
    }
}

/// Run a churned platform, capturing a canonical snapshot (plus the interner
/// watermark at capture time) after the fixpoint and after every event.
fn captured_run(
    program: &str,
    topology: &Topology,
    events: &[TopologyEvent],
) -> Vec<(SystemSnapshot, usize)> {
    let mut nt = NetTrails::new(program, topology.clone(), NetTrailsConfig::default())
        .expect("program compiles");
    nt.seed_links_from_topology();
    nt.run_to_fixpoint();
    let mut captures = vec![(nt.capture_snapshot(), Interner::watermark())];
    for event in events {
        nt.apply_topology_event(event);
        captures.push((nt.capture_snapshot(), Interner::watermark()));
    }
    captures
}

static CASE: AtomicUsize = AtomicUsize::new(0);

fn segment_dir(case: usize) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("ntl-proptest-seg-{}-{case}", std::process::id()))
}

fn backends(case: usize) -> Vec<(&'static str, Box<dyn logstore::LogBackend>)> {
    let dir = segment_dir(case);
    let _ = std::fs::remove_dir_all(&dir);
    vec![
        (
            "mem",
            Box::new(MemBackend::new()) as Box<dyn logstore::LogBackend>,
        ),
        (
            "segment_file",
            Box::new(SegmentFileBackend::open(&dir).expect("segment dir opens")),
        ),
        ("kv", Box::new(KvBackend::new())),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn incremental_chains_materialize_identically_on_every_backend(
        kind in 0usize..3,
        size in 0usize..6,
        program_idx in 0usize..2,
        checkpoint_every in 1usize..5,
        churn in proptest::collection::vec((0usize..8, 0usize..8), 1..5),
    ) {
        let topology = topology_for(kind, size);
        let nodes: Vec<String> = topology.nodes().map(str::to_string).collect();
        let events: Vec<TopologyEvent> = churn
            .into_iter()
            .map(|(a, b)| TopologyEvent::LinkDown {
                a: nodes[a % nodes.len()].clone(),
                b: nodes[b % nodes.len()].clone(),
            })
            .collect();
        let program = if program_idx == 0 {
            protocols::mincost::PROGRAM
        } else {
            protocols::pathvector::PROGRAM
        };

        let captures = captured_run(program, &topology, &events);

        // The reference: every capture uploaded in full (pre-refactor path).
        let mut full = LogStore::new();
        for (snap, _) in &captures {
            full.add(snap.clone());
        }

        let case = CASE.fetch_add(1, Ordering::Relaxed);
        for (name, backend) in backends(case) {
            let mut store = LogStore::with_backend(backend);
            let mut capturer = SnapshotCapturer::new(checkpoint_every);
            for (snap, watermark) in &captures {
                store.append_record(capturer.capture_with_watermark(snap.clone(), *watermark));
            }
            prop_assert_eq!(store.len(), captures.len());

            // Bit-identical materialization at every capture index...
            for (i, (snap, _)) in captures.iter().enumerate() {
                prop_assert_eq!(
                    store.get(i).as_ref(), Some(snap),
                    "backend {} diverged at index {}", name, i
                );
            }
            // ...at probed times between captures...
            let last_us = captures.last().unwrap().0.time.as_micros();
            for probe_us in (0..=last_us + 1_000_000).step_by(700_000) {
                let t = SimTime::from_micros(probe_us);
                prop_assert_eq!(
                    store.at(t), full.at(t),
                    "backend {} diverged at time {}us", name, probe_us
                );
            }
            // ...and still after compaction.
            let stats = store.compact();
            prop_assert!(stats.bytes_after <= stats.bytes_before);
            for (i, (snap, _)) in captures.iter().enumerate() {
                prop_assert_eq!(
                    store.get(i).as_ref(), Some(snap),
                    "backend {} diverged at index {} after compaction", name, i
                );
            }
        }
        let _ = std::fs::remove_dir_all(segment_dir(case));
    }
}
