//! Integration tests for the path-vector protocol: best-path costs agree with
//! MINCOST/reference, and every stored path is a real path in the topology.

use nettrails::{NetTrails, NetTrailsConfig};
use nt_runtime::NodeId;
use simnet::Topology;

fn run(topology: Topology) -> NetTrails {
    let mut nt = NetTrails::new(
        protocols::pathvector::PROGRAM,
        topology,
        NetTrailsConfig::default(),
    )
    .unwrap();
    nt.seed_links_from_topology();
    let report = nt.run_to_fixpoint();
    assert!(!report.truncated);
    nt
}

#[test]
fn every_path_tuple_is_a_loop_free_walk_of_the_topology() {
    let nt = run(Topology::random(7, 0.25, 3, 5));
    let topo = nt.network().topology().clone();
    let paths = nt.relation("path");
    assert!(!paths.is_empty());
    for (_, tuple) in paths {
        let hops = tuple.values[2].as_list().expect("path is a list");
        // Loop free.
        let mut seen = std::collections::BTreeSet::new();
        for h in hops {
            assert!(seen.insert(h.to_string()), "loop in {tuple}");
        }
        // Each consecutive pair is a real link, and the cost adds up.
        let mut cost = 0;
        for pair in hops.windows(2) {
            let from = pair[0].as_addr().unwrap();
            let to = pair[1].as_addr().unwrap();
            let link = topo
                .link(from, to)
                .unwrap_or_else(|| panic!("{tuple} uses non-existent link {from}->{to}"));
            cost += link.cost;
        }
        assert_eq!(
            cost,
            tuple.values[3].as_int().unwrap(),
            "cost mismatch in {tuple}"
        );
        // Path endpoints match the tuple's source and destination.
        assert_eq!(hops.first().unwrap().as_addr(), tuple.values[0].as_addr());
        assert_eq!(hops.last().unwrap().as_addr(), tuple.values[1].as_addr());
    }
}

#[test]
fn best_path_costs_agree_with_mincost() {
    let topo = Topology::ladder(3);
    let pv = run(topo.clone());
    let mut mc = NetTrails::new(
        protocols::mincost::PROGRAM,
        topo,
        NetTrailsConfig::without_provenance(),
    )
    .unwrap();
    mc.seed_links_from_topology();
    mc.run_to_fixpoint();

    for (_, best) in pv.relation("bestPathCost") {
        let s = best.values[0].as_addr().unwrap();
        let d = best.values[1].as_addr().unwrap();
        if s == d {
            continue;
        }
        let min_cost = mc
            .find_tuple("minCost", |t| {
                t.values[0].as_addr() == Some(s) && t.values[1].as_addr() == Some(d)
            })
            .map(|(_, t)| t.values[2].as_int().unwrap());
        assert_eq!(min_cost, best.values[2].as_int(), "({s},{d})");
    }
}

#[test]
fn best_path_provenance_spans_the_nodes_on_the_path() {
    use provenance::{QueryKind, QueryResult};
    let mut nt = run(Topology::line(4));
    let (_, target) = nt
        .find_tuple("bestPathCost", |t| {
            t.values[0].as_addr() == Some("n1") && t.values[1].as_addr() == Some("n4")
        })
        .expect("bestPathCost(n1,n4)");
    let (result, _) = nt
        .query(&target)
        .from_node("n1")
        .kind(QueryKind::ParticipatingNodes)
        .run();
    let QueryResult::ParticipatingNodes(nodes) = result else {
        panic!()
    };
    // Every node that *stores* contributing state participates. The
    // destination n4 does not: link tuples live at their source, so the route
    // to n4 is derived entirely from state held at n1..n3.
    for n in ["n1", "n2", "n3"] {
        assert!(
            nodes.contains(&NodeId::new(n)),
            "{n} missing from {nodes:?}"
        );
    }
}
