//! Batching-equivalence: a platform shipping per-(round, dest) delta batches
//! must be observationally identical to one shipping one message per tuple.
//!
//! For random topologies and random link-churn sequences, pathvector and
//! mincost runs under batched shipping reach the same fixpoint tables and an
//! isomorphic provenance graph as per-tuple shipping (the `graph_shape`
//! isomorphism helper mirrors `proptest_prov_equivalence.rs` in the
//! `provenance` crate). Only the wire packaging may differ: batched runs use
//! fewer, larger messages for the same payload bytes.

use nettrails::{NetTrails, NetTrailsConfig};
use proptest::prelude::*;
use provenance::{ProvGraph, ProvVertex};
use simnet::{Topology, TopologyEvent};

/// The structure of a provenance graph up to isomorphism on the display
/// cache: vertex ids with home/base (and rule/node for executions) plus the
/// sorted edge list. Vertex ids are content-addressed digests of resolved
/// strings, so they are stable across platform instances.
fn graph_shape(g: &ProvGraph) -> Vec<String> {
    let mut shape: Vec<String> = g
        .vertices
        .iter()
        .map(|(id, v)| match v {
            ProvVertex::Tuple { home, is_base, .. } => {
                format!("{id:?}@{home} base={is_base}")
            }
            ProvVertex::RuleExec { rule, node, .. } => {
                format!("{id:?}@{node} rule={rule}")
            }
        })
        .collect();
    shape.extend(g.edges.iter().map(|e| format!("{:?}->{:?}", e.from, e.to)));
    shape.sort();
    shape
}

/// Every visible (non-outbox) tuple across all nodes, sorted.
fn table_dump(nt: &NetTrails) -> Vec<String> {
    let mut rows = Vec::new();
    for node in nt.nodes() {
        let engine = nt.engine(&node).expect("engine exists");
        for table in engine.database().tables() {
            if table.schema.name.starts_with("__out::") {
                continue;
            }
            for tuple in table.tuples() {
                rows.push(format!("{node}: {tuple}"));
            }
        }
    }
    rows.sort();
    rows
}

fn churned_run(
    program: &str,
    topology: &Topology,
    events: &[TopologyEvent],
    config: NetTrailsConfig,
) -> (Vec<String>, Vec<String>, u64, u64) {
    let mut nt = NetTrails::new(program, topology.clone(), config).expect("program compiles");
    nt.seed_links_from_topology();
    nt.run_to_fixpoint();
    for event in events {
        nt.apply_topology_event(event);
    }
    let stats = nt.stats();
    (
        table_dump(&nt),
        graph_shape(&nt.provenance_graph()),
        stats.network.messages,
        stats.network.records,
    )
}

fn topology_for(kind: usize, size: usize) -> Topology {
    match kind % 3 {
        0 => Topology::line(2 + size % 3),
        1 => Topology::ring(3 + size % 3),
        _ => Topology::ladder(2 + size % 2),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn batched_shipping_is_equivalent_to_per_tuple_shipping(
        kind in 0usize..3,
        size in 0usize..6,
        program_idx in 0usize..2,
        churn in proptest::collection::vec((0usize..8, 0usize..8), 0..4),
    ) {
        let topology = topology_for(kind, size);
        let nodes: Vec<String> = topology.nodes().map(str::to_string).collect();
        // Random link failures between existing nodes (no-ops when the pair
        // has no link are fine — the platform treats them as empty events).
        let events: Vec<TopologyEvent> = churn
            .into_iter()
            .map(|(a, b)| TopologyEvent::LinkDown {
                a: nodes[a % nodes.len()].clone(),
                b: nodes[b % nodes.len()].clone(),
            })
            .collect();
        let program = if program_idx == 0 {
            protocols::mincost::PROGRAM
        } else {
            protocols::pathvector::PROGRAM
        };

        let (batched_tables, batched_graph, batched_msgs, batched_records) =
            churned_run(program, &topology, &events, NetTrailsConfig::default());
        let (pt_tables, pt_graph, pt_msgs, pt_records) =
            churned_run(program, &topology, &events, NetTrailsConfig::without_batching());

        prop_assert_eq!(batched_tables, pt_tables);
        prop_assert_eq!(batched_graph, pt_graph);
        // Same records shipped; batching may only reduce the message count.
        prop_assert_eq!(batched_records, pt_records);
        prop_assert!(batched_msgs <= pt_msgs);
    }
}
