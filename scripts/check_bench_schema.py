#!/usr/bin/env python3
"""Assert that a freshly generated BENCH_results.json has the same schema as
the committed one, and gate the sharded-provenance sweep against regressions.

Usage: check_bench_schema.py <committed.json> <fresh.json>

Values (timings, byte counts) are expected to differ between machines; the
*shape* — the format marker, the set of keys at every level, and the element
shape of each array — must not drift silently. CI regenerates the report and
fails when the schema of the regenerated file differs from the committed one.

On top of the schema check, the `sharded_provenance` section carries hard
regression gates:

* every fresh row must be deterministic (`matches_single_shard` true);
* cross-shard batch/record counts must equal the committed baseline exactly
  (routing is a stable name hash — any drift is a behavior change);
* the fresh shard-4 wall-clock must stay within 1.5x of the committed
  baseline, compared as the *sharding overhead ratio* (S=4 wall / S=1 wall
  of the same run) so the gate is independent of how fast the measuring
  machine is and of its core count — raw microseconds are not comparable
  between a laptop baseline and a CI runner. A small absolute slack keeps
  scheduler noise on trivial workloads from tripping the gate.

Wall-clock gates on parallel sweeps are only meaningful where parallelism is
physically possible: when the fresh run reports `host_parallelism == 1`, the
sharded wall gate is demoted to a warning (the row still must be
deterministic and its exchange counts exact).

The `parallel_fixpoint` section (format v6) gates the morsel-driven parallel
fixpoint of the node engine:

* the sweep must cover W in {1, 2, 4} and every row's measured generation
  must carry at least 10^5 firings (otherwise it measures dispatch, not
  evaluation);
* every row must be bit-identical to the W=1 run (`matches_w1` true) — the
  determinism contract is absolute, on any host;
* on hosts with >= 4 cores, the W=4 run must reach a 1.2x speedup over W=1;
  single-core hosts skip that gate with a notice.

The `vectorized_joins` section (format v7) gates the columnar table storage
against the row-major reference layout:

* every row — join kernel and platform convergence alike — must be
  bit-identical across backings (`matches_row` true): same step outputs,
  same final tables and derivations, same engine counters (`join_probes`
  included), same provenance digest. The determinism contract is absolute,
  on any host;
* the gated rows (`gate_speedup` true: the W=1 join-kernel measurement)
  must show the columnar kernel at least 1.3x faster than the row store on
  hosts with >= 4 cores; smaller hosts skip that gate with a notice
  (determinism still checked on every row);
* the columnar layout must never be larger than the row layout
  (`columnar_bytes <= row_bytes`) — dictionary-encoded columns and 4-byte
  posting entries are the point of the exercise.

The `query_fanout` section carries its own gates. Its latencies are
*simulated-clock* measurements of message-driven query sessions, so they are
deterministic and machine-independent:

* breadth-first fan-out must measure no slower than depth-first on every
  row, and strictly faster whenever the proof is multi-hop (depth > 2) —
  this is the executor genuinely overlapping hops, not a latency formula;
* records must match between the traversals (the fan-out changes the
  schedule, never the work), and breadth-first must not ship more frames.

The `snapshot_replay` section (format v8) gates the incremental
checkpoint + delta snapshot chains against the full-upload baseline, across
every pluggable log backend:

* every row must be bit-identical to the full chain (`matches_full` true) —
  materializing any capture through its delta chain reproduces exactly the
  snapshot a full upload would have stored, on every backend;
* every scenario must cover all three backends (mem, segment_file, kv) —
  the comparison is only meaningful when the same records flow through each;
* `incremental_bytes <= full_bytes` on every row, and strictly below on the
  pathvector ladder rows (the headline scenario — equality there means the
  deltas saved nothing);
* compaction must never grow the footprint
  (`compacted_bytes <= storage_bytes`);
* `tail_dict_bytes` must be 0 — after warmup the run mints no new names, so
  the last delta's dictionary diff must be empty (the sublinear-dictionary
  property).

The `scenario_suite` section (format v9) gates the internet-scale scenario
suite — seeded topology generators replayed under trace-driven workloads:

* every required topology family (fat_tree, internet_as, small_world, mesh)
  and every workload kind (churn, storm, mixed) must appear among the
  slice rows — a missing scenario kind fails the check outright;
* the static slice families (fat_tree, internet_as, small_world) must each
  carry at least one >= 10^3-node row, the ISSUE's scale floor for the
  per-PR gate;
* every row must be seed-deterministic (`matches_seed` true): topology and
  trace digests re-derive from the seed, and slice rows additionally re-ran
  the whole replay and reproduced the digest bit-for-bit;
* every row must have measured latency (`queries >= 1`) with
  `p99_latency_ms >= p50_latency_ms` — the latencies are simulated-clock
  measurements of real query sessions, so a p99 below p50 means the
  percentile bookkeeping broke;
* throughput must be positive (`events_per_sec > 0`);
* the replay digest of every slice row present in both files must match the
  committed baseline exactly — the digests are machine-independent, so any
  drift is a behavior change that must ship with a regenerated
  BENCH_results.json.

The `query_service` section (format v10) gates the multi-tenant provenance
query service — admission control, deficit-round-robin fairness and
cross-session frame flushing:

* the slice must carry a >= 10^3-session row from >= 8 tenants — the scale
  at which merged sealing's sublinear frame growth is observable;
* merged sealing must be observationally invisible on every row:
  `merged_matches_split` (per-session results, visits, cache hits, records,
  frames and measured latency identical to per-session sealing),
  `matches_rerun` (an independent re-run reproduces the digest) and
  `matches_workers` (worker count does not change the digest);
* merged frames-per-destination must beat per-session sealing on every
  >= 10^3-session row, and across the slice's session scales both
  frames/destination and first-use dictionary bytes must grow *sublinearly*
  in offered sessions (the ratio of the big row to the small row stays
  under the session-count ratio);
* the per-destination dictionary is shared across sessions under both
  sealing modes, so `dict_bytes_merged == dict_bytes_split` exactly;
* `p99_latency_ms >= p50_latency_ms` (simulated-clock session latencies);
* under equal offered load the per-tenant fairness ratio (max/min completed
  sessions) must stay <= 1.5 — the deficit-round-robin scheduler's bound;
* the service digest of every slice row present in both files must match
  the committed baseline exactly, same rule as the scenario suite.
"""

import json
import sys


def shape(value, depth=0):
    """A structural fingerprint: dict key-sets, array element shapes, scalar
    type names. Arrays are summarized by the union of their element shapes so
    row counts don't matter."""
    if isinstance(value, dict):
        return {k: shape(v, depth + 1) for k, v in sorted(value.items())}
    if isinstance(value, list):
        shapes = []
        for v in value:
            s = shape(v, depth + 1)
            if s not in shapes:
                shapes.append(s)
        return ["array", shapes]
    if isinstance(value, bool):
        return "bool"
    if isinstance(value, (int, float)):
        return "number"
    if value is None:
        return "null"
    return "string"


# Sections every BENCH_results.json must carry, with the keys each of their
# rows must have. A report missing one of these (or a row missing a key)
# fails even when committed and fresh agree — the schema requirement is
# absolute, not merely drift-free.
REQUIRED_SECTIONS = {
    "delta_shipping": {
        "scenario",
        "messages_sent",
        "tuples_shipped",
        "dict_header_bytes",
        "body_bytes",
        "batched_total_bytes",
        "per_tuple_total_bytes",
        "reduction_factor",
    },
    "sharded_provenance": {
        "scenario",
        "shards",
        "rounds",
        "firings",
        "wall_us",
        "host_parallelism",
        "workers_used",
        "firings_per_round",
        "cross_shard_batches",
        "cross_shard_records",
        "cross_shard_dict_bytes",
        "speedup_vs_single",
        "matches_single_shard",
    },
    "parallel_fixpoint": {
        "scenario",
        "workers",
        "tasks",
        "firings",
        "wall_us",
        "host_parallelism",
        "pool_workers",
        "speedup_vs_w1",
        "matches_w1",
    },
    "vectorized_joins": {
        "scenario",
        "workers",
        "row_wall_us",
        "columnar_wall_us",
        "speedup_columnar",
        "row_bytes",
        "columnar_bytes",
        "host_parallelism",
        "matches_row",
        "gate_speedup",
    },
    "query_fanout": {
        "scenario",
        "proof_depth",
        "query_records",
        "dfs_messages",
        "bfs_messages",
        "dfs_bytes",
        "bfs_bytes",
        "bfs_dict_bytes",
        "dfs_latency_ms",
        "bfs_latency_ms",
        "fanout_speedup",
        "bfs_beats_dfs",
    },
    "snapshot_replay": {
        "scenario",
        "backend",
        "captures",
        "checkpoint_every",
        "checkpoints",
        "deltas",
        "full_bytes",
        "incremental_bytes",
        "delta_dict_bytes",
        "tail_dict_bytes",
        "storage_bytes",
        "compacted_bytes",
        "replay_wall_us",
        "matches_full",
    },
    "scenario_suite": {
        "scenario",
        "family",
        "workload",
        "seed",
        "slice",
        "nodes",
        "links",
        "anchors",
        "converge_rounds",
        "converged_tuples",
        "converge_wall_ms",
        "replay_wall_ms",
        "sim_ms",
        "churn_events",
        "queries",
        "tuples_touched",
        "deliveries",
        "events_per_sec",
        "tuples_per_sec",
        "p50_latency_ms",
        "p99_latency_ms",
        "matches_seed",
        "replay_digest",
    },
    "query_service": {
        "scenario",
        "seed",
        "slice",
        "nodes",
        "links",
        "tenants",
        "offered",
        "rejected",
        "completed",
        "expired",
        "churn_events",
        "frames_merged",
        "frames_split",
        "dests",
        "frames_per_dest_merged",
        "frames_per_dest_split",
        "dict_bytes_merged",
        "dict_bytes_split",
        "p50_latency_ms",
        "p99_latency_ms",
        "sessions_per_sec",
        "per_tenant_completed",
        "fairness_ratio",
        "merged_matches_split",
        "matches_rerun",
        "matches_workers",
        "sim_ms",
        "converge_wall_ms",
        "run_wall_ms",
        "service_digest",
    },
}

# The format marker every report must carry (bumped with the schema).
REQUIRED_FORMAT = "nettrails-bench-results/v10"

# The log backends every snapshot_replay scenario must cover.
REQUIRED_LOG_BACKENDS = {"mem", "segment_file", "kv"}

# The shard-count sweep every report must cover.
REQUIRED_SHARD_SWEEP = [1, 2, 4, 8]

# The fixpoint worker sweep every report must cover, the firing floor that
# makes its wall-clocks meaningful, and the W=4 speedup gate (enforced only
# on hosts that can physically run 4 workers).
REQUIRED_WORKER_SWEEP = [1, 2, 4]
MIN_FIXPOINT_FIRINGS = 100_000
FIXPOINT_SPEEDUP_WORKERS = 4
FIXPOINT_MIN_SPEEDUP = 1.2

# Speedup gate on the columnar join kernel: the gated rows must reach this
# factor over the row store on hosts with at least this many cores.
VECTORIZED_MIN_SPEEDUP = 1.3
VECTORIZED_GATE_MIN_CORES = 4

# Regression tolerance for the shard-4 wall-clock: fail when the fresh run's
# sharding overhead ratio (S=4 wall / S=1 wall, same run and machine) is more
# than WALL_TOLERANCE times the committed baseline's ratio AND the fresh S=4
# wall is more than WALL_SLACK_US above its own S=1 wall (the slack keeps
# scheduler noise on fast runs from tripping the gate).
WALL_TOLERANCE = 1.5
WALL_SLACK_US = 5000
GATED_SHARDS = 4
BASELINE_SHARDS = 1

# The query-service slice must drive at least this many concurrent sessions
# from at least this many tenants, and the deficit-round-robin scheduler must
# keep the max/min completed-sessions ratio under this bound.
QUERY_SERVICE_SESSION_FLOOR = 1000
QUERY_SERVICE_TENANT_FLOOR = 8
QUERY_SERVICE_MAX_FAIRNESS = 1.5

# The topology families and workload kinds the scenario-suite slice must
# cover, and the node floor for the static (non-mesh) families.
REQUIRED_SCENARIO_FAMILIES = {"fat_tree", "internet_as", "small_world", "mesh"}
REQUIRED_SCENARIO_WORKLOADS = {"churn", "storm", "mixed"}
SCENARIO_STATIC_NODE_FLOOR = 1000
SCENARIO_FLOOR_FAMILIES = {"fat_tree", "internet_as", "small_world"}


def check_required_sections(name, doc):
    for section, required_keys in REQUIRED_SECTIONS.items():
        rows = doc.get(section)
        if not isinstance(rows, list) or not rows:
            sys.exit(
                f"{name}: required section {section!r} is missing or empty. "
                "Regenerate BENCH_results.json "
                "(cargo run --release -p nettrails-bench --bin report)."
            )
        for i, row in enumerate(rows):
            missing = required_keys - set(row)
            if missing:
                sys.exit(
                    f"{name}: {section}[{i}] is missing keys {sorted(missing)}."
                )


def check_sharded_provenance(committed, fresh):
    """Regression gates on the sharded-maintenance sweep (see module doc)."""

    def rows_by_key(doc):
        return {
            (row["scenario"], row["shards"]): row
            for row in doc.get("sharded_provenance", [])
        }

    committed_rows = rows_by_key(committed)
    fresh_rows = rows_by_key(fresh)

    for scenario in {k[0] for k in committed_rows}:
        shards = sorted(s for (sc, s) in committed_rows if sc == scenario)
        if shards != REQUIRED_SHARD_SWEEP:
            sys.exit(
                f"sharded_provenance[{scenario!r}] must sweep shards "
                f"{REQUIRED_SHARD_SWEEP}, found {shards}."
            )

    for key, committed_row in sorted(committed_rows.items()):
        scenario, shards = key
        fresh_row = fresh_rows.get(key)
        if fresh_row is None:
            sys.exit(
                f"sharded_provenance row {scenario!r} S={shards} missing from "
                "the regenerated report."
            )
        if not fresh_row["matches_single_shard"]:
            sys.exit(
                f"sharded_provenance {scenario!r} S={shards}: regenerated run "
                "is NOT bit-identical to the single-shard path "
                "(matches_single_shard=false). Sharding broke determinism."
            )
        for counter in ("cross_shard_batches", "cross_shard_records"):
            if fresh_row[counter] != committed_row[counter]:
                sys.exit(
                    f"sharded_provenance {scenario!r} S={shards}: {counter} "
                    f"drifted ({committed_row[counter]} -> "
                    f"{fresh_row[counter]}). Routing and batching are "
                    "deterministic; update the committed BENCH_results.json "
                    "in the same change that altered them."
                )
        if shards == GATED_SHARDS:
            committed_single = committed_rows[(scenario, BASELINE_SHARDS)]
            fresh_single = fresh_rows.get((scenario, BASELINE_SHARDS))
            if fresh_single is None:
                sys.exit(
                    f"sharded_provenance row {scenario!r} "
                    f"S={BASELINE_SHARDS} missing from the regenerated "
                    "report."
                )
            committed_ratio = committed_row["wall_us"] / max(
                committed_single["wall_us"], 1
            )
            fresh_ratio = fresh_row["wall_us"] / max(fresh_single["wall_us"], 1)
            if (
                fresh_ratio > committed_ratio * WALL_TOLERANCE
                and fresh_row["wall_us"]
                > fresh_single["wall_us"] + WALL_SLACK_US
            ):
                message = (
                    f"sharded_provenance {scenario!r} S={shards}: sharding "
                    f"overhead regressed — wall-clock is {fresh_ratio:.2f}x "
                    f"the same run's S={BASELINE_SHARDS} path, more than "
                    f"{WALL_TOLERANCE}x the committed baseline ratio of "
                    f"{committed_ratio:.2f}x."
                )
                if fresh_row.get("host_parallelism", 1) == 1:
                    # Single-core host: shard workers never engaged
                    # (workers_used == 1), so the wall-clock is pure
                    # scheduler noise — advisory only.
                    print(
                        "WARNING (advisory on single-core host): " + message,
                        file=sys.stderr,
                    )
                else:
                    sys.exit(message)
    print(
        "sharded_provenance gate OK "
        f"({len(committed_rows)} rows, shard-{GATED_SHARDS} overhead ratio "
        f"within {WALL_TOLERANCE}x of baseline, exchange counts exact)"
    )


def check_parallel_fixpoint(fresh):
    """Regression gates on the morsel-driven parallel fixpoint sweep (see
    module doc)."""
    rows = fresh.get("parallel_fixpoint", [])
    by_scenario = {}
    for row in rows:
        by_scenario.setdefault(row["scenario"], {})[row["workers"]] = row

    for scenario, sweep in sorted(by_scenario.items()):
        workers = sorted(sweep)
        if workers != REQUIRED_WORKER_SWEEP:
            sys.exit(
                f"parallel_fixpoint[{scenario!r}] must sweep workers "
                f"{REQUIRED_WORKER_SWEEP}, found {workers}."
            )
        for w, row in sorted(sweep.items()):
            if row["firings"] < MIN_FIXPOINT_FIRINGS:
                sys.exit(
                    f"parallel_fixpoint[{scenario!r}] W={w}: the measured "
                    f"generation carried only {row['firings']} firings "
                    f"(floor {MIN_FIXPOINT_FIRINGS}); the sweep no longer "
                    "measures parallel evaluation."
                )
            if not row["matches_w1"]:
                sys.exit(
                    f"parallel_fixpoint[{scenario!r}] W={w}: run is NOT "
                    "bit-identical to the W=1 engine (matches_w1=false). "
                    "Parallel evaluation broke determinism."
                )
        gated = sweep[FIXPOINT_SPEEDUP_WORKERS]
        if gated["host_parallelism"] >= FIXPOINT_SPEEDUP_WORKERS:
            if gated["speedup_vs_w1"] < FIXPOINT_MIN_SPEEDUP:
                sys.exit(
                    f"parallel_fixpoint[{scenario!r}] "
                    f"W={FIXPOINT_SPEEDUP_WORKERS}: speedup over W=1 is "
                    f"{gated['speedup_vs_w1']:.2f}x on a "
                    f"{gated['host_parallelism']}-core host (gate "
                    f"{FIXPOINT_MIN_SPEEDUP}x)."
                )
        else:
            print(
                f"parallel_fixpoint[{scenario!r}]: speedup gate skipped — "
                f"host has {gated['host_parallelism']} core(s), fewer than "
                f"the {FIXPOINT_SPEEDUP_WORKERS} the gate needs "
                "(determinism still checked on every row)."
            )
    print(
        f"parallel_fixpoint gate OK ({len(rows)} rows, every worker count "
        "bit-identical to W=1)"
    )


def check_vectorized_joins(fresh):
    """Regression gates on the columnar-vs-row storage comparison (see
    module doc)."""
    rows = fresh.get("vectorized_joins", [])
    gated_rows = 0
    for row in rows:
        scenario = f"{row['scenario']} W={row['workers']}"
        if not row["matches_row"]:
            sys.exit(
                f"vectorized_joins[{scenario}]: the columnar run is NOT "
                "bit-identical to the row store (matches_row=false). The "
                "vectorized probe kernel broke determinism."
            )
        if row["columnar_bytes"] > row["row_bytes"]:
            sys.exit(
                f"vectorized_joins[{scenario}]: columnar tables are larger "
                f"than the row layout ({row['columnar_bytes']} > "
                f"{row['row_bytes']} bytes). Dictionary encoding stopped "
                "paying for itself."
            )
        if not row["gate_speedup"]:
            continue
        gated_rows += 1
        if row["host_parallelism"] >= VECTORIZED_GATE_MIN_CORES:
            if row["speedup_columnar"] < VECTORIZED_MIN_SPEEDUP:
                sys.exit(
                    f"vectorized_joins[{scenario}]: columnar speedup over "
                    f"the row store is {row['speedup_columnar']:.2f}x on a "
                    f"{row['host_parallelism']}-core host (gate "
                    f"{VECTORIZED_MIN_SPEEDUP}x)."
                )
        else:
            print(
                f"vectorized_joins[{scenario}]: speedup gate skipped — host "
                f"has {row['host_parallelism']} core(s), fewer than the "
                f"{VECTORIZED_GATE_MIN_CORES} the gate needs (determinism "
                "and footprint still checked on every row)."
            )
    if gated_rows == 0:
        sys.exit(
            "vectorized_joins: no gated rows (gate_speedup=true) — the join "
            "kernel measurement is missing from the report."
        )
    print(
        f"vectorized_joins gate OK ({len(rows)} rows, every backing pair "
        "bit-identical, columnar never larger)"
    )


def check_query_fanout(fresh):
    """Regression gates on the distributed query fan-out (see module doc)."""
    rows = fresh.get("query_fanout", [])
    for row in rows:
        scenario = row["scenario"]
        if row["query_records"] <= 0:
            sys.exit(
                f"query_fanout[{scenario!r}]: the session exchanged no "
                "records — the distributed traversal never touched the wire."
            )
        if not row["bfs_beats_dfs"] or row["bfs_latency_ms"] > row["dfs_latency_ms"]:
            sys.exit(
                f"query_fanout[{scenario!r}]: breadth-first fan-out measured "
                f"{row['bfs_latency_ms']:.1f}ms, slower than depth-first's "
                f"{row['dfs_latency_ms']:.1f}ms. The executor stopped "
                "overlapping hops."
            )
        if row["proof_depth"] > 2 and row["bfs_latency_ms"] >= row["dfs_latency_ms"]:
            sys.exit(
                f"query_fanout[{scenario!r}]: a depth-{row['proof_depth']} "
                "proof must fan out strictly faster than the sequential "
                f"traversal ({row['bfs_latency_ms']:.1f}ms vs "
                f"{row['dfs_latency_ms']:.1f}ms)."
            )
        if row["bfs_messages"] > row["dfs_messages"]:
            sys.exit(
                f"query_fanout[{scenario!r}]: fan-out shipped more frames "
                f"({row['bfs_messages']}) than the sequential traversal "
                f"({row['dfs_messages']}); per-destination coalescing broke."
            )
    print(
        f"query_fanout gate OK ({len(rows)} rows, measured BFS latency beats "
        "DFS on every multi-hop proof)"
    )


def check_snapshot_replay(fresh):
    """Regression gates on the incremental-snapshot comparison (see module
    doc)."""
    rows = fresh.get("snapshot_replay", [])
    by_scenario = {}
    for row in rows:
        by_scenario.setdefault(row["scenario"], set()).add(row["backend"])
    for scenario, backends in sorted(by_scenario.items()):
        if backends != REQUIRED_LOG_BACKENDS:
            sys.exit(
                f"snapshot_replay[{scenario!r}] must cover backends "
                f"{sorted(REQUIRED_LOG_BACKENDS)}, found {sorted(backends)}."
            )
    for row in rows:
        scenario = f"{row['scenario']} [{row['backend']}]"
        if not row["matches_full"]:
            sys.exit(
                f"snapshot_replay[{scenario}]: materializing through the "
                "delta chain is NOT bit-identical to the full-upload chain "
                "(matches_full=false). Incremental snapshots broke replay."
            )
        if row["incremental_bytes"] > row["full_bytes"]:
            sys.exit(
                f"snapshot_replay[{scenario}]: the incremental chain "
                f"uploaded more than the full chain "
                f"({row['incremental_bytes']} > {row['full_bytes']} bytes). "
                "Deltas stopped paying for themselves."
            )
        if (
            "pathvector" in row["scenario"]
            and row["incremental_bytes"] >= row["full_bytes"]
        ):
            sys.exit(
                f"snapshot_replay[{scenario}]: the headline scenario must "
                "upload strictly less incrementally "
                f"({row['incremental_bytes']} vs {row['full_bytes']} bytes)."
            )
        if row["compacted_bytes"] > row["storage_bytes"]:
            sys.exit(
                f"snapshot_replay[{scenario}]: compaction grew the backend "
                f"footprint ({row['storage_bytes']} -> "
                f"{row['compacted_bytes']} bytes)."
            )
        if row["tail_dict_bytes"] != 0:
            sys.exit(
                f"snapshot_replay[{scenario}]: the last delta carried "
                f"{row['tail_dict_bytes']} dictionary bytes; after warmup "
                "the dictionary diff must be empty (the sublinear-dictionary "
                "property)."
            )
    print(
        f"snapshot_replay gate OK ({len(rows)} rows, every backend "
        "bit-identical to the full chain, incremental never larger)"
    )


def check_scenario_suite(committed, fresh):
    """Regression gates on the internet-scale scenario suite (see module
    doc)."""
    rows = fresh.get("scenario_suite", [])
    slice_rows = [r for r in rows if r["slice"]]

    families = {r["family"] for r in slice_rows}
    missing = REQUIRED_SCENARIO_FAMILIES - families
    if missing:
        sys.exit(
            f"scenario_suite: slice is missing topology families "
            f"{sorted(missing)} (found {sorted(families)}). Every generator "
            "family must be exercised per-PR."
        )
    workloads = {r["workload"] for r in slice_rows}
    missing = REQUIRED_SCENARIO_WORKLOADS - workloads
    if missing:
        sys.exit(
            f"scenario_suite: slice is missing workload kinds "
            f"{sorted(missing)} (found {sorted(workloads)}). Every workload "
            "must be exercised per-PR."
        )
    for family in sorted(SCENARIO_FLOOR_FAMILIES):
        biggest = max(
            (r["nodes"] for r in slice_rows if r["family"] == family),
            default=0,
        )
        if biggest < SCENARIO_STATIC_NODE_FLOOR:
            sys.exit(
                f"scenario_suite: family {family!r} peaks at {biggest} nodes "
                f"in the slice; the per-PR gate requires at least one "
                f">= {SCENARIO_STATIC_NODE_FLOOR}-node row per static family."
            )

    for row in rows:
        scenario = row["scenario"]
        if not row["matches_seed"]:
            sys.exit(
                f"scenario_suite[{scenario!r}]: NOT seed-deterministic "
                "(matches_seed=false). The topology, trace, or replay no "
                "longer reproduces from the seed."
            )
        if row["queries"] < 1:
            sys.exit(
                f"scenario_suite[{scenario!r}]: the replay ran no query "
                "sessions — the row carries no measured latency."
            )
        if row["p99_latency_ms"] < row["p50_latency_ms"]:
            sys.exit(
                f"scenario_suite[{scenario!r}]: p99 latency "
                f"({row['p99_latency_ms']:.1f}ms) is below p50 "
                f"({row['p50_latency_ms']:.1f}ms); percentile bookkeeping "
                "broke."
            )
        if row["events_per_sec"] <= 0:
            sys.exit(
                f"scenario_suite[{scenario!r}]: non-positive replay "
                "throughput (events_per_sec="
                f"{row['events_per_sec']}); the trace replayed nothing."
            )

    committed_digests = {
        r["scenario"]: r["replay_digest"]
        for r in committed.get("scenario_suite", [])
        if r["slice"]
    }
    compared = 0
    for row in slice_rows:
        baseline = committed_digests.get(row["scenario"])
        if baseline is None:
            continue
        compared += 1
        if row["replay_digest"] != baseline:
            sys.exit(
                f"scenario_suite[{row['scenario']!r}]: replay digest drifted "
                f"({baseline} -> {row['replay_digest']}). The digest is "
                "machine-independent, so this is a behavior change — commit "
                "the regenerated BENCH_results.json in the same change."
            )
    if compared == 0:
        sys.exit(
            "scenario_suite: no slice row of the regenerated report matches "
            "a committed scenario name — the committed baseline is stale."
        )
    print(
        f"scenario_suite gate OK ({len(rows)} rows, {len(slice_rows)} slice; "
        f"{compared} replay digests bit-identical to the committed baseline)"
    )


def check_query_service(committed, fresh):
    """Regression gates on the multi-tenant query service (see module doc)."""
    rows = fresh.get("query_service", [])
    slice_rows = [r for r in rows if r["slice"]]

    at_scale = [r for r in slice_rows if r["offered"] >= QUERY_SERVICE_SESSION_FLOOR]
    if not at_scale:
        biggest = max((r["offered"] for r in slice_rows), default=0)
        sys.exit(
            f"query_service: the slice peaks at {biggest} offered sessions; "
            f"the per-PR gate requires a >= {QUERY_SERVICE_SESSION_FLOOR}-"
            "session row (sublinear frame growth is only observable at "
            "scale)."
        )
    for row in rows:
        scenario = row["scenario"]
        if row["tenants"] < QUERY_SERVICE_TENANT_FLOOR:
            sys.exit(
                f"query_service[{scenario!r}]: only {row['tenants']} tenants; "
                f"the gate requires >= {QUERY_SERVICE_TENANT_FLOOR} so "
                "fairness is measured under real contention."
            )
        for flag in ("merged_matches_split", "matches_rerun", "matches_workers"):
            if not row[flag]:
                sys.exit(
                    f"query_service[{scenario!r}]: {flag}=false. Merged frame "
                    "sealing must be observationally invisible — identical "
                    "per-session outcomes, deterministic across re-runs and "
                    "worker counts."
                )
        if row["dict_bytes_merged"] != row["dict_bytes_split"]:
            sys.exit(
                f"query_service[{scenario!r}]: dictionary bytes diverge "
                f"between sealing modes ({row['dict_bytes_merged']} merged "
                f"vs {row['dict_bytes_split']} split); the per-destination "
                "first-use dictionary must be shared either way."
            )
        if row["offered"] >= QUERY_SERVICE_SESSION_FLOOR and (
            row["frames_per_dest_merged"] >= row["frames_per_dest_split"]
        ):
            sys.exit(
                f"query_service[{scenario!r}]: merged sealing ships "
                f"{row['frames_per_dest_merged']:.1f} frames/destination vs "
                f"{row['frames_per_dest_split']:.1f} per-session at "
                f"{row['offered']} sessions — cross-session flushing is not "
                "merging anything."
            )
        if row["p99_latency_ms"] < row["p50_latency_ms"]:
            sys.exit(
                f"query_service[{scenario!r}]: p99 latency "
                f"({row['p99_latency_ms']:.2f}ms) is below p50 "
                f"({row['p50_latency_ms']:.2f}ms); percentile bookkeeping "
                "broke."
            )
        fairness = row["fairness_ratio"]
        if (
            not isinstance(fairness, (int, float))
            or fairness != fairness  # NaN
            or fairness > QUERY_SERVICE_MAX_FAIRNESS
        ):
            sys.exit(
                f"query_service[{scenario!r}]: fairness ratio {fairness} "
                f"exceeds {QUERY_SERVICE_MAX_FAIRNESS} — under equal offered "
                "load the deficit-round-robin scheduler must keep tenant "
                "completions within that bound."
            )

    # Sublinearity across the slice's session scales: frames/destination and
    # dictionary bytes must grow strictly slower than offered sessions.
    small = min(slice_rows, key=lambda r: r["offered"])
    big = max(slice_rows, key=lambda r: r["offered"])
    if big["offered"] > small["offered"]:
        session_ratio = big["offered"] / small["offered"]
        frame_ratio = big["frames_per_dest_merged"] / max(
            small["frames_per_dest_merged"], 1e-9
        )
        if frame_ratio >= session_ratio:
            sys.exit(
                f"query_service: frames/destination grew {frame_ratio:.2f}x "
                f"from {small['offered']} to {big['offered']} sessions "
                f"(>= the {session_ratio:.2f}x session growth) — merged "
                "flushing is supposed to make that sublinear."
            )
        dict_ratio = big["dict_bytes_merged"] / max(small["dict_bytes_merged"], 1)
        if dict_ratio >= session_ratio:
            sys.exit(
                f"query_service: dictionary bytes grew {dict_ratio:.2f}x "
                f"from {small['offered']} to {big['offered']} sessions "
                f"(>= the {session_ratio:.2f}x session growth) — the shared "
                "first-use dictionary charge is supposed to make that "
                "sublinear."
            )

    committed_digests = {
        r["scenario"]: r["service_digest"]
        for r in committed.get("query_service", [])
        if r["slice"]
    }
    compared = 0
    for row in slice_rows:
        baseline = committed_digests.get(row["scenario"])
        if baseline is None:
            continue
        compared += 1
        if row["service_digest"] != baseline:
            sys.exit(
                f"query_service[{row['scenario']!r}]: service digest drifted "
                f"({baseline} -> {row['service_digest']}). The digest is "
                "machine-independent, so this is a behavior change — commit "
                "the regenerated BENCH_results.json in the same change."
            )
    if compared == 0:
        sys.exit(
            "query_service: no slice row of the regenerated report matches a "
            "committed scenario name — the committed baseline is stale."
        )
    print(
        f"query_service gate OK ({len(rows)} rows, {len(slice_rows)} slice; "
        f"{compared} service digests bit-identical to the committed baseline)"
    )


def main():
    if len(sys.argv) != 3:
        sys.exit(__doc__)
    committed_path, fresh_path = sys.argv[1], sys.argv[2]
    with open(committed_path) as f:
        committed = json.load(f)
    with open(fresh_path) as f:
        fresh = json.load(f)

    for name, doc in ((committed_path, committed), (fresh_path, fresh)):
        if doc.get("format") != REQUIRED_FORMAT:
            sys.exit(
                f"{name}: format marker is {doc.get('format')!r}, expected "
                f"{REQUIRED_FORMAT!r}. Regenerate BENCH_results.json "
                "(cargo run --release -p nettrails-bench --bin report)."
            )

    check_required_sections(committed_path, committed)
    check_required_sections(fresh_path, fresh)
    check_sharded_provenance(committed, fresh)
    check_parallel_fixpoint(fresh)
    check_vectorized_joins(fresh)
    check_query_fanout(fresh)
    check_snapshot_replay(fresh)
    check_scenario_suite(committed, fresh)
    check_query_service(committed, fresh)

    if committed.get("format") != fresh.get("format"):
        sys.exit(
            f"format marker changed: {committed.get('format')!r} -> "
            f"{fresh.get('format')!r}. Update BENCH_results.json in the same "
            "change that bumps the schema."
        )

    committed_shape = shape(committed)
    fresh_shape = shape(fresh)
    if committed_shape != fresh_shape:
        print("BENCH_results.json schema drift detected.", file=sys.stderr)
        print("--- committed shape ---", file=sys.stderr)
        json.dump(committed_shape, sys.stderr, indent=1)
        print("\n--- regenerated shape ---", file=sys.stderr)
        json.dump(fresh_shape, sys.stderr, indent=1)
        sys.exit(
            "\nRegenerate and commit BENCH_results.json "
            "(cargo run --release -p nettrails-bench --bin report)."
        )
    print(f"BENCH_results.json schema OK ({committed.get('format')})")


if __name__ == "__main__":
    main()
