#!/usr/bin/env python3
"""Assert that a freshly generated BENCH_results.json has the same schema as
the committed one.

Usage: check_bench_schema.py <committed.json> <fresh.json>

Values (timings, byte counts) are expected to differ between machines; the
*shape* — the format marker, the set of keys at every level, and the element
shape of each array — must not drift silently. CI regenerates the report and
fails when the schema of the regenerated file differs from the committed one.
"""

import json
import sys


def shape(value, depth=0):
    """A structural fingerprint: dict key-sets, array element shapes, scalar
    type names. Arrays are summarized by the union of their element shapes so
    row counts don't matter."""
    if isinstance(value, dict):
        return {k: shape(v, depth + 1) for k, v in sorted(value.items())}
    if isinstance(value, list):
        shapes = []
        for v in value:
            s = shape(v, depth + 1)
            if s not in shapes:
                shapes.append(s)
        return ["array", shapes]
    if isinstance(value, bool):
        return "bool"
    if isinstance(value, (int, float)):
        return "number"
    if value is None:
        return "null"
    return "string"


# Sections every BENCH_results.json must carry, with the keys each of their
# rows must have. A report missing one of these (or a row missing a key)
# fails even when committed and fresh agree — the schema requirement is
# absolute, not merely drift-free.
REQUIRED_SECTIONS = {
    "delta_shipping": {
        "scenario",
        "messages_sent",
        "tuples_shipped",
        "dict_header_bytes",
        "body_bytes",
        "batched_total_bytes",
        "per_tuple_total_bytes",
        "reduction_factor",
    },
}


def check_required_sections(name, doc):
    for section, required_keys in REQUIRED_SECTIONS.items():
        rows = doc.get(section)
        if not isinstance(rows, list) or not rows:
            sys.exit(
                f"{name}: required section {section!r} is missing or empty. "
                "Regenerate BENCH_results.json "
                "(cargo run --release -p nettrails-bench --bin report)."
            )
        for i, row in enumerate(rows):
            missing = required_keys - set(row)
            if missing:
                sys.exit(
                    f"{name}: {section}[{i}] is missing keys {sorted(missing)}."
                )


def main():
    if len(sys.argv) != 3:
        sys.exit(__doc__)
    committed_path, fresh_path = sys.argv[1], sys.argv[2]
    with open(committed_path) as f:
        committed = json.load(f)
    with open(fresh_path) as f:
        fresh = json.load(f)

    check_required_sections(committed_path, committed)
    check_required_sections(fresh_path, fresh)

    if committed.get("format") != fresh.get("format"):
        sys.exit(
            f"format marker changed: {committed.get('format')!r} -> "
            f"{fresh.get('format')!r}. Update BENCH_results.json in the same "
            "change that bumps the schema."
        )

    committed_shape = shape(committed)
    fresh_shape = shape(fresh)
    if committed_shape != fresh_shape:
        print("BENCH_results.json schema drift detected.", file=sys.stderr)
        print("--- committed shape ---", file=sys.stderr)
        json.dump(committed_shape, sys.stderr, indent=1)
        print("\n--- regenerated shape ---", file=sys.stderr)
        json.dump(fresh_shape, sys.stderr, indent=1)
        sys.exit(
            "\nRegenerate and commit BENCH_results.json "
            "(cargo run --release -p nettrails-bench --bin report)."
        )
    print(f"BENCH_results.json schema OK ({committed.get('format')})")


if __name__ == "__main__":
    main()
