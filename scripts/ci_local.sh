#!/usr/bin/env bash
# Run the exact steps CI runs (.github/workflows/ci.yml and nightly.yml),
# locally.
#
#   scripts/ci_local.sh          # everything per-PR (lint job, then test job)
#   scripts/ci_local.sh lint     # just the lint job
#   scripts/ci_local.sh test     # just the test job
#   scripts/ci_local.sh nightly  # the nightly full 10^4-node scenario sweep
#
# Keep this file and the workflows in sync: a builder who passes this script
# must pass CI, and vice versa.

set -euo pipefail
cd "$(dirname "$0")/.."

lint() {
    echo "==> [lint] cargo fmt --all --check"
    cargo fmt --all --check

    echo "==> [lint] cargo clippy --workspace --all-targets -- -D warnings"
    cargo clippy --workspace --all-targets -- -D warnings

    echo '==> [lint] RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps'
    RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps
}

test_job() {
    echo "==> [test] cargo build --release --workspace"
    cargo build --release --workspace

    echo "==> [test] cargo test -q --workspace"
    cargo test -q --workspace

    echo "==> [test] cargo build --benches --workspace"
    cargo build --benches --workspace

    echo "==> [test] bench schema + regression gates (incl. scenario + query-service slices)"
    regen="$(mktemp -d)"
    trap 'rm -rf "$regen"' EXIT
    (cd "$regen" && cargo run --release --manifest-path "$OLDPWD/Cargo.toml" -p nettrails-bench --bin report > /dev/null)
    python3 scripts/check_bench_schema.py BENCH_results.json "$regen/BENCH_results.json"
}

nightly_job() {
    echo "==> [nightly] cargo build --release --workspace"
    cargo build --release --workspace

    echo "==> [nightly] full scenario + query-service sweep + gates (NT_SCENARIO_SCALE=full)"
    regen="$(mktemp -d)"
    trap 'rm -rf "$regen"' EXIT
    (cd "$regen" && NT_SCENARIO_SCALE=full cargo run --release --manifest-path "$OLDPWD/Cargo.toml" -p nettrails-bench --bin report)
    python3 scripts/check_bench_schema.py BENCH_results.json "$regen/BENCH_results.json"
}

case "${1:-all}" in
    lint) lint ;;
    test) test_job ;;
    nightly) nightly_job ;;
    all)
        lint
        test_job
        ;;
    *)
        echo "usage: $0 [lint|test|nightly|all]" >&2
        exit 2
        ;;
esac

echo "ci_local: all requested jobs passed"
