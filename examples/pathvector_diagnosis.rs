//! Root-cause analysis with the path-vector protocol: fail a link, see which
//! best-path entries changed, and use provenance queries (with and without the
//! paper's optimizations) to explain the new state.
//!
//! ```text
//! cargo run --example pathvector_diagnosis
//! ```

use nettrails::{NetTrails, NetTrailsConfig};
use provenance::{QueryKind, QueryResult, TraversalOrder};
use simnet::{Topology, TopologyEvent};
use vis::render_proof_tree;

fn main() {
    let topology = Topology::random(8, 0.25, 3, 17);
    let mut nt = NetTrails::new(
        protocols::pathvector::PROGRAM,
        topology,
        NetTrailsConfig::default(),
    )
    .expect("path-vector compiles");
    nt.seed_links_from_topology();
    nt.run_to_fixpoint();

    let before: Vec<_> = nt.relation("bestPathCost");
    println!("converged: {} bestPathCost entries", before.len());

    // Fail the n1-n2 link (if it exists; otherwise the first link we find).
    let (a, b) = nt
        .network()
        .topology()
        .link("n1", "n2")
        .map(|l| (l.from.clone(), l.to.clone()))
        .or_else(|| {
            nt.network()
                .topology()
                .links()
                .next()
                .map(|l| (l.from.clone(), l.to.clone()))
        })
        .expect("some link exists");
    println!("failing link {a} - {b}");
    let report = nt.apply_topology_event(&TopologyEvent::LinkDown {
        a: a.clone(),
        b: b.clone(),
    });
    let after: Vec<_> = nt.relation("bestPathCost");
    println!(
        "reconvergence touched {} tuples; bestPathCost entries: {} -> {}",
        report.tuples_touched(),
        before.len(),
        after.len()
    );

    // "Monitoring cascading effects": which entries changed?
    let changed: Vec<_> = after
        .iter()
        .filter(|(n, t)| {
            !before
                .iter()
                .any(|(n2, t2)| n2 == n && t2.values == t.values)
        })
        .collect();
    println!(
        "{} best-path entries changed after the failure",
        changed.len()
    );

    // Explain one of them, comparing query optimizations.
    let Some((home, target)) = changed.first().map(|(n, t)| (*n, t.clone())) else {
        println!("nothing changed — the failed link was not on any best path");
        return;
    };
    println!("\n== explaining {target} (stored at {home}) ==");
    let (result, plain) = nt.query(&target).from_node(&home).run();
    if let QueryResult::Lineage(tree) = &result {
        print!("{}", render_proof_tree(tree));
    }

    let (_, pruned) = nt
        .query(&target)
        .from_node(&home)
        .max_derivations(1)
        .max_depth(4)
        .run();
    let cached = |nt: &mut nettrails::NetTrails| {
        nt.query(&target)
            .from_node(&home)
            .cached()
            .traversal(TraversalOrder::BreadthFirst)
            .run()
            .1
    };
    let first_cached = cached(&mut nt);
    let second_cached = cached(&mut nt);

    println!("\nquery cost (messages / measured ms):");
    println!(
        "  no optimization        : {} / {:.1}",
        plain.messages, plain.latency_ms
    );
    println!("  threshold pruning      : {}", pruned.messages);
    println!("  caching, first query   : {}", first_cached.messages);
    println!("  caching, repeat query  : {}", second_cached.messages);

    let (count, _) = nt
        .query(&target)
        .from_node(&home)
        .kind(QueryKind::DerivationCount)
        .run();
    if let QueryResult::DerivationCount(n) = count {
        println!("\nthe tuple has {n} alternative derivation(s)");
    }
}
