//! The Figure 2 / Figure 3 scenario: MINCOST on a ladder topology, periodic
//! snapshots into the central Log Store, interactive-style exploration of the
//! provenance hypertree, and replay after a topology change.
//!
//! ```text
//! cargo run --example mincost_demo
//! ```

use logstore::{LogStore, NodeSnapshot, Replay, SystemSnapshot};
use nettrails::{NetTrails, NetTrailsConfig};
use provenance::{QueryKind, QueryResult};
use simnet::{Topology, TopologyEvent};
use vis::{focus_on, render_topology_summary, HypertreeLayout};

fn snapshot(nt: &NetTrails) -> SystemSnapshot {
    let mut snap = SystemSnapshot {
        time: nt.now(),
        topology: nt.network().topology().clone(),
        graph: nt.provenance_graph(),
        traffic: nt.network().stats().clone(),
        ..Default::default()
    };
    for node in nt.nodes() {
        let engine = nt.engine(&node).expect("engine exists");
        snap.nodes.insert(
            node,
            NodeSnapshot::capture(&node, engine.database(), nt.provenance()),
        );
    }
    snap.stamp_dictionary();
    snap
}

fn main() {
    let topology = Topology::ladder(4); // 2x4 grid: several alternative paths.
    println!("{}", render_topology_summary(&topology));

    let mut nt = NetTrails::new(
        protocols::mincost::PROGRAM,
        topology,
        NetTrailsConfig::default(),
    )
    .expect("program compiles");
    nt.seed_links_from_topology();
    nt.run_to_fixpoint();

    let mut log_store = LogStore::new();
    log_store.add(snapshot(&nt));

    // Screenshot (a): the system-wide snapshot at time T.
    let graph = nt.provenance_graph();
    println!(
        "snapshot at {}: {} tuple vertices, {} rule executions, partitioned as {:?}",
        nt.now(),
        graph.tuple_vertex_count(),
        graph.rule_exec_count(),
        graph.vertices_per_node()
    );

    // Screenshot (b)/(c): select a table, then a tuple, and look at it.
    let (home, target) = nt
        .find_tuple("minCost", |t| {
            t.values[0].as_addr() == Some("n1") && t.values[1].as_addr() == Some("n8")
        })
        .expect("minCost(n1,n8) derived");
    println!("\nfocusing on {target} stored at {home}");
    let (result, _) = nt
        .query(&target)
        .from_node(&home)
        .kind(QueryKind::Lineage)
        .run();
    let QueryResult::Lineage(tree) = result else {
        unreachable!()
    };
    let layout = HypertreeLayout::of_proof_tree(&tree);
    println!(
        "hypertree layout: {} vertices, max radius {:.3} (all inside the unit disk)",
        layout.len(),
        layout.max_norm()
    );
    // Clicking a vertex re-centres the view (a Mobius translation).
    if let Some(vertex) = layout.vertices.values().nth(2) {
        let refocused = focus_on(&layout, vertex.position);
        println!(
            "refocused on '{}' -> it now sits at radius {:.4}",
            vertex.label,
            refocused
                .vertices
                .values()
                .find(|v| v.label == vertex.label)
                .map(|v| v.position.norm())
                .unwrap_or(f64::NAN)
        );
    }

    // A topology change: fail one rung of the ladder and watch the system
    // recompute incrementally.
    let report = nt.apply_topology_event(&TopologyEvent::LinkDown {
        a: "n2".into(),
        b: "n6".into(),
    });
    println!(
        "\nlink n2-n6 failed: {} tuples touched, {} deliveries during reconvergence",
        report.tuples_touched(),
        report.deliveries
    );
    log_store.add(snapshot(&nt));

    // Replay the stored snapshots the way the visualizer would.
    let mut replay = Replay::new(&log_store);
    while let Some(diff) = replay.step() {
        println!(
            "replay {} -> {}: +{} tuples, -{} tuples, -{} links",
            diff.from,
            diff.to,
            diff.appeared.len(),
            diff.disappeared.len(),
            diff.links_removed.len()
        );
    }
    println!(
        "log store holds {} snapshots ({} bytes uploaded to the visualization node)",
        log_store.len(),
        log_store.uploaded_bytes()
    );
}
