//! Quickstart: run MINCOST on a three-node network, then ask NetTrails where a
//! tuple came from.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use nettrails::{NetTrails, NetTrailsConfig};
use provenance::{QueryKind, QueryResult};
use simnet::Topology;
use vis::{provenance_to_dot, render_proof_tree};

fn main() {
    // 1. A three-node line topology: n1 - n2 - n3 (unit link costs).
    let topology = Topology::line(3);

    // 2. Build the platform from the MINCOST NDlog program and seed the links.
    let mut nt = NetTrails::new(
        protocols::mincost::PROGRAM,
        topology,
        NetTrailsConfig::default(),
    )
    .expect("MINCOST compiles");
    nt.seed_links_from_topology();

    // 3. Run the distributed computation to a fixpoint.
    let report = nt.run_to_fixpoint();
    println!("== MINCOST on a 3-node line ==");
    println!(
        "converged after {} rounds, {} deliveries, {} tuple insertions",
        report.rounds, report.deliveries, report.insertions
    );
    for (node, tuple) in nt.relation("minCost") {
        println!("  {node}: {tuple}");
    }

    // 4. Ask for the provenance of minCost(n1, n3, 2).
    let (_, target) = nt
        .find_tuple("minCost", |t| {
            t.values[0].as_addr() == Some("n1") && t.values[1].as_addr() == Some("n3")
        })
        .expect("minCost(n1,n3) exists");

    let (result, stats) = nt
        .query(&target)
        .from_node("n3")
        .kind(QueryKind::Lineage)
        .run();
    let QueryResult::Lineage(tree) = result else {
        unreachable!()
    };
    println!("\n== lineage of {target} ==");
    print!("{}", render_proof_tree(&tree));
    println!(
        "(distributed query: {} messages, {} vertices visited)",
        stats.messages, stats.vertices_visited
    );

    // 5. The same provenance graph, ready for Graphviz.
    let dot = provenance_to_dot(&nt.provenance_graph());
    println!(
        "\nprovenance graph: {} lines of DOT (pipe into `dot -Tsvg`)",
        dot.lines().count()
    );

    // 6. Aggregate platform statistics (Figure 1's components at a glance).
    let stats = nt.stats();
    println!(
        "\nplatform: {} stored tuples, {} prov entries, {} ruleExecs, {} protocol messages",
        stats.stored_tuples,
        stats.provenance.prov_entries,
        stats.provenance.rule_execs,
        stats.network.messages
    );
}
