//! The legacy-application use case: BGP speakers in multiple ASes (the Quagga
//! substitute), a RouteViews-style update trace, the message-interception
//! proxy with the paper's `maybe` rule, and provenance queries over routing
//! entries.
//!
//! ```text
//! cargo run --example bgp_quagga
//! ```

use bgp::{AsTopology, BgpHarness, TraceGenerator};
use provenance::{QueryEngine, QueryKind, QueryOptions, QueryResult};
use vis::render_proof_tree;

fn main() {
    // Several large and small ISPs connected by customer/provider/peer links.
    let topology = AsTopology::generate(3, 6, 12, 2026);
    println!(
        "AS-level topology: {} ASes, {} adjacencies, {} stub origins",
        topology.len(),
        topology.adjacency_count(),
        topology.stub_ases().len()
    );

    // A synthetic RouteViews-style trace: initial announcements plus churn.
    let trace = TraceGenerator {
        prefixes_per_origin: 1,
        churn_events: 8,
        seed: 7,
    }
    .generate(&topology);
    println!("replaying {} update events through the proxy", trace.len());

    let mut harness = BgpHarness::new(topology);
    harness.run_trace(&trace);
    let stats = harness.stats();
    println!(
        "intercepted {} BGP messages; maybe-rule matched {} outputs ({} unmatched = locally originated); {} FIB changes",
        stats.messages, stats.maybe_matches, stats.maybe_unmatched, stats.fib_changes
    );

    // Pick a tier-1 AS and inspect the derivation history of one of its
    // routing entries.
    let asn = "AS100";
    let prefix = "10.0.0.0/24";
    let Some(target) = harness.fib_tuple(asn, prefix) else {
        println!("{asn} has no route for {prefix}; try another seed");
        return;
    };
    println!("\n== derivation history of {target} ==");
    let mut qe = QueryEngine::new();
    let (result, stats) = qe.query(
        harness.provenance(),
        asn,
        &target,
        QueryKind::Lineage,
        &QueryOptions::default(),
    );
    if let QueryResult::Lineage(tree) = result {
        print!("{}", render_proof_tree(&tree));
        println!(
            "({} vertices, {} distributed messages)",
            tree.size(),
            stats.messages
        );
    }

    let (result, _) = qe.query(
        harness.provenance(),
        asn,
        &target,
        QueryKind::ParticipatingNodes,
        &QueryOptions::default(),
    );
    if let QueryResult::ParticipatingNodes(nodes) = result {
        println!("ASes involved in this route: {:?}", nodes);
    }
    let (result, _) = qe.query(
        harness.provenance(),
        asn,
        &target,
        QueryKind::BaseTuples,
        &QueryOptions::default(),
    );
    if let QueryResult::BaseTuples(bases) = result {
        println!("origins (base announcements):");
        for (_, tuple) in bases {
            if let Some(t) = tuple {
                println!("  {t}");
            }
        }
    }

    let prov = harness.provenance().stats();
    println!(
        "\nprovenance state across ASes: {} prov entries, {} rule executions, ~{} bytes",
        prov.prov_entries, prov.rule_execs, prov.bytes
    );
}
