//! DSR in a mobile network: the random-waypoint model moves nodes around, the
//! radio link set changes, and NetTrails incrementally maintains both the DSR
//! routes and their provenance.
//!
//! ```text
//! cargo run --example dsr_mobile
//! ```

use nettrails::{NetTrails, NetTrailsConfig};
use provenance::{QueryKind, QueryResult};
use simnet::{MobilityModel, RandomWaypoint, Topology, TopologyEvent};

fn main() {
    // 8 nodes moving over a 250x250 m field with a 110 m radio range.
    let mobility = RandomWaypoint::new(8, 250.0, 250.0, 110.0, 1.0, 4.0, 300.0, 99);
    let initial = mobility.topology_at(0.0);
    println!(
        "t=0s: {} nodes, {} radio links",
        initial.node_count(),
        initial.link_count()
    );

    // Build the platform over the t=0 link set.
    let mut topo = Topology::new();
    for n in mobility.nodes() {
        topo.add_node(n);
    }
    for l in initial.links() {
        topo.add_link(l.clone());
    }
    let mut nt = NetTrails::new(protocols::dsr::PROGRAM, topo, NetTrailsConfig::default())
        .expect("DSR compiles");
    nt.seed_links_from_topology();
    nt.run_to_fixpoint();
    println!(
        "t=0s: {} source routes discovered, {} prov entries",
        nt.relation("route").len(),
        nt.stats().provenance.prov_entries
    );

    // Every 30 simulated seconds, apply the link changes caused by mobility.
    let mut previous = 0.0;
    for step in 1..=6 {
        let now = step as f64 * 30.0;
        let (up, down) = mobility.link_changes(previous, now);
        previous = now;
        let mut touched = 0;
        for (a, b) in &down {
            touched += nt
                .apply_topology_event(&TopologyEvent::LinkDown {
                    a: a.clone(),
                    b: b.clone(),
                })
                .tuples_touched();
        }
        for (a, b) in &up {
            touched += nt
                .apply_topology_event(&TopologyEvent::LinkUp(simnet::Link::new(
                    a.clone(),
                    b.clone(),
                    1,
                )))
                .tuples_touched();
        }
        println!(
            "t={now:>3}s: {:>2} links up, {:>2} links down -> {:>5} tuples touched, {:>4} routes, {:>5} prov entries",
            up.len(),
            down.len(),
            touched,
            nt.relation("route").len(),
            nt.stats().provenance.prov_entries
        );
    }

    // Provenance of one surviving shortest route.
    if let Some((home, target)) = nt.relation("shortestRoute").into_iter().next() {
        let (result, _) = nt
            .query(&target)
            .from_node(&home)
            .kind(QueryKind::ParticipatingNodes)
            .run();
        if let QueryResult::ParticipatingNodes(nodes) = result {
            let names: Vec<&str> = nodes.iter().map(|n| n.as_str()).collect();
            println!("\nprovenance of {target}: derived using state from nodes {names:?}");
        }
    } else {
        println!("\nnetwork is currently partitioned: no shortest routes to explain");
    }
}
