//! Regression guard for the planned, index-backed join pipeline: converging
//! the query_optimizations scenario (PATH-VECTOR on a ladder, the workload
//! `benches/query_optimizations.rs` times) must examine strictly fewer join
//! candidates with index probing than the recorded full-scan baseline —
//! while computing exactly the same relations.

use nettrails::{NetTrails, NetTrailsConfig};
use simnet::Topology;
use std::collections::BTreeSet;

fn converge(config: NetTrailsConfig) -> NetTrails {
    let mut nt = NetTrails::new(protocols::pathvector::PROGRAM, Topology::ladder(4), config)
        .expect("pathvector compiles");
    nt.seed_links_from_topology();
    nt.run_to_fixpoint();
    nt
}

fn relation_set(nt: &NetTrails, relation: &str) -> BTreeSet<String> {
    nt.relation(relation)
        .into_iter()
        .map(|(node, tuple)| format!("{node}:{tuple}"))
        .collect()
}

#[test]
fn indexed_joins_probe_strictly_less_than_the_scan_baseline() {
    let indexed = converge(NetTrailsConfig::default());
    let scan = converge(NetTrailsConfig::without_join_indexes());

    // Both evaluation modes converge to identical protocol state.
    for relation in ["path", "bestPathCost", "bestPath"] {
        assert_eq!(
            relation_set(&indexed, relation),
            relation_set(&scan, relation),
            "relation `{relation}` diverged between indexed and scan evaluation"
        );
    }
    assert!(
        !indexed.relation("bestPathCost").is_empty(),
        "scenario must actually derive state for the comparison to mean anything"
    );

    let indexed_probes = indexed.stats().engine.join_probes;
    let scan_probes = scan.stats().engine.join_probes;
    assert!(
        indexed_probes < scan_probes,
        "index probing examined {indexed_probes} candidates but the scan \
         baseline examined {scan_probes}; the planned pipeline must be \
         strictly more selective on this scenario"
    );
    // The drop is structural (posting lists vs whole tables), not noise:
    // hold the line at a 2x margin so future regressions surface early.
    assert!(
        indexed_probes * 2 <= scan_probes,
        "index probing ({indexed_probes}) no longer beats the scan baseline \
         ({scan_probes}) by at least 2x"
    );
}

#[test]
fn indexed_joins_also_win_on_the_maintenance_scenario() {
    // The maintenance_overhead scenario: MINCOST on ladders with provenance.
    let mut indexed = NetTrails::new(
        protocols::mincost::PROGRAM,
        Topology::ladder(4),
        NetTrailsConfig::default(),
    )
    .expect("mincost compiles");
    indexed.seed_links_from_topology();
    indexed.run_to_fixpoint();

    let mut scan = NetTrails::new(
        protocols::mincost::PROGRAM,
        Topology::ladder(4),
        NetTrailsConfig::without_join_indexes(),
    )
    .expect("mincost compiles");
    scan.seed_links_from_topology();
    scan.run_to_fixpoint();

    assert_eq!(
        relation_set(&indexed, "minCost"),
        relation_set(&scan, "minCost")
    );
    assert!(
        indexed.stats().engine.join_probes < scan.stats().engine.join_probes,
        "indexed {} vs scan {}",
        indexed.stats().engine.join_probes,
        scan.stats().engine.join_probes
    );
}
