//! E3 — incremental recomputation after a link failure vs recomputation from
//! scratch, per protocol.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use nettrails_bench::converged;
use simnet::{Topology, TopologyEvent};
use std::time::Duration;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("E3_incremental_maintenance");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(2));
    let protocols: &[(&str, &str)] = &[
        ("mincost", protocols::mincost::PROGRAM),
        ("pathvector", protocols::pathvector::PROGRAM),
        ("distancevector", protocols::distancevector::PROGRAM),
    ];
    for &(name, program) in protocols {
        group.bench_with_input(
            BenchmarkId::new("incremental_link_failure", name),
            &program,
            |b, program| {
                b.iter_batched(
                    || converged(program, Topology::ladder(3), true),
                    |mut nt| {
                        nt.apply_topology_event(&TopologyEvent::LinkDown {
                            a: "n1".into(),
                            b: "n2".into(),
                        })
                    },
                    criterion::BatchSize::SmallInput,
                );
            },
        );
        group.bench_with_input(
            BenchmarkId::new("recompute_from_scratch", name),
            &program,
            |b, program| {
                let mut nt = converged(program, Topology::ladder(3), true);
                nt.apply_topology_event(&TopologyEvent::LinkDown {
                    a: "n1".into(),
                    b: "n2".into(),
                });
                b.iter(|| nt.recompute_from_scratch().unwrap().1);
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
