//! E5 — the legacy BGP use case: replaying a RouteViews-style trace through
//! the speakers and the proxy, with provenance capture, at several AS-graph
//! sizes.

use bgp::{AsTopology, BgpHarness, TraceGenerator};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("E5_bgp_provenance");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(2));
    for (large, medium, stub) in [(2usize, 3usize, 5usize), (3, 6, 12)] {
        let n = large + medium + stub;
        group.bench_with_input(BenchmarkId::new("trace_replay", n), &n, |b, _| {
            let topology = AsTopology::generate(large, medium, stub, 2026);
            let trace = TraceGenerator {
                prefixes_per_origin: 1,
                churn_events: 5,
                seed: 11,
            }
            .generate(&topology);
            b.iter_batched(
                || (BgpHarness::new(topology.clone()), trace.clone()),
                |(mut harness, trace)| {
                    harness.run_trace(&trace);
                    harness.provenance().stats().prov_entries
                },
                criterion::BatchSize::SmallInput,
            );
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
