//! E6 — the provenance query types (lineage, base tuples, participating nodes,
//! derivation count) over a converged path-vector network.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use nettrails_bench::converged;
use provenance::QueryKind;
use simnet::Topology;
use std::time::Duration;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("E6_query_types");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(2));
    let mut nt = converged(protocols::pathvector::PROGRAM, Topology::ladder(4), true);
    let targets: Vec<_> = nt.relation("bestPathCost").into_iter().take(5).collect();
    for (name, kind) in [
        ("lineage", QueryKind::Lineage),
        ("base_tuples", QueryKind::BaseTuples),
        ("participating_nodes", QueryKind::ParticipatingNodes),
        ("derivation_count", QueryKind::DerivationCount),
    ] {
        group.bench_with_input(BenchmarkId::new("query", name), &kind, |b, &kind| {
            b.iter(|| {
                let mut total = 0u64;
                for (node, tuple) in &targets {
                    let (_, stats) = nt.query(tuple).from_node(node).kind(kind).run();
                    total += stats.vertices_visited;
                }
                total
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
