//! E8 — snapshot capture, log-store upload and replay.

use criterion::{criterion_group, criterion_main, Criterion};
use logstore::{LogStore, Replay};
use nettrails_bench::{capture_snapshot, mincost_ladder};
use simnet::TopologyEvent;
use std::time::Duration;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("E8_logstore_replay");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(2));
    group.bench_function("capture_snapshot", |b| {
        let nt = mincost_ladder(4);
        b.iter(|| capture_snapshot(&nt).tuple_count());
    });
    group.bench_function("json_round_trip", |b| {
        let nt = mincost_ladder(3);
        let mut store = LogStore::new();
        store.add(capture_snapshot(&nt));
        b.iter(|| {
            let json = store.to_json().unwrap();
            LogStore::from_json(&json).unwrap().len()
        });
    });
    group.bench_function("replay_three_snapshots", |b| {
        let mut nt = mincost_ladder(3);
        let mut store = LogStore::new();
        store.add(capture_snapshot(&nt));
        nt.apply_topology_event(&TopologyEvent::LinkDown {
            a: "n1".into(),
            b: "n2".into(),
        });
        store.add(capture_snapshot(&nt));
        nt.apply_topology_event(&TopologyEvent::LinkUp(simnet::Link::new("n1", "n2", 2)));
        store.add(capture_snapshot(&nt));
        b.iter(|| {
            let mut replay = Replay::new(&store);
            let mut changes = 0;
            while let Some(diff) = replay.step() {
                changes += diff.appeared.len() + diff.disappeared.len();
            }
            changes
        });
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
