//! E2 — cost of running MINCOST with provenance capture and of building the
//! Figure-2 artifacts (provenance graph assembly, lineage query, hypertree
//! layout) as the network grows.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use nettrails_bench::{converged, mincost_ladder};
use provenance::{QueryKind, QueryResult};
use simnet::Topology;
use std::time::Duration;
use vis::HypertreeLayout;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("E2_mincost_provenance");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(2));
    for n in [2usize, 4, 6] {
        group.bench_with_input(
            BenchmarkId::new("converge_with_provenance", n),
            &n,
            |b, &n| {
                b.iter(|| converged(protocols::mincost::PROGRAM, Topology::ladder(n), true));
            },
        );
        group.bench_with_input(BenchmarkId::new("graph_and_hypertree", n), &n, |b, &n| {
            let mut nt = mincost_ladder(n);
            let (node, target) = nt
                .relation("minCost")
                .into_iter()
                .max_by_key(|(_, t)| t.values[2].as_int())
                .unwrap();
            b.iter(|| {
                let graph = nt.provenance_graph();
                let (result, _) = nt
                    .query(&target)
                    .from_node(&node)
                    .kind(QueryKind::Lineage)
                    .run();
                let QueryResult::Lineage(tree) = result else {
                    unreachable!()
                };
                (
                    graph.tuple_vertex_count(),
                    HypertreeLayout::of_proof_tree(&tree).len(),
                )
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
