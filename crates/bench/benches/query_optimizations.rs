//! E7 — query optimizations: caching, traversal order and threshold pruning
//! applied to a repeated lineage-query mix.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use nettrails_bench::converged;
use provenance::{QueryKind, QueryOptions, TraversalOrder};
use simnet::Topology;
use std::time::Duration;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("E7_query_optimizations");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(2));
    let mut nt = converged(protocols::pathvector::PROGRAM, Topology::ladder(4), true);
    let targets: Vec<_> = nt.relation("bestPathCost").into_iter().take(8).collect();
    let cases: Vec<(&str, QueryOptions)> = vec![
        ("baseline", QueryOptions::default()),
        ("caching", QueryOptions::cached()),
        (
            "bfs",
            QueryOptions {
                traversal: TraversalOrder::BreadthFirst,
                ..QueryOptions::default()
            },
        ),
        (
            "pruned",
            QueryOptions {
                max_depth: Some(3),
                max_derivations_per_vertex: Some(1),
                ..QueryOptions::default()
            },
        ),
    ];
    for (name, options) in &cases {
        group.bench_with_input(
            BenchmarkId::new("query_mix", name),
            options,
            |b, options| {
                b.iter(|| {
                    nt.clear_query_cache();
                    let mut messages = 0u64;
                    for (node, tuple) in targets.iter().chain(targets.iter()) {
                        let (_, stats) = nt
                            .query(tuple)
                            .from_node(node)
                            .kind(QueryKind::Lineage)
                            .options(options.clone())
                            .run();
                        messages += stats.messages;
                    }
                    messages
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
