//! E4 — provenance maintenance overhead: converging MINCOST with and without
//! provenance capture.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use nettrails_bench::converged;
use simnet::Topology;
use std::time::Duration;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("E4_maintenance_overhead");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(2));
    for n in [2usize, 4, 6] {
        group.bench_with_input(BenchmarkId::new("without_provenance", n), &n, |b, &n| {
            b.iter(|| converged(protocols::mincost::PROGRAM, Topology::ladder(n), false));
        });
        group.bench_with_input(BenchmarkId::new("with_provenance", n), &n, |b, &n| {
            b.iter(|| converged(protocols::mincost::PROGRAM, Topology::ladder(n), true));
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
