//! Shared experiment drivers for the NetTrails benchmark harness.
//!
//! Every experiment of DESIGN.md §2 (E1–E8) has a driver here that builds the
//! workload, runs it and returns a [`ReportTable`] with the measured shape
//! (work, traffic, state sizes, savings). The Criterion benches in `benches/`
//! time the same operations; the `report` binary prints every table so that
//! EXPERIMENTS.md can record paper-claim vs. measured side by side.

use bgp::{AsTopology, BgpHarness, TraceGenerator};
use logstore::{LogStore, Replay, SystemSnapshot};
use nettrails::{ExperimentRow, NetTrails, NetTrailsConfig, ReportTable};
use provenance::{QueryEngine, QueryKind, QueryOptions, QueryResult, TraversalOrder};
use simnet::{Topology, TopologyEvent};
use vis::HypertreeLayout;

/// Build a converged platform for a protocol over a topology.
pub fn converged(program: &str, topology: Topology, provenance: bool) -> NetTrails {
    let config = if provenance {
        NetTrailsConfig::default()
    } else {
        NetTrailsConfig::without_provenance()
    };
    let mut nt = NetTrails::new(program, topology, config).expect("program compiles");
    nt.seed_links_from_topology();
    nt.run_to_fixpoint();
    nt
}

/// A converged MINCOST platform on a ladder of the given length.
pub fn mincost_ladder(n: usize) -> NetTrails {
    converged(protocols::mincost::PROGRAM, Topology::ladder(n), true)
}

/// Capture a full system snapshot of a platform (the canonical capture path
/// lives on the platform itself since the incremental-snapshot refactor).
pub fn capture_snapshot(nt: &NetTrails) -> SystemSnapshot {
    nt.capture_snapshot()
}

/// E2 — provenance of a running MINCOST program (Figures 2 and 3): graph size,
/// partitioning and hypertree layout size as the network grows.
pub fn experiment_mincost_provenance(sizes: &[usize]) -> ReportTable {
    let mut table = ReportTable::new("E2 MINCOST provenance graph (Fig. 2/3)");
    for &n in sizes {
        let mut nt = mincost_ladder(n);
        let graph = nt.provenance_graph();
        let (node, target) = nt
            .relation("minCost")
            .into_iter()
            .max_by_key(|(_, t)| t.values[2].as_int())
            .expect("at least one minCost tuple");
        let (result, stats) = nt
            .query(&target)
            .from_node(&node)
            .kind(QueryKind::Lineage)
            .run();
        let QueryResult::Lineage(tree) = result else {
            unreachable!()
        };
        let layout = HypertreeLayout::of_proof_tree(&tree);
        table.push(
            ExperimentRow::new(format!("ladder n={n} ({} nodes)", 2 * n))
                .with("tuple_vertices", graph.tuple_vertex_count() as f64)
                .with("rule_execs", graph.rule_exec_count() as f64)
                .with("proof_tree_size", tree.size() as f64)
                .with("proof_tree_depth", tree.depth() as f64)
                .with("hypertree_vertices", layout.len() as f64)
                .with("query_messages", stats.messages as f64),
        );
    }
    table
}

/// E3 — incremental maintenance vs recomputation from scratch after a link
/// failure, for each protocol.
pub fn experiment_incremental(sizes: &[usize]) -> ReportTable {
    let mut table = ReportTable::new("E3 incremental maintenance vs recompute (link failure)");
    let protocols: &[(&str, &str)] = &[
        ("MINCOST", protocols::mincost::PROGRAM),
        ("PATH-VECTOR", protocols::pathvector::PROGRAM),
        ("DISTANCE-VECTOR", protocols::distancevector::PROGRAM),
    ];
    for &(name, program) in protocols {
        for &n in sizes {
            let mut nt = converged(program, Topology::ladder(n), true);
            let event = TopologyEvent::LinkDown {
                a: "n1".into(),
                b: "n2".into(),
            };
            let incremental = nt.apply_topology_event(&event);
            let (_, scratch) = nt.recompute_from_scratch().expect("recompute");
            table.push(
                ExperimentRow::new(format!("{name} ladder n={n}"))
                    .with("incremental_tuples", incremental.tuples_touched() as f64)
                    .with("scratch_tuples", scratch.tuples_touched() as f64)
                    .with(
                        "speedup_x",
                        scratch.tuples_touched() as f64
                            / incremental.tuples_touched().max(1) as f64,
                    ),
            );
        }
    }
    table
}

/// E4 — the cost of capturing provenance: extra state and extra traffic
/// compared to running the bare protocol.
pub fn experiment_maintenance_overhead(sizes: &[usize]) -> ReportTable {
    let mut table = ReportTable::new("E4 provenance maintenance overhead");
    for &n in sizes {
        let with = converged(protocols::mincost::PROGRAM, Topology::ladder(n), true);
        let without = converged(protocols::mincost::PROGRAM, Topology::ladder(n), false);
        let ws = with.stats();
        let bs = without.stats();
        let prov_bytes = ws.provenance.bytes as f64;
        let proto_bytes = bs.network.bytes as f64;
        table.push(
            ExperimentRow::new(format!("ladder n={n}"))
                .with("protocol_tuples", bs.stored_tuples as f64)
                .with("prov_entries", ws.provenance.prov_entries as f64)
                .with("rule_execs", ws.provenance.rule_execs as f64)
                .with("protocol_msgs", bs.network.messages as f64)
                .with("prov_maint_msgs", ws.provenance_traffic.messages as f64)
                .with(
                    "state_overhead_x",
                    (ws.stored_tuples as f64 + ws.provenance.tuple_vertices as f64)
                        / bs.stored_tuples.max(1) as f64,
                )
                .with(
                    "byte_overhead_x",
                    (proto_bytes + prov_bytes) / proto_bytes.max(1.0),
                ),
        );
    }
    table
}

/// E5 — the legacy (BGP) use case: trace volume, provenance volume, maybe-rule
/// attribution rate, and derivation-history depth.
pub fn experiment_bgp(as_counts: &[(usize, usize, usize)]) -> ReportTable {
    let mut table = ReportTable::new("E5 legacy BGP provenance (Quagga/RouteViews substitute)");
    for &(large, medium, stub) in as_counts {
        let topology = AsTopology::generate(large, medium, stub, 2026);
        let trace = TraceGenerator {
            prefixes_per_origin: 1,
            churn_events: 5,
            seed: 11,
        }
        .generate(&topology);
        let mut harness = BgpHarness::new(topology);
        harness.run_trace(&trace);
        let stats = harness.stats().clone();
        let prov = harness.provenance().stats();

        // Depth of the derivation history of one tier-1 FIB entry.
        let mut qe = QueryEngine::new();
        let depth = harness
            .topology()
            .ases()
            .next()
            .and_then(|asn| {
                let prefix = trace.first()?.prefix.clone();
                let target = harness.fib_tuple(asn, &prefix)?;
                let (result, _) = qe.query(
                    harness.provenance(),
                    asn,
                    &target,
                    QueryKind::Lineage,
                    &QueryOptions::default(),
                );
                match result {
                    QueryResult::Lineage(tree) => Some(tree.depth()),
                    _ => None,
                }
            })
            .unwrap_or(0);

        table.push(
            ExperimentRow::new(format!("{} ASes", large + medium + stub))
                .with("trace_events", stats.trace_events as f64)
                .with("bgp_messages", stats.messages as f64)
                .with("maybe_matched", stats.maybe_matches as f64)
                .with("maybe_unmatched", stats.maybe_unmatched as f64)
                .with("prov_entries", prov.prov_entries as f64)
                .with("rule_execs", prov.rule_execs as f64)
                .with("fib_history_depth", depth as f64),
        );
    }
    table
}

/// E6 — the query types of the paper over the same targets.
pub fn experiment_query_types() -> ReportTable {
    let mut table = ReportTable::new("E6 provenance query types");
    let mut nt = converged(protocols::pathvector::PROGRAM, Topology::ladder(4), true);
    let targets: Vec<_> = nt.relation("bestPathCost").into_iter().take(8).collect();
    for kind in [
        QueryKind::Lineage,
        QueryKind::BaseTuples,
        QueryKind::ParticipatingNodes,
        QueryKind::DerivationCount,
    ] {
        let mut messages = 0u64;
        let mut vertices = 0u64;
        for (node, tuple) in &targets {
            let (_, stats) = nt.query(tuple).from_node(node).kind(kind).run();
            messages += stats.messages;
            vertices += stats.vertices_visited;
        }
        table.push(
            ExperimentRow::new(format!("{kind:?}"))
                .with("queries", targets.len() as f64)
                .with("messages", messages as f64)
                .with("vertices_visited", vertices as f64),
        );
    }
    table
}

/// E7 — the query optimizations: caching, traversal orders, threshold pruning.
pub fn experiment_query_optimizations() -> ReportTable {
    let mut table = ReportTable::new("E7 query optimizations (traffic reduction)");
    let mut nt = converged(protocols::pathvector::PROGRAM, Topology::ladder(4), true);
    let targets: Vec<_> = nt.relation("bestPathCost").into_iter().take(10).collect();

    let run = |nt: &mut NetTrails, options: &QueryOptions| -> (u64, u64, f64) {
        nt.clear_query_cache();
        let mut messages = 0;
        let mut bytes = 0;
        let mut latency: f64 = 0.0;
        // Query the whole mix twice — the repetition is what caching exploits.
        for (node, tuple) in targets.iter().chain(targets.iter()) {
            let (_, stats) = nt
                .query(tuple)
                .from_node(node)
                .kind(QueryKind::Lineage)
                .options(options.clone())
                .run();
            messages += stats.messages;
            bytes += stats.bytes;
            latency += stats.latency_ms;
        }
        (messages, bytes, latency)
    };

    let cases: Vec<(&str, QueryOptions)> = vec![
        ("baseline (DFS)", QueryOptions::default()),
        ("caching", QueryOptions::cached()),
        (
            "BFS traversal",
            QueryOptions {
                traversal: TraversalOrder::BreadthFirst,
                ..QueryOptions::default()
            },
        ),
        (
            "pruning depth<=3",
            QueryOptions {
                max_depth: Some(3),
                ..QueryOptions::default()
            },
        ),
        (
            "pruning 1 deriv/vertex",
            QueryOptions {
                max_derivations_per_vertex: Some(1),
                ..QueryOptions::default()
            },
        ),
        (
            "caching + pruning",
            QueryOptions {
                use_cache: true,
                max_depth: Some(3),
                max_derivations_per_vertex: Some(1),
                ..QueryOptions::default()
            },
        ),
    ];
    let baseline = run(&mut nt, &cases[0].1);
    for (label, options) in &cases {
        let (messages, bytes, latency) = run(&mut nt, options);
        table.push(
            ExperimentRow::new(*label)
                .with("messages", messages as f64)
                .with("bytes", bytes as f64)
                .with("latency_ms", latency)
                .with(
                    "traffic_saving_pct",
                    100.0 * (1.0 - messages as f64 / baseline.0.max(1) as f64),
                ),
        );
    }
    table
}

/// E8 — snapshot / log store / replay pipeline.
pub fn experiment_logstore_replay(cadences: &[usize]) -> ReportTable {
    let mut table = ReportTable::new("E8 log store snapshots and replay");
    for &events_per_snapshot in cadences {
        let mut nt = mincost_ladder(4);
        let mut store = LogStore::new();
        store.add(capture_snapshot(&nt));
        let events = [
            TopologyEvent::LinkDown {
                a: "n1".into(),
                b: "n2".into(),
            },
            TopologyEvent::CostChange {
                a: "n3".into(),
                b: "n4".into(),
                cost: 4,
            },
            TopologyEvent::LinkUp(simnet::Link::new("n1", "n2", 2)),
            TopologyEvent::LinkDown {
                a: "n2".into(),
                b: "n6".into(),
            },
        ];
        for (i, event) in events.iter().enumerate() {
            nt.apply_topology_event(event);
            if (i + 1) % events_per_snapshot == 0 {
                store.add(capture_snapshot(&nt));
            }
        }
        store.add(capture_snapshot(&nt));
        let mut replay = Replay::new(&store);
        let mut total_changes = 0usize;
        while let Some(diff) = replay.step() {
            total_changes += diff.appeared.len() + diff.disappeared.len();
        }
        table.push(
            ExperimentRow::new(format!("snapshot every {events_per_snapshot} event(s)"))
                .with("snapshots", store.len() as f64)
                .with("uploaded_bytes", store.uploaded_bytes() as f64)
                .with("replay_changes", total_changes as f64),
        );
    }
    table
}

/// The standard experiments as lazily-built closures, so callers (the
/// `report` binary) can time each table's construction individually.
#[allow(clippy::type_complexity)]
pub fn experiment_builders() -> Vec<Box<dyn Fn() -> ReportTable>> {
    vec![
        Box::new(|| experiment_mincost_provenance(&[2, 4, 8])),
        Box::new(|| experiment_incremental(&[2, 3, 4])),
        Box::new(|| experiment_maintenance_overhead(&[2, 4, 8])),
        Box::new(|| experiment_bgp(&[(2, 3, 5), (3, 6, 12), (3, 8, 20)])),
        Box::new(experiment_query_types),
        Box::new(experiment_query_optimizations),
        Box::new(|| experiment_logstore_replay(&[1, 2, 4])),
    ]
}

/// All experiment tables, in order (used by the `report` binary).
pub fn all_experiments() -> Vec<ReportTable> {
    experiment_builders().iter().map(|build| build()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn incremental_beats_recompute() {
        let table = experiment_incremental(&[3]);
        for row in &table.rows {
            assert!(row.get("speedup_x").unwrap() >= 1.0, "{row:?}");
        }
    }

    #[test]
    fn caching_and_pruning_save_traffic() {
        let table = experiment_query_optimizations();
        let baseline = table.rows[0].get("messages").unwrap();
        let caching = table
            .rows
            .iter()
            .find(|r| r.label == "caching")
            .unwrap()
            .get("messages")
            .unwrap();
        let pruning = table
            .rows
            .iter()
            .find(|r| r.label == "pruning 1 deriv/vertex")
            .unwrap()
            .get("messages")
            .unwrap();
        assert!(caching < baseline);
        assert!(pruning <= baseline);
    }

    #[test]
    fn overhead_table_is_populated() {
        let table = experiment_maintenance_overhead(&[2]);
        assert_eq!(table.rows.len(), 1);
        assert!(table.rows[0].get("prov_entries").unwrap() > 0.0);
    }
}
