//! Regenerate every NetTrails experiment table (E1–E8 of DESIGN.md), print
//! them to stdout and write a machine-readable `BENCH_results.json` so the
//! performance trajectory can be compared across revisions.
//!
//! ```text
//! cargo run --release -p nettrails-bench --bin report
//! ```

use logstore::{
    KvBackend, LogBackend, LogStore, MemBackend, Replay, SegmentFileBackend, SnapshotCapturer,
    SystemSnapshot,
};
use nettrails::{NetTrails, NetTrailsConfig, ReportTable};
use nt_runtime::{
    base_rule_sym, CompiledProgram, EngineConfig, EngineStats, Firing, Interner, NodeEngine,
    NodeId, StepOutput, Sym, Tuple, Value,
};
use provenance::{ProvenanceSystem, QueryKind, QueryOptions, QueryResult, TraversalOrder};
use serde::Serialize;
use simnet::{Link, Topology, TopologyEvent};
use std::sync::Arc;
use std::time::Instant;

/// The file the results are written to (in the invocation directory).
const RESULTS_PATH: &str = "BENCH_results.json";

#[derive(Serialize)]
struct JoinProbeComparison {
    scenario: String,
    indexed_probes: u64,
    scan_probes: u64,
    reduction_factor: f64,
}

/// Provenance-store footprint and query latency for one converged scenario:
/// the interned (fixed-width ids + one-time dictionary) encoding vs. the
/// string-per-entry encoding it replaced, and the wall-clock of a full
/// lineage query sweep before/after the result cache is warm.
#[derive(Serialize)]
struct ProvenanceStoreReport {
    scenario: String,
    prov_entries: usize,
    rule_execs: usize,
    /// Bytes of provenance state in the interned encoding (records +
    /// one-time dictionary).
    interned_bytes: usize,
    /// The one-time dictionary share of `interned_bytes`.
    dict_bytes: usize,
    /// The same state priced with the old `Addr = String` encoding (every
    /// entry carries its rloc/rule/node strings inline).
    string_encoded_bytes: usize,
    bytes_reduction_factor: f64,
    /// Wall-clock microseconds for a lineage query over every derived tuple,
    /// cold engine (no cache reuse).
    query_wall_us_uncached: u64,
    /// Same sweep repeated with the result cache warm.
    query_wall_us_cached: u64,
}

/// Wire accounting of batched per-destination delta shipping vs the
/// per-tuple baseline, both measured in the same report run with identical
/// payload pricing (fixed-width interned records + once-per-destination
/// dictionary headers). The saving is the amortized per-message framing.
#[derive(Serialize)]
struct DeltaShippingReport {
    scenario: String,
    /// Protocol messages under batched shipping.
    messages_sent: u64,
    /// Delta records those messages carried (coalescing means
    /// `messages_sent < tuples_shipped`).
    tuples_shipped: u64,
    /// Dictionary-header bytes (interned strings shipped once per
    /// destination on first use).
    dict_header_bytes: u64,
    /// Fixed-width record-body bytes (tuple + derivation payloads).
    body_bytes: u64,
    /// Total protocol bytes on the wire under batched shipping, including
    /// per-message network framing headers.
    batched_total_bytes: u64,
    /// Total protocol bytes for the same workload shipped one message per
    /// tuple (same payload accounting, one framing header per record).
    per_tuple_total_bytes: u64,
    /// `per_tuple_total_bytes / batched_total_bytes`.
    reduction_factor: f64,
}

/// One row of the sharded-maintenance scaling sweep: the same synthetic
/// firing stream applied through the shard router at one shard count.
/// Determinism is part of the measurement: `matches_single_shard` asserts
/// the resulting provenance state is bit-identical to the S=1 run, and the
/// cross-shard exchange counts are exact (stable name-hash routing), so CI
/// can gate on them drifting.
#[derive(Serialize)]
struct ShardedProvenanceReport {
    scenario: String,
    /// Shard count of this run.
    shards: usize,
    /// Rounds the stream was chunked into.
    rounds: usize,
    /// Total firings applied (inserts + retractions).
    firings: u64,
    /// Wall-clock microseconds to maintain the whole stream.
    wall_us: u64,
    /// Cores available to the run (`std::thread::available_parallelism`).
    /// Shard workers only engage when this is > 1, so single-core hosts
    /// measure pure routing/exchange overhead, not parallel speedup.
    host_parallelism: usize,
    /// Shard workers the apply phase could actually engage: `min(shards,
    /// host_parallelism)` on multi-core hosts, 1 (inline apply) on
    /// single-core hosts. CI uses this to decide whether `speedup_vs_single`
    /// is a real scaling measurement or pure overhead accounting.
    workers_used: usize,
    /// Firings applied per round, in round order (identical across the
    /// shard sweep — the stream is fixed before the sweep starts).
    firings_per_round: Vec<u64>,
    /// Cross-shard maintenance batches sealed (0 for S=1).
    cross_shard_batches: u64,
    /// `ruleExec` halves those batches carried.
    cross_shard_records: u64,
    /// Once-per-destination dictionary bytes the exchange shipped.
    cross_shard_dict_bytes: u64,
    /// `wall_us(S=1) / wall_us(S)` within this sweep.
    speedup_vs_single: f64,
    /// True when the final system content digest equals the S=1 run's.
    matches_single_shard: bool,
}

/// One row of the morsel-driven parallel fixpoint sweep: the same
/// fan-out-join generation (≥ 10^5 rule firings from one delta batch)
/// evaluated by a single [`NodeEngine`] at one worker count. Determinism is
/// part of the measurement: `matches_w1` asserts the run's full
/// [`StepOutput`] (firing stream, local changes, outbox batches), final
/// tables and engine counters are bit-identical to the W=1 run, so CI can
/// gate on any divergence.
#[derive(Serialize)]
struct ParallelFixpointReport {
    scenario: String,
    /// `fixpoint_workers` of this run (morsels in flight on the shared pool).
    workers: usize,
    /// Monotonic trigger tasks in the measured generation.
    tasks: u64,
    /// Rule firings the generation committed.
    firings: u64,
    /// Wall-clock microseconds for the measured `run()`.
    wall_us: u64,
    /// Cores available to the run (`std::thread::available_parallelism`).
    /// The pool has one worker per core, so single-core hosts measure
    /// dispatch overhead, not speedup — CI skips the speedup gate there.
    host_parallelism: usize,
    /// Threads in the process-wide worker pool.
    pool_workers: usize,
    /// `wall_us(W=1) / wall_us(W)` within this sweep.
    speedup_vs_w1: f64,
    /// True when the run's outputs, tables and counters equal the W=1 run's.
    matches_w1: bool,
}

/// One row of the columnar-storage comparison: the same workload evaluated
/// by a row-backed and a columnar-backed engine at one worker count.
/// Determinism is part of the measurement: `matches_row` asserts the
/// columnar run's outputs, final tables and engine counters (`join_probes`
/// included — the vectorized probe kernel must yield exactly the candidates
/// the row store yields) are bit-identical to the row run, so CI can gate on
/// any divergence. The join-kernel scenario rows carry the speedup gate;
/// the platform convergence rows are informational (their wall-clock mixes
/// network simulation and provenance capture into the join phase).
#[derive(Serialize)]
struct VectorizedJoinReport {
    scenario: String,
    /// `fixpoint_workers` of both runs in this row.
    workers: usize,
    /// Wall-clock microseconds, row-major reference layout.
    row_wall_us: u64,
    /// Wall-clock microseconds, columnar layout + vectorized probe kernel.
    columnar_wall_us: u64,
    /// `row_wall_us / columnar_wall_us`.
    speedup_columnar: f64,
    /// Resident table bytes under the row layout (tuple + derivation
    /// records priced like their wire encoding, 8-byte posting entries).
    row_bytes: usize,
    /// Resident table bytes under the columnar layout (dictionary-encoded
    /// address columns, 4-byte posting entries).
    columnar_bytes: usize,
    /// Cores available to the run (`std::thread::available_parallelism`).
    /// CI gates the speedup only when this is ≥ 4 (below that the host
    /// measures scheduling noise, not the kernel).
    host_parallelism: usize,
    /// True when the columnar run is bit-identical to the row run.
    matches_row: bool,
    /// True when this row participates in the CI speedup gate (the W=1
    /// join-kernel measurement; parallel and platform rows are reported but
    /// not gated).
    gate_speedup: bool,
}

/// One row of the distributed query fan-out comparison: the *same* lineage
/// query executed as a message-driven session under both traversal orders,
/// on a fresh converged platform each (so per-destination dictionaries start
/// cold for both). Latency is *measured* — the simulated-clock span of the
/// session — so `bfs_beats_dfs` is a property of the executor's schedule
/// (max over hop chains vs. sum of hops), not of a latency formula; CI gates
/// on it.
#[derive(Serialize)]
struct QueryFanoutReport {
    scenario: String,
    /// Depth of the proof tree the query expanded.
    proof_depth: usize,
    /// Hop records exchanged (identical across traversal orders).
    query_records: u64,
    /// Frames shipped under sequential depth-first traversal.
    dfs_messages: u64,
    /// Frames shipped under concurrent breadth-first fan-out (per-destination
    /// coalescing makes this smaller).
    bfs_messages: u64,
    /// Payload bytes (dictionary headers included) under depth-first.
    dfs_bytes: u64,
    /// Payload bytes under breadth-first.
    bfs_bytes: u64,
    /// First-use dictionary bytes within `bfs_bytes`.
    bfs_dict_bytes: u64,
    /// Measured session latency, depth-first (simulated ms).
    dfs_latency_ms: f64,
    /// Measured session latency, breadth-first (simulated ms).
    bfs_latency_ms: f64,
    /// `dfs_latency_ms / bfs_latency_ms`.
    fanout_speedup: f64,
    /// True when breadth-first measured no worse than depth-first.
    bfs_beats_dfs: bool,
}

/// One row of the incremental-snapshot comparison: the same churned run
/// (converged platform + deterministic link churn) captured once, then fed
/// record-by-record into one log backend through a [`SnapshotCapturer`]
/// (periodic checkpoints + deltas) and compared against the pre-incremental
/// full-upload chain. Correctness is part of the measurement:
/// `matches_full` asserts the materialized snapshot at every capture index
/// is bit-identical to the full chain's, so CI can gate on it per backend.
#[derive(Serialize)]
struct SnapshotReplayReport {
    scenario: String,
    /// Backend name ("mem", "segment_file", "kv").
    backend: String,
    /// Snapshots captured in the run (1 post-fixpoint + 1 per churn event).
    captures: usize,
    /// Checkpoint cadence of the incremental chain (a checkpoint every Nth
    /// capture, deltas in between).
    checkpoint_every: usize,
    /// Checkpoint records the capturer emitted.
    checkpoints: usize,
    /// Delta records the capturer emitted.
    deltas: usize,
    /// Upload bytes of the reference chain (every capture shipped in full).
    full_bytes: u64,
    /// Upload bytes of the incremental chain (checkpoints + deltas).
    incremental_bytes: u64,
    /// Dictionary bytes carried by delta records alone — sublinear after
    /// warmup: once the run stops minting names, every further delta ships
    /// zero dictionary bytes.
    delta_dict_bytes: u64,
    /// Dictionary bytes of the *last* record (a delta after warmup, so CI
    /// gates this to 0).
    tail_dict_bytes: u64,
    /// Backend storage footprint after all appends.
    storage_bytes: usize,
    /// Footprint after a compaction pass (never larger than
    /// `storage_bytes`; answers are unchanged).
    compacted_bytes: usize,
    /// Wall-clock microseconds for a full replay walk (materialize every
    /// snapshot via cached delta application, diff consecutive pairs).
    replay_wall_us: u64,
    /// True when every materialized snapshot equals the full chain's.
    matches_full: bool,
}

/// One scenario-suite row: a seeded topology family converged under a
/// trace-driven workload (link churn, flash-crowd query storms, or mixed
/// concurrent protocols), with throughput and measured (simulated-clock)
/// query latency. `matches_seed` re-derives the topology and trace from the
/// spec's seed and — on slice rows — re-runs the whole scenario and compares
/// replay digests, so CI gates bit-identical replays per PR.
#[derive(Serialize)]
struct ScenarioSuiteReport {
    scenario: String,
    family: String,
    workload: String,
    seed: u64,
    /// True for representative-slice rows (run per-PR); false for the
    /// nightly-only 10^4-node rows.
    slice: bool,
    nodes: usize,
    links: usize,
    anchors: usize,
    converge_rounds: usize,
    converged_tuples: usize,
    converge_wall_ms: f64,
    replay_wall_ms: f64,
    /// Simulated span of the replay.
    sim_ms: f64,
    churn_events: usize,
    queries: usize,
    /// Insertions + deletions during replay (incremental recomputation
    /// volume).
    tuples_touched: usize,
    deliveries: usize,
    /// Trace events (churn + queries) per wall-clock second of replay.
    events_per_sec: f64,
    /// Tuples touched per wall-clock second of replay.
    tuples_per_sec: f64,
    /// Median measured query latency (simulated milliseconds).
    p50_latency_ms: f64,
    /// 99th-percentile measured query latency (simulated milliseconds).
    p99_latency_ms: f64,
    /// Seed determinism: topology and trace digests re-derived from the seed
    /// match the run, and (slice rows) an independent re-run reproduced the
    /// replay digest bit-for-bit.
    matches_seed: bool,
    /// Machine-independent digest of final state + latencies + counters.
    replay_digest: String,
}

/// One multi-tenant query-service scenario: 10^3+ concurrent provenance
/// sessions from ≥8 tenants against a churning AS-graph, run under merged
/// and per-session frame sealing. CI gates the merged/split digest match,
/// the frames-per-destination win, sublinear frame and dictionary growth
/// across the session scales, `p99 >= p50` and the fairness ratio.
#[derive(Serialize)]
struct QueryServiceReport {
    scenario: String,
    seed: u64,
    /// True for representative-slice rows (run per-PR); false for the
    /// nightly-only full-sweep rows.
    slice: bool,
    nodes: usize,
    links: usize,
    tenants: usize,
    /// Sessions offered across all waves (admitted + rejected).
    offered: usize,
    /// Sessions rejected with an explicit `Overloaded` at enqueue.
    rejected: usize,
    /// Sessions that completed with a result.
    completed: usize,
    /// Sessions cancelled at their deadline (queued or in flight).
    expired: usize,
    churn_events: usize,
    /// Query-plane frames shipped with cross-session merging on / off.
    frames_merged: u64,
    frames_split: u64,
    /// Distinct frame destinations observed during the run.
    dests: usize,
    frames_per_dest_merged: f64,
    frames_per_dest_split: f64,
    /// First-use dictionary bytes charged under each sealing mode (equal:
    /// the per-destination dictionary is shared across sessions either way).
    dict_bytes_merged: u64,
    dict_bytes_split: u64,
    /// Median / 99th-percentile completed-session latency (simulated ms).
    p50_latency_ms: f64,
    p99_latency_ms: f64,
    /// Completed sessions per wall-clock second of the merged-mode run.
    sessions_per_sec: f64,
    /// Completed sessions per tenant, sorted by tenant name.
    per_tenant_completed: Vec<(String, u64)>,
    /// max/min completed sessions across tenants (equal offered load).
    fairness_ratio: f64,
    /// Merged-mode per-session outcomes digest equals per-session sealing.
    merged_matches_split: bool,
    /// An independent merged-mode re-run reproduced the digest.
    matches_rerun: bool,
    /// A 2-worker merged-mode run reproduced the digest (or the row did not
    /// request worker verification; see `ServiceScenarioSpec`).
    matches_workers: bool,
    /// Simulated span of the merged-mode run.
    sim_ms: f64,
    converge_wall_ms: f64,
    run_wall_ms: f64,
    /// Machine-independent digest of per-session outcomes + tenant counters.
    service_digest: String,
}

#[derive(Serialize)]
struct BenchResults {
    /// Schema marker for downstream tooling.
    format: String,
    /// Wall-clock milliseconds to build each experiment table.
    experiment_wall_ms: Vec<(String, u64)>,
    /// The experiment tables themselves.
    tables: Vec<ReportTable>,
    /// Join-candidate counts for the planned, index-backed pipeline vs the
    /// full-scan baseline on the standard convergence scenarios.
    join_probes: Vec<JoinProbeComparison>,
    /// Provenance-store bytes (interned vs string encoding) and query
    /// wall-clock on the standard scenarios.
    provenance_stores: Vec<ProvenanceStoreReport>,
    /// Batched delta shipping vs per-tuple baseline on the standard
    /// scenarios.
    delta_shipping: Vec<DeltaShippingReport>,
    /// Sharded provenance maintenance: shard-count sweep (S ∈ {1, 2, 4, 8})
    /// over a synthetic maintenance stream, with wall-clock, cross-shard
    /// exchange counts and the determinism check.
    sharded_provenance: Vec<ShardedProvenanceReport>,
    /// Morsel-driven parallel fixpoint: worker-count sweep (W ∈ {1, 2, 4})
    /// over one large fan-out-join generation, with wall-clock and the
    /// bit-identical-output check. CI gates `matches_w1` on every row and
    /// the W=4 speedup on multi-core hosts.
    parallel_fixpoint: Vec<ParallelFixpointReport>,
    /// Columnar vs row-major table storage: a probe-heavy join kernel
    /// (W ∈ {1, 4}) plus scaled pathvector/mincost ladder convergences,
    /// each run under both backings. CI gates `matches_row` on every row
    /// and the W=1 kernel speedup on ≥4-core hosts.
    vectorized_joins: Vec<VectorizedJoinReport>,
    /// Distributed query fan-out: DFS vs BFS message-driven sessions on the
    /// standard scenarios, with measured (simulated-clock) latency. CI gates
    /// `bfs_beats_dfs`.
    query_fanout: Vec<QueryFanoutReport>,
    /// Incremental snapshots through every pluggable log backend: the same
    /// churned run captured as checkpoints + dictionary-diffed deltas vs the
    /// full-upload baseline. CI gates `matches_full` on every row,
    /// `incremental_bytes <= full_bytes` everywhere (strictly below on the
    /// pathvector ladder), compaction never growing the footprint, and the
    /// post-warmup delta dictionary cost being zero.
    snapshot_replay: Vec<SnapshotReplayReport>,
    /// Internet-scale scenario suite: seeded topology families (fat-tree,
    /// AS-graph, small-world, mobility mesh) under trace-driven workloads
    /// (churn, query storms, mixed concurrent protocols), with throughput
    /// and measured p50/p99 query latency. Per-PR runs carry the
    /// representative slice; `NT_SCENARIO_SCALE=full` (nightly) adds the
    /// 10^4-node rows. CI gates `matches_seed` and `p99 >= p50` on every
    /// row.
    scenario_suite: Vec<ScenarioSuiteReport>,
    /// Multi-tenant query service: admission control, deficit-round-robin
    /// fair scheduling and cross-session frame flushing driven at 10^3+
    /// concurrent sessions from ≥8 tenants on a churning AS-graph. CI gates
    /// `merged_matches_split`/`matches_rerun`/`matches_workers`, the
    /// frames-per-destination win and its sublinear growth in session
    /// count, `p99 >= p50` and `fairness_ratio <= 1.5` on every row.
    query_service: Vec<QueryServiceReport>,
}

/// Wire size of a value under the pre-interning encoding (addresses carried
/// their name inline).
fn legacy_value_size(v: &Value) -> usize {
    match v {
        Value::Int(_) | Value::Double(_) | Value::Id(_) => 8,
        Value::Bool(_) | Value::Infinity => 1,
        Value::Str(s) => 4 + s.len(),
        Value::Addr(a) => 4 + a.len(),
        Value::List(l) => 4 + l.iter().map(legacy_value_size).sum::<usize>(),
    }
}

/// Provenance state priced with the old string-per-entry encoding.
fn string_encoded_bytes(nt: &NetTrails) -> usize {
    let mut bytes = 0usize;
    for store in nt.provenance().stores() {
        for (_, entries) in store.iter_prov() {
            bytes += entries
                .iter()
                .map(|e| 8 + 8 + 4 + e.rloc.len())
                .sum::<usize>();
        }
        for exec in store.iter_rule_execs() {
            bytes += 8 + exec.rule.len() + exec.node.len() + 8 * exec.inputs.len();
        }
        for t in store.iter_tuples() {
            bytes += 8 + t.relation.len() + t.values.iter().map(legacy_value_size).sum::<usize>();
        }
    }
    bytes
}

fn provenance_store_report(name: &str, program: &str, topology: Topology) -> ProvenanceStoreReport {
    let mut nt =
        NetTrails::new(program, topology, NetTrailsConfig::default()).expect("program compiles");
    nt.seed_links_from_topology();
    nt.run_to_fixpoint();

    let stats = nt.stats().provenance;
    let string_bytes = string_encoded_bytes(&nt);

    // Lineage sweep over every top-level derived tuple of the scenario.
    let targets: Vec<_> = nt
        .relation("minCost")
        .into_iter()
        .chain(nt.relation("bestPathCost"))
        .collect();
    let sweep = |nt: &mut NetTrails, options: &QueryOptions| -> u64 {
        let start = Instant::now();
        for (node, tuple) in &targets {
            nt.query(tuple)
                .from_node(node.as_str())
                .kind(QueryKind::Lineage)
                .options(options.clone())
                .run();
        }
        start.elapsed().as_micros() as u64
    };
    nt.clear_query_cache();
    // Cold baseline: caching off, so overlapping lineages are re-traversed.
    let query_wall_us_uncached = sweep(&mut nt, &QueryOptions::default());
    // Warm: one cached sweep to populate, a second to measure the hits.
    let cached_opts = QueryOptions::cached();
    sweep(&mut nt, &cached_opts);
    let query_wall_us_cached = sweep(&mut nt, &cached_opts);

    ProvenanceStoreReport {
        scenario: name.to_string(),
        prov_entries: stats.prov_entries,
        rule_execs: stats.rule_execs,
        interned_bytes: stats.bytes,
        dict_bytes: stats.dict_bytes,
        string_encoded_bytes: string_bytes,
        bytes_reduction_factor: string_bytes as f64 / stats.bytes.max(1) as f64,
        query_wall_us_uncached,
        query_wall_us_cached,
    }
}

fn delta_shipping_report(name: &str, program: &str, topology: Topology) -> DeltaShippingReport {
    let run = |config: NetTrailsConfig| {
        let mut nt = NetTrails::new(program, topology.clone(), config).expect("program compiles");
        nt.seed_links_from_topology();
        nt.run_to_fixpoint();
        nt.stats()
    };
    let batched = run(NetTrailsConfig::default());
    let per_tuple = run(NetTrailsConfig::without_batching());
    let batched_total_bytes = batched.network.bytes;
    let per_tuple_total_bytes = per_tuple.network.bytes;
    DeltaShippingReport {
        scenario: name.to_string(),
        messages_sent: batched.network.messages,
        tuples_shipped: batched.network.records,
        dict_header_bytes: batched.engine.dict_bytes_sent,
        body_bytes: batched.engine.bytes_sent - batched.engine.dict_bytes_sent,
        batched_total_bytes,
        per_tuple_total_bytes,
        reduction_factor: per_tuple_total_bytes as f64 / batched_total_bytes.max(1) as f64,
    }
}

/// A deterministic synthetic maintenance workload: `width` base tuples over
/// `nodes` nodes and `layers - 1` derived layers. Post-localization, most
/// rule heads are homed at the executing node, so three quarters of the
/// derived firings here are exec-local and every fourth is homed one node
/// over (crossing nodes — and, at S > 1, usually shards). A churn phase then
/// retracts and re-derives every third derived firing. Chunked into rounds
/// the way the platform feeds the maintenance engine.
fn maintenance_rounds(
    node_names: &[String],
    layers: usize,
    width: usize,
    round_size: usize,
) -> Vec<Vec<Firing>> {
    let node = |i: usize| NodeId::new(&node_names[i % node_names.len()]);
    let tuple = |layer: usize, i: usize| {
        Tuple::new(
            format!("m{layer}"),
            vec![Value::addr(node(i)), Value::Int(i as i64)],
        )
    };
    let mut inserts = Vec::new();
    for i in 0..width {
        inserts.push(Firing {
            rule: base_rule_sym(),
            node: node(i),
            head: tuple(0, i),
            head_home: node(i),
            inputs: vec![],
            input_tuples: vec![],
            insert: true,
        });
    }
    let mut churnable = Vec::new();
    for layer in 1..layers {
        for i in 0..width {
            let a = tuple(layer - 1, i);
            let b = tuple(layer - 1, (i + 1) % width);
            let home = if i % 4 == 0 { node(i + 1) } else { node(i) };
            let firing = Firing {
                rule: Sym::new(&format!("r{layer}")),
                node: node(i),
                head: tuple(layer, i),
                head_home: home,
                inputs: vec![a.id(), b.id()],
                input_tuples: vec![a, b],
                insert: true,
            };
            if i % 3 == 0 {
                churnable.push(firing.clone());
            }
            inserts.push(firing);
        }
    }
    let mut rounds: Vec<Vec<Firing>> = inserts
        .chunks(round_size)
        .map(|chunk| chunk.to_vec())
        .collect();
    // Churn: retract every third derived firing in one round, re-derive in
    // the next (retractions ship without input tuple contents).
    rounds.push(
        churnable
            .iter()
            .map(|f| {
                let mut r = f.clone();
                r.insert = false;
                r.input_tuples.clear();
                r
            })
            .collect(),
    );
    rounds.push(churnable);
    rounds
}

/// Sweep the shard router over S ∈ {1, 2, 4, 8} on one synthetic
/// maintenance stream, measuring wall-clock and cross-shard exchange, and
/// checking every run against the S=1 content digest.
fn sharded_provenance_sweep(
    scenario: &str,
    nodes: usize,
    layers: usize,
    width: usize,
    round_size: usize,
) -> Vec<ShardedProvenanceReport> {
    let node_names: Vec<String> = (0..nodes).map(|i| format!("s{i:02}")).collect();
    let rounds = maintenance_rounds(&node_names, layers, width, round_size);
    let firings_per_round: Vec<u64> = rounds.iter().map(|r| r.len() as u64).collect();
    let firings: u64 = firings_per_round.iter().sum();
    let host_parallelism = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1);
    let mut reports = Vec::new();
    let mut single_digest = 0u64;
    let mut single_wall = 0u64;
    for shards in [1usize, 2, 4, 8] {
        let mut system = ProvenanceSystem::with_shards(node_names.iter(), shards);
        let start = Instant::now();
        for round in &rounds {
            system.apply_round(round);
        }
        let wall_us = start.elapsed().as_micros() as u64;
        let digest = system.content_digest();
        if shards == 1 {
            single_digest = digest;
            single_wall = wall_us;
        }
        let stats = system.shard_stats();
        reports.push(ShardedProvenanceReport {
            scenario: scenario.to_string(),
            shards,
            rounds: rounds.len(),
            firings,
            wall_us,
            host_parallelism,
            workers_used: if host_parallelism > 1 {
                shards.min(host_parallelism)
            } else {
                1
            },
            firings_per_round: firings_per_round.clone(),
            cross_shard_batches: stats.cross_shard_batches,
            cross_shard_records: stats.cross_shard_records,
            cross_shard_dict_bytes: stats.cross_shard_dict_bytes,
            speedup_vs_single: single_wall as f64 / wall_us.max(1) as f64,
            matches_single_shard: digest == single_digest,
        });
    }
    reports
}

/// Sweep the engine's fixpoint worker count over one large fan-out-join
/// generation. The workload is a two-atom join `out(A,C) :- e(A,B), f(B,C)`
/// with `keys * fanout` pre-loaded `f` facts and `probes` `e` facts inserted
/// as a single delta batch, so one generation carries `probes` trigger tasks
/// and commits `probes * fanout` firings — large enough that morsel dispatch
/// is the dominant cost being measured, well past the engine's inline
/// threshold. Every run is checked bit-for-bit against the W=1 run.
fn parallel_fixpoint_sweep(
    scenario: &str,
    probes: usize,
    keys: usize,
    fanout: usize,
) -> Vec<ParallelFixpointReport> {
    let program = Arc::new(
        CompiledProgram::from_source("r1 out(@S,A,C) :- e(@S,A,B), f(@S,B,C).")
            .expect("program compiles"),
    );
    let host_parallelism = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1);
    let mut reports = Vec::new();
    let mut baseline: Option<(StepOutput, Vec<String>, EngineStats)> = None;
    let mut w1_wall = 0u64;
    for workers in [1usize, 2, 4] {
        let mut engine = NodeEngine::new(
            program.clone(),
            EngineConfig::new("n1").with_fixpoint_workers(workers),
        );
        // Pre-load the probe side; its generation joins against an empty `e`
        // and commits nothing, leaving the tables converged.
        for b in 0..keys {
            for c in 0..fanout {
                engine.insert_base(Tuple::new(
                    "f",
                    vec![
                        Value::addr("n1"),
                        Value::Int(b as i64),
                        Value::Int(c as i64),
                    ],
                ));
            }
        }
        engine.run();
        // The measured generation: every `e` insert is one trigger task
        // joining `fanout` stored `f` facts.
        for a in 0..probes {
            engine.insert_base(Tuple::new(
                "e",
                vec![
                    Value::addr("n1"),
                    Value::Int(a as i64),
                    Value::Int((a % keys) as i64),
                ],
            ));
        }
        let start = Instant::now();
        let out = engine.run();
        let wall_us = start.elapsed().as_micros() as u64;
        let firings = out.firings.len() as u64;
        let mut table_dump: Vec<String> = engine
            .database()
            .tables()
            .flat_map(|t| t.iter().map(|s| format!("{:?}", s.to_stored())))
            .collect();
        table_dump.sort();
        let stats = engine.stats().clone();
        let matches_w1 = match &baseline {
            None => {
                w1_wall = wall_us;
                baseline = Some((out, table_dump, stats));
                true
            }
            Some((b_out, b_dump, b_stats)) => {
                *b_out == out && *b_dump == table_dump && *b_stats == stats
            }
        };
        reports.push(ParallelFixpointReport {
            scenario: scenario.to_string(),
            workers,
            tasks: probes as u64,
            firings,
            wall_us,
            host_parallelism,
            pool_workers: provenance::pool::workers(),
            speedup_vs_w1: w1_wall as f64 / wall_us.max(1) as f64,
            matches_w1,
        });
    }
    reports
}

/// Build a single engine over the probe-heavy join kernel with the given
/// backing, evaluate the measured generation and return the run's outputs
/// plus the wall-clock and resident table bytes. The kernel joins on two
/// columns: the anchor posting list holds `fanout` candidates per probe and
/// the residual bound column keeps one in `selectivity` of them, so most of
/// the work is candidate filtering — the row store resolves every posting
/// entry through a hash + tree lookup where the columnar kernel compares a
/// stored column cell in place.
#[allow(clippy::type_complexity)]
fn join_kernel_run(
    program: &Arc<CompiledProgram>,
    columnar: bool,
    workers: usize,
    probes: usize,
    keys: usize,
    fanout: usize,
    selectivity: usize,
) -> (StepOutput, Vec<String>, EngineStats, u64, usize) {
    let mut config = EngineConfig::new("n1").with_fixpoint_workers(workers);
    if !columnar {
        config = config.with_row_storage();
    }
    let mut engine = NodeEngine::new(program.clone(), config);
    // Pre-load the probe side; its generation joins against an empty `e`
    // and commits nothing, leaving the tables converged.
    for b in 0..keys {
        for c in 0..fanout {
            engine.insert_base(Tuple::new(
                "f",
                vec![
                    Value::addr("n1"),
                    Value::Int(b as i64),
                    Value::Int(c as i64),
                    Value::Int((c % selectivity) as i64),
                ],
            ));
        }
    }
    engine.run();
    // The measured generation: every `e` insert probes one `fanout`-sized
    // posting list and the residual bound column keeps `fanout/selectivity`
    // of the candidates.
    for a in 0..probes {
        engine.insert_base(Tuple::new(
            "e",
            vec![
                Value::addr("n1"),
                Value::Int(a as i64),
                Value::Int((a % keys) as i64),
                Value::Int(0),
            ],
        ));
    }
    let start = Instant::now();
    let out = engine.run();
    let wall_us = start.elapsed().as_micros() as u64;
    let mut table_dump: Vec<String> = engine
        .database()
        .tables()
        .flat_map(|t| t.iter().map(|s| format!("{:?}", s.to_stored())))
        .collect();
    table_dump.sort();
    let bytes = engine.database().storage_bytes();
    let stats = engine.stats().clone();
    (out, table_dump, stats, wall_us, bytes)
}

/// The join-kernel rows of the columnar comparison: W ∈ {1, 4}, both
/// backings per row, bit-identical outputs checked within the row.
fn vectorized_join_kernel_sweep(
    scenario: &str,
    probes: usize,
    keys: usize,
    fanout: usize,
    selectivity: usize,
) -> Vec<VectorizedJoinReport> {
    let program = Arc::new(
        CompiledProgram::from_source("r1 out(@S,A,C) :- e(@S,A,B,D), f(@S,B,C,D).")
            .expect("program compiles"),
    );
    let host_parallelism = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1);
    let mut reports = Vec::new();
    for workers in [1usize, 4] {
        let row = join_kernel_run(&program, false, workers, probes, keys, fanout, selectivity);
        let col = join_kernel_run(&program, true, workers, probes, keys, fanout, selectivity);
        let matches_row = row.0 == col.0 && row.1 == col.1 && row.2 == col.2;
        reports.push(VectorizedJoinReport {
            scenario: scenario.to_string(),
            workers,
            row_wall_us: row.3,
            columnar_wall_us: col.3,
            speedup_columnar: row.3 as f64 / col.3.max(1) as f64,
            row_bytes: row.4,
            columnar_bytes: col.4,
            host_parallelism,
            matches_row,
            gate_speedup: workers == 1,
        });
    }
    reports
}

/// One platform-convergence row of the columnar comparison: the same
/// protocol run to fixpoint on the same topology under both backings, with
/// the engines' relation contents, aggregated engine counters and the
/// provenance content digest compared bit for bit.
fn vectorized_join_platform_row(
    name: &str,
    program: &str,
    topology: Topology,
    workers: usize,
) -> VectorizedJoinReport {
    let host_parallelism = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1);
    let run = |columnar: bool| {
        let mut config = if columnar {
            NetTrailsConfig::default()
        } else {
            NetTrailsConfig::with_row_storage()
        };
        config.fixpoint_workers = workers;
        let mut nt = NetTrails::new(program, topology.clone(), config).expect("program compiles");
        nt.seed_links_from_topology();
        let start = Instant::now();
        nt.run_to_fixpoint();
        let wall_us = start.elapsed().as_micros() as u64;
        let mut dump: Vec<String> = Vec::new();
        let mut bytes = 0usize;
        for node in topology.nodes() {
            let engine = nt.engine(node).expect("engine exists");
            bytes += engine.database().storage_bytes();
            dump.extend(
                engine
                    .database()
                    .tables()
                    .flat_map(|t| t.iter().map(|s| format!("{node} {:?}", s.to_stored()))),
            );
        }
        dump.sort();
        let digest = nt.provenance().content_digest();
        let stats = nt.stats().engine.clone();
        (dump, stats, digest, wall_us, bytes)
    };
    let row = run(false);
    let col = run(true);
    let matches_row = row.0 == col.0 && row.1 == col.1 && row.2 == col.2;
    VectorizedJoinReport {
        scenario: name.to_string(),
        workers,
        row_wall_us: row.3,
        columnar_wall_us: col.3,
        speedup_columnar: row.3 as f64 / col.3.max(1) as f64,
        row_bytes: row.4,
        columnar_bytes: col.4,
        host_parallelism,
        matches_row,
        gate_speedup: false,
    }
}

/// Run the deepest lineage query of a scenario as a distributed session
/// under one traversal order, on a fresh converged platform (cold
/// per-destination dictionaries), and report the proof depth plus the
/// session stats.
fn fanout_run(
    program: &str,
    topology: &Topology,
    traversal: TraversalOrder,
) -> (usize, provenance::QueryStats) {
    let mut nt = NetTrails::new(program, topology.clone(), NetTrailsConfig::default())
        .expect("program compiles");
    nt.seed_links_from_topology();
    nt.run_to_fixpoint();
    let (node, target) = nt
        .relation("minCost")
        .into_iter()
        .chain(nt.relation("bestPathCost"))
        .max_by_key(|(_, t)| t.values[2].as_int())
        .expect("a derived tuple to explain");
    let (result, stats) = nt
        .query(&target)
        .from_node(&node)
        .kind(QueryKind::Lineage)
        .traversal(traversal)
        .run();
    let QueryResult::Lineage(tree) = result else {
        unreachable!("lineage query returns a tree");
    };
    (tree.depth(), stats)
}

fn query_fanout_report(name: &str, program: &str, topology: Topology) -> QueryFanoutReport {
    let (depth, dfs) = fanout_run(program, &topology, TraversalOrder::DepthFirst);
    let (bfs_depth, bfs) = fanout_run(program, &topology, TraversalOrder::BreadthFirst);
    assert_eq!(
        depth, bfs_depth,
        "traversal order must not change the proof"
    );
    assert_eq!(dfs.records, bfs.records, "same hop records either way");
    QueryFanoutReport {
        scenario: name.to_string(),
        proof_depth: depth,
        query_records: dfs.records,
        dfs_messages: dfs.messages,
        bfs_messages: bfs.messages,
        dfs_bytes: dfs.bytes,
        bfs_bytes: bfs.bytes,
        bfs_dict_bytes: bfs.dict_bytes,
        dfs_latency_ms: dfs.latency_ms,
        bfs_latency_ms: bfs.latency_ms,
        fanout_speedup: dfs.latency_ms / bfs.latency_ms.max(f64::EPSILON),
        bfs_beats_dfs: bfs.latency_ms <= dfs.latency_ms,
    }
}

fn probe_comparison(name: &str, program: &str, topology: Topology) -> JoinProbeComparison {
    let converge = |config: NetTrailsConfig| -> u64 {
        let mut nt = NetTrails::new(program, topology.clone(), config).expect("program compiles");
        nt.seed_links_from_topology();
        nt.run_to_fixpoint();
        nt.stats().engine.join_probes
    };
    let indexed_probes = converge(NetTrailsConfig::default());
    let scan_probes = converge(NetTrailsConfig::without_join_indexes());
    JoinProbeComparison {
        scenario: name.to_string(),
        indexed_probes,
        scan_probes,
        reduction_factor: scan_probes as f64 / indexed_probes.max(1) as f64,
    }
}

/// Converge a platform, churn it deterministically and capture a canonical
/// snapshot (plus the interner watermark at capture time) after the fixpoint
/// and after every event — the one run every backend's chain is built from.
fn churned_captures(program: &str, topology: Topology) -> Vec<(SystemSnapshot, usize)> {
    let mut nt =
        NetTrails::new(program, topology, NetTrailsConfig::default()).expect("program compiles");
    nt.seed_links_from_topology();
    nt.run_to_fixpoint();

    // A fixed down / cost-change / restore schedule over the topology's
    // undirected links, derived from the topology itself so every scenario
    // gets real routing churn without hard-coded node names.
    let mut pairs: Vec<(String, String, i64)> = nt
        .network()
        .topology()
        .links()
        .filter(|l| l.from < l.to)
        .map(|l| (l.from.clone(), l.to.clone(), l.cost))
        .collect();
    pairs.sort();
    let mut events = Vec::new();
    for i in 0..9usize {
        let (a, b, cost) = pairs[i % pairs.len()].clone();
        events.push(match i % 3 {
            0 => TopologyEvent::LinkDown { a, b },
            1 => TopologyEvent::CostChange {
                a,
                b,
                cost: cost + 1 + i as i64,
            },
            _ => {
                // Restore the link taken down two events earlier.
                let (a, b, cost) = pairs[(i - 2) % pairs.len()].clone();
                TopologyEvent::LinkUp(Link::new(&a, &b, cost))
            }
        });
    }

    let mut captures = vec![(nt.capture_snapshot(), Interner::watermark())];
    for event in &events {
        nt.apply_topology_event(event);
        captures.push((nt.capture_snapshot(), Interner::watermark()));
    }
    captures
}

/// Feed the same captured run into every log backend as an incremental
/// checkpoint + delta chain and compare against the full-upload baseline.
fn snapshot_replay_sweep(
    scenario: &str,
    program: &str,
    topology: Topology,
    checkpoint_every: usize,
) -> Vec<SnapshotReplayReport> {
    let captures = churned_captures(program, topology);

    // The reference: every capture uploaded in full (the pre-incremental
    // upload path, kept as `LogStore::add`).
    let mut full = LogStore::new();
    for (snap, _) in &captures {
        full.add(snap.clone());
    }
    let full_bytes = full.uploaded_bytes();

    let seg_dir =
        std::env::temp_dir().join(format!("ntl-bench-seg-{}-{scenario}", std::process::id()));
    let _ = std::fs::remove_dir_all(&seg_dir);
    let backends: Vec<Box<dyn LogBackend>> = vec![
        Box::new(MemBackend::new()),
        Box::new(SegmentFileBackend::open(&seg_dir).expect("segment dir opens")),
        Box::new(KvBackend::new()),
    ];

    let mut rows = Vec::new();
    for backend in backends {
        let mut store = LogStore::with_backend(backend);
        let mut capturer = SnapshotCapturer::new(checkpoint_every);
        for (snap, watermark) in &captures {
            store.append_record(capturer.capture_with_watermark(snap.clone(), *watermark));
        }
        let matches_full = captures
            .iter()
            .enumerate()
            .all(|(i, (snap, _))| store.get(i).as_ref() == Some(snap));
        let tail_dict_bytes = store
            .record(store.len() - 1)
            .map(|r| r.dict_bytes())
            .unwrap_or(0) as u64;
        let storage_bytes = store.storage_bytes();

        let start = Instant::now();
        let mut replay = Replay::new(&store);
        while replay.step().is_some() {}
        let replay_wall_us = start.elapsed().as_micros() as u64;

        let compacted_bytes = store.compact().bytes_after;
        rows.push(SnapshotReplayReport {
            scenario: scenario.to_string(),
            backend: store.backend_name().to_string(),
            captures: captures.len(),
            checkpoint_every,
            checkpoints: store.checkpoint_count(),
            deltas: store.delta_count(),
            full_bytes,
            incremental_bytes: store.uploaded_bytes(),
            delta_dict_bytes: store.delta_dict_bytes(),
            tail_dict_bytes,
            storage_bytes,
            compacted_bytes,
            replay_wall_us,
            matches_full,
        });
    }
    let _ = std::fs::remove_dir_all(&seg_dir);
    rows
}

/// Run one scenario spec and fold it into a report row. Slice rows are run
/// twice — the second run must reproduce the replay digest bit-for-bit for
/// `matches_seed` to hold, which is the per-PR determinism gate.
fn scenario_suite_row(spec: &scenario::ScenarioSpec) -> ScenarioSuiteReport {
    let outcome = scenario::run_scenario(spec);
    let mut matches_seed = scenario::verify_seed(spec, &outcome);
    if spec.slice {
        let rerun = scenario::run_scenario(spec);
        matches_seed &= rerun.replay_digest == outcome.replay_digest;
    }
    ScenarioSuiteReport {
        scenario: outcome.name.clone(),
        family: outcome.family.clone(),
        workload: outcome.workload.clone(),
        seed: spec.seed,
        slice: spec.slice,
        nodes: outcome.nodes,
        links: outcome.links,
        anchors: outcome.anchors,
        converge_rounds: outcome.converge_rounds,
        converged_tuples: outcome.converged_tuples,
        converge_wall_ms: outcome.converge_wall_ms,
        replay_wall_ms: outcome.replay_wall_ms,
        sim_ms: outcome.sim_ms,
        churn_events: outcome.churn_events,
        queries: outcome.queries,
        tuples_touched: outcome.tuples_touched,
        deliveries: outcome.deliveries,
        events_per_sec: outcome.events_per_sec(),
        tuples_per_sec: outcome.tuples_per_sec(),
        p50_latency_ms: outcome.p50_ms(),
        p99_latency_ms: outcome.p99_ms(),
        matches_seed,
        replay_digest: format!("{:016x}", outcome.replay_digest),
    }
}

/// Run one query-service spec (merged + split + verification re-runs happen
/// inside [`scenario::run_service_scenario`]) and fold it into a report row.
fn query_service_row(spec: &scenario::ServiceScenarioSpec) -> QueryServiceReport {
    let outcome = scenario::run_service_scenario(spec);
    QueryServiceReport {
        scenario: outcome.name.clone(),
        seed: spec.seed,
        slice: spec.slice,
        nodes: outcome.nodes,
        links: outcome.links,
        tenants: outcome.tenants,
        offered: outcome.offered,
        rejected: outcome.rejected,
        completed: outcome.completed,
        expired: outcome.expired,
        churn_events: outcome.churn_events,
        frames_merged: outcome.frames_merged,
        frames_split: outcome.frames_split,
        dests: outcome.dests,
        frames_per_dest_merged: outcome.frames_per_dest_merged,
        frames_per_dest_split: outcome.frames_per_dest_split,
        dict_bytes_merged: outcome.dict_bytes_merged,
        dict_bytes_split: outcome.dict_bytes_split,
        p50_latency_ms: outcome.p50_ms(),
        p99_latency_ms: outcome.p99_ms(),
        sessions_per_sec: outcome.sessions_per_sec(),
        per_tenant_completed: outcome.per_tenant_completed.clone(),
        fairness_ratio: outcome.fairness_ratio,
        merged_matches_split: outcome.merged_matches_split,
        matches_rerun: outcome.matches_rerun,
        matches_workers: outcome.matches_workers,
        sim_ms: outcome.sim_ms,
        converge_wall_ms: outcome.converge_wall_ms,
        run_wall_ms: outcome.run_wall_ms,
        service_digest: format!("{:016x}", outcome.service_digest),
    }
}

fn main() {
    println!("NetTrails experiment report (see DESIGN.md section 2 and EXPERIMENTS.md)\n");
    println!(
        "E1 (architecture / end-to-end flow) is exercised by `cargo run --example quickstart`.\n"
    );

    let mut tables = Vec::new();
    let mut experiment_wall_ms = Vec::new();
    for build in nettrails_bench::experiment_builders() {
        let start = Instant::now();
        let table = build();
        experiment_wall_ms.push((table.title.clone(), start.elapsed().as_millis() as u64));
        println!("{table}");
        tables.push(table);
    }

    let join_probes = vec![
        probe_comparison(
            "pathvector_ladder4 (query_optimizations scenario)",
            protocols::pathvector::PROGRAM,
            Topology::ladder(4),
        ),
        probe_comparison(
            "mincost_ladder4 (maintenance_overhead scenario)",
            protocols::mincost::PROGRAM,
            Topology::ladder(4),
        ),
    ];
    println!("Join-probe comparison (indexed vs full-scan baseline):");
    for cmp in &join_probes {
        println!(
            "  {:50} indexed={:>9} scan={:>9} ({:.1}x fewer candidates)",
            cmp.scenario, cmp.indexed_probes, cmp.scan_probes, cmp.reduction_factor
        );
    }

    let provenance_stores = vec![
        provenance_store_report(
            "pathvector_ladder4",
            protocols::pathvector::PROGRAM,
            Topology::ladder(4),
        ),
        provenance_store_report(
            "mincost_ladder4",
            protocols::mincost::PROGRAM,
            Topology::ladder(4),
        ),
    ];
    println!("\nProvenance store footprint (interned vs string encoding) and query sweep:");
    for r in &provenance_stores {
        println!(
            "  {:20} interned={:>8}B (dict {:>5}B) strings={:>8}B ({:.2}x smaller) \
             lineage sweep cold={:>7}us warm={:>7}us",
            r.scenario,
            r.interned_bytes,
            r.dict_bytes,
            r.string_encoded_bytes,
            r.bytes_reduction_factor,
            r.query_wall_us_uncached,
            r.query_wall_us_cached,
        );
    }

    let delta_shipping = vec![
        delta_shipping_report(
            "pathvector_ladder4",
            protocols::pathvector::PROGRAM,
            Topology::ladder(4),
        ),
        delta_shipping_report(
            "mincost_ladder4",
            protocols::mincost::PROGRAM,
            Topology::ladder(4),
        ),
    ];
    println!("\nDelta shipping (batched per-destination vs per-tuple baseline):");
    for r in &delta_shipping {
        println!(
            "  {:20} msgs={:>6} tuples={:>6} dict={:>6}B body={:>8}B \
             batched={:>8}B per-tuple={:>8}B ({:.2}x fewer bytes)",
            r.scenario,
            r.messages_sent,
            r.tuples_shipped,
            r.dict_header_bytes,
            r.body_bytes,
            r.batched_total_bytes,
            r.per_tuple_total_bytes,
            r.reduction_factor,
        );
    }

    let sharded_provenance = sharded_provenance_sweep("synthetic_64n_4l", 64, 4, 4096, 2048);
    println!("\nSharded provenance maintenance (S-way shard router, synthetic stream):");
    for r in &sharded_provenance {
        println!(
            "  {:16} S={:1} wall={:>8}us ({:>4.2}x vs S=1, {} core(s)) batches={:>4} \
             records={:>6} dict={:>6}B identical={}",
            r.scenario,
            r.shards,
            r.wall_us,
            r.speedup_vs_single,
            r.host_parallelism,
            r.cross_shard_batches,
            r.cross_shard_records,
            r.cross_shard_dict_bytes,
            r.matches_single_shard,
        );
    }

    let parallel_fixpoint = parallel_fixpoint_sweep("fanout_join_2048x64", 2048, 16, 64);
    println!("\nMorsel-driven parallel fixpoint (W-way worker sweep, fan-out join):");
    for r in &parallel_fixpoint {
        println!(
            "  {:20} W={:1} tasks={:>5} firings={:>7} wall={:>8}us ({:>4.2}x vs W=1, \
             {} core(s), pool={}) identical={}",
            r.scenario,
            r.workers,
            r.tasks,
            r.firings,
            r.wall_us,
            r.speedup_vs_w1,
            r.host_parallelism,
            r.pool_workers,
            r.matches_w1,
        );
    }

    let mut vectorized_joins =
        vectorized_join_kernel_sweep("filtered_join_2048x256", 2048, 16, 256, 16);
    for workers in [1usize, 4] {
        vectorized_joins.push(vectorized_join_platform_row(
            "pathvector_ladder6",
            protocols::pathvector::PROGRAM,
            Topology::ladder(6),
            workers,
        ));
        vectorized_joins.push(vectorized_join_platform_row(
            "mincost_ladder8",
            protocols::mincost::PROGRAM,
            Topology::ladder(8),
            workers,
        ));
    }
    println!("\nVectorized joins (columnar vs row-major table storage):");
    for r in &vectorized_joins {
        println!(
            "  {:24} W={:1} row={:>8}us columnar={:>8}us ({:>4.2}x, {} core(s)) \
             bytes row={:>8} columnar={:>8} identical={} gated={}",
            r.scenario,
            r.workers,
            r.row_wall_us,
            r.columnar_wall_us,
            r.speedup_columnar,
            r.host_parallelism,
            r.row_bytes,
            r.columnar_bytes,
            r.matches_row,
            r.gate_speedup,
        );
    }

    let query_fanout = vec![
        query_fanout_report(
            "pathvector_ladder4",
            protocols::pathvector::PROGRAM,
            Topology::ladder(4),
        ),
        query_fanout_report(
            "mincost_ladder4",
            protocols::mincost::PROGRAM,
            Topology::ladder(4),
        ),
    ];
    println!("\nDistributed query fan-out (measured on the simulated clock):");
    for r in &query_fanout {
        println!(
            "  {:20} depth={:2} records={:>4} msgs dfs={:>4} bfs={:>4} bytes dfs={:>7} \
             bfs={:>7} (dict {:>5}) latency dfs={:>8.1}ms bfs={:>8.1}ms ({:.2}x) beats={}",
            r.scenario,
            r.proof_depth,
            r.query_records,
            r.dfs_messages,
            r.bfs_messages,
            r.dfs_bytes,
            r.bfs_bytes,
            r.bfs_dict_bytes,
            r.dfs_latency_ms,
            r.bfs_latency_ms,
            r.fanout_speedup,
            r.bfs_beats_dfs,
        );
    }

    let mut snapshot_replay = snapshot_replay_sweep(
        "pathvector_ladder6",
        protocols::pathvector::PROGRAM,
        Topology::ladder(6),
        4,
    );
    snapshot_replay.extend(snapshot_replay_sweep(
        "mincost_ladder6",
        protocols::mincost::PROGRAM,
        Topology::ladder(6),
        4,
    ));
    println!("\nIncremental snapshots (checkpoint + delta chains vs full uploads, per backend):");
    for r in &snapshot_replay {
        println!(
            "  {:20} [{:12}] {:2} captures ({}C+{}Δ, every {}) full={:>8}B incr={:>8}B \
             dictΔ={:>5}B tail={:>2}B stored={:>8}B compacted={:>8}B replay={:>6}us identical={}",
            r.scenario,
            r.backend,
            r.captures,
            r.checkpoints,
            r.deltas,
            r.checkpoint_every,
            r.full_bytes,
            r.incremental_bytes,
            r.delta_dict_bytes,
            r.tail_dict_bytes,
            r.storage_bytes,
            r.compacted_bytes,
            r.replay_wall_us,
            r.matches_full,
        );
    }

    let scenario_scale = match std::env::var("NT_SCENARIO_SCALE").as_deref() {
        Ok("full") => scenario::SuiteScale::Full,
        _ => scenario::SuiteScale::Slice,
    };
    let scenario_suite: Vec<ScenarioSuiteReport> = scenario::suite(scenario_scale)
        .iter()
        .map(scenario_suite_row)
        .collect();
    println!(
        "\nScenario suite ({} scale; NT_SCENARIO_SCALE=full for the nightly sweep):",
        if scenario_scale == scenario::SuiteScale::Full {
            "full"
        } else {
            "slice"
        }
    );
    for r in &scenario_suite {
        println!(
            "  {:28} nodes={:>6} links={:>6} churn={:>5} queries={:>5} \
             events/s={:>8.0} tuples/s={:>9.0} p50={:>5.1}ms p99={:>5.1}ms \
             seeded={} digest={}",
            r.scenario,
            r.nodes,
            r.links,
            r.churn_events,
            r.queries,
            r.events_per_sec,
            r.tuples_per_sec,
            r.p50_latency_ms,
            r.p99_latency_ms,
            r.matches_seed,
            r.replay_digest,
        );
    }

    let query_service: Vec<QueryServiceReport> = scenario::service_suite(scenario_scale)
        .iter()
        .map(query_service_row)
        .collect();
    println!(
        "\nQuery service ({} scale; merged vs per-session frame sealing):",
        if scenario_scale == scenario::SuiteScale::Full {
            "full"
        } else {
            "slice"
        }
    );
    for r in &query_service {
        println!(
            "  {:28} tenants={:>2} offered={:>5} done={:>5} rej={:>4} exp={:>4} \
             frames/dest={:>7.1} (split {:>7.1}) dict={:>7}B p50={:>6.2}ms p99={:>6.2}ms \
             eq={} digest={}",
            r.scenario,
            r.tenants,
            r.offered,
            r.completed,
            r.rejected,
            r.expired,
            r.frames_per_dest_merged,
            r.frames_per_dest_split,
            r.dict_bytes_merged,
            r.p50_latency_ms,
            r.p99_latency_ms,
            r.merged_matches_split && r.matches_rerun && r.matches_workers,
            r.service_digest,
        );
        // Per-tenant fairness: under equal offered load the max/min
        // completed-session ratio is gated at <= 1.5 by the schema checker.
        println!(
            "    {:8} {:>9} {:>10}   fairness max/min = {:.3}",
            "tenant", "completed", "share", r.fairness_ratio
        );
        let total: u64 = r.per_tenant_completed.iter().map(|(_, c)| c).sum();
        for (tenant, completed) in &r.per_tenant_completed {
            println!(
                "    {:8} {:>9} {:>9.1}%",
                tenant,
                completed,
                if total == 0 {
                    0.0
                } else {
                    100.0 * *completed as f64 / total as f64
                }
            );
        }
    }

    let results = BenchResults {
        format: "nettrails-bench-results/v10".to_string(),
        experiment_wall_ms,
        tables,
        join_probes,
        provenance_stores,
        delta_shipping,
        sharded_provenance,
        parallel_fixpoint,
        vectorized_joins,
        query_fanout,
        snapshot_replay,
        scenario_suite,
        query_service,
    };
    let json = serde_json::to_string_pretty(&results).expect("results serialize");
    std::fs::write(RESULTS_PATH, &json).expect("write BENCH_results.json");
    println!("\nwrote {RESULTS_PATH} ({} bytes)", json.len());
}
