//! Regenerate every NetTrails experiment table (E1–E8 of DESIGN.md) and print
//! them to stdout. EXPERIMENTS.md records a captured run of this binary.
//!
//! ```text
//! cargo run --release -p nettrails-bench --bin report
//! ```

fn main() {
    println!("NetTrails experiment report (see DESIGN.md section 2 and EXPERIMENTS.md)\n");
    println!(
        "E1 (architecture / end-to-end flow) is exercised by `cargo run --example quickstart`.\n"
    );
    for table in nettrails_bench::all_experiments() {
        println!("{table}");
    }
}
