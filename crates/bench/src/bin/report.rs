//! Regenerate every NetTrails experiment table (E1–E8 of DESIGN.md), print
//! them to stdout and write a machine-readable `BENCH_results.json` so the
//! performance trajectory can be compared across revisions.
//!
//! ```text
//! cargo run --release -p nettrails-bench --bin report
//! ```

use nettrails::{NetTrails, NetTrailsConfig, ReportTable};
use serde::Serialize;
use simnet::Topology;
use std::time::Instant;

/// The file the results are written to (in the invocation directory).
const RESULTS_PATH: &str = "BENCH_results.json";

#[derive(Serialize)]
struct JoinProbeComparison {
    scenario: String,
    indexed_probes: u64,
    scan_probes: u64,
    reduction_factor: f64,
}

#[derive(Serialize)]
struct BenchResults {
    /// Schema marker for downstream tooling.
    format: String,
    /// Wall-clock milliseconds to build each experiment table.
    experiment_wall_ms: Vec<(String, u64)>,
    /// The experiment tables themselves.
    tables: Vec<ReportTable>,
    /// Join-candidate counts for the planned, index-backed pipeline vs the
    /// full-scan baseline on the standard convergence scenarios.
    join_probes: Vec<JoinProbeComparison>,
}

fn probe_comparison(name: &str, program: &str, topology: Topology) -> JoinProbeComparison {
    let converge = |config: NetTrailsConfig| -> u64 {
        let mut nt = NetTrails::new(program, topology.clone(), config).expect("program compiles");
        nt.seed_links_from_topology();
        nt.run_to_fixpoint();
        nt.stats().engine.join_probes
    };
    let indexed_probes = converge(NetTrailsConfig::default());
    let scan_probes = converge(NetTrailsConfig::without_join_indexes());
    JoinProbeComparison {
        scenario: name.to_string(),
        indexed_probes,
        scan_probes,
        reduction_factor: scan_probes as f64 / indexed_probes.max(1) as f64,
    }
}

fn main() {
    println!("NetTrails experiment report (see DESIGN.md section 2 and EXPERIMENTS.md)\n");
    println!(
        "E1 (architecture / end-to-end flow) is exercised by `cargo run --example quickstart`.\n"
    );

    let mut tables = Vec::new();
    let mut experiment_wall_ms = Vec::new();
    for build in nettrails_bench::experiment_builders() {
        let start = Instant::now();
        let table = build();
        experiment_wall_ms.push((table.title.clone(), start.elapsed().as_millis() as u64));
        println!("{table}");
        tables.push(table);
    }

    let join_probes = vec![
        probe_comparison(
            "pathvector_ladder4 (query_optimizations scenario)",
            protocols::pathvector::PROGRAM,
            Topology::ladder(4),
        ),
        probe_comparison(
            "mincost_ladder4 (maintenance_overhead scenario)",
            protocols::mincost::PROGRAM,
            Topology::ladder(4),
        ),
    ];
    println!("Join-probe comparison (indexed vs full-scan baseline):");
    for cmp in &join_probes {
        println!(
            "  {:50} indexed={:>9} scan={:>9} ({:.1}x fewer candidates)",
            cmp.scenario, cmp.indexed_probes, cmp.scan_probes, cmp.reduction_factor
        );
    }

    let results = BenchResults {
        format: "nettrails-bench-results/v1".to_string(),
        experiment_wall_ms,
        tables,
        join_probes,
    };
    let json = serde_json::to_string_pretty(&results).expect("results serialize");
    std::fs::write(RESULTS_PATH, &json).expect("write BENCH_results.json");
    println!("\nwrote {RESULTS_PATH} ({} bytes)", json.len());
}
