//! Property-based tests for the NDlog front-end.

use ndlog::{parse_program, parse_rule, Program};
use proptest::prelude::*;

/// Strategy for identifiers (relation names).
fn relation_name() -> impl Strategy<Value = String> {
    "[a-z][a-zA-Z0-9]{0,6}".prop_filter("avoid keywords", |s| {
        !matches!(
            s.as_str(),
            "materialize"
                | "keys"
                | "infinity"
                | "min"
                | "max"
                | "count"
                | "sum"
                | "true"
                | "false"
        )
    })
}

/// Strategy for variable names.
fn variable_name() -> impl Strategy<Value = String> {
    "[A-Z][a-zA-Z0-9]{0,4}".prop_map(|s| s)
}

/// Build a random (syntactically valid, safe) single-atom rule.
fn simple_rule() -> impl Strategy<Value = String> {
    (
        relation_name(),
        relation_name(),
        proptest::collection::vec(variable_name(), 1..4),
        any::<i64>(),
    )
        .prop_map(|(head, body, vars, c)| {
            let head_args = vars.join(",");
            let body_args = vars.join(",");
            format!(
                "r1 {head}(@{head_args}) :- {body}(@{body_args}, {c}).",
                head_args = head_args,
                body_args = body_args
            )
        })
}

proptest! {
    /// The lexer/parser never panic on arbitrary input — they either parse or
    /// return an error.
    #[test]
    fn parser_never_panics_on_arbitrary_input(src in ".{0,200}") {
        let _ = parse_program(&src);
    }

    /// Parsing a printed program yields the same AST (print/parse round trip)
    /// for generated single-atom rules.
    #[test]
    fn print_parse_round_trip(rule_src in simple_rule()) {
        if let Ok(rule) = parse_rule(&rule_src) {
            let printed = rule.to_string();
            let reparsed = parse_rule(&printed).expect("printed rule parses");
            prop_assert_eq!(rule, reparsed);
        }
    }

    /// A program's Display output always re-parses to the same program.
    #[test]
    fn program_display_round_trip(rules in proptest::collection::vec(simple_rule(), 1..5)) {
        let parsed: Vec<Program> = rules.iter().filter_map(|r| parse_program(r).ok()).collect();
        let mut combined = Program::new();
        for (i, p) in parsed.into_iter().enumerate() {
            for mut rule in p.rules {
                rule.name = format!("r{i}_{}", rule.name);
                combined.rules.push(rule);
            }
        }
        let reparsed = parse_program(&combined.to_string()).expect("display re-parses");
        prop_assert_eq!(combined, reparsed);
    }
}
