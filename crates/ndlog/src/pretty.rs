//! Pretty-printing helpers beyond the `Display` impls in [`crate::ast`].
//!
//! These are used by the examples and by the provenance visualizer to show
//! rule text next to rule-execution vertices, and by the test-suite to check
//! parse/print round-trips.

use crate::ast::{Program, Rule};

/// Render a program with aligned rule names and a blank line between the
/// declaration block and the rules (the style used in the NetTrails paper).
pub fn pretty_program(program: &Program) -> String {
    let mut out = String::new();
    for m in &program.materializations {
        out.push_str(&m.to_string());
        out.push('\n');
    }
    if !program.materializations.is_empty() && !program.rules.is_empty() {
        out.push('\n');
    }
    let width = program
        .rules
        .iter()
        .map(|r| r.name.len())
        .max()
        .unwrap_or(0);
    for r in &program.rules {
        out.push_str(&pretty_rule_aligned(r, width));
        out.push('\n');
    }
    out
}

fn pretty_rule_aligned(rule: &Rule, name_width: usize) -> String {
    let s = rule.to_string();
    // `Rule::to_string` already starts with the name; re-pad it.
    match s.split_once(' ') {
        Some((name, rest)) => format!("{name:<name_width$} {rest}"),
        None => s,
    }
}

/// One-line summary of a rule: `name: head <- n body atoms`.
/// Used in provenance visualizations where full rule text is too long.
pub fn rule_summary(rule: &Rule) -> String {
    let n_atoms = rule.body_atoms().count();
    let kind = match rule.kind {
        crate::ast::RuleKind::Derive => "",
        crate::ast::RuleKind::Maybe => " (maybe)",
    };
    format!(
        "{}: {} <- {} atom(s){}",
        rule.name, rule.head.relation, n_atoms, kind
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse_program;

    #[test]
    fn pretty_program_round_trips() {
        let src = "materialize(link, infinity, infinity, keys(1,2)).\n\
                   r1 cost(@S,D,C) :- link(@S,D,C).\n\
                   longRuleName minCost(@S,D,min<C>) :- cost(@S,D,C).";
        let p = parse_program(src).unwrap();
        let pretty = pretty_program(&p);
        let reparsed = parse_program(&pretty).unwrap();
        assert_eq!(p, reparsed);
        // Names are padded to the same width: the `cost` head of r1 starts at
        // the same column as the `minCost` head of the long-named rule.
        let lines: Vec<&str> = pretty.lines().filter(|l| l.contains(":-")).collect();
        assert_eq!(lines.len(), 2);
        assert_eq!(lines[0].find("cost("), lines[1].find("minCost("));
    }

    #[test]
    fn rule_summary_mentions_maybe() {
        let p = parse_program(
            "br1 outputRoute(@AS,R2) ?- inputRoute(@AS,R1), f_isExtend(R2,R1,AS) == 1.",
        )
        .unwrap();
        let s = rule_summary(&p.rules[0]);
        assert!(s.contains("maybe"));
        assert!(s.contains("outputRoute"));
    }
}
