//! Rule localization analysis.
//!
//! NDlog rules are evaluated in a *distributed* fashion: every tuple lives at
//! the node named by its location specifier, and a rule can only join tuples
//! that are co-located. The RapidNet/ExSPAN convention (inherited from the
//! original Declarative Networking work) is:
//!
//! * a rule whose positive body atoms all share the same location variable is
//!   a **local rule** — it executes at that node;
//! * a rule whose head location differs from the body location is a **send
//!   rule** — it executes where the body lives and the derived head tuple is
//!   shipped to the node named by the head's location attribute;
//! * a rule whose body atoms mention two different location variables is only
//!   legal when one atom is *link-restricted*: some body atom (typically
//!   `link(@S,Z,...)`) mentions both location variables, so the rule can be
//!   evaluated at the first location and the remote atom's tuples are
//!   *streamed* to it by a prior send rule. In this implementation we follow
//!   ExSPAN and require the programmer (or the protocol library) to have
//!   already localized such rules; the analysis flags non-localizable rules.
//!
//! The output of the analysis — a [`LocalizedRule`] — records which variable
//! names the rule's execution location and whether head tuples must be
//! shipped. The runtime uses it to decide where to run joins and when to hand
//! tuples to the network layer; the provenance rewriter uses it to place
//! `ruleExec` tuples at the correct node.

use crate::ast::{Rule, Term};
use crate::error::{NdlogError, Result};
use serde::{Deserialize, Serialize};

/// Where a rule executes.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum RuleLocation {
    /// Execution location is the value bound to this variable (the common
    /// case: all body atoms share a location variable).
    Variable(String),
    /// Execution location is a constant node name (body atoms pinned with
    /// `@"n1"`).
    Constant(String),
}

impl RuleLocation {
    /// The variable name, if the location is variable-valued.
    pub fn as_variable(&self) -> Option<&str> {
        match self {
            RuleLocation::Variable(v) => Some(v),
            RuleLocation::Constant(_) => None,
        }
    }
}

/// The result of localizing a single rule.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LocalizedRule {
    /// The rule itself (unmodified).
    pub rule: Rule,
    /// Where the rule's joins are evaluated.
    pub exec_location: RuleLocation,
    /// True when the head's location differs from the execution location, in
    /// which case the derived tuple is shipped over the network to its home
    /// node.
    pub sends_head: bool,
    /// Location variables appearing in body atoms other than the execution
    /// location (the "remote" side of a link-restricted rule). Empty for
    /// purely local rules.
    pub remote_locations: Vec<String>,
}

/// Localize every rule of a program.
pub fn localize_rules(rules: &[Rule]) -> Result<Vec<LocalizedRule>> {
    rules.iter().map(localize_rule).collect()
}

/// Localize one rule. Fails when the rule cannot be executed at a single node
/// (its body atoms disagree on location and no atom bridges the locations).
pub fn localize_rule(rule: &Rule) -> Result<LocalizedRule> {
    let mut body_locs: Vec<LocSpec> = Vec::new();
    for atom in rule.positive_atoms() {
        if let Some(spec) = atom_location(atom) {
            if !body_locs.contains(&spec) {
                body_locs.push(spec);
            }
        }
    }
    if body_locs.is_empty() {
        // No positive atoms with a location (e.g. a rule driven only by
        // constants); execute at the head's location.
        let head = atom_location(&rule.head).ok_or_else(|| {
            NdlogError::validation(Some(&rule.name), "rule has no location specifier at all")
        })?;
        return Ok(LocalizedRule {
            rule: rule.clone(),
            exec_location: head.clone().into_rule_location(),
            sends_head: false,
            remote_locations: Vec::new(),
        });
    }

    // Pick the execution location: the location of the *first* body atom, the
    // standard NDlog convention ("the rule is evaluated where its event /
    // first predicate resides").
    let exec = body_locs[0].clone();

    // Any other body location must be "bridged": some positive atom must
    // mention both the execution location variable and the other location
    // variable among its (non-location) arguments — the classic
    // link-restriction. Otherwise the program should have been rewritten.
    let mut remote = Vec::new();
    for other in body_locs.iter().skip(1) {
        match (&exec, other) {
            (LocSpec::Var(ev), LocSpec::Var(ov)) => {
                let bridged = rule.positive_atoms().any(|a| {
                    let vars: Vec<String> = a.variables();
                    vars.iter().any(|v| v == ev) && vars.iter().any(|v| v == ov)
                });
                if !bridged {
                    return Err(NdlogError::validation(
                        Some(&rule.name),
                        format!(
                            "body atoms live at different, unlinked locations `{ev}` and `{ov}`; \
                             rewrite the rule (link restriction) before execution"
                        ),
                    ));
                }
                remote.push(ov.clone());
            }
            // Mixed constant/variable locations are always allowed: the
            // runtime ships tuples explicitly.
            (_, LocSpec::Var(ov)) => remote.push(ov.clone()),
            (_, LocSpec::Const(_)) => {}
        }
    }

    let head_loc = atom_location(&rule.head);
    let sends_head = match (&exec, &head_loc) {
        (LocSpec::Var(ev), Some(LocSpec::Var(hv))) => ev != hv,
        (LocSpec::Const(ec), Some(LocSpec::Const(hc))) => ec != hc,
        (_, Some(_)) => true,
        (_, None) => false,
    };

    Ok(LocalizedRule {
        rule: rule.clone(),
        exec_location: exec.into_rule_location(),
        sends_head,
        remote_locations: remote,
    })
}

/// Internal representation of an atom's location specifier.
#[derive(Debug, Clone, PartialEq, Eq)]
enum LocSpec {
    Var(String),
    Const(String),
}

impl LocSpec {
    fn into_rule_location(self) -> RuleLocation {
        match self {
            LocSpec::Var(v) => RuleLocation::Variable(v),
            LocSpec::Const(c) => RuleLocation::Constant(c),
        }
    }
}

fn atom_location(p: &crate::ast::Predicate) -> Option<LocSpec> {
    p.terms.iter().find(|t| t.is_location()).map(|t| match t {
        Term::Variable { name, .. } => LocSpec::Var(name.clone()),
        Term::Constant { value, .. } => {
            LocSpec::Const(value.to_string().trim_matches('"').to_string())
        }
        _ => unreachable!("aggregates/wildcards cannot carry @"),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse_rule;

    #[test]
    fn local_rule_is_not_a_send_rule() {
        let rule = parse_rule("r1 cost(@S,D,C) :- link(@S,D,C).").unwrap();
        let lr = localize_rule(&rule).unwrap();
        assert_eq!(lr.exec_location, RuleLocation::Variable("S".into()));
        assert!(!lr.sends_head);
        assert!(lr.remote_locations.is_empty());
    }

    #[test]
    fn send_rule_detected_when_head_location_differs() {
        // Executes at S (location of the first atom) and ships `cost` to Z? No:
        // head is at @D which is a plain variable of the body -> shipped.
        let rule = parse_rule("r1 reach(@D,S) :- link(@S,D,C).").unwrap();
        let lr = localize_rule(&rule).unwrap();
        assert_eq!(lr.exec_location, RuleLocation::Variable("S".into()));
        assert!(lr.sends_head);
    }

    #[test]
    fn link_restricted_rule_is_accepted() {
        // link(@S,Z,..) mentions both S and Z, so joining with cost(@Z,..) is
        // legal (the classic path-vector pattern).
        let rule =
            parse_rule("r2 cost(@S,D,C) :- link(@S,Z,C1), cost(@Z,D,C2), C := C1 + C2.").unwrap();
        let lr = localize_rule(&rule).unwrap();
        assert_eq!(lr.exec_location, RuleLocation::Variable("S".into()));
        assert_eq!(lr.remote_locations, vec!["Z".to_string()]);
        assert!(!lr.sends_head);
    }

    #[test]
    fn unlinked_locations_are_rejected() {
        let rule = parse_rule("r1 bad(@S,D) :- a(@S,X), b(@D,Y).").unwrap();
        let err = localize_rule(&rule).unwrap_err();
        assert!(err.to_string().contains("unlinked"));
    }

    #[test]
    fn constant_location_rule() {
        let rule = parse_rule("r1 report(@\"collector\",N,C) :- status(@N,C).").unwrap();
        let lr = localize_rule(&rule).unwrap();
        assert_eq!(lr.exec_location, RuleLocation::Variable("N".into()));
        assert!(lr.sends_head);
    }

    #[test]
    fn localize_rules_processes_all() {
        let rules = vec![
            parse_rule("r1 cost(@S,D,C) :- link(@S,D,C).").unwrap(),
            parse_rule("r3 minCost(@S,D,min<C>) :- cost(@S,D,C).").unwrap(),
        ];
        let localized = localize_rules(&rules).unwrap();
        assert_eq!(localized.len(), 2);
        assert!(localized.iter().all(|lr| !lr.sends_head));
    }
}
