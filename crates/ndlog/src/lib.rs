//! # ndlog — Network Datalog front-end
//!
//! This crate implements the language layer of the NetTrails platform: the
//! *Network Datalog* (NDlog) language used by declarative networking engines
//! such as RapidNet. NDlog is a distributed, recursive query language over
//! network graphs: every relation carries a **location specifier** (an address
//! attribute written `@X`) that determines on which node each tuple lives, and
//! rules whose head location differs from the body location imply
//! communication between nodes.
//!
//! The crate provides:
//!
//! * a [`lexer`] and [`parser`] for NDlog programs (rules, `materialize`
//!   declarations, aggregates such as `min<C>`, assignments `X := expr`,
//!   selection predicates, and the *maybe* rules `?-` used to describe
//!   possible causal relationships in legacy applications),
//! * a typed [`ast`] with pretty-printing,
//! * semantic [`validate`] checks (safety, location well-formedness,
//!   link-restriction, aggregate stratification),
//! * [`localize`] analysis that determines, for every rule, where it executes
//!   and whether its head tuples must be shipped to a different node, and
//! * a registry of [`builtins`] (`f_isExtend`, `f_concat`, ...) shared with the
//!   runtime.
//!
//! The runtime crate (`nt-runtime`) interprets the validated AST; the
//! `provenance` crate rewrites it to capture network provenance as described in
//! the ExSPAN/NetTrails papers.
//!
//! ## Example
//!
//! ```
//! use ndlog::parse_program;
//!
//! let src = r#"
//!     materialize(link, infinity, infinity, keys(1,2)).
//!     materialize(minCost, infinity, infinity, keys(1,2)).
//!
//!     r1 cost(@S,D,C) :- link(@S,D,C).
//!     r2 cost(@S,D,C) :- link(@S,Z,C1), minCost(@Z,D,C2), C := C1 + C2.
//!     r3 minCost(@S,D,min<C>) :- cost(@S,D,C).
//! "#;
//! let program = parse_program(src).expect("parses");
//! assert_eq!(program.rules.len(), 3);
//! assert!(program.rules[2].head.aggregate_column().is_some());
//! ```

pub mod ast;
pub mod builtins;
pub mod error;
pub mod lexer;
pub mod localize;
pub mod parser;
pub mod pretty;
pub mod validate;

pub use ast::{
    Aggregate, AggregateFunc, BinOp, BodyElem, Expr, Literal, Materialize, Predicate, Program,
    Rule, RuleKind, Term, UnOp,
};
pub use error::{NdlogError, Result};
pub use localize::{LocalizedRule, RuleLocation};
pub use parser::{parse_program, parse_rule};
pub use validate::validate_program;

/// Convenience: parse **and** validate a program in one call.
///
/// This is what most embedders (the runtime, the provenance rewriter, the
/// protocol library) should use, so that invalid programs are rejected before
/// they reach execution.
pub fn compile(src: &str) -> Result<Program> {
    let program = parse_program(src)?;
    validate_program(&program)?;
    Ok(program)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compile_rejects_unsafe_rule() {
        // Head variable X never appears in the body.
        let err = compile("r1 out(@A,X) :- link(@A,B).").unwrap_err();
        assert!(matches!(err, NdlogError::Validation { .. }), "{err}");
    }

    #[test]
    fn compile_accepts_mincost() {
        let program = compile(
            "r1 cost(@S,D,C) :- link(@S,D,C).\n\
             r2 cost(@S,D,C) :- link(@S,Z,C1), cost(@Z,D,C2), C := C1 + C2.\n\
             r3 minCost(@S,D,min<C>) :- cost(@S,D,C).",
        )
        .unwrap();
        assert_eq!(program.rules.len(), 3);
    }
}
