//! Registry of builtin functions (`f_*`) known to the NDlog dialect.
//!
//! The front-end only needs names and arities for validation; the actual
//! semantics live in the runtime (`nt-runtime::eval`) where values are
//! available. Keeping the registry here lets the validator reject calls to
//! unknown functions or calls with the wrong arity before execution, which is
//! the behaviour of the RapidNet compiler.

/// Description of one builtin function.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Builtin {
    /// Function name as written in programs, e.g. `f_isExtend`.
    pub name: &'static str,
    /// Number of arguments the function expects.
    pub arity: usize,
    /// Short human-readable description (used in docs and error messages).
    pub description: &'static str,
}

/// The table of builtins supported by NetTrails.
///
/// * Path / list manipulation (`f_concat`, `f_append`, `f_member`, `f_last`,
///   `f_size`, `f_prepend`, `f_initlist`) is what path-vector, DSR and BGP
///   programs use to build AS paths and source routes.
/// * `f_isExtend` is the function used by the paper's `maybe` rule `br1` to
///   detect that an outgoing BGP route extends an incoming one by exactly one
///   AS hop.
/// * `f_now`, `f_rand`, `f_min`, `f_max`, `f_abs` are general utilities.
pub const BUILTINS: &[Builtin] = &[
    Builtin {
        name: "f_concat",
        arity: 2,
        description: "concatenate two lists (or value onto list)",
    },
    Builtin {
        name: "f_append",
        arity: 2,
        description: "append a value to the end of a list",
    },
    Builtin {
        name: "f_prepend",
        arity: 2,
        description: "prepend a value to the front of a list",
    },
    Builtin {
        name: "f_initlist",
        arity: 1,
        description: "create a singleton list",
    },
    Builtin {
        name: "f_initlist2",
        arity: 2,
        description: "create a two-element list",
    },
    Builtin {
        name: "f_member",
        arity: 2,
        description: "1 if the value is a member of the list, else 0",
    },
    Builtin {
        name: "f_last",
        arity: 1,
        description: "last element of a list",
    },
    Builtin {
        name: "f_first",
        arity: 1,
        description: "first element of a list",
    },
    Builtin {
        name: "f_size",
        arity: 1,
        description: "length of a list",
    },
    Builtin {
        name: "f_isExtend",
        arity: 3,
        description: "1 if route A extends route B by appending node N",
    },
    Builtin {
        name: "f_min",
        arity: 2,
        description: "minimum of two values",
    },
    Builtin {
        name: "f_max",
        arity: 2,
        description: "maximum of two values",
    },
    Builtin {
        name: "f_abs",
        arity: 1,
        description: "absolute value",
    },
    Builtin {
        name: "f_sha1",
        arity: 1,
        description: "stable 64-bit digest of a value (used for identifiers)",
    },
    Builtin {
        name: "f_tostr",
        arity: 1,
        description: "render a value as a string",
    },
];

/// Look up a builtin by name.
pub fn lookup(name: &str) -> Option<&'static Builtin> {
    BUILTINS.iter().find(|b| b.name == name)
}

/// True when `name` follows the builtin naming convention (`f_` prefix).
pub fn is_builtin_name(name: &str) -> bool {
    name.starts_with("f_")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lookup_finds_is_extend() {
        let b = lookup("f_isExtend").unwrap();
        assert_eq!(b.arity, 3);
    }

    #[test]
    fn lookup_unknown_is_none() {
        assert!(lookup("f_unknown").is_none());
        assert!(is_builtin_name("f_unknown"));
        assert!(!is_builtin_name("link"));
    }

    #[test]
    fn all_builtins_have_unique_names() {
        for (i, a) in BUILTINS.iter().enumerate() {
            for b in &BUILTINS[i + 1..] {
                assert_ne!(a.name, b.name);
            }
        }
    }
}
