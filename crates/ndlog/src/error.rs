//! Error types shared by the NDlog front-end.

use std::fmt;

/// Result alias used throughout the `ndlog` crate.
pub type Result<T> = std::result::Result<T, NdlogError>;

/// Errors produced while lexing, parsing or validating NDlog programs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NdlogError {
    /// A character sequence that is not a valid token.
    Lex {
        /// 1-based line on which the offending character appears.
        line: usize,
        /// 1-based column of the offending character.
        column: usize,
        /// Human-readable description.
        message: String,
    },
    /// The token stream does not form a valid program.
    Parse {
        /// 1-based line of the token where parsing failed.
        line: usize,
        /// 1-based column of the token where parsing failed.
        column: usize,
        /// Human-readable description.
        message: String,
    },
    /// The program parsed but violates a semantic restriction
    /// (safety, location well-formedness, aggregate misuse, ...).
    Validation {
        /// Name of the rule in which the problem was detected, if any.
        rule: Option<String>,
        /// Human-readable description.
        message: String,
    },
}

impl NdlogError {
    /// Construct a lexer error.
    pub fn lex(line: usize, column: usize, message: impl Into<String>) -> Self {
        NdlogError::Lex {
            line,
            column,
            message: message.into(),
        }
    }

    /// Construct a parser error.
    pub fn parse(line: usize, column: usize, message: impl Into<String>) -> Self {
        NdlogError::Parse {
            line,
            column,
            message: message.into(),
        }
    }

    /// Construct a validation error attached to a rule.
    pub fn validation(rule: Option<&str>, message: impl Into<String>) -> Self {
        NdlogError::Validation {
            rule: rule.map(|r| r.to_string()),
            message: message.into(),
        }
    }
}

impl fmt::Display for NdlogError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NdlogError::Lex {
                line,
                column,
                message,
            } => write!(f, "lex error at {line}:{column}: {message}"),
            NdlogError::Parse {
                line,
                column,
                message,
            } => write!(f, "parse error at {line}:{column}: {message}"),
            NdlogError::Validation { rule, message } => match rule {
                Some(rule) => write!(f, "invalid rule `{rule}`: {message}"),
                None => write!(f, "invalid program: {message}"),
            },
        }
    }
}

impl std::error::Error for NdlogError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats_positions() {
        let err = NdlogError::lex(3, 7, "unexpected `%`");
        assert_eq!(err.to_string(), "lex error at 3:7: unexpected `%`");
        let err = NdlogError::parse(1, 2, "expected `.`");
        assert_eq!(err.to_string(), "parse error at 1:2: expected `.`");
        let err = NdlogError::validation(Some("r1"), "unsafe head variable X");
        assert_eq!(err.to_string(), "invalid rule `r1`: unsafe head variable X");
        let err = NdlogError::validation(None, "duplicate rule name");
        assert_eq!(err.to_string(), "invalid program: duplicate rule name");
    }
}
