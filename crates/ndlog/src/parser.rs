//! Recursive-descent parser producing the [`crate::ast`] types.

use crate::ast::{
    Aggregate, AggregateFunc, BinOp, BodyElem, Expr, Literal, Materialize, Predicate, Program,
    Rule, RuleKind, Term, UnOp,
};
use crate::error::{NdlogError, Result};
use crate::lexer::{tokenize, SpannedToken, Token};

/// Parse a complete NDlog program (declarations and rules).
pub fn parse_program(src: &str) -> Result<Program> {
    let tokens = tokenize(src)?;
    let mut parser = Parser::new(tokens);
    parser.program()
}

/// Parse a single rule. The trailing `.` is required.
pub fn parse_rule(src: &str) -> Result<Rule> {
    let tokens = tokenize(src)?;
    let mut parser = Parser::new(tokens);
    let rule = parser.rule(0)?;
    parser.expect_end()?;
    Ok(rule)
}

struct Parser {
    tokens: Vec<SpannedToken>,
    pos: usize,
}

impl Parser {
    fn new(tokens: Vec<SpannedToken>) -> Self {
        Parser { tokens, pos: 0 }
    }

    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos).map(|t| &t.token)
    }

    fn peek2(&self) -> Option<&Token> {
        self.tokens.get(self.pos + 1).map(|t| &t.token)
    }

    fn position(&self) -> (usize, usize) {
        self.tokens
            .get(self.pos)
            .or_else(|| self.tokens.last())
            .map(|t| (t.line, t.column))
            .unwrap_or((1, 1))
    }

    fn bump(&mut self) -> Option<Token> {
        let t = self.tokens.get(self.pos).map(|t| t.token.clone());
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn error(&self, msg: impl Into<String>) -> NdlogError {
        let (line, column) = self.position();
        NdlogError::parse(line, column, msg)
    }

    fn expect(&mut self, expected: &Token, what: &str) -> Result<()> {
        match self.peek() {
            Some(t) if t == expected => {
                self.bump();
                Ok(())
            }
            Some(t) => Err(self.error(format!("expected {what}, found {t:?}"))),
            None => Err(self.error(format!("expected {what}, found end of input"))),
        }
    }

    fn expect_end(&self) -> Result<()> {
        if self.pos == self.tokens.len() {
            Ok(())
        } else {
            Err(self.error("unexpected trailing input"))
        }
    }

    fn program(&mut self) -> Result<Program> {
        let mut program = Program::new();
        let mut anon_counter = 0usize;
        while self.peek().is_some() {
            if matches!(self.peek(), Some(Token::Ident(id)) if id == "materialize") {
                program.materializations.push(self.materialize()?);
            } else {
                anon_counter += 1;
                program.rules.push(self.rule(anon_counter)?);
            }
        }
        Ok(program)
    }

    fn materialize(&mut self) -> Result<Materialize> {
        // `materialize` already peeked.
        self.bump();
        self.expect(&Token::LParen, "`(`")?;
        let relation = match self.bump() {
            Some(Token::Ident(name)) => name,
            _ => return Err(self.error("expected relation name in materialize(..)")),
        };
        self.expect(&Token::Comma, "`,`")?;
        let lifetime = self.lifetime_or_size()?;
        self.expect(&Token::Comma, "`,`")?;
        let max_size = self.lifetime_or_size()?.map(|v| v as u64);
        self.expect(&Token::Comma, "`,`")?;
        match self.bump() {
            Some(Token::Ident(kw)) if kw == "keys" => {}
            _ => return Err(self.error("expected `keys(..)` in materialize(..)")),
        }
        self.expect(&Token::LParen, "`(`")?;
        let mut keys = Vec::new();
        loop {
            match self.bump() {
                Some(Token::Int(k)) if k >= 1 => keys.push(k as usize),
                Some(Token::Int(_)) => return Err(self.error("key columns are 1-based")),
                _ => return Err(self.error("expected key column index")),
            }
            match self.peek() {
                Some(Token::Comma) => {
                    self.bump();
                }
                _ => break,
            }
        }
        self.expect(&Token::RParen, "`)` closing keys(..)")?;
        self.expect(&Token::RParen, "`)` closing materialize(..)")?;
        self.expect(&Token::Dot, "`.`")?;
        Ok(Materialize {
            relation,
            lifetime,
            max_size,
            keys,
        })
    }

    fn lifetime_or_size(&mut self) -> Result<Option<f64>> {
        match self.bump() {
            Some(Token::Ident(kw)) if kw == "infinity" => Ok(None),
            Some(Token::Int(v)) => Ok(Some(v as f64)),
            Some(Token::Double(v)) => Ok(Some(v)),
            _ => Err(self.error("expected number or `infinity`")),
        }
    }

    fn rule(&mut self, anon_index: usize) -> Result<Rule> {
        // Optional rule name: an identifier immediately followed by another
        // identifier (the head relation), rather than by `(`.
        let name = match (self.peek(), self.peek2()) {
            (Some(Token::Ident(name)), Some(Token::Ident(_))) => {
                let n = name.clone();
                self.bump();
                n
            }
            _ => format!("rule_{anon_index}"),
        };
        let head = self.predicate(false)?;
        let kind = match self.bump() {
            Some(Token::Derives) => RuleKind::Derive,
            Some(Token::MaybeDerives) => RuleKind::Maybe,
            _ => return Err(self.error("expected `:-` or `?-` after rule head")),
        };
        let mut body = Vec::new();
        loop {
            body.push(self.body_elem()?);
            match self.peek() {
                Some(Token::Comma) => {
                    self.bump();
                }
                Some(Token::Dot) => {
                    self.bump();
                    break;
                }
                _ => return Err(self.error("expected `,` or `.` in rule body")),
            }
        }
        Ok(Rule {
            name,
            head,
            body,
            kind,
        })
    }

    fn body_elem(&mut self) -> Result<BodyElem> {
        // Assignment: Variable := expr
        if let (Some(Token::Variable(v)), Some(Token::Assign)) = (self.peek(), self.peek2()) {
            let var = v.clone();
            self.bump();
            self.bump();
            let expr = self.expr()?;
            return Ok(BodyElem::Assign { var, expr });
        }
        // Negated atom: !rel(..)
        if matches!(self.peek(), Some(Token::Bang)) && matches!(self.peek2(), Some(Token::Ident(_)))
        {
            self.bump();
            let mut p = self.predicate(true)?;
            p.negated = true;
            return Ok(BodyElem::Atom(p));
        }
        // Positive atom: ident( ... ) — but only if it is NOT part of a larger
        // expression (a function call is an ident starting with `f_`).
        if let Some(Token::Ident(name)) = self.peek() {
            if !name.starts_with("f_") && matches!(self.peek2(), Some(Token::LParen)) {
                let p = self.predicate(true)?;
                return Ok(BodyElem::Atom(p));
            }
        }
        // Otherwise: a filter expression.
        let expr = self.expr()?;
        Ok(BodyElem::Filter(expr))
    }

    fn predicate(&mut self, in_body: bool) -> Result<Predicate> {
        let relation = match self.bump() {
            Some(Token::Ident(name)) => name,
            other => return Err(self.error(format!("expected relation name, found {other:?}"))),
        };
        self.expect(&Token::LParen, "`(`")?;
        let mut terms = Vec::new();
        if matches!(self.peek(), Some(Token::RParen)) {
            self.bump();
            return Ok(Predicate {
                relation,
                terms,
                negated: false,
            });
        }
        loop {
            terms.push(self.term(in_body)?);
            match self.bump() {
                Some(Token::Comma) => {}
                Some(Token::RParen) => break,
                _ => return Err(self.error("expected `,` or `)` in predicate")),
            }
        }
        Ok(Predicate {
            relation,
            terms,
            negated: false,
        })
    }

    fn term(&mut self, in_body: bool) -> Result<Term> {
        match self.peek().cloned() {
            Some(Token::At) => {
                self.bump();
                match self.bump() {
                    Some(Token::Variable(name)) => Ok(Term::Variable {
                        name,
                        location: true,
                    }),
                    Some(Token::Str(s)) => Ok(Term::Constant {
                        value: Literal::Str(s),
                        location: true,
                    }),
                    Some(Token::Int(v)) => Ok(Term::Constant {
                        value: Literal::Int(v),
                        location: true,
                    }),
                    _ => Err(self.error("expected variable or constant after `@`")),
                }
            }
            Some(Token::Underscore) => {
                self.bump();
                Ok(Term::Wildcard)
            }
            Some(Token::Variable(name)) => {
                self.bump();
                Ok(Term::Variable {
                    name,
                    location: false,
                })
            }
            Some(Token::Ident(kw)) => {
                // Aggregate term in a head: min<C>, count<*>, ...
                if let Some(func) = AggregateFunc::from_keyword(&kw) {
                    if !in_body && matches!(self.peek2(), Some(Token::Lt)) {
                        self.bump(); // keyword
                        self.bump(); // <
                        let var = match self.bump() {
                            Some(Token::Variable(v)) => v,
                            Some(Token::Star) => "*".to_string(),
                            _ => return Err(self.error("expected variable inside aggregate <..>")),
                        };
                        self.expect(&Token::Gt, "`>` closing aggregate")?;
                        return Ok(Term::Aggregate(Aggregate { func, var }));
                    }
                }
                if kw == "infinity" {
                    self.bump();
                    return Ok(Term::Constant {
                        value: Literal::Infinity,
                        location: false,
                    });
                }
                if kw == "true" || kw == "false" {
                    self.bump();
                    return Ok(Term::Constant {
                        value: Literal::Bool(kw == "true"),
                        location: false,
                    });
                }
                Err(self.error(format!(
                    "unexpected identifier `{kw}` as a term (variables are uppercase)"
                )))
            }
            Some(Token::Int(v)) => {
                self.bump();
                Ok(Term::Constant {
                    value: Literal::Int(v),
                    location: false,
                })
            }
            Some(Token::Double(v)) => {
                self.bump();
                Ok(Term::Constant {
                    value: Literal::Double(v),
                    location: false,
                })
            }
            Some(Token::Str(s)) => {
                self.bump();
                Ok(Term::Constant {
                    value: Literal::Str(s),
                    location: false,
                })
            }
            Some(Token::Minus) => {
                self.bump();
                match self.bump() {
                    Some(Token::Int(v)) => Ok(Term::Constant {
                        value: Literal::Int(-v),
                        location: false,
                    }),
                    Some(Token::Double(v)) => Ok(Term::Constant {
                        value: Literal::Double(-v),
                        location: false,
                    }),
                    _ => Err(self.error("expected number after `-`")),
                }
            }
            other => Err(self.error(format!("expected term, found {other:?}"))),
        }
    }

    // -------- expressions (precedence climbing) --------

    fn expr(&mut self) -> Result<Expr> {
        self.or_expr()
    }

    fn or_expr(&mut self) -> Result<Expr> {
        let mut lhs = self.and_expr()?;
        while matches!(self.peek(), Some(Token::OrOr)) {
            self.bump();
            let rhs = self.and_expr()?;
            lhs = Expr::Binary {
                op: BinOp::Or,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            };
        }
        Ok(lhs)
    }

    fn and_expr(&mut self) -> Result<Expr> {
        let mut lhs = self.cmp_expr()?;
        while matches!(self.peek(), Some(Token::AndAnd)) {
            self.bump();
            let rhs = self.cmp_expr()?;
            lhs = Expr::Binary {
                op: BinOp::And,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            };
        }
        Ok(lhs)
    }

    fn cmp_expr(&mut self) -> Result<Expr> {
        let lhs = self.add_expr()?;
        let op = match self.peek() {
            Some(Token::EqEq) => Some(BinOp::Eq),
            Some(Token::Ne) => Some(BinOp::Ne),
            Some(Token::Lt) => Some(BinOp::Lt),
            Some(Token::Le) => Some(BinOp::Le),
            Some(Token::Gt) => Some(BinOp::Gt),
            Some(Token::Ge) => Some(BinOp::Ge),
            _ => None,
        };
        if let Some(op) = op {
            self.bump();
            let rhs = self.add_expr()?;
            Ok(Expr::Binary {
                op,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            })
        } else {
            Ok(lhs)
        }
    }

    fn add_expr(&mut self) -> Result<Expr> {
        let mut lhs = self.mul_expr()?;
        loop {
            let op = match self.peek() {
                Some(Token::Plus) => BinOp::Add,
                Some(Token::Minus) => BinOp::Sub,
                _ => break,
            };
            self.bump();
            let rhs = self.mul_expr()?;
            lhs = Expr::Binary {
                op,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            };
        }
        Ok(lhs)
    }

    fn mul_expr(&mut self) -> Result<Expr> {
        let mut lhs = self.unary_expr()?;
        loop {
            let op = match self.peek() {
                Some(Token::Star) => BinOp::Mul,
                Some(Token::Slash) => BinOp::Div,
                Some(Token::Percent) => BinOp::Mod,
                _ => break,
            };
            self.bump();
            let rhs = self.unary_expr()?;
            lhs = Expr::Binary {
                op,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            };
        }
        Ok(lhs)
    }

    fn unary_expr(&mut self) -> Result<Expr> {
        match self.peek() {
            Some(Token::Minus) => {
                self.bump();
                let expr = self.unary_expr()?;
                Ok(Expr::Unary {
                    op: UnOp::Neg,
                    expr: Box::new(expr),
                })
            }
            Some(Token::Bang) => {
                self.bump();
                let expr = self.unary_expr()?;
                Ok(Expr::Unary {
                    op: UnOp::Not,
                    expr: Box::new(expr),
                })
            }
            _ => self.primary_expr(),
        }
    }

    fn primary_expr(&mut self) -> Result<Expr> {
        match self.peek().cloned() {
            Some(Token::LParen) => {
                self.bump();
                let e = self.expr()?;
                self.expect(&Token::RParen, "`)`")?;
                Ok(e)
            }
            Some(Token::Variable(v)) => {
                self.bump();
                Ok(Expr::Var(v))
            }
            Some(Token::Int(v)) => {
                self.bump();
                Ok(Expr::Const(Literal::Int(v)))
            }
            Some(Token::Double(v)) => {
                self.bump();
                Ok(Expr::Const(Literal::Double(v)))
            }
            Some(Token::Str(s)) => {
                self.bump();
                Ok(Expr::Const(Literal::Str(s)))
            }
            Some(Token::Ident(id)) => {
                self.bump();
                match id.as_str() {
                    "true" => Ok(Expr::Const(Literal::Bool(true))),
                    "false" => Ok(Expr::Const(Literal::Bool(false))),
                    "infinity" => Ok(Expr::Const(Literal::Infinity)),
                    _ => {
                        // Function call.
                        self.expect(&Token::LParen, "`(` after function name")?;
                        let mut args = Vec::new();
                        if !matches!(self.peek(), Some(Token::RParen)) {
                            loop {
                                args.push(self.expr()?);
                                match self.peek() {
                                    Some(Token::Comma) => {
                                        self.bump();
                                    }
                                    _ => break,
                                }
                            }
                        }
                        self.expect(&Token::RParen, "`)` closing call")?;
                        Ok(Expr::Call { func: id, args })
                    }
                }
            }
            other => Err(self.error(format!("expected expression, found {other:?}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::{AggregateFunc, BinOp, RuleKind};

    #[test]
    fn parses_mincost_program() {
        let program = parse_program(
            "materialize(link, infinity, infinity, keys(1,2)).\n\
             materialize(minCost, infinity, infinity, keys(1,2)).\n\
             r1 cost(@S,D,C) :- link(@S,D,C).\n\
             r2 cost(@S,D,C) :- link(@S,Z,C1), minCost(@Z,D,C2), C := C1 + C2.\n\
             r3 minCost(@S,D,min<C>) :- cost(@S,D,C).",
        )
        .unwrap();
        assert_eq!(program.materializations.len(), 2);
        assert_eq!(program.rules.len(), 3);
        assert_eq!(program.rules[1].name, "r2");
        assert_eq!(program.rules[1].body.len(), 3);
        let (idx, agg) = program.rules[2].head.aggregate_column().unwrap();
        assert_eq!(idx, 2);
        assert_eq!(agg.func, AggregateFunc::Min);
    }

    #[test]
    fn parses_maybe_rule_with_function_filter() {
        let rule = parse_rule(
            "br1 outputRoute(@AS,R2,Prefix,Route2) ?- \
                 inputRoute(@AS,R1,Prefix,Route1), \
                 f_isExtend(Route2,Route1,AS) == 1.",
        )
        .unwrap();
        assert_eq!(rule.kind, RuleKind::Maybe);
        assert_eq!(rule.body.len(), 2);
        match &rule.body[1] {
            BodyElem::Filter(Expr::Binary { op, lhs, .. }) => {
                assert_eq!(*op, BinOp::Eq);
                assert!(matches!(**lhs, Expr::Call { .. }));
            }
            other => panic!("expected filter, got {other:?}"),
        }
    }

    #[test]
    fn parses_unnamed_rules_with_generated_names() {
        let program = parse_program(
            "reachable(@S,D) :- link(@S,D,C).\nreachable(@S,D) :- link(@S,Z,C), reachable(@Z,D).",
        )
        .unwrap();
        assert_eq!(program.rules[0].name, "rule_1");
        assert_eq!(program.rules[1].name, "rule_2");
    }

    #[test]
    fn parses_negation_and_wildcards() {
        let rule = parse_rule("r1 lonely(@N) :- node(@N), !link(@N,_,_).").unwrap();
        let atoms: Vec<_> = rule.body_atoms().collect();
        assert_eq!(atoms.len(), 2);
        assert!(atoms[1].negated);
        assert!(matches!(atoms[1].terms[1], Term::Wildcard));
    }

    #[test]
    fn parses_assignment_precedence() {
        let rule = parse_rule("r1 out(@A,X) :- in(@A,B,C), X := B + C * 2.").unwrap();
        match &rule.body[1] {
            BodyElem::Assign { var, expr } => {
                assert_eq!(var, "X");
                // B + (C * 2)
                match expr {
                    Expr::Binary {
                        op: BinOp::Add,
                        rhs,
                        ..
                    } => {
                        assert!(matches!(**rhs, Expr::Binary { op: BinOp::Mul, .. }));
                    }
                    other => panic!("bad precedence: {other:?}"),
                }
            }
            other => panic!("expected assignment, got {other:?}"),
        }
    }

    #[test]
    fn parses_constant_location_specifier() {
        let rule = parse_rule("r1 ping(@\"n2\",X) :- trigger(@\"n1\",X).").unwrap();
        assert!(matches!(
            rule.head.terms[0],
            Term::Constant {
                value: Literal::Str(_),
                location: true
            }
        ));
    }

    #[test]
    fn parses_count_star_aggregate() {
        let rule = parse_rule("r1 degree(@N,count<*>) :- link(@N,M,C).").unwrap();
        let (_, agg) = rule.head.aggregate_column().unwrap();
        assert_eq!(agg.func, AggregateFunc::Count);
        assert_eq!(agg.var, "*");
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse_program("r1 cost(@S :- link(@S,D,C).").is_err());
        assert!(parse_program("r1 cost(@S,D) - link(@S,D).").is_err());
        assert!(parse_rule("r1 cost(@S,D) :- link(@S,D)").is_err()); // missing dot
    }

    #[test]
    fn materialize_defaults_and_limits() {
        let program = parse_program("materialize(route, 120, 1000, keys(1,2,3)).").unwrap();
        let m = &program.materializations[0];
        assert_eq!(m.lifetime, Some(120.0));
        assert_eq!(m.max_size, Some(1000));
        assert_eq!(m.keys, vec![1, 2, 3]);
    }

    #[test]
    fn display_round_trip_for_programs() {
        let src = "materialize(link, infinity, infinity, keys(1,2)).\n\
                   r1 cost(@S,D,C) :- link(@S,D,C), C < 10.\n\
                   r2 best(@S,D,min<C>) :- cost(@S,D,C).";
        let p1 = parse_program(src).unwrap();
        let p2 = parse_program(&p1.to_string()).unwrap();
        assert_eq!(p1, p2);
    }
}
