//! Hand-written lexer for NDlog source text.
//!
//! The token stream is consumed by [`crate::parser`]. Comments start with
//! `//` or `/* ... */` and are skipped; whitespace is insignificant.

use crate::error::{NdlogError, Result};

/// Token kinds produced by the lexer.
#[derive(Debug, Clone, PartialEq)]
pub enum Token {
    /// Identifier starting with a lowercase letter (relation / function /
    /// keyword such as `materialize`, `keys`, `infinity`, `min`, ...).
    Ident(String),
    /// Identifier starting with an uppercase letter or underscore: a variable.
    Variable(String),
    /// Integer literal.
    Int(i64),
    /// Floating point literal.
    Double(f64),
    /// Quoted string literal (without the quotes).
    Str(String),
    /// `@`
    At,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `,`
    Comma,
    /// `.`
    Dot,
    /// `:-`
    Derives,
    /// `?-`
    MaybeDerives,
    /// `:=`
    Assign,
    /// `<` used to open an aggregate (`min<C>`); also the less-than operator.
    Lt,
    /// `>`
    Gt,
    /// `<=`
    Le,
    /// `>=`
    Ge,
    /// `==`
    EqEq,
    /// `!=`
    Ne,
    /// `!`
    Bang,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `*`
    Star,
    /// `/`
    Slash,
    /// `%`
    Percent,
    /// `&&`
    AndAnd,
    /// `||`
    OrOr,
    /// `_` wildcard.
    Underscore,
}

/// A token plus its source position (1-based line/column), used for error
/// reporting.
#[derive(Debug, Clone, PartialEq)]
pub struct SpannedToken {
    /// The token.
    pub token: Token,
    /// 1-based line.
    pub line: usize,
    /// 1-based column.
    pub column: usize,
}

struct Lexer<'a> {
    chars: std::iter::Peekable<std::str::Chars<'a>>,
    line: usize,
    column: usize,
}

impl<'a> Lexer<'a> {
    fn new(src: &'a str) -> Self {
        Lexer {
            chars: src.chars().peekable(),
            line: 1,
            column: 1,
        }
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.chars.next();
        if let Some(c) = c {
            if c == '\n' {
                self.line += 1;
                self.column = 1;
            } else {
                self.column += 1;
            }
        }
        c
    }

    fn peek(&mut self) -> Option<char> {
        self.chars.peek().copied()
    }

    fn skip_ws_and_comments(&mut self) -> Result<()> {
        loop {
            match self.peek() {
                Some(c) if c.is_whitespace() => {
                    self.bump();
                }
                Some('/') => {
                    // Peek second char without consuming the slash: clone the iterator.
                    let mut it = self.chars.clone();
                    it.next();
                    match it.peek() {
                        Some('/') => {
                            while let Some(c) = self.bump() {
                                if c == '\n' {
                                    break;
                                }
                            }
                        }
                        Some('*') => {
                            let (line, column) = (self.line, self.column);
                            self.bump();
                            self.bump();
                            let mut closed = false;
                            while let Some(c) = self.bump() {
                                if c == '*' && self.peek() == Some('/') {
                                    self.bump();
                                    closed = true;
                                    break;
                                }
                            }
                            if !closed {
                                return Err(NdlogError::lex(
                                    line,
                                    column,
                                    "unterminated block comment",
                                ));
                            }
                        }
                        _ => return Ok(()),
                    }
                }
                _ => return Ok(()),
            }
        }
    }

    fn lex_number(&mut self, first: char) -> Result<Token> {
        let mut s = String::new();
        s.push(first);
        let mut is_double = false;
        while let Some(c) = self.peek() {
            if c.is_ascii_digit() {
                s.push(c);
                self.bump();
            } else if c == '.' {
                // Only treat as decimal point if followed by a digit; otherwise
                // it is the statement terminator.
                let mut it = self.chars.clone();
                it.next();
                if it.peek().map(|d| d.is_ascii_digit()).unwrap_or(false) {
                    is_double = true;
                    s.push(c);
                    self.bump();
                } else {
                    break;
                }
            } else {
                break;
            }
        }
        if is_double {
            s.parse::<f64>()
                .map(Token::Double)
                .map_err(|_| NdlogError::lex(self.line, self.column, format!("bad float `{s}`")))
        } else {
            s.parse::<i64>()
                .map(Token::Int)
                .map_err(|_| NdlogError::lex(self.line, self.column, format!("bad integer `{s}`")))
        }
    }

    fn lex_ident(&mut self, first: char) -> Token {
        let mut s = String::new();
        s.push(first);
        while let Some(c) = self.peek() {
            if c.is_alphanumeric() || c == '_' {
                s.push(c);
                self.bump();
            } else {
                break;
            }
        }
        if s == "_" {
            Token::Underscore
        } else if first.is_uppercase() || first == '_' {
            Token::Variable(s)
        } else {
            Token::Ident(s)
        }
    }

    fn lex_string(&mut self) -> Result<Token> {
        let (line, column) = (self.line, self.column);
        let mut s = String::new();
        loop {
            match self.bump() {
                Some('"') => return Ok(Token::Str(s)),
                Some('\\') => match self.bump() {
                    Some('n') => s.push('\n'),
                    Some('t') => s.push('\t'),
                    Some(c) => s.push(c),
                    None => return Err(NdlogError::lex(line, column, "unterminated string")),
                },
                Some(c) => s.push(c),
                None => return Err(NdlogError::lex(line, column, "unterminated string")),
            }
        }
    }

    fn next_token(&mut self) -> Result<Option<SpannedToken>> {
        self.skip_ws_and_comments()?;
        let (line, column) = (self.line, self.column);
        let c = match self.bump() {
            Some(c) => c,
            None => return Ok(None),
        };
        let token = match c {
            '(' => Token::LParen,
            ')' => Token::RParen,
            ',' => Token::Comma,
            '@' => Token::At,
            '+' => Token::Plus,
            '*' => Token::Star,
            '%' => Token::Percent,
            '_' => {
                if self
                    .peek()
                    .map(|c| c.is_alphanumeric() || c == '_')
                    .unwrap_or(false)
                {
                    self.lex_ident('_')
                } else {
                    Token::Underscore
                }
            }
            '-' => Token::Minus,
            '/' => Token::Slash,
            '.' => Token::Dot,
            '"' => self.lex_string()?,
            ':' => match self.peek() {
                Some('-') => {
                    self.bump();
                    Token::Derives
                }
                Some('=') => {
                    self.bump();
                    Token::Assign
                }
                _ => return Err(NdlogError::lex(line, column, "expected `:-` or `:=`")),
            },
            '?' => match self.peek() {
                Some('-') => {
                    self.bump();
                    Token::MaybeDerives
                }
                _ => return Err(NdlogError::lex(line, column, "expected `?-`")),
            },
            '<' => match self.peek() {
                Some('=') => {
                    self.bump();
                    Token::Le
                }
                _ => Token::Lt,
            },
            '>' => match self.peek() {
                Some('=') => {
                    self.bump();
                    Token::Ge
                }
                _ => Token::Gt,
            },
            '=' => match self.peek() {
                Some('=') => {
                    self.bump();
                    Token::EqEq
                }
                _ => {
                    return Err(NdlogError::lex(
                        line,
                        column,
                        "expected `==` (use `:=` for assignment)",
                    ))
                }
            },
            '!' => match self.peek() {
                Some('=') => {
                    self.bump();
                    Token::Ne
                }
                _ => Token::Bang,
            },
            '&' => match self.peek() {
                Some('&') => {
                    self.bump();
                    Token::AndAnd
                }
                _ => return Err(NdlogError::lex(line, column, "expected `&&`")),
            },
            '|' => match self.peek() {
                Some('|') => {
                    self.bump();
                    Token::OrOr
                }
                _ => return Err(NdlogError::lex(line, column, "expected `||`")),
            },
            c if c.is_ascii_digit() => self.lex_number(c)?,
            c if c.is_alphabetic() => self.lex_ident(c),
            other => {
                return Err(NdlogError::lex(
                    line,
                    column,
                    format!("unexpected character `{other}`"),
                ))
            }
        };
        Ok(Some(SpannedToken {
            token,
            line,
            column,
        }))
    }
}

/// Tokenize a complete NDlog source string.
pub fn tokenize(src: &str) -> Result<Vec<SpannedToken>> {
    let mut lexer = Lexer::new(src);
    let mut out = Vec::new();
    while let Some(tok) = lexer.next_token()? {
        out.push(tok);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<Token> {
        tokenize(src)
            .unwrap()
            .into_iter()
            .map(|t| t.token)
            .collect()
    }

    #[test]
    fn lexes_simple_rule() {
        let toks = kinds("r1 cost(@S,D,C) :- link(@S,D,C).");
        assert_eq!(toks[0], Token::Ident("r1".into()));
        assert_eq!(toks[1], Token::Ident("cost".into()));
        assert_eq!(toks[2], Token::LParen);
        assert_eq!(toks[3], Token::At);
        assert_eq!(toks[4], Token::Variable("S".into()));
        assert!(toks.contains(&Token::Derives));
        assert_eq!(*toks.last().unwrap(), Token::Dot);
    }

    #[test]
    fn lexes_maybe_rule_operator() {
        let toks = kinds("br1 out(A,B) ?- in(A,B).");
        assert!(toks.contains(&Token::MaybeDerives));
    }

    #[test]
    fn lexes_assignment_and_comparison() {
        let toks = kinds("C := C1 + C2, C1 <= 5, X == 1, Y != 2");
        assert!(toks.contains(&Token::Assign));
        assert!(toks.contains(&Token::Le));
        assert!(toks.contains(&Token::EqEq));
        assert!(toks.contains(&Token::Ne));
    }

    #[test]
    fn lexes_numbers_strings_and_comments() {
        let toks = kinds("// comment\n f(3, 2.5, \"n1\") /* block */ .");
        assert!(toks.contains(&Token::Int(3)));
        assert!(toks.contains(&Token::Double(2.5)));
        assert!(toks.contains(&Token::Str("n1".into())));
    }

    #[test]
    fn integer_followed_by_dot_is_not_a_float() {
        // `keys(1,2).` — the trailing dot terminates the statement.
        let toks = kinds("keys(1,2).");
        assert!(toks.contains(&Token::Int(2)));
        assert_eq!(*toks.last().unwrap(), Token::Dot);
    }

    #[test]
    fn wildcard_and_variables() {
        let toks = kinds("p(_, X, _y)");
        assert_eq!(
            toks,
            vec![
                Token::Ident("p".into()),
                Token::LParen,
                Token::Underscore,
                Token::Comma,
                Token::Variable("X".into()),
                Token::Comma,
                Token::Variable("_y".into()),
                Token::RParen,
            ]
        );
    }

    #[test]
    fn error_positions_are_reported() {
        let err = tokenize("p(@A)\n  #").unwrap_err();
        match err {
            NdlogError::Lex { line, column, .. } => {
                assert_eq!(line, 2);
                assert_eq!(column, 3);
            }
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn unterminated_string_is_an_error() {
        assert!(tokenize("p(\"abc").is_err());
        assert!(tokenize("/* never closed").is_err());
    }
}
