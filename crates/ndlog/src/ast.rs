//! Abstract syntax tree for NDlog programs.
//!
//! The grammar follows the NDlog dialect used by RapidNet / ExSPAN / NetTrails:
//!
//! ```text
//! program     := (materialize | rule)*
//! materialize := "materialize" "(" ident "," lifetime "," size "," "keys" "(" ints ")" ")" "."
//! rule        := [name] head ( ":-" | "?-" ) body "."
//! head        := ident "(" headterm ("," headterm)* ")"
//! headterm    := term | aggfunc "<" var ">"
//! body        := bodyelem ("," bodyelem)*
//! bodyelem    := [ "!" ] atom | var ":=" expr | expr cmp expr
//! atom        := ident "(" term ("," term)* ")"
//! term        := ["@"] var | literal | expr
//! ```
//!
//! Location specifiers are written `@X`; by convention each relation has
//! exactly one location attribute, and a tuple of that relation is stored at
//! the node named by that attribute.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A literal constant appearing in a program.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Literal {
    /// Signed integer literal, e.g. `42` or `-3`.
    Int(i64),
    /// Floating point literal, e.g. `1.5`.
    Double(f64),
    /// Quoted string literal, e.g. `"n1"`.
    Str(String),
    /// Boolean literal `true` / `false`.
    Bool(bool),
    /// The distinguished `infinity` constant used in `materialize` clauses and
    /// occasionally as a cost sentinel.
    Infinity,
}

impl fmt::Display for Literal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Literal::Int(v) => write!(f, "{v}"),
            Literal::Double(v) => write!(f, "{v}"),
            Literal::Str(s) => write!(f, "\"{s}\""),
            Literal::Bool(b) => write!(f, "{b}"),
            Literal::Infinity => write!(f, "infinity"),
        }
    }
}

/// Binary operators usable inside expressions and selection predicates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BinOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
    /// `%`
    Mod,
    /// `==`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `&&`
    And,
    /// `||`
    Or,
}

impl BinOp {
    /// Whether the operator produces a boolean result.
    pub fn is_comparison(self) -> bool {
        matches!(
            self,
            BinOp::Eq
                | BinOp::Ne
                | BinOp::Lt
                | BinOp::Le
                | BinOp::Gt
                | BinOp::Ge
                | BinOp::And
                | BinOp::Or
        )
    }

    /// Source-level spelling of the operator.
    pub fn symbol(self) -> &'static str {
        match self {
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Div => "/",
            BinOp::Mod => "%",
            BinOp::Eq => "==",
            BinOp::Ne => "!=",
            BinOp::Lt => "<",
            BinOp::Le => "<=",
            BinOp::Gt => ">",
            BinOp::Ge => ">=",
            BinOp::And => "&&",
            BinOp::Or => "||",
        }
    }
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum UnOp {
    /// Arithmetic negation `-x`.
    Neg,
    /// Boolean negation `!x`.
    Not,
}

/// Expressions: the right-hand side of assignments, arguments of functions and
/// selection predicates.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Expr {
    /// A variable reference, e.g. `C1`.
    Var(String),
    /// A constant.
    Const(Literal),
    /// Binary operation.
    Binary {
        /// Operator.
        op: BinOp,
        /// Left operand.
        lhs: Box<Expr>,
        /// Right operand.
        rhs: Box<Expr>,
    },
    /// Unary operation.
    Unary {
        /// Operator.
        op: UnOp,
        /// Operand.
        expr: Box<Expr>,
    },
    /// Builtin function call, e.g. `f_concat(P, D)`.
    Call {
        /// Function name (conventionally `f_*`).
        func: String,
        /// Argument expressions.
        args: Vec<Expr>,
    },
}

impl Expr {
    /// Collect every variable mentioned by the expression into `out`.
    pub fn variables(&self, out: &mut Vec<String>) {
        match self {
            Expr::Var(v) => {
                if !out.contains(v) {
                    out.push(v.clone());
                }
            }
            Expr::Const(_) => {}
            Expr::Binary { lhs, rhs, .. } => {
                lhs.variables(out);
                rhs.variables(out);
            }
            Expr::Unary { expr, .. } => expr.variables(out),
            Expr::Call { args, .. } => {
                for a in args {
                    a.variables(out);
                }
            }
        }
    }

    /// Convenience constructor for a variable reference.
    pub fn var(name: impl Into<String>) -> Self {
        Expr::Var(name.into())
    }

    /// Convenience constructor for an integer constant.
    pub fn int(v: i64) -> Self {
        Expr::Const(Literal::Int(v))
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Var(v) => write!(f, "{v}"),
            Expr::Const(c) => write!(f, "{c}"),
            Expr::Binary { op, lhs, rhs } => write!(f, "({lhs} {} {rhs})", op.symbol()),
            Expr::Unary { op, expr } => match op {
                UnOp::Neg => write!(f, "(-{expr})"),
                UnOp::Not => write!(f, "(!{expr})"),
            },
            Expr::Call { func, args } => {
                write!(f, "{func}(")?;
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{a}")?;
                }
                write!(f, ")")
            }
        }
    }
}

/// A term appearing as an argument of a predicate.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Term {
    /// A plain variable, e.g. `D`. The boolean marks a location specifier
    /// (`@D`).
    Variable {
        /// Variable name.
        name: String,
        /// True when the variable carries the `@` location marker.
        location: bool,
    },
    /// A constant argument.
    Constant {
        /// The literal value.
        value: Literal,
        /// True when the constant carries the `@` location marker
        /// (e.g. `@"n1"` pins a tuple to a concrete node).
        location: bool,
    },
    /// An aggregate head term, e.g. `min<C>`. Only valid in rule heads.
    Aggregate(Aggregate),
    /// The anonymous "don't care" variable `_`.
    Wildcard,
}

impl Term {
    /// Construct a non-location variable term.
    pub fn var(name: impl Into<String>) -> Self {
        Term::Variable {
            name: name.into(),
            location: false,
        }
    }

    /// Construct a location variable term (`@X`).
    pub fn loc_var(name: impl Into<String>) -> Self {
        Term::Variable {
            name: name.into(),
            location: true,
        }
    }

    /// The variable name if the term is a variable.
    pub fn as_variable(&self) -> Option<&str> {
        match self {
            Term::Variable { name, .. } => Some(name),
            _ => None,
        }
    }

    /// Whether the term carries the location specifier marker `@`.
    pub fn is_location(&self) -> bool {
        match self {
            Term::Variable { location, .. } | Term::Constant { location, .. } => *location,
            _ => false,
        }
    }
}

impl fmt::Display for Term {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Term::Variable { name, location } => {
                if *location {
                    write!(f, "@{name}")
                } else {
                    write!(f, "{name}")
                }
            }
            Term::Constant { value, location } => {
                if *location {
                    write!(f, "@{value}")
                } else {
                    write!(f, "{value}")
                }
            }
            Term::Aggregate(a) => write!(f, "{a}"),
            Term::Wildcard => write!(f, "_"),
        }
    }
}

/// Aggregate functions allowed in rule heads.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AggregateFunc {
    /// `min<X>`
    Min,
    /// `max<X>`
    Max,
    /// `count<X>` (or `count<*>`)
    Count,
    /// `sum<X>`
    Sum,
}

impl AggregateFunc {
    /// Keyword used in source programs.
    pub fn keyword(self) -> &'static str {
        match self {
            AggregateFunc::Min => "min",
            AggregateFunc::Max => "max",
            AggregateFunc::Count => "count",
            AggregateFunc::Sum => "sum",
        }
    }

    /// Parse the keyword, if it names an aggregate.
    pub fn from_keyword(kw: &str) -> Option<Self> {
        match kw {
            "min" => Some(AggregateFunc::Min),
            "max" => Some(AggregateFunc::Max),
            "count" => Some(AggregateFunc::Count),
            "sum" => Some(AggregateFunc::Sum),
            _ => None,
        }
    }
}

/// An aggregate head term: function plus aggregated variable.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Aggregate {
    /// Which aggregate to compute.
    pub func: AggregateFunc,
    /// Variable being aggregated (`*` is represented as `"*"` for `count<*>`).
    pub var: String,
}

impl fmt::Display for Aggregate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}<{}>", self.func.keyword(), self.var)
    }
}

/// A predicate (atom): relation name plus argument terms.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Predicate {
    /// Relation name, e.g. `link`.
    pub relation: String,
    /// Argument terms.
    pub terms: Vec<Term>,
    /// True when the predicate is negated (`!p(...)`) in a rule body.
    pub negated: bool,
}

impl Predicate {
    /// Create a positive predicate.
    pub fn new(relation: impl Into<String>, terms: Vec<Term>) -> Self {
        Predicate {
            relation: relation.into(),
            terms,
            negated: false,
        }
    }

    /// Index of the location-specifier column, if any.
    pub fn location_index(&self) -> Option<usize> {
        self.terms.iter().position(|t| t.is_location())
    }

    /// The location variable name, if the location specifier is a variable.
    pub fn location_variable(&self) -> Option<&str> {
        self.terms
            .iter()
            .find(|t| t.is_location())
            .and_then(|t| t.as_variable())
    }

    /// Index and aggregate of the (single) aggregate term, if present.
    pub fn aggregate_column(&self) -> Option<(usize, &Aggregate)> {
        self.terms.iter().enumerate().find_map(|(i, t)| match t {
            Term::Aggregate(a) => Some((i, a)),
            _ => None,
        })
    }

    /// Arity of the predicate.
    pub fn arity(&self) -> usize {
        self.terms.len()
    }

    /// Every variable mentioned by the predicate, in order of first occurrence.
    pub fn variables(&self) -> Vec<String> {
        let mut out = Vec::new();
        for t in &self.terms {
            match t {
                Term::Variable { name, .. } if !out.contains(name) => {
                    out.push(name.clone());
                }
                Term::Aggregate(a) if a.var != "*" && !out.contains(&a.var) => {
                    out.push(a.var.clone());
                }
                _ => {}
            }
        }
        out
    }
}

impl fmt::Display for Predicate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.negated {
            write!(f, "!")?;
        }
        write!(f, "{}(", self.relation)?;
        for (i, t) in self.terms.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{t}")?;
        }
        write!(f, ")")
    }
}

/// One element of a rule body.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum BodyElem {
    /// A (possibly negated) relational atom.
    Atom(Predicate),
    /// An assignment `Var := Expr`.
    Assign {
        /// Variable being bound.
        var: String,
        /// Expression computing the value.
        expr: Expr,
    },
    /// A boolean selection predicate, e.g. `C1 < C2` or `f_isExtend(R2,R1,AS) == 1`.
    Filter(Expr),
}

impl BodyElem {
    /// The atom, if this element is one.
    pub fn as_atom(&self) -> Option<&Predicate> {
        match self {
            BodyElem::Atom(p) => Some(p),
            _ => None,
        }
    }
}

impl fmt::Display for BodyElem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BodyElem::Atom(p) => write!(f, "{p}"),
            BodyElem::Assign { var, expr } => write!(f, "{var} := {expr}"),
            BodyElem::Filter(e) => write!(f, "{e}"),
        }
    }
}

/// Whether a rule is an ordinary derivation rule or a *maybe* rule.
///
/// Maybe rules (written `?-`) describe **possible** causal relationships
/// between the inputs and outputs of a legacy (black-box) application; their
/// heads are observed rather than derived, and the rule is used by the proxy to
/// attribute provenance to the observation (Section 2.2 of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RuleKind {
    /// Ordinary derivation rule (`:-`).
    Derive,
    /// Maybe rule (`?-`), used for legacy application provenance.
    Maybe,
}

/// A single NDlog rule.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Rule {
    /// Rule name (e.g. `r1`, `br1`). Auto-generated (`rule_<n>`) when the
    /// source omits it.
    pub name: String,
    /// Head predicate.
    pub head: Predicate,
    /// Body elements, in source order.
    pub body: Vec<BodyElem>,
    /// Derivation vs maybe rule.
    pub kind: RuleKind,
}

impl Rule {
    /// The body atoms (ignoring assignments and filters).
    pub fn body_atoms(&self) -> impl Iterator<Item = &Predicate> {
        self.body.iter().filter_map(|b| b.as_atom())
    }

    /// Positive body atoms only.
    pub fn positive_atoms(&self) -> impl Iterator<Item = &Predicate> {
        self.body_atoms().filter(|p| !p.negated)
    }

    /// True when the head contains an aggregate term.
    pub fn is_aggregate(&self) -> bool {
        self.head.aggregate_column().is_some()
    }
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {} ", self.name, self.head)?;
        match self.kind {
            RuleKind::Derive => write!(f, ":- ")?,
            RuleKind::Maybe => write!(f, "?- ")?,
        }
        for (i, b) in self.body.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{b}")?;
        }
        write!(f, ".")
    }
}

/// A `materialize(rel, lifetime, size, keys(..))` declaration.
///
/// NetTrails/RapidNet use these to declare which relations are stored tables
/// (as opposed to event streams), how long tuples live and which columns form
/// the primary key. The runtime uses the key columns for update-in-place
/// semantics.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Materialize {
    /// Relation being declared.
    pub relation: String,
    /// Lifetime in seconds; `None` means `infinity`.
    pub lifetime: Option<f64>,
    /// Maximum table size; `None` means `infinity`.
    pub max_size: Option<u64>,
    /// 1-based primary-key column indices, as written in the program.
    pub keys: Vec<usize>,
}

impl fmt::Display for Materialize {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let lt = self
            .lifetime
            .map(|v| v.to_string())
            .unwrap_or_else(|| "infinity".to_string());
        let sz = self
            .max_size
            .map(|v| v.to_string())
            .unwrap_or_else(|| "infinity".to_string());
        let keys: Vec<String> = self.keys.iter().map(|k| k.to_string()).collect();
        write!(
            f,
            "materialize({}, {}, {}, keys({})).",
            self.relation,
            lt,
            sz,
            keys.join(",")
        )
    }
}

/// A full NDlog program: declarations plus rules.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct Program {
    /// `materialize` declarations, in source order.
    pub materializations: Vec<Materialize>,
    /// Rules, in source order.
    pub rules: Vec<Rule>,
}

impl Program {
    /// Create an empty program.
    pub fn new() -> Self {
        Program::default()
    }

    /// Find a rule by name.
    pub fn rule(&self, name: &str) -> Option<&Rule> {
        self.rules.iter().find(|r| r.name == name)
    }

    /// Find the materialization declaration for a relation.
    pub fn materialization(&self, relation: &str) -> Option<&Materialize> {
        self.materializations
            .iter()
            .find(|m| m.relation == relation)
    }

    /// Names of relations that only ever appear in bodies (never derived by a
    /// rule head): these are the program's **base relations** (extensional
    /// database), populated by the environment (links, preferences, ...).
    pub fn base_relations(&self) -> Vec<String> {
        let derived: Vec<&str> = self
            .rules
            .iter()
            .map(|r| r.head.relation.as_str())
            .collect();
        let mut out = Vec::new();
        for rule in &self.rules {
            for atom in rule.body_atoms() {
                if !derived.contains(&atom.relation.as_str()) && !out.contains(&atom.relation) {
                    out.push(atom.relation.clone());
                }
            }
        }
        out
    }

    /// Names of relations derived by at least one rule (intensional database).
    pub fn derived_relations(&self) -> Vec<String> {
        let mut out = Vec::new();
        for rule in &self.rules {
            if !out.contains(&rule.head.relation) {
                out.push(rule.head.relation.clone());
            }
        }
        out
    }

    /// Merge another program into this one (declarations first, then rules).
    /// Used by the provenance rewriter to append capture rules.
    pub fn extend(&mut self, other: Program) {
        self.materializations.extend(other.materializations);
        self.rules.extend(other.rules);
    }
}

impl fmt::Display for Program {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for m in &self.materializations {
            writeln!(f, "{m}")?;
        }
        for r in &self.rules {
            writeln!(f, "{r}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_rule() -> Rule {
        Rule {
            name: "r1".into(),
            head: Predicate::new(
                "cost",
                vec![Term::loc_var("S"), Term::var("D"), Term::var("C")],
            ),
            body: vec![
                BodyElem::Atom(Predicate::new(
                    "link",
                    vec![Term::loc_var("S"), Term::var("Z"), Term::var("C1")],
                )),
                BodyElem::Atom(Predicate::new(
                    "cost",
                    vec![Term::loc_var("Z"), Term::var("D"), Term::var("C2")],
                )),
                BodyElem::Assign {
                    var: "C".into(),
                    expr: Expr::Binary {
                        op: BinOp::Add,
                        lhs: Box::new(Expr::var("C1")),
                        rhs: Box::new(Expr::var("C2")),
                    },
                },
            ],
            kind: RuleKind::Derive,
        }
    }

    #[test]
    fn predicate_location_index() {
        let p = Predicate::new("link", vec![Term::loc_var("S"), Term::var("D")]);
        assert_eq!(p.location_index(), Some(0));
        assert_eq!(p.location_variable(), Some("S"));
        let q = Predicate::new("x", vec![Term::var("A")]);
        assert_eq!(q.location_index(), None);
    }

    #[test]
    fn rule_display_round_trips_through_parser() {
        let rule = sample_rule();
        let text = rule.to_string();
        let reparsed = crate::parse_rule(&text).unwrap();
        assert_eq!(reparsed, rule);
    }

    #[test]
    fn program_base_and_derived_relations() {
        let program = crate::parse_program(
            "r1 cost(@S,D,C) :- link(@S,D,C).\n\
             r2 minCost(@S,D,min<C>) :- cost(@S,D,C).",
        )
        .unwrap();
        assert_eq!(program.base_relations(), vec!["link".to_string()]);
        assert_eq!(
            program.derived_relations(),
            vec!["cost".to_string(), "minCost".to_string()]
        );
    }

    #[test]
    fn expr_variables_deduplicated() {
        let e = Expr::Binary {
            op: BinOp::Add,
            lhs: Box::new(Expr::var("A")),
            rhs: Box::new(Expr::Binary {
                op: BinOp::Mul,
                lhs: Box::new(Expr::var("A")),
                rhs: Box::new(Expr::var("B")),
            }),
        };
        let mut vars = Vec::new();
        e.variables(&mut vars);
        assert_eq!(vars, vec!["A".to_string(), "B".to_string()]);
    }

    #[test]
    fn aggregate_helpers() {
        let head = Predicate::new(
            "minCost",
            vec![
                Term::loc_var("S"),
                Term::var("D"),
                Term::Aggregate(Aggregate {
                    func: AggregateFunc::Min,
                    var: "C".into(),
                }),
            ],
        );
        let (idx, agg) = head.aggregate_column().unwrap();
        assert_eq!(idx, 2);
        assert_eq!(agg.func, AggregateFunc::Min);
        assert_eq!(AggregateFunc::from_keyword("sum"), Some(AggregateFunc::Sum));
        assert_eq!(AggregateFunc::from_keyword("avg"), None);
    }

    #[test]
    fn materialize_display() {
        let m = Materialize {
            relation: "link".into(),
            lifetime: None,
            max_size: Some(100),
            keys: vec![1, 2],
        };
        assert_eq!(
            m.to_string(),
            "materialize(link, infinity, 100, keys(1,2))."
        );
    }
}
