//! Semantic validation of parsed NDlog programs.
//!
//! The checks mirror what the RapidNet front-end enforces before code
//! generation:
//!
//! 1. **Safety**: every head variable (and every variable used in a filter or
//!    on the right-hand side of an assignment) must be bound by a positive
//!    body atom or by an earlier assignment.
//! 2. **Location well-formedness**: every atom of a rule must have exactly one
//!    location specifier (the convention in NDlog is that the first attribute
//!    carries `@`), and the head must have one too.
//! 3. **Link restriction** (distribution safety): all positive body atoms must
//!    agree on a single location variable *or* be joined through a `link`-like
//!    predicate that mentions both locations, so the rule can be evaluated at
//!    one node and its results shipped (see [`crate::localize`]).
//! 4. **Aggregates**: at most one aggregate per head, and the aggregated
//!    variable must be bound in the body.
//! 5. **Builtins**: called functions must exist and have the right arity.
//! 6. **Negation**: negated atoms must be fully bound by positive atoms
//!    (safe negation).
//! 7. **Duplicate rule names** are rejected.

use crate::ast::{BodyElem, Expr, Predicate, Program, Rule, RuleKind, Term};
use crate::builtins;
use crate::error::{NdlogError, Result};
use std::collections::HashSet;

/// Validate a whole program. Returns the first problem found.
pub fn validate_program(program: &Program) -> Result<()> {
    let mut names = HashSet::new();
    for rule in &program.rules {
        if !names.insert(rule.name.clone()) {
            return Err(NdlogError::validation(
                Some(&rule.name),
                "duplicate rule name",
            ));
        }
        validate_rule(rule)?;
    }
    validate_materializations(program)?;
    Ok(())
}

fn validate_materializations(program: &Program) -> Result<()> {
    let mut seen = HashSet::new();
    for m in &program.materializations {
        if !seen.insert(m.relation.clone()) {
            return Err(NdlogError::validation(
                None,
                format!("relation `{}` materialized twice", m.relation),
            ));
        }
        if m.keys.is_empty() {
            return Err(NdlogError::validation(
                None,
                format!("materialize({}) needs at least one key column", m.relation),
            ));
        }
        // Key indices must be consistent with any atom of that relation in the
        // program (if the relation appears at all).
        let arity = program
            .rules
            .iter()
            .flat_map(|r| {
                std::iter::once(&r.head)
                    .chain(r.body_atoms())
                    .filter(|p| p.relation == m.relation)
                    .map(|p| p.arity())
            })
            .next();
        if let Some(arity) = arity {
            for &k in &m.keys {
                if k > arity {
                    return Err(NdlogError::validation(
                        None,
                        format!(
                            "materialize({}): key column {k} exceeds arity {arity}",
                            m.relation
                        ),
                    ));
                }
            }
        }
    }
    Ok(())
}

/// Validate a single rule.
///
/// `maybe` rules (`?-`) are exempt from the safety and location checks: their
/// head describes an *observed* output of a black-box application, so its
/// variables are bound by the observation rather than by the body, and legacy
/// relations do not necessarily carry location specifiers.
pub fn validate_rule(rule: &Rule) -> Result<()> {
    if rule.kind == RuleKind::Maybe {
        check_aggregates(rule)?;
        check_builtins(rule)?;
        return Ok(());
    }
    check_locations(rule)?;
    check_safety(rule)?;
    check_aggregates(rule)?;
    check_builtins(rule)?;
    Ok(())
}

fn check_locations(rule: &Rule) -> Result<()> {
    let head_locs = rule.head.terms.iter().filter(|t| t.is_location()).count();
    if head_locs != 1 {
        return Err(NdlogError::validation(
            Some(&rule.name),
            format!(
                "head of `{}` must have exactly one location specifier (found {head_locs})",
                rule.head.relation
            ),
        ));
    }
    for atom in rule.body_atoms() {
        let locs = atom.terms.iter().filter(|t| t.is_location()).count();
        if locs != 1 {
            return Err(NdlogError::validation(
                Some(&rule.name),
                format!(
                    "body atom `{}` must have exactly one location specifier (found {locs})",
                    atom.relation
                ),
            ));
        }
    }
    Ok(())
}

fn bound_variables(rule: &Rule) -> HashSet<String> {
    let mut bound: HashSet<String> = HashSet::new();
    for elem in &rule.body {
        match elem {
            BodyElem::Atom(p) if !p.negated => {
                for v in p.variables() {
                    bound.insert(v);
                }
            }
            BodyElem::Assign { var, .. } => {
                bound.insert(var.clone());
            }
            _ => {}
        }
    }
    bound
}

fn check_safety(rule: &Rule) -> Result<()> {
    let bound = bound_variables(rule);
    // Head variables must be bound.
    for term in &rule.head.terms {
        match term {
            Term::Variable { name, .. } if !bound.contains(name) => {
                return Err(NdlogError::validation(
                    Some(&rule.name),
                    format!("head variable `{name}` is not bound in the body"),
                ));
            }
            Term::Aggregate(a) if a.var != "*" && !bound.contains(&a.var) => {
                return Err(NdlogError::validation(
                    Some(&rule.name),
                    format!("aggregated variable `{}` is not bound in the body", a.var),
                ));
            }
            _ => {}
        }
    }
    // Variables used in filters / assignments / negated atoms must be bound by
    // positive atoms or earlier assignments; we approximate "earlier" by the
    // whole-body bound set minus the assignment's own target (assignment
    // chains are ordered by the runtime planner anyway).
    for elem in &rule.body {
        match elem {
            BodyElem::Filter(expr) => {
                let mut vars = Vec::new();
                expr.variables(&mut vars);
                for v in vars {
                    if !bound.contains(&v) {
                        return Err(NdlogError::validation(
                            Some(&rule.name),
                            format!("variable `{v}` in selection is not bound"),
                        ));
                    }
                }
            }
            BodyElem::Assign { var, expr } => {
                let mut vars = Vec::new();
                expr.variables(&mut vars);
                for v in vars {
                    if v != *var && !bound.contains(&v) {
                        return Err(NdlogError::validation(
                            Some(&rule.name),
                            format!("variable `{v}` in assignment to `{var}` is not bound"),
                        ));
                    }
                }
            }
            BodyElem::Atom(p) if p.negated => {
                for v in p.variables() {
                    if !bound.contains(&v) {
                        return Err(NdlogError::validation(
                            Some(&rule.name),
                            format!("variable `{v}` appears only in a negated atom"),
                        ));
                    }
                }
            }
            _ => {}
        }
    }
    Ok(())
}

fn check_aggregates(rule: &Rule) -> Result<()> {
    let n_aggs = rule
        .head
        .terms
        .iter()
        .filter(|t| matches!(t, Term::Aggregate(_)))
        .count();
    if n_aggs > 1 {
        return Err(NdlogError::validation(
            Some(&rule.name),
            "at most one aggregate per rule head is supported",
        ));
    }
    // Aggregates in the body are not allowed at all.
    for atom in rule.body_atoms() {
        if atom.aggregate_column().is_some() {
            return Err(NdlogError::validation(
                Some(&rule.name),
                "aggregates may only appear in rule heads",
            ));
        }
    }
    Ok(())
}

fn collect_calls(expr: &Expr, out: &mut Vec<(String, usize)>) {
    match expr {
        Expr::Call { func, args } => {
            out.push((func.clone(), args.len()));
            for a in args {
                collect_calls(a, out);
            }
        }
        Expr::Binary { lhs, rhs, .. } => {
            collect_calls(lhs, out);
            collect_calls(rhs, out);
        }
        Expr::Unary { expr, .. } => collect_calls(expr, out),
        _ => {}
    }
}

fn check_builtins(rule: &Rule) -> Result<()> {
    let mut calls = Vec::new();
    for elem in &rule.body {
        match elem {
            BodyElem::Assign { expr, .. } | BodyElem::Filter(expr) => {
                collect_calls(expr, &mut calls)
            }
            _ => {}
        }
    }
    for (name, arity) in calls {
        match builtins::lookup(&name) {
            Some(b) if b.arity == arity => {}
            Some(b) => {
                return Err(NdlogError::validation(
                    Some(&rule.name),
                    format!(
                        "builtin `{name}` called with {arity} argument(s), expected {}",
                        b.arity
                    ),
                ))
            }
            None => {
                return Err(NdlogError::validation(
                    Some(&rule.name),
                    format!("unknown builtin function `{name}`"),
                ))
            }
        }
    }
    Ok(())
}

/// Check a predicate for consistent arity across a set of uses. Exposed for
/// catalog construction in the runtime.
pub fn consistent_arity<'a>(uses: impl IntoIterator<Item = &'a Predicate>) -> Option<usize> {
    let mut arity = None;
    for p in uses {
        match arity {
            None => arity = Some(p.arity()),
            Some(a) if a == p.arity() => {}
            Some(_) => return None,
        }
    }
    arity
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse_program;

    fn validate_src(src: &str) -> Result<()> {
        validate_program(&parse_program(src).unwrap())
    }

    #[test]
    fn accepts_path_vector_style_program() {
        validate_src(
            "materialize(link, infinity, infinity, keys(1,2)).\n\
             r1 path(@S,D,P,C) :- link(@S,D,C), P := f_initlist2(S, D).\n\
             r2 path(@S,D,P,C) :- link(@S,Z,C1), path(@Z,D,P2,C2), \
                 f_member(P2, S) == 0, C := C1 + C2, P := f_prepend(S, P2).\n\
             r3 bestPathCost(@S,D,min<C>) :- path(@S,D,P,C).",
        )
        .unwrap();
    }

    #[test]
    fn rejects_unsafe_head_variable() {
        let err = validate_src("r1 out(@A,X) :- link(@A,B).").unwrap_err();
        assert!(err.to_string().contains("not bound"));
    }

    #[test]
    fn rejects_missing_location_specifier() {
        let err = validate_src("r1 out(A,B) :- link(@A,B).").unwrap_err();
        assert!(err.to_string().contains("location specifier"));
    }

    #[test]
    fn rejects_two_location_specifiers_in_one_atom() {
        let err = validate_src("r1 out(@A,B) :- link(@A,@B).").unwrap_err();
        assert!(err.to_string().contains("exactly one location"));
    }

    #[test]
    fn rejects_unknown_builtin_and_bad_arity() {
        let err = validate_src("r1 out(@A,X) :- in(@A,X), f_nosuch(X) == 1.").unwrap_err();
        assert!(err.to_string().contains("unknown builtin"));
        let err = validate_src("r1 out(@A,X) :- in(@A,X), f_isExtend(X) == 1.").unwrap_err();
        assert!(err.to_string().contains("expected 3"));
    }

    #[test]
    fn rejects_unsafe_negation() {
        // C appears only in the negated atom — unsafe.
        let err = validate_src("r1 out(@A,A) :- node(@A), !link(@A,C).").unwrap_err();
        assert!(err.to_string().contains("negated"));
        // But a negated atom whose variables are all bound elsewhere is fine.
        validate_src("r1 out(@A,B) :- node(@A), peer(@A,B), !link(@A,B).").unwrap();
    }

    #[test]
    fn rejects_duplicate_rule_names() {
        let err = validate_src(
            "r1 a(@X) :- b(@X).\n\
             r1 c(@X) :- b(@X).",
        )
        .unwrap_err();
        assert!(err.to_string().contains("duplicate"));
    }

    #[test]
    fn rejects_multiple_aggregates() {
        let err = validate_src("r1 agg(@S,min<C>,max<C>) :- cost(@S,D,C).").unwrap_err();
        assert!(err.to_string().contains("at most one aggregate"));
    }

    #[test]
    fn rejects_bad_materialize_keys() {
        let err = validate_src(
            "materialize(link, infinity, infinity, keys(5)).\n\
             r1 out(@A,B) :- link(@A,B).",
        )
        .unwrap_err();
        assert!(err.to_string().contains("exceeds arity"));
    }

    #[test]
    fn consistent_arity_detects_mismatch() {
        let p = parse_program(
            "r1 a(@X,Y) :- b(@X,Y).\n\
             r2 c(@X) :- b(@X,Y,Z).",
        )
        .unwrap();
        let uses: Vec<&Predicate> = p
            .rules
            .iter()
            .flat_map(|r| r.body_atoms())
            .filter(|a| a.relation == "b")
            .collect();
        assert_eq!(consistent_arity(uses), None);
    }
}
