//! Vendored JSON layer over the serde facade: prints and parses the
//! [`serde::Content`] tree. Mirrors the small part of the real `serde_json`
//! API the workspace uses (`to_string`, `to_string_pretty`, `from_str`).
//! Non-string map keys are stringified exactly like real `serde_json`
//! (integers become quoted numbers); other non-string keys are an error.

use serde::{Content, Deserialize, Serialize};
use std::fmt;

/// JSON error type.
#[derive(Debug, Clone, PartialEq)]
pub struct Error(String);

impl Error {
    fn new(msg: impl Into<String>) -> Self {
        Error(msg.into())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error: {}", self.0)
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(e: serde::Error) -> Self {
        Error(e.0)
    }
}

/// Result alias mirroring `serde_json::Result`.
pub type Result<T> = std::result::Result<T, Error>;

/// Serialize a value to compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let content = serde::to_content(value)?;
    let mut out = String::new();
    write_content(&mut out, &content, None, 0)?;
    Ok(out)
}

/// Serialize a value to pretty-printed JSON (two-space indent).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let content = serde::to_content(value)?;
    let mut out = String::new();
    write_content(&mut out, &content, Some(2), 0)?;
    Ok(out)
}

/// Deserialize a value from JSON text.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T> {
    let mut parser = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    parser.skip_ws();
    let content = parser.parse_value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(Error::new(format!(
            "trailing characters at offset {}",
            parser.pos
        )));
    }
    serde::from_content(content).map_err(Into::into)
}

// ---------------------------------------------------------------------------
// printing
// ---------------------------------------------------------------------------

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

fn key_string(key: &Content) -> Result<String> {
    match key {
        Content::Str(s) => Ok(s.clone()),
        Content::I64(v) => Ok(v.to_string()),
        Content::U64(v) => Ok(v.to_string()),
        Content::Bool(b) => Ok(b.to_string()),
        other => Err(Error::new(format!(
            "map key must be a string or integer, got {other:?}"
        ))),
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(step) = indent {
        out.push('\n');
        out.push_str(&" ".repeat(step * depth));
    }
}

fn write_content(
    out: &mut String,
    content: &Content,
    indent: Option<usize>,
    depth: usize,
) -> Result<()> {
    match content {
        Content::Null => out.push_str("null"),
        Content::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Content::I64(v) => out.push_str(&v.to_string()),
        Content::U64(v) => out.push_str(&v.to_string()),
        Content::F64(v) => {
            if v.is_finite() {
                out.push_str(&format!("{v:?}"));
            } else {
                // Real serde_json refuses non-finite floats; emit null instead.
                out.push_str("null");
            }
        }
        Content::Str(s) => write_escaped(out, s),
        Content::Seq(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return Ok(());
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                    if indent.is_none() {
                        // compact: no space
                    }
                }
                newline_indent(out, indent, depth + 1);
                write_content(out, item, indent, depth + 1)?;
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Content::Map(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return Ok(());
            }
            out.push('{');
            for (i, (k, v)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_escaped(out, &key_string(k)?);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_content(out, v, indent, depth + 1)?;
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// parsing
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected `{}` at offset {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Content> {
        self.skip_ws();
        match self.peek() {
            None => Err(Error::new("unexpected end of input")),
            Some(b'n') => {
                if self.eat_keyword("null") {
                    Ok(Content::Null)
                } else {
                    Err(Error::new(format!("bad literal at offset {}", self.pos)))
                }
            }
            Some(b't') => {
                if self.eat_keyword("true") {
                    Ok(Content::Bool(true))
                } else {
                    Err(Error::new(format!("bad literal at offset {}", self.pos)))
                }
            }
            Some(b'f') => {
                if self.eat_keyword("false") {
                    Ok(Content::Bool(false))
                } else {
                    Err(Error::new(format!("bad literal at offset {}", self.pos)))
                }
            }
            Some(b'"') => Ok(Content::Str(self.parse_string()?)),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Content::Seq(items));
                }
                loop {
                    items.push(self.parse_value()?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => {
                            self.pos += 1;
                        }
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Content::Seq(items));
                        }
                        _ => return Err(Error::new(format!("bad array at offset {}", self.pos))),
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut entries = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Content::Map(entries));
                }
                loop {
                    self.skip_ws();
                    let key = self.parse_string()?;
                    self.skip_ws();
                    self.expect(b':')?;
                    let value = self.parse_value()?;
                    entries.push((Content::Str(key), value));
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => {
                            self.pos += 1;
                        }
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Content::Map(entries));
                        }
                        _ => return Err(Error::new(format!("bad object at offset {}", self.pos))),
                    }
                }
            }
            Some(_) => self.parse_number(),
        }
    }

    fn parse_string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(Error::new("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{0008}'),
                        Some(b'f') => out.push('\u{000c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| Error::new("bad \\u escape"))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error::new("bad \\u escape"))?,
                                16,
                            )
                            .map_err(|_| Error::new("bad \\u escape"))?;
                            out.push(
                                char::from_u32(code).ok_or_else(|| Error::new("bad \\u escape"))?,
                            );
                            self.pos += 4;
                        }
                        other => {
                            return Err(Error::new(format!("bad escape: {other:?}")));
                        }
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 encoded char.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| Error::new("invalid UTF-8"))?;
                    let c = rest.chars().next().expect("non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn parse_number(&mut self) -> Result<Content> {
        let start = self.pos;
        while let Some(b) = self.peek() {
            if matches!(b, b'-' | b'+' | b'.' | b'e' | b'E') || b.is_ascii_digit() {
                self.pos += 1;
            } else {
                break;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("invalid number"))?;
        if text.is_empty() {
            return Err(Error::new(format!(
                "unexpected character at offset {start}"
            )));
        }
        if !text.contains(['.', 'e', 'E']) {
            if let Ok(v) = text.parse::<i64>() {
                return Ok(Content::I64(v));
            }
            if let Ok(v) = text.parse::<u64>() {
                return Ok(Content::U64(v));
            }
        }
        text.parse::<f64>()
            .map(Content::F64)
            .map_err(|_| Error::new(format!("bad number `{text}`")))
    }
}
