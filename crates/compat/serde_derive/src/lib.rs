//! Hand-rolled `#[derive(Serialize, Deserialize)]` for the vendored serde
//! facade. No `syn`/`quote`: the item is parsed directly from the
//! `proc_macro` token stream and the impl is generated as source text.
//!
//! Supported shapes (everything this workspace derives on):
//! * structs with named fields (field attrs: `#[serde(skip)]`,
//!   `#[serde(serialize_with = "path", deserialize_with = "path")]`);
//! * tuple structs (single-field newtypes serialize transparently, larger
//!   ones as sequences);
//! * unit structs;
//! * enums with unit / tuple / struct variants, externally tagged exactly
//!   like real serde (`"Variant"`, `{"Variant": value}`, `{"Variant": [..]}`,
//!   `{"Variant": {..}}`).
//!
//! Generic items are unsupported and produce a compile error.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[derive(Default, Clone)]
struct FieldAttrs {
    skip: bool,
    serialize_with: Option<String>,
    deserialize_with: Option<String>,
}

struct NamedField {
    name: String,
    attrs: FieldAttrs,
}

enum Body {
    Unit,
    /// Tuple body with the number of fields.
    Tuple(usize),
    Named(Vec<NamedField>),
}

struct Variant {
    name: String,
    body: Body,
}

enum Item {
    Struct {
        name: String,
        body: Body,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

// ---------------------------------------------------------------------------
// token-stream parsing
// ---------------------------------------------------------------------------

struct Cursor {
    tokens: Vec<TokenTree>,
    pos: usize,
}

impl Cursor {
    fn new(stream: TokenStream) -> Self {
        Cursor {
            tokens: stream.into_iter().collect(),
            pos: 0,
        }
    }

    fn peek(&self) -> Option<&TokenTree> {
        self.tokens.get(self.pos)
    }

    fn next(&mut self) -> Option<TokenTree> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn at_end(&self) -> bool {
        self.pos >= self.tokens.len()
    }

    fn is_punct(&self, ch: char) -> bool {
        matches!(self.peek(), Some(TokenTree::Punct(p)) if p.as_char() == ch)
    }

    fn is_ident(&self, word: &str) -> bool {
        matches!(self.peek(), Some(TokenTree::Ident(i)) if i.to_string() == word)
    }

    /// Consume leading attributes, returning the parsed serde field attrs.
    fn take_attrs(&mut self) -> FieldAttrs {
        let mut attrs = FieldAttrs::default();
        while self.is_punct('#') {
            self.next();
            // `#![..]` inner attributes cannot appear here; outer only.
            match self.next() {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket => {
                    parse_serde_attr(g.stream(), &mut attrs);
                }
                other => panic!("serde_derive: malformed attribute: {other:?}"),
            }
        }
        attrs
    }

    /// Consume `pub`, `pub(..)` if present.
    fn skip_visibility(&mut self) {
        if self.is_ident("pub") {
            self.next();
            if matches!(self.peek(), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
            {
                self.next();
            }
        }
    }

    fn expect_ident(&mut self) -> String {
        match self.next() {
            Some(TokenTree::Ident(i)) => i.to_string(),
            other => panic!("serde_derive: expected identifier, found {other:?}"),
        }
    }

    /// Skip a type (or expression) until a top-level `,` — angle brackets are
    /// balanced so `BTreeMap<K, V>` is treated as one type.
    fn skip_until_toplevel_comma(&mut self) {
        let mut angle_depth = 0i32;
        while let Some(t) = self.peek() {
            match t {
                TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && angle_depth <= 0 => return,
                _ => {}
            }
            self.next();
        }
    }
}

fn parse_serde_attr(stream: TokenStream, attrs: &mut FieldAttrs) {
    let mut it = stream.into_iter();
    match it.next() {
        Some(TokenTree::Ident(i)) if i.to_string() == "serde" => {}
        _ => return, // doc comment or unrelated attribute
    }
    let Some(TokenTree::Group(g)) = it.next() else {
        return;
    };
    // Inside: `skip`, `serialize_with = "path"`, `deserialize_with = "path"`,
    // comma separated, possibly spanning lines.
    let mut inner = g.stream().into_iter().peekable();
    while let Some(tok) = inner.next() {
        let TokenTree::Ident(key) = tok else { continue };
        match key.to_string().as_str() {
            "skip" => attrs.skip = true,
            key @ ("serialize_with" | "deserialize_with") => {
                // expect `=` then a string literal
                let Some(TokenTree::Punct(_)) = inner.next() else {
                    panic!("serde_derive: expected `=` after {key}");
                };
                let Some(TokenTree::Literal(lit)) = inner.next() else {
                    panic!("serde_derive: expected string after {key} =");
                };
                let path = lit.to_string().trim_matches('"').to_string();
                if key == "serialize_with" {
                    attrs.serialize_with = Some(path);
                } else {
                    attrs.deserialize_with = Some(path);
                }
            }
            "default" => {} // tolerated: missing fields already fall back below
            other => panic!("serde_derive: unsupported serde attribute `{other}`"),
        }
    }
}

fn count_toplevel_fields(stream: TokenStream) -> usize {
    let mut count = 0usize;
    let mut saw_any = false;
    let mut angle_depth = 0i32;
    let mut pending = false;
    for t in stream {
        saw_any = true;
        match t {
            TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle_depth <= 0 => {
                count += 1;
                pending = false;
                continue;
            }
            _ => {}
        }
        pending = true;
    }
    if pending || (saw_any && count == 0) {
        count += 1;
    }
    count
}

fn parse_named_fields(stream: TokenStream) -> Vec<NamedField> {
    let mut cur = Cursor::new(stream);
    let mut fields = Vec::new();
    while !cur.at_end() {
        let attrs = cur.take_attrs();
        cur.skip_visibility();
        let name = cur.expect_ident();
        // `:` then the type.
        match cur.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => panic!("serde_derive: expected `:` after field `{name}`, found {other:?}"),
        }
        cur.skip_until_toplevel_comma();
        if cur.is_punct(',') {
            cur.next();
        }
        fields.push(NamedField { name, attrs });
    }
    fields
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let mut cur = Cursor::new(stream);
    let mut variants = Vec::new();
    while !cur.at_end() {
        let _attrs = cur.take_attrs();
        let name = cur.expect_ident();
        let body = match cur.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let n = count_toplevel_fields(g.stream());
                cur.next();
                Body::Tuple(n)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let fields = parse_named_fields(g.stream());
                cur.next();
                Body::Named(fields)
            }
            _ => Body::Unit,
        };
        // Skip an explicit discriminant `= expr` if present.
        if cur.is_punct('=') {
            cur.next();
            cur.skip_until_toplevel_comma();
        }
        if cur.is_punct(',') {
            cur.next();
        }
        variants.push(Variant { name, body });
    }
    variants
}

fn parse_item(input: TokenStream) -> Item {
    let mut cur = Cursor::new(input);
    cur.take_attrs();
    cur.skip_visibility();
    let kind = cur.expect_ident();
    let name = cur.expect_ident();
    if cur.is_punct('<') {
        panic!("serde_derive: generic types are not supported by the vendored derive");
    }
    match kind.as_str() {
        "struct" => {
            let body = match cur.peek() {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    Body::Named(parse_named_fields(g.stream()))
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    Body::Tuple(count_toplevel_fields(g.stream()))
                }
                Some(TokenTree::Punct(p)) if p.as_char() == ';' => Body::Unit,
                other => panic!("serde_derive: unsupported struct body: {other:?}"),
            };
            Item::Struct { name, body }
        }
        "enum" => {
            let variants = match cur.peek() {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    parse_variants(g.stream())
                }
                other => panic!("serde_derive: unsupported enum body: {other:?}"),
            };
            Item::Enum { name, variants }
        }
        other => panic!("serde_derive: cannot derive for `{other}` items"),
    }
}

// ---------------------------------------------------------------------------
// code generation
// ---------------------------------------------------------------------------

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let code = match item {
        Item::Struct { name, body } => gen_struct_serialize(&name, &body),
        Item::Enum { name, variants } => gen_enum_serialize(&name, &variants),
    };
    code.parse().expect("serde_derive: generated invalid Rust")
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let code = match item {
        Item::Struct { name, body } => gen_struct_deserialize(&name, &body),
        Item::Enum { name, variants } => gen_enum_deserialize(&name, &variants),
    };
    code.parse().expect("serde_derive: generated invalid Rust")
}

fn gen_struct_serialize(name: &str, body: &Body) -> String {
    let build = match body {
        Body::Unit => "serde::Content::Null".to_string(),
        Body::Tuple(1) => "serde::to_content(&self.0)?".to_string(),
        Body::Tuple(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("serde::to_content(&self.{i})?"))
                .collect();
            format!("serde::Content::Seq(vec![{}])", items.join(", "))
        }
        Body::Named(fields) => {
            let mut entries = Vec::new();
            for f in fields {
                if f.attrs.skip {
                    continue;
                }
                let value = match &f.attrs.serialize_with {
                    Some(path) => format!("{path}(&self.{}, serde::ContentSerializer)?", f.name),
                    None => format!("serde::to_content(&self.{})?", f.name),
                };
                entries.push(format!(
                    "(serde::Content::Str(\"{n}\".to_string()), {value})",
                    n = f.name
                ));
            }
            format!("serde::Content::Map(vec![{}])", entries.join(", "))
        }
    };
    format!(
        "impl serde::Serialize for {name} {{\n\
         fn serialize<S: serde::Serializer>(&self, serializer: S) -> core::result::Result<S::Ok, S::Error> {{\n\
         let content = {build};\n\
         serializer.serialize_content(content)\n\
         }}\n\
         }}"
    )
}

/// Generates the expression list that serializes bound variables `f0..fN`.
fn tuple_payload(n: usize) -> (String, String) {
    let binders: Vec<String> = (0..n).map(|i| format!("f{i}")).collect();
    let items: Vec<String> = binders
        .iter()
        .map(|b| format!("serde::to_content({b})?"))
        .collect();
    (binders.join(", "), items.join(", "))
}

fn gen_enum_serialize(name: &str, variants: &[Variant]) -> String {
    let mut arms = Vec::new();
    for v in variants {
        let vn = &v.name;
        let arm = match &v.body {
            Body::Unit => format!(
                "{name}::{vn} => serde::Content::Str(\"{vn}\".to_string()),"
            ),
            Body::Tuple(1) => format!(
                "{name}::{vn}(f0) => serde::Content::Map(vec![(serde::Content::Str(\"{vn}\".to_string()), serde::to_content(f0)?)]),"
            ),
            Body::Tuple(n) => {
                let (binders, items) = tuple_payload(*n);
                format!(
                    "{name}::{vn}({binders}) => serde::Content::Map(vec![(serde::Content::Str(\"{vn}\".to_string()), serde::Content::Seq(vec![{items}]))]),"
                )
            }
            Body::Named(fields) => {
                let binders: Vec<&str> = fields.iter().map(|f| f.name.as_str()).collect();
                let entries: Vec<String> = fields
                    .iter()
                    .filter(|f| !f.attrs.skip)
                    .map(|f| {
                        format!(
                            "(serde::Content::Str(\"{n}\".to_string()), serde::to_content({n})?)",
                            n = f.name
                        )
                    })
                    .collect();
                format!(
                    "{name}::{vn} {{ {binders} }} => serde::Content::Map(vec![(serde::Content::Str(\"{vn}\".to_string()), serde::Content::Map(vec![{entries}]))]),",
                    binders = binders.join(", "),
                    entries = entries.join(", ")
                )
            }
        };
        arms.push(arm);
    }
    format!(
        "impl serde::Serialize for {name} {{\n\
         fn serialize<S: serde::Serializer>(&self, serializer: S) -> core::result::Result<S::Ok, S::Error> {{\n\
         let content = match self {{\n{arms}\n}};\n\
         serializer.serialize_content(content)\n\
         }}\n\
         }}",
        arms = arms.join("\n")
    )
}

fn named_fields_deserialize(type_path: &str, fields: &[NamedField], map_expr: &str) -> String {
    let mut inits = Vec::new();
    for f in fields {
        let n = &f.name;
        let init = if f.attrs.skip {
            format!("{n}: core::default::Default::default(),")
        } else if let Some(path) = &f.attrs.deserialize_with {
            format!(
                "{n}: {path}({map_expr}.map_get(\"{n}\").cloned().unwrap_or(serde::Content::Null))?,"
            )
        } else {
            format!(
                "{n}: match {map_expr}.map_get(\"{n}\") {{\n\
                 Some(v) => serde::from_content(v.clone())?,\n\
                 None => serde::from_content(serde::Content::Null).map_err(|_| serde::Error::custom(format!(\"missing field `{n}` in {type_path}\")))?,\n\
                 }},"
            )
        };
        inits.push(init);
    }
    inits.join("\n")
}

fn gen_struct_deserialize(name: &str, body: &Body) -> String {
    let build = match body {
        Body::Unit => format!("Ok({name})"),
        Body::Tuple(1) => format!("Ok({name}(serde::from_content(content)?))"),
        Body::Tuple(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("serde::from_content(items[{i}].clone())?"))
                .collect();
            format!(
                "let items = content.as_seq().ok_or_else(|| serde::Error::custom(\"expected sequence for {name}\"))?;\n\
                 if items.len() != {n} {{ return Err(serde::Error::custom(\"wrong tuple arity for {name}\").into()); }}\n\
                 Ok({name}({items}))",
                items = items.join(", ")
            )
        }
        Body::Named(fields) => {
            let inits = named_fields_deserialize(name, fields, "content");
            format!(
                "if content.as_map().is_none() {{ return Err(serde::Error::custom(\"expected map for {name}\").into()); }}\n\
                 Ok({name} {{\n{inits}\n}})"
            )
        }
    };
    format!(
        "impl serde::Deserialize for {name} {{\n\
         fn deserialize<'de, D: serde::Deserializer<'de>>(deserializer: D) -> core::result::Result<Self, D::Error> {{\n\
         let content = deserializer.into_content()?;\n\
         let _ = &content;\n\
         {build}\n\
         }}\n\
         }}"
    )
}

fn gen_enum_deserialize(name: &str, variants: &[Variant]) -> String {
    let mut unit_arms = Vec::new();
    let mut tagged_arms = Vec::new();
    for v in variants {
        let vn = &v.name;
        match &v.body {
            Body::Unit => unit_arms.push(format!("\"{vn}\" => return Ok({name}::{vn}),")),
            Body::Tuple(1) => tagged_arms.push(format!(
                "\"{vn}\" => return Ok({name}::{vn}(serde::from_content(payload.clone())?)),"
            )),
            Body::Tuple(n) => {
                let items: Vec<String> = (0..*n)
                    .map(|i| format!("serde::from_content(items[{i}].clone())?"))
                    .collect();
                tagged_arms.push(format!(
                    "\"{vn}\" => {{\n\
                     let items = payload.as_seq().ok_or_else(|| serde::Error::custom(\"expected sequence payload for {name}::{vn}\"))?;\n\
                     if items.len() != {n} {{ return Err(serde::Error::custom(\"wrong arity for {name}::{vn}\").into()); }}\n\
                     return Ok({name}::{vn}({items}));\n\
                     }}",
                    items = items.join(", ")
                ));
            }
            Body::Named(fields) => {
                let inits = named_fields_deserialize(&format!("{name}::{vn}"), fields, "payload");
                tagged_arms.push(format!(
                    "\"{vn}\" => {{\n\
                     if payload.as_map().is_none() {{ return Err(serde::Error::custom(\"expected map payload for {name}::{vn}\").into()); }}\n\
                     return Ok({name}::{vn} {{\n{inits}\n}});\n\
                     }}"
                ));
            }
        }
    }
    format!(
        "impl serde::Deserialize for {name} {{\n\
         fn deserialize<'de, D: serde::Deserializer<'de>>(deserializer: D) -> core::result::Result<Self, D::Error> {{\n\
         let content = deserializer.into_content()?;\n\
         if let Some(tag) = content.as_str() {{\n\
         match tag {{\n{unit_arms}\n_ => {{}}\n}}\n\
         }}\n\
         if let Some(entries) = content.as_map() {{\n\
         if entries.len() == 1 {{\n\
         if let Some(tag) = entries[0].0.as_str() {{\n\
         let payload = &entries[0].1;\n\
         let _ = payload;\n\
         match tag {{\n{tagged_arms}\n_ => {{}}\n}}\n\
         }}\n\
         }}\n\
         }}\n\
         Err(serde::Error::custom(\"no variant of {name} matched\").into())\n\
         }}\n\
         }}",
        unit_arms = unit_arms.join("\n"),
        tagged_arms = tagged_arms.join("\n")
    )
}
