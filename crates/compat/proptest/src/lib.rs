//! Vendored, dependency-free property-testing harness exposing the slice of
//! the `proptest` API this workspace uses: the [`Strategy`] trait with
//! `prop_map` / `prop_filter` / `boxed`, regex-literal string strategies
//! (character classes, `.`, `{m,n}` quantifiers), `any::<T>()`, `Just`,
//! tuple and `collection::vec` strategies, and the `proptest!`,
//! `prop_assert*!` and `prop_oneof!` macros.
//!
//! Unlike real proptest there is no shrinking: a failing case panics with the
//! seed-deterministic case number so it can be reproduced by rerunning the
//! test binary.

use std::fmt;
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

// ---------------------------------------------------------------------------
// deterministic RNG
// ---------------------------------------------------------------------------

/// Deterministic test RNG (splitmix64-seeded xorshift64*).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Build a generator whose stream is a pure function of `(name, case)`.
    pub fn deterministic(name: &str, case: u32) -> Self {
        let mut h: u64 = 0xcbf29ce484222325;
        for b in name.bytes() {
            h = (h ^ b as u64).wrapping_mul(0x100000001b3);
        }
        h = (h ^ case as u64).wrapping_mul(0x100000001b3);
        let mut z = h.wrapping_add(0x9e3779b97f4a7c15);
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        TestRng {
            state: (z ^ (z >> 31)) | 1,
        }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545f4914f6cdd1d)
    }

    /// Uniform `usize` in `[lo, hi)`.
    pub fn below(&mut self, lo: usize, hi: usize) -> usize {
        assert!(lo < hi, "empty range");
        lo + (self.next_u64() as usize) % (hi - lo)
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

// ---------------------------------------------------------------------------
// test-case plumbing
// ---------------------------------------------------------------------------

/// Failure raised by `prop_assert*!` macros inside a `proptest!` body.
#[derive(Debug, Clone)]
pub struct TestCaseError(pub String);

impl TestCaseError {
    /// Build a failure with the given message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError(msg.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// Runner configuration; only `cases` is honoured.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases generated per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

// ---------------------------------------------------------------------------
// Strategy
// ---------------------------------------------------------------------------

/// A recipe for generating random values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draw one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values.
    fn prop_map<T, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> T,
    {
        Map { inner: self, f }
    }

    /// Keep only values satisfying `pred` (retries up to a fixed bound, then
    /// panics — the workspace only filters low-probability exclusions).
    fn prop_filter<F>(self, reason: &'static str, pred: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            reason,
            pred,
        }
    }

    /// Type-erase the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

/// Type-erased strategy.
pub struct BoxedStrategy<T>(Box<dyn Strategy<Value = T>>);

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.generate(rng)
    }
}

/// Output of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T, F: Fn(S::Value) -> T> Strategy for Map<S, F> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        (self.f)(self.inner.generate(rng))
    }
}

/// Output of [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    reason: &'static str,
    pred: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1000 {
            let v = self.inner.generate(rng);
            if (self.pred)(&v) {
                return v;
            }
        }
        panic!("prop_filter `{}` rejected 1000 candidates", self.reason);
    }
}

/// Strategy yielding a constant.
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice between boxed strategies (built by `prop_oneof!`).
pub struct Union<T>(Vec<BoxedStrategy<T>>);

impl<T> Union<T> {
    /// Build from the already-boxed alternatives.
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Union(options)
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let idx = rng.below(0, self.0.len());
        self.0[idx].generate(rng)
    }
}

// ---------------------------------------------------------------------------
// primitive strategies
// ---------------------------------------------------------------------------

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let off = (rng.next_u64() as u128) % span;
                (self.start as i128 + off as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (s, e) = (*self.start(), *self.end());
                assert!(s <= e, "empty range strategy");
                let span = (e as i128 - s as i128) as u128 + 1;
                let off = (rng.next_u64() as u128) % span;
                (s as i128 + off as i128) as $t
            }
        }
    )*};
}
int_range_strategy!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        let (s, e) = (*self.start(), *self.end());
        s + rng.unit_f64() * (e - s)
    }
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Draw an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                // Mix small values in: uniform 64-bit ints almost never
                // exercise the small-number paths programs care about.
                match rng.next_u64() % 4 {
                    0 => (rng.next_u64() % 16) as $t,
                    _ => rng.next_u64() as $t,
                }
            }
        }
    )*};
}
arbitrary_int!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        (rng.unit_f64() - 0.5) * 2e6
    }
}

/// Strategy produced by [`any`].
pub struct ArbitraryStrategy<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for ArbitraryStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The canonical strategy for `T`.
pub fn any<T: Arbitrary>() -> ArbitraryStrategy<T> {
    ArbitraryStrategy(PhantomData)
}

macro_rules! tuple_strategy {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}
tuple_strategy! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
    (A: 0, B: 1, C: 2, D: 3, E: 4)
}

// ---------------------------------------------------------------------------
// regex-literal string strategies
// ---------------------------------------------------------------------------

enum PatternElem {
    /// Flattened character class.
    Class(Vec<char>),
    /// Any printable ASCII character.
    Dot,
    Literal(char),
}

struct PatternPart {
    elem: PatternElem,
    min: usize,
    max: usize,
}

fn parse_pattern(pattern: &str) -> Vec<PatternPart> {
    let chars: Vec<char> = pattern.chars().collect();
    let mut parts: Vec<PatternPart> = Vec::new();
    let mut i = 0;
    while i < chars.len() {
        let elem = match chars[i] {
            '[' => {
                i += 1;
                let mut members = Vec::new();
                assert!(
                    chars.get(i) != Some(&'^'),
                    "negated classes unsupported in vendored proptest"
                );
                while i < chars.len() && chars[i] != ']' {
                    if i + 2 < chars.len() && chars[i + 1] == '-' && chars[i + 2] != ']' {
                        let (lo, hi) = (chars[i], chars[i + 2]);
                        assert!(lo <= hi, "bad class range {lo}-{hi}");
                        members.extend((lo as u32..=hi as u32).filter_map(char::from_u32));
                        i += 3;
                    } else {
                        members.push(chars[i]);
                        i += 1;
                    }
                }
                assert!(i < chars.len(), "unterminated character class");
                i += 1; // consume ']'
                PatternElem::Class(members)
            }
            '.' => {
                i += 1;
                PatternElem::Dot
            }
            '\\' => {
                i += 1;
                let c = chars.get(i).copied().expect("dangling escape");
                i += 1;
                PatternElem::Literal(c)
            }
            c => {
                i += 1;
                PatternElem::Literal(c)
            }
        };
        // Optional quantifier.
        let (min, max) = match chars.get(i) {
            Some('{') => {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == '}')
                    .expect("unterminated quantifier")
                    + i;
                let body: String = chars[i + 1..close].iter().collect();
                i = close + 1;
                match body.split_once(',') {
                    Some((lo, hi)) => (
                        lo.trim().parse().expect("bad quantifier"),
                        hi.trim().parse().expect("bad quantifier"),
                    ),
                    None => {
                        let n = body.trim().parse().expect("bad quantifier");
                        (n, n)
                    }
                }
            }
            Some('*') => {
                i += 1;
                (0, 8)
            }
            Some('+') => {
                i += 1;
                (1, 8)
            }
            Some('?') => {
                i += 1;
                (0, 1)
            }
            _ => (1, 1),
        };
        parts.push(PatternPart { elem, min, max });
    }
    parts
}

fn generate_pattern(parts: &[PatternPart], rng: &mut TestRng) -> String {
    let mut out = String::new();
    for part in parts {
        let count = rng.below(part.min, part.max + 1);
        for _ in 0..count {
            match &part.elem {
                PatternElem::Class(members) => {
                    out.push(members[rng.below(0, members.len())]);
                }
                PatternElem::Dot => {
                    out.push(char::from_u32(rng.below(0x20, 0x7f) as u32).expect("printable"));
                }
                PatternElem::Literal(c) => out.push(*c),
            }
        }
    }
    out
}

impl Strategy for &'static str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        generate_pattern(&parse_pattern(self), rng)
    }
}

// ---------------------------------------------------------------------------
// collections
// ---------------------------------------------------------------------------

/// Collection strategies (`proptest::collection::vec`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::{Range, RangeInclusive};

    /// A length range for generated collections.
    pub struct SizeRange {
        min: usize,
        max: usize, // inclusive
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                min: r.start,
                max: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            SizeRange {
                min: *r.start(),
                max: *r.end(),
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { min: n, max: n }
        }
    }

    /// Strategy for vectors with element strategy `S`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Generate vectors whose length falls in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.below(self.size.min, self.size.max + 1);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

// ---------------------------------------------------------------------------
// macros
// ---------------------------------------------------------------------------

/// Define property tests. Each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` that runs `config.cases` deterministic random cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@run $cfg; $($rest)*);
    };
    (@run $cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident ( $($arg:pat in $strat:expr),+ $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let test_name = concat!(module_path!(), "::", stringify!($name));
            for case in 0..config.cases {
                let mut __proptest_rng = $crate::TestRng::deterministic(test_name, case);
                $(let $arg = $crate::Strategy::generate(&($strat), &mut __proptest_rng);)+
                let outcome: ::std::result::Result<(), $crate::TestCaseError> =
                    (|| { $body ::std::result::Result::Ok(()) })();
                if let ::std::result::Result::Err(e) = outcome {
                    panic!("{test_name}: case {case}/{} failed: {e}", config.cases);
                }
            }
        }
    )*};
    ($($rest:tt)*) => {
        $crate::proptest!(@run $crate::ProptestConfig::default(); $($rest)*);
    };
}

/// Assert a condition inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(concat!(
                "assertion failed: ",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Assert equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (l, r) => {
                if !(*l == *r) {
                    return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                        "assertion failed: `{:?}` != `{:?}`",
                        l, r
                    )));
                }
            }
        }
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        match (&$left, &$right) {
            (l, r) => {
                if !(*l == *r) {
                    return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                        "{}: `{:?}` != `{:?}`",
                        format!($($fmt)+),
                        l,
                        r
                    )));
                }
            }
        }
    };
}

/// Assert inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (l, r) => {
                if *l == *r {
                    return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                        "assertion failed: `{:?}` == `{:?}`",
                        l, r
                    )));
                }
            }
        }
    };
}

/// Uniform choice among several strategies with the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($arm)),+])
    };
}

/// One-stop imports, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::collection;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Arbitrary,
        BoxedStrategy, Just, ProptestConfig, Strategy, TestCaseError, TestRng, Union,
    };

    /// Mirrors `proptest::prelude::prop`.
    pub mod prop {
        pub use crate::collection;
    }
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn regex_patterns_generate_matching_strings() {
        let mut rng = TestRng::deterministic("regex", 0);
        for _ in 0..200 {
            let s = Strategy::generate(&"[a-z]{1,6}", &mut rng);
            assert!((1..=6).contains(&s.len()));
            assert!(s.chars().all(|c| c.is_ascii_lowercase()));
            let t = Strategy::generate(&"[A-Z][a-zA-Z0-9]{0,4}", &mut rng);
            assert!(t.chars().next().unwrap().is_ascii_uppercase());
            assert!(t.len() <= 5);
        }
    }

    proptest! {
        #[test]
        fn harness_runs_and_filters(x in (0i64..100).prop_filter("even", |v| v % 2 == 0)) {
            prop_assert!(x % 2 == 0);
            prop_assert!((0..100).contains(&x));
        }

        #[test]
        fn oneof_and_map_compose(v in prop_oneof![
            (0u8..10).prop_map(|x| x as i64).boxed(),
            Just(-1i64).boxed(),
        ]) {
            prop_assert!(v == -1 || (0..10).contains(&v));
        }
    }
}
