//! Vendored, dependency-free subset of the `rand` API (the build environment
//! has no network access). Implements the calls this workspace makes:
//! `StdRng::seed_from_u64`, `Rng::gen_range` over integer and float ranges,
//! and `Rng::gen_bool`. The generator is splitmix64-seeded xorshift64*; it is
//! deterministic per seed, which is all the simulator requires.

use std::ops::{Range, RangeInclusive};

/// Core of a random number generator: a stream of `u64`s.
pub trait RngCore {
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// A generator that can be deterministically seeded.
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// A range that can be sampled uniformly.
pub trait SampleRange<T> {
    /// Draw a uniform sample from the range.
    fn sample(self, rng: &mut dyn RngCore) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample(self, rng: &mut dyn RngCore) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let offset = (rng.next_u64() as u128) % span;
                (self.start as i128 + offset as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample(self, rng: &mut dyn RngCore) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range in gen_range");
                let span = (end as i128 - start as i128) as u128 + 1;
                let offset = (rng.next_u64() as u128) % span;
                (start as i128 + offset as i128) as $t
            }
        }
    )*};
}
int_sample_range!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

fn unit_f64(rng: &mut dyn RngCore) -> f64 {
    // 53 random bits into [0, 1).
    (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
}

impl SampleRange<f64> for Range<f64> {
    fn sample(self, rng: &mut dyn RngCore) -> f64 {
        assert!(self.start < self.end, "empty range in gen_range");
        self.start + unit_f64(rng) * (self.end - self.start)
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample(self, rng: &mut dyn RngCore) -> f64 {
        let (start, end) = (*self.start(), *self.end());
        assert!(start <= end, "empty range in gen_range");
        start + unit_f64(rng) * (end - start)
    }
}

impl SampleRange<f32> for Range<f32> {
    fn sample(self, rng: &mut dyn RngCore) -> f32 {
        (self.start as f64..self.end as f64).sample(rng) as f32
    }
}

/// Convenience sampling methods, available on every [`RngCore`].
pub trait Rng: RngCore + Sized {
    /// Uniform sample from a range.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample(self)
    }

    /// Bernoulli trial with success probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool probability out of range"
        );
        unit_f64(self) < p
    }
}

impl<R: RngCore + Sized> Rng for R {}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The standard deterministic generator (xorshift64* over a
    /// splitmix64-expanded seed — not the real `StdRng` algorithm, but a
    /// stable, seedable stream with good statistical behavior for
    /// simulation).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // splitmix64 step to spread low-entropy seeds.
            let mut z = seed.wrapping_add(0x9e3779b97f4a7c15);
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
            StdRng {
                state: (z ^ (z >> 31)) | 1,
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let mut x = self.state;
            x ^= x >> 12;
            x ^= x << 25;
            x ^= x >> 27;
            self.state = x;
            x.wrapping_mul(0x2545f4914f6cdd1d)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0..1000usize), b.gen_range(0..1000usize));
        }
    }

    #[test]
    fn ranges_are_respected() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(3..10i64);
            assert!((3..10).contains(&v));
            let w = rng.gen_range(1..=5u64);
            assert!((1..=5).contains(&w));
            let f = rng.gen_range(0.0..2.5f64);
            assert!((0.0..2.5).contains(&f));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(1);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }
}
