//! Vendored, dependency-free bench harness exposing the slice of the
//! `criterion` API the workspace benches use. Measurements are wall-clock
//! medians over a modest number of iterations — enough to compare runs of
//! this repository against each other, with the same source-level API as real
//! criterion so the bench files compile unchanged.

use std::fmt;
use std::time::{Duration, Instant};

/// Prevent the optimizer from discarding a value (API parity; the vendored
/// harness consumes results by writing them to a volatile sink).
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// Identifier for one benchmark within a group.
pub struct BenchmarkId {
    function: String,
    parameter: String,
}

impl BenchmarkId {
    /// Build an id from a function name and a displayable parameter.
    pub fn new(function: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            function: function.into(),
            parameter: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.parameter.is_empty() {
            write!(f, "{}", self.function)
        } else {
            write!(f, "{}/{}", self.function, self.parameter)
        }
    }
}

/// Batch sizing hint (accepted for API parity; batches are per-iteration).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

/// Timing loop handed to bench closures.
pub struct Bencher {
    sample_size: usize,
    /// Median nanoseconds per iteration, recorded by the last `iter*` call.
    last_median_ns: u128,
}

impl Bencher {
    fn new(sample_size: usize) -> Self {
        Bencher {
            sample_size,
            last_median_ns: 0,
        }
    }

    fn record(&mut self, mut samples: Vec<u128>) {
        samples.sort_unstable();
        self.last_median_ns = samples.get(samples.len() / 2).copied().unwrap_or(0);
    }

    /// Time a routine.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let mut samples = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let start = Instant::now();
            black_box(routine());
            samples.push(start.elapsed().as_nanos());
        }
        self.record(samples);
    }

    /// Time a routine with a per-iteration setup whose cost is excluded.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let mut samples = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            samples.push(start.elapsed().as_nanos());
        }
        self.record(samples);
    }
}

/// One recorded measurement.
#[derive(Debug, Clone)]
pub struct Measurement {
    /// `group/function/parameter` label.
    pub id: String,
    /// Median nanoseconds per iteration.
    pub median_ns: u128,
}

/// A named group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl<'a> BenchmarkGroup<'a> {
    /// Set the number of timed iterations per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Accepted for API parity; the vendored harness is iteration-bounded,
    /// not time-bounded.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Benchmark a routine parameterized by `input`.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id);
        let mut bencher = Bencher::new(self.sample_size);
        f(&mut bencher, input);
        self.criterion.report(label, bencher.last_median_ns);
        self
    }

    /// Benchmark an unparameterized routine.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, name);
        let mut bencher = Bencher::new(self.sample_size);
        f(&mut bencher);
        self.criterion.report(label, bencher.last_median_ns);
        self
    }

    /// Finish the group (measurements were reported eagerly).
    pub fn finish(&mut self) {}
}

/// Entry point mirroring `criterion::Criterion`.
#[derive(Default)]
pub struct Criterion {
    measurements: Vec<Measurement>,
}

impl Criterion {
    /// Accepted for API parity with generated `main` functions.
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Start a benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: 10,
        }
    }

    /// Benchmark a standalone function.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher::new(10);
        f(&mut bencher);
        self.report(name.to_string(), bencher.last_median_ns);
        self
    }

    fn report(&mut self, id: String, median_ns: u128) {
        println!("bench: {id:60} {:>12} ns/iter (median)", median_ns);
        self.measurements.push(Measurement { id, median_ns });
    }

    /// All measurements recorded so far.
    pub fn measurements(&self) -> &[Measurement] {
        &self.measurements
    }
}

/// Define a bench group runner, mirroring `criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Define the bench binary's `main`, mirroring `criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo bench`/`cargo test` pass harness flags; accept and
            // ignore them, but honour `--test`-style smoke invocation by
            // running everything either way.
            $($group();)+
        }
    };
}
