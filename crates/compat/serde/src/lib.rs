//! Vendored, dependency-free subset of the `serde` API.
//!
//! The build environment has no network access, so this workspace ships a
//! small serde-compatible facade instead of the real crate. The data model is
//! a self-describing [`Content`] tree: `Serialize` lowers a value to
//! `Content`, `Deserialize` lifts it back, and `serde_json` prints/parses the
//! tree. The `#[derive(Serialize, Deserialize)]` macros (crate
//! `serde_derive`) generate impls against this model, including support for
//! the attribute subset the workspace uses: `#[serde(skip)]`,
//! `#[serde(serialize_with = "..")]` and `#[serde(deserialize_with = "..")]`.

use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};
use std::fmt;
use std::hash::Hash;

pub use serde_derive::{Deserialize, Serialize};

/// Self-describing serialized value (the facade's entire data model).
#[derive(Debug, Clone, PartialEq)]
pub enum Content {
    Null,
    Bool(bool),
    I64(i64),
    U64(u64),
    F64(f64),
    Str(String),
    Seq(Vec<Content>),
    Map(Vec<(Content, Content)>),
}

impl Content {
    /// Entry list when this is a map.
    pub fn as_map(&self) -> Option<&[(Content, Content)]> {
        match self {
            Content::Map(m) => Some(m),
            _ => None,
        }
    }

    /// Element list when this is a sequence.
    pub fn as_seq(&self) -> Option<&[Content]> {
        match self {
            Content::Seq(s) => Some(s),
            _ => None,
        }
    }

    /// String slice when this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Content::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Look up a map entry by string key.
    pub fn map_get(&self, key: &str) -> Option<&Content> {
        self.as_map()?
            .iter()
            .find(|(k, _)| k.as_str() == Some(key))
            .map(|(_, v)| v)
    }

    fn type_name(&self) -> &'static str {
        match self {
            Content::Null => "null",
            Content::Bool(_) => "bool",
            Content::I64(_) | Content::U64(_) | Content::F64(_) => "number",
            Content::Str(_) => "string",
            Content::Seq(_) => "sequence",
            Content::Map(_) => "map",
        }
    }
}

/// The facade's error type, shared by serialization and deserialization.
#[derive(Debug, Clone, PartialEq)]
pub struct Error(pub String);

impl Error {
    /// Build an error from any displayable message (mirrors
    /// `serde::de::Error::custom`).
    pub fn custom(msg: impl fmt::Display) -> Self {
        Error(msg.to_string())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "serde error: {}", self.0)
    }
}

impl std::error::Error for Error {}

/// A type that can lower itself to [`Content`].
pub trait Serialize {
    /// Serialize `self` with the given serializer.
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error>;
}

/// Consumer of a serialized value. The only required method takes a complete
/// [`Content`] tree; `collect_seq` exists because hand-written
/// `serialize_with` functions in this workspace call it.
pub trait Serializer: Sized {
    /// Successful output type.
    type Ok;
    /// Error type; every error can be built from the facade [`Error`].
    type Error: From<Error>;

    /// Accept a fully built content tree.
    fn serialize_content(self, content: Content) -> Result<Self::Ok, Self::Error>;

    /// Serialize the items of an iterator as a sequence.
    fn collect_seq<I>(self, iter: I) -> Result<Self::Ok, Self::Error>
    where
        I: IntoIterator,
        I::Item: Serialize,
    {
        let mut items = Vec::new();
        for item in iter {
            items.push(to_content(&item)?);
        }
        self.serialize_content(Content::Seq(items))
    }
}

/// Serializer that simply yields the content tree.
pub struct ContentSerializer;

impl Serializer for ContentSerializer {
    type Ok = Content;
    type Error = Error;

    fn serialize_content(self, content: Content) -> Result<Content, Error> {
        Ok(content)
    }
}

/// Lower any serializable value to a [`Content`] tree.
pub fn to_content<T: Serialize + ?Sized>(value: &T) -> Result<Content, Error> {
    value.serialize(ContentSerializer)
}

/// A type that can lift itself from [`Content`].
pub trait Deserialize: Sized {
    /// Deserialize from the given deserializer.
    fn deserialize<'de, D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error>;
}

/// Producer of a serialized value.
pub trait Deserializer<'de>: Sized {
    /// Error type; every error can be built from the facade [`Error`].
    type Error: From<Error>;

    /// Yield the complete content tree.
    fn into_content(self) -> Result<Content, Self::Error>;
}

impl<'de> Deserializer<'de> for Content {
    type Error = Error;

    fn into_content(self) -> Result<Content, Error> {
        Ok(self)
    }
}

impl<'de> Deserializer<'de> for &Content {
    type Error = Error;

    fn into_content(self) -> Result<Content, Error> {
        Ok(self.clone())
    }
}

/// Lift a value from a [`Content`] tree.
pub fn from_content<T: Deserialize>(content: Content) -> Result<T, Error> {
    T::deserialize(content)
}

// ---------------------------------------------------------------------------
// Serialize impls for std types
// ---------------------------------------------------------------------------

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        (**self).serialize(serializer)
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        (**self).serialize(serializer)
    }
}

impl<T: Serialize> Serialize for std::sync::Arc<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        (**self).serialize(serializer)
    }
}

macro_rules! serialize_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
                serializer.serialize_content(Content::I64(*self as i64))
            }
        }
    )*};
}
serialize_signed!(i8, i16, i32, i64, isize);

macro_rules! serialize_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
                serializer.serialize_content(Content::U64(*self as u64))
            }
        }
    )*};
}
serialize_unsigned!(u8, u16, u32, u64, usize);

macro_rules! serialize_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
                serializer.serialize_content(Content::F64(*self as f64))
            }
        }
    )*};
}
serialize_float!(f32, f64);

impl Serialize for bool {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_content(Content::Bool(*self))
    }
}

impl Serialize for str {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_content(Content::Str(self.to_string()))
    }
}

impl Serialize for String {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_content(Content::Str(self.clone()))
    }
}

impl Serialize for char {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_content(Content::Str(self.to_string()))
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        match self {
            None => serializer.serialize_content(Content::Null),
            Some(v) => v.serialize(serializer),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.collect_seq(self.iter())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.collect_seq(self.iter())
    }
}

impl<T: Serialize> Serialize for std::collections::VecDeque<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.collect_seq(self.iter())
    }
}

impl<T: Serialize> Serialize for BTreeSet<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.collect_seq(self.iter())
    }
}

impl<T: Serialize> Serialize for HashSet<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.collect_seq(self.iter())
    }
}

fn serialize_map_entries<'a, S, K, V, I>(serializer: S, entries: I) -> Result<S::Ok, S::Error>
where
    S: Serializer,
    K: Serialize + 'a,
    V: Serialize + 'a,
    I: Iterator<Item = (&'a K, &'a V)>,
{
    let mut out = Vec::new();
    for (k, v) in entries {
        out.push((to_content(k)?, to_content(v)?));
    }
    serializer.serialize_content(Content::Map(out))
}

impl<K: Serialize, V: Serialize> Serialize for BTreeMap<K, V> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serialize_map_entries(serializer, self.iter())
    }
}

impl<K: Serialize, V: Serialize> Serialize for HashMap<K, V> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serialize_map_entries(serializer, self.iter())
    }
}

macro_rules! serialize_tuple {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
                let items = vec![$(to_content(&self.$idx)?),+];
                serializer.serialize_content(Content::Seq(items))
            }
        }
    )*};
}
serialize_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}

// ---------------------------------------------------------------------------
// Deserialize impls for std types
// ---------------------------------------------------------------------------

fn content_err<T>(expected: &str, got: &Content) -> Result<T, Error> {
    Err(Error(format!(
        "expected {expected}, got {}",
        got.type_name()
    )))
}

fn content_i64(c: &Content) -> Result<i64, Error> {
    match c {
        Content::I64(v) => Ok(*v),
        Content::U64(v) => i64::try_from(*v).map_err(|_| Error("u64 out of i64 range".into())),
        Content::F64(v) if v.fract() == 0.0 => Ok(*v as i64),
        // serde_json represents non-string map keys as strings.
        Content::Str(s) => s.parse().map_err(|_| Error(format!("bad integer `{s}`"))),
        other => content_err("integer", other),
    }
}

fn content_u64(c: &Content) -> Result<u64, Error> {
    match c {
        Content::U64(v) => Ok(*v),
        Content::I64(v) => u64::try_from(*v).map_err(|_| Error("negative integer".into())),
        Content::F64(v) if v.fract() == 0.0 && *v >= 0.0 => Ok(*v as u64),
        Content::Str(s) => s.parse().map_err(|_| Error(format!("bad integer `{s}`"))),
        other => content_err("integer", other),
    }
}

macro_rules! deserialize_signed {
    ($($t:ty),*) => {$(
        impl Deserialize for $t {
            fn deserialize<'de, D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
                let c = d.into_content()?;
                let v = content_i64(&c)?;
                <$t>::try_from(v).map_err(|_| Error(format!("integer {v} out of range")).into())
            }
        }
    )*};
}
deserialize_signed!(i8, i16, i32, i64, isize);

macro_rules! deserialize_unsigned {
    ($($t:ty),*) => {$(
        impl Deserialize for $t {
            fn deserialize<'de, D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
                let c = d.into_content()?;
                let v = content_u64(&c)?;
                <$t>::try_from(v).map_err(|_| Error(format!("integer {v} out of range")).into())
            }
        }
    )*};
}
deserialize_unsigned!(u8, u16, u32, u64, usize);

macro_rules! deserialize_float {
    ($($t:ty),*) => {$(
        impl Deserialize for $t {
            fn deserialize<'de, D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
                let c = d.into_content()?;
                match c {
                    Content::F64(v) => Ok(v as $t),
                    Content::I64(v) => Ok(v as $t),
                    Content::U64(v) => Ok(v as $t),
                    other => Err(Error(format!("expected number, got {}", other.type_name())).into()),
                }
            }
        }
    )*};
}
deserialize_float!(f32, f64);

impl Deserialize for bool {
    fn deserialize<'de, D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        match d.into_content()? {
            Content::Bool(b) => Ok(b),
            other => Err(Error(format!("expected bool, got {}", other.type_name())).into()),
        }
    }
}

impl Deserialize for String {
    fn deserialize<'de, D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        match d.into_content()? {
            Content::Str(s) => Ok(s),
            other => Err(Error(format!("expected string, got {}", other.type_name())).into()),
        }
    }
}

impl Deserialize for char {
    fn deserialize<'de, D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        let s = String::deserialize(d)?;
        let mut chars = s.chars();
        match (chars.next(), chars.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(Error(format!("expected single char, got `{s}`")).into()),
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn deserialize<'de, D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        match d.into_content()? {
            Content::Null => Ok(None),
            other => Ok(Some(from_content(other)?)),
        }
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn deserialize<'de, D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        Ok(Box::new(T::deserialize(d)?))
    }
}

fn content_seq<'de, D: Deserializer<'de>>(d: D) -> Result<Vec<Content>, D::Error> {
    match d.into_content()? {
        Content::Seq(items) => Ok(items),
        other => Err(Error(format!("expected sequence, got {}", other.type_name())).into()),
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn deserialize<'de, D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        content_seq(d)?
            .into_iter()
            .map(|c| from_content(c).map_err(Into::into))
            .collect()
    }
}

impl<T: Deserialize> Deserialize for std::collections::VecDeque<T> {
    fn deserialize<'de, D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        Ok(Vec::<T>::deserialize(d)?.into_iter().collect())
    }
}

impl<T: Deserialize + Ord> Deserialize for BTreeSet<T> {
    fn deserialize<'de, D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        Ok(Vec::<T>::deserialize(d)?.into_iter().collect())
    }
}

impl<T: Deserialize + Eq + Hash> Deserialize for HashSet<T> {
    fn deserialize<'de, D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        Ok(Vec::<T>::deserialize(d)?.into_iter().collect())
    }
}

fn content_map_entries<'de, D, K, V>(d: D) -> Result<Vec<(K, V)>, D::Error>
where
    D: Deserializer<'de>,
    K: Deserialize,
    V: Deserialize,
{
    match d.into_content()? {
        Content::Map(entries) => entries
            .into_iter()
            .map(|(k, v)| Ok((from_content(k)?, from_content(v)?)))
            .collect::<Result<Vec<_>, Error>>()
            .map_err(Into::into),
        other => Err(Error(format!("expected map, got {}", other.type_name())).into()),
    }
}

impl<K: Deserialize + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn deserialize<'de, D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        Ok(content_map_entries::<_, K, V>(d)?.into_iter().collect())
    }
}

impl<K: Deserialize + Eq + Hash, V: Deserialize> Deserialize for HashMap<K, V> {
    fn deserialize<'de, D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        Ok(content_map_entries::<_, K, V>(d)?.into_iter().collect())
    }
}

macro_rules! deserialize_tuple {
    ($(($len:literal, $($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn deserialize<'de, De: Deserializer<'de>>(d: De) -> Result<Self, De::Error> {
                let items = content_seq(d)?;
                if items.len() != $len {
                    return Err(Error(format!(
                        "expected tuple of {}, got sequence of {}",
                        $len,
                        items.len()
                    ))
                    .into());
                }
                let mut it = items.into_iter();
                Ok(($({
                    let _ = $idx;
                    from_content::<$name>(it.next().expect("length checked"))?
                },)+))
            }
        }
    )*};
}
deserialize_tuple! {
    (1, A: 0)
    (2, A: 0, B: 1)
    (3, A: 0, B: 1, C: 2)
    (4, A: 0, B: 1, C: 2, D: 3)
}

/// Namespace mirroring `serde::de` for code that spells out the full path.
pub mod de {
    pub use crate::{Deserialize, Deserializer, Error};
}

/// Namespace mirroring `serde::ser`.
pub mod ser {
    pub use crate::{Error, Serialize, Serializer};
}
