//! # nt-intern — the identifier arena of the NetTrails data plane.
//!
//! Every vertex, edge, firing and query hop in the system is keyed by a node
//! address and/or a rule/relation name. Carrying those as `String`s means a
//! clone and a re-hash on every hot-path operation; this crate interns them
//! once into a process-global arena and hands out fixed-width handles:
//!
//! * [`NodeId`] — an interned network address (node / AS name);
//! * [`Sym`] — an interned rule or relation name.
//!
//! Both are 4-byte `Copy` handles into the same append-only string pool.
//! Design points:
//!
//! * **Equality and hashing** use the `u32` id (one string ⇒ one id), so
//!   `HashMap<(TupleId, NodeId), _>` keys hash a couple of machine words.
//! * **Ordering** compares the *resolved strings*, so `BTreeMap` iteration
//!   order, sorted reports and test expectations are identical to the old
//!   `String`-keyed code and independent of interning order.
//! * **Serialization** writes the string, never the raw id: snapshots stay
//!   self-describing and can be reloaded by a process with a differently
//!   populated pool. The one-time dictionary cost of shipping a snapshot is
//!   modelled by [`InternerSnapshot`] instead (carried once per snapshot, not
//!   once per message — see `logstore`).
//! * Interned strings are leaked (`&'static str`): the set of node and rule
//!   names in a deployment is small and bounded, which is exactly the case
//!   dictionary encoding is designed for.
//!
//! The crate also owns the *stable digest* primitives ([`StableHasher`] and
//! [`rule_exec_digest`]) so that every layer — runtime tuple ids, provenance
//! rule-execution ids — derives identifiers from one implementation and
//! interned vs. string inputs cannot silently diverge.

use serde::{Deserialize, Serialize};
use std::cell::RefCell;
use std::collections::HashMap;
use std::fmt;
use std::sync::{OnceLock, RwLock};

// ---------------------------------------------------------------------------
// the global pool
// ---------------------------------------------------------------------------

struct Pool {
    strings: Vec<&'static str>,
    index: HashMap<&'static str, u32>,
}

fn pool() -> &'static RwLock<Pool> {
    static POOL: OnceLock<RwLock<Pool>> = OnceLock::new();
    POOL.get_or_init(|| {
        RwLock::new(Pool {
            strings: Vec::new(),
            index: HashMap::new(),
        })
    })
}

fn intern(s: &str) -> u32 {
    if let Some(id) = pool().read().expect("interner lock").index.get(s) {
        return *id;
    }
    let mut p = pool().write().expect("interner lock");
    if let Some(id) = p.index.get(s) {
        return *id;
    }
    let leaked: &'static str = Box::leak(s.to_string().into_boxed_str());
    let id = u32::try_from(p.strings.len()).expect("interner overflow");
    p.strings.push(leaked);
    p.index.insert(leaked, id);
    id
}

thread_local! {
    /// Per-thread id → string cache. Interned strings are immutable and
    /// leaked and ids are assigned once, so a cached entry can never go
    /// stale — after the first resolution of an id on a thread, `as_str` is
    /// lock-free. This matters for shard-parallel provenance maintenance:
    /// worker threads resolve names in every digest, and a shared
    /// `RwLock::read` on that path serializes them on one cache line.
    static RESOLVED: RefCell<Vec<Option<&'static str>>> = const { RefCell::new(Vec::new()) };
}

fn resolve(id: u32) -> &'static str {
    let idx = id as usize;
    RESOLVED.with(|cache| {
        let mut cache = cache.borrow_mut();
        if let Some(Some(s)) = cache.get(idx) {
            return *s;
        }
        let s = pool().read().expect("interner lock").strings[idx];
        if cache.len() <= idx {
            cache.resize(idx + 1, None);
        }
        cache[idx] = Some(s);
        s
    })
}

/// Facade over the process-global intern pool.
pub struct Interner;

impl Interner {
    /// Number of distinct strings interned so far.
    pub fn len() -> usize {
        pool().read().expect("interner lock").strings.len()
    }

    /// Dump the pool as a serializable dictionary (id order).
    pub fn snapshot() -> InternerSnapshot {
        let p = pool().read().expect("interner lock");
        InternerSnapshot {
            strings: p.strings.iter().map(|s| s.to_string()).collect(),
        }
    }

    /// The current dictionary watermark: the number of symbols minted so
    /// far. The pool is append-only, so two watermarks delimit exactly the
    /// symbols minted between them — incremental snapshot uploads record a
    /// watermark at every checkpoint and ship only
    /// [`InternerSnapshot::diff_since`] that watermark afterwards.
    pub fn watermark() -> usize {
        Interner::len()
    }
}

/// A serializable dump of the intern pool: the dictionary a snapshot carries
/// *once* so that every fixed-width id inside it resolves on the receiving
/// side. Restoring re-interns every string (ids may be remapped — handles
/// serialize as strings, so nothing depends on the raw id values).
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct InternerSnapshot {
    /// Dictionary entries, in the capturing process's id order.
    pub strings: Vec<String>,
}

impl InternerSnapshot {
    /// Number of dictionary entries.
    pub fn len(&self) -> usize {
        self.strings.len()
    }

    /// True when the dictionary is empty.
    pub fn is_empty(&self) -> bool {
        self.strings.is_empty()
    }

    /// Re-intern every dictionary entry into the local pool (warm-up on
    /// snapshot load).
    pub fn restore(&self) {
        for s in &self.strings {
            intern(s);
        }
    }

    /// The dictionary entries minted at or after `watermark` (an id-order
    /// index previously obtained from [`Interner::watermark`] by the process
    /// that captured this snapshot). This is the *dictionary diff* an
    /// incremental snapshot ships: a delta whose base checkpoint recorded
    /// `watermark` only needs the symbols minted since, because every older
    /// id already resolves on the receiving side. Restoring a checkpoint and
    /// then its deltas' diffs **in capture order** reconstructs the full
    /// dictionary ([`InternerSnapshot::restore`] is append/idempotent, so
    /// applying diffs in order can never un-intern or reorder anything).
    pub fn diff_since(&self, watermark: usize) -> InternerSnapshot {
        InternerSnapshot {
            strings: self
                .strings
                .get(watermark..)
                .map(<[String]>::to_vec)
                .unwrap_or_default(),
        }
    }

    /// One-time wire cost of shipping the dictionary: a 4-byte id plus a
    /// length-prefixed string per entry.
    pub fn wire_size(&self) -> usize {
        self.strings.iter().map(|s| dict_entry_wire_size(s)).sum()
    }
}

/// The wire cost of one dictionary entry: a 4-byte id plus a length-prefixed
/// string. This is the *single* pricing rule for every dictionary in the
/// system — snapshot dictionaries ([`InternerSnapshot::wire_size`]), the
/// engine's per-destination `DeltaBatch` headers, the provenance stores'
/// `dict_bytes` accounting and the cross-shard `MaintBatch` headers all
/// delegate here, so the layers cannot drift apart.
pub fn dict_entry_wire_size(s: &str) -> usize {
    4 + 4 + s.len()
}

// ---------------------------------------------------------------------------
// handle types
// ---------------------------------------------------------------------------

macro_rules! handle_type {
    ($(#[$doc:meta])* $name:ident) => {
        $(#[$doc])*
        #[derive(Clone, Copy, Eq)]
        pub struct $name(u32);

        impl $name {
            /// Intern a string and return its handle.
            pub fn new(s: &str) -> Self {
                $name(intern(s))
            }

            /// The interned string.
            pub fn as_str(self) -> &'static str {
                resolve(self.0)
            }

            /// The raw pool index (for dense per-run arenas; never serialize
            /// this — ids are not stable across processes).
            pub fn index(self) -> u32 {
                self.0
            }

            /// Reconstruct a handle from a raw pool index previously obtained
            /// via [`Self::index`] *in this process*. Returns `None` when the
            /// index was never handed out — the columnar store uses this to
            /// decode dictionary columns without trusting the codes blindly.
            pub fn from_index(raw: u32) -> Option<Self> {
                if (raw as usize) < Interner::len() {
                    Some($name(raw))
                } else {
                    None
                }
            }

            /// Resolve a string to its handle **without interning it**:
            /// `None` when the string has never been interned. Probe paths
            /// use this so looking up a value that cannot exist does not
            /// grow the process-global pool as a side effect.
            pub fn lookup(s: &str) -> Option<Self> {
                pool()
                    .read()
                    .expect("interner lock")
                    .index
                    .get(s)
                    .map(|id| $name(*id))
            }

            /// Fixed wire width of the handle in the interned encoding.
            pub const WIRE_SIZE: usize = 4;
        }

        impl PartialEq for $name {
            fn eq(&self, other: &Self) -> bool {
                self.0 == other.0
            }
        }

        impl Default for $name {
            /// The empty name (a placeholder, never a real node/rule).
            fn default() -> Self {
                $name::new("")
            }
        }

        impl std::hash::Hash for $name {
            fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
                state.write_u32(self.0);
            }
        }

        // String order, so sorted containers and reports behave exactly like
        // the String-keyed code this replaces (and Ord is consistent with Eq:
        // equal ids ⇔ equal strings).
        impl Ord for $name {
            fn cmp(&self, other: &Self) -> std::cmp::Ordering {
                if self.0 == other.0 {
                    std::cmp::Ordering::Equal
                } else {
                    self.as_str().cmp(other.as_str())
                }
            }
        }

        impl PartialOrd for $name {
            fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
                Some(self.cmp(other))
            }
        }

        impl std::ops::Deref for $name {
            type Target = str;
            fn deref(&self) -> &str {
                self.as_str()
            }
        }

        impl AsRef<str> for $name {
            fn as_ref(&self) -> &str {
                self.as_str()
            }
        }

        // NOTE: deliberately NO `Borrow<str>` impl. `Hash` uses the pool
        // index (not the string bytes), so a str-keyed lookup into a
        // handle-keyed `HashMap` would hash differently and silently miss.
        // Lookups by name must intern first: `map.get(&Sym::new(name))`.

        impl fmt::Debug for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "{}({:?})", stringify!($name), self.as_str())
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                f.write_str(self.as_str())
            }
        }

        impl From<&str> for $name {
            fn from(s: &str) -> Self {
                $name::new(s)
            }
        }

        impl From<&$name> for $name {
            fn from(h: &$name) -> Self {
                *h
            }
        }

        impl From<&String> for $name {
            fn from(s: &String) -> Self {
                $name::new(s)
            }
        }

        impl From<String> for $name {
            fn from(s: String) -> Self {
                $name::new(&s)
            }
        }

        impl From<$name> for String {
            fn from(h: $name) -> String {
                h.as_str().to_string()
            }
        }

        impl PartialEq<str> for $name {
            fn eq(&self, other: &str) -> bool {
                self.as_str() == other
            }
        }

        impl PartialEq<&str> for $name {
            fn eq(&self, other: &&str) -> bool {
                self.as_str() == *other
            }
        }

        impl PartialEq<String> for $name {
            fn eq(&self, other: &String) -> bool {
                self.as_str() == other.as_str()
            }
        }

        impl PartialEq<$name> for str {
            fn eq(&self, other: &$name) -> bool {
                self == other.as_str()
            }
        }

        impl PartialEq<$name> for &str {
            fn eq(&self, other: &$name) -> bool {
                *self == other.as_str()
            }
        }

        impl PartialEq<$name> for String {
            fn eq(&self, other: &$name) -> bool {
                self.as_str() == other.as_str()
            }
        }

        impl Serialize for $name {
            fn serialize<S: serde::Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
                self.as_str().serialize(serializer)
            }
        }

        impl Deserialize for $name {
            fn deserialize<'de, D: serde::Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
                Ok($name::new(&String::deserialize(d)?))
            }
        }
    };
}

handle_type! {
    /// An interned network address (node name / AS name). Equality and
    /// hashing cost one integer compare; `Ord` follows the string.
    NodeId
}

handle_type! {
    /// An interned rule or relation name.
    Sym
}

impl NodeId {
    /// View the address as a relation-name handle (both live in one pool).
    pub fn as_sym(self) -> Sym {
        Sym(self.0)
    }
}

impl Sym {
    /// View the symbol as an address handle (both live in one pool).
    pub fn as_node(self) -> NodeId {
        NodeId(self.0)
    }
}

// ---------------------------------------------------------------------------
// stable digests
// ---------------------------------------------------------------------------

/// A small, dependency-free FNV-1a 64-bit hasher with stable output.
///
/// Provenance vertex identifiers must be identical across nodes, runs and
/// platforms, so the system never uses
/// `std::collections::hash_map::DefaultHasher` (whose algorithm is
/// unspecified) for content addressing.
#[derive(Debug, Clone)]
pub struct StableHasher {
    state: u64,
}

impl Default for StableHasher {
    fn default() -> Self {
        Self::new()
    }
}

impl StableHasher {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;

    /// Create a hasher with the standard FNV offset basis.
    pub fn new() -> Self {
        StableHasher {
            state: Self::OFFSET,
        }
    }

    /// Absorb a byte.
    pub fn write_u8(&mut self, b: u8) {
        self.state ^= b as u64;
        self.state = self.state.wrapping_mul(Self::PRIME);
    }

    /// Absorb a u64 (little-endian bytes).
    pub fn write_u64(&mut self, v: u64) {
        for b in v.to_le_bytes() {
            self.write_u8(b);
        }
    }

    /// Absorb a byte slice.
    pub fn write_bytes(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.write_u8(b);
        }
    }

    /// Absorb a string, length-prefixed.
    pub fn write_str(&mut self, s: &str) {
        self.write_u64(s.len() as u64);
        self.write_bytes(s.as_bytes());
    }

    /// Final digest.
    pub fn finish(&self) -> u64 {
        self.state
    }
}

/// The single implementation of shard routing: map an interned node to one of
/// `shards` home shards by a stable hash of its *name*.
///
/// Every layer that partitions work by node — the runtime's firing stream
/// tags, the provenance shard router, the bench sweep — calls this function,
/// so a node can never be homed to different shards by different layers. The
/// hash covers the resolved string (never the intern id), making placement
/// identical across processes and independent of interning order.
pub fn shard_route(node: NodeId, shards: usize) -> usize {
    if shards <= 1 {
        return 0;
    }
    let mut h = StableHasher::new();
    h.write_str(node.as_str());
    (h.finish() % shards as u64) as usize
}

/// The single implementation of the rule-execution digest: a stable hash of
/// the rule name, the executing node and the input tuple identifiers.
///
/// Both the provenance layer's `RuleExecId::compute` (interned inputs) and
/// any string-keyed caller go through this function, so the two encodings
/// cannot drift apart. The digest hashes the *strings*, never the intern ids,
/// and is therefore identical on every node and across runs.
pub fn rule_exec_digest<I>(rule: &str, node: &str, inputs: I) -> u64
where
    I: IntoIterator<Item = u64>,
    I::IntoIter: ExactSizeIterator,
{
    let inputs = inputs.into_iter();
    let mut h = StableHasher::new();
    h.write_str(rule);
    h.write_str(node);
    h.write_u64(inputs.len() as u64);
    for i in inputs {
        h.write_u64(i);
    }
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_idempotent_and_equality_is_by_content() {
        let a = NodeId::new("n1");
        let b = NodeId::from("n1".to_string());
        let c = NodeId::new("n2");
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(a.index(), b.index());
        assert_eq!(a.as_str(), "n1");
        assert_eq!(a, *"n1");
        assert!("n1" == a);
    }

    #[test]
    fn ordering_follows_the_string_not_the_intern_order() {
        // Intern in reverse lexicographic order on purpose.
        let z = Sym::new("zeta-order");
        let a = Sym::new("alpha-order");
        assert!(a < z, "Ord compares strings, not pool indices");
        let mut v = [z, a];
        v.sort();
        assert_eq!(v[0].as_str(), "alpha-order");
    }

    #[test]
    fn deref_makes_handles_act_like_strs() {
        let s = Sym::new("__out::cost");
        assert!(s.starts_with("__out::"));
        assert_eq!(s.strip_prefix("__out::"), Some("cost"));
        assert_eq!(s.len(), 11);
        assert_eq!(format!("{s}"), "__out::cost");
    }

    #[test]
    fn snapshot_round_trips_and_prices_the_dictionary() {
        let _ = NodeId::new("snapshot-node");
        let snap = Interner::snapshot();
        assert!(!snap.is_empty());
        assert!(snap.strings.iter().any(|s| s == "snapshot-node"));
        assert!(snap.wire_size() >= 8 + "snapshot-node".len());
        snap.restore(); // idempotent
        assert_eq!(Interner::snapshot().len(), snap.len());
    }

    #[test]
    fn dictionary_diff_covers_the_symbols_minted_since_the_watermark() {
        // The pool is process-global and other test threads may mint
        // concurrently, so assert containment and order, not exact contents.
        let _ = Sym::new("diff-warmup-symbol");
        let watermark = Interner::watermark();
        let before = Interner::snapshot().diff_since(watermark);
        assert!(!before.strings.iter().any(|s| s == "diff-warmup-symbol"));
        let fresh = [
            "diff-fresh-one-9431",
            "diff-fresh-two-9431",
            "diff-fresh-three-9431",
        ];
        for s in fresh {
            let _ = Sym::new(s);
        }
        let diff = Interner::snapshot().diff_since(watermark);
        let positions: Vec<usize> = fresh
            .iter()
            .map(|f| {
                diff.strings
                    .iter()
                    .position(|s| s == f)
                    .expect("minted symbol appears in the diff")
            })
            .collect();
        assert!(
            positions.windows(2).all(|w| w[0] < w[1]),
            "diff preserves mint (id) order: {positions:?}"
        );
        // Re-interning an old symbol mints nothing: the warmup symbol never
        // enters a later diff.
        let _ = Sym::new("diff-warmup-symbol");
        assert!(!Interner::snapshot()
            .diff_since(watermark)
            .strings
            .iter()
            .any(|s| s == "diff-warmup-symbol"));
        // A watermark past the end yields an empty diff, not a panic.
        assert!(Interner::snapshot()
            .diff_since(Interner::watermark() + 100)
            .is_empty());
        // Applying diffs in order is idempotent: every entry resolves after
        // restore, and re-restoring changes nothing it covers.
        diff.restore();
        assert!(diff.strings.iter().all(|s| Sym::lookup(s).is_some()));
    }

    #[test]
    fn serde_uses_strings_not_ids() {
        let n = NodeId::new("serde-node");
        let content = serde::to_content(&n).unwrap();
        assert_eq!(content.as_str(), Some("serde-node"));
        let back: NodeId = serde::from_content(content).unwrap();
        assert_eq!(back, n);
    }

    #[test]
    fn shard_route_is_stable_and_name_based() {
        let n = NodeId::new("route-node");
        // Single shard always routes home 0, any shard count is in range and
        // deterministic across calls (the hash covers the name, not the id).
        assert_eq!(shard_route(n, 0), 0);
        assert_eq!(shard_route(n, 1), 0);
        for shards in [2usize, 4, 8, 13] {
            let s = shard_route(n, shards);
            assert!(s < shards);
            assert_eq!(s, shard_route(NodeId::new("route-node"), shards));
        }
        // A reasonable spread: 64 nodes over 4 shards never collapse into one.
        let mut seen = [false; 4];
        for i in 0..64 {
            seen[shard_route(NodeId::new(&format!("spread{i}")), 4)] = true;
        }
        assert!(seen.iter().all(|&s| s), "all 4 shards receive nodes");
    }

    #[test]
    fn rule_exec_digest_is_stable_and_input_sensitive() {
        let d1 = rule_exec_digest("r1", "n1", [1, 2]);
        let d2 = rule_exec_digest("r1", "n1", [1, 2]);
        let d3 = rule_exec_digest("r1", "n1", [2, 1]);
        let d4 = rule_exec_digest("r1", "n2", [1, 2]);
        assert_eq!(d1, d2);
        assert_ne!(d1, d3);
        assert_ne!(d1, d4);
    }
}
