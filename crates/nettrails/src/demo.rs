//! A scripted version of the paper's demonstration plan (Section 3).
//!
//! The SIGMOD demo walks the audience through a fixed sequence: run a
//! declarative network, pause it, explore the provenance of a tuple, change
//! the topology, watch the provenance update, and finally issue customised
//! queries. [`DemoScript`] encodes that sequence as data so the examples, the
//! tests and (in a real deployment) a UI can replay it step by step; it also
//! doubles as a compact high-level API for users who just want "run protocol
//! X on topology Y, fail a link, explain tuple Z".

use crate::platform::{NetTrails, NetTrailsConfig, RunReport};
use nt_runtime::{Result, Tuple};
use provenance::{QueryKind, QueryOptions, QueryResult, QueryStats};
use serde::{Deserialize, Serialize};
use simnet::{Topology, TopologyEvent};

/// One step of a demonstration script.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum DemoStep {
    /// Run the system to a fixpoint.
    Converge,
    /// Apply a topology event and reconverge.
    Topology(TopologyEvent),
    /// Query the provenance of the first tuple of `relation` matching the
    /// (column, address-value) constraints, issued from `querier`.
    Query {
        /// Node issuing the query.
        querier: String,
        /// Relation of the target tuple.
        relation: String,
        /// (column index, expected address value) constraints.
        constraints: Vec<(usize, String)>,
        /// Which provenance question to ask.
        kind: QueryKind,
        /// Query options (optimizations on/off).
        options: QueryOptions,
    },
}

/// What one executed step produced.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum DemoOutcome {
    /// Convergence / reconvergence work report.
    Converged(RunReport),
    /// Query result plus its cost.
    Answered {
        /// The tuple the query targeted (None when no tuple matched).
        target: Option<Tuple>,
        /// The result (None when no tuple matched).
        result: Option<QueryResult>,
        /// Traversal cost.
        stats: QueryStats,
    },
}

/// A scripted demonstration: a protocol, a topology and a list of steps.
#[derive(Debug, Clone)]
pub struct DemoScript {
    /// NDlog source of the protocol to run.
    pub program: String,
    /// Initial topology.
    pub topology: Topology,
    /// Steps to execute in order.
    pub steps: Vec<DemoStep>,
    /// Platform configuration.
    pub config: NetTrailsConfig,
}

impl DemoScript {
    /// The canonical MINCOST walk-through used by the paper's screenshots:
    /// converge, inspect a tuple, fail a link, inspect it again.
    pub fn mincost_walkthrough(n: usize) -> DemoScript {
        let last = format!("n{}", 2 * n);
        DemoScript {
            program: protocols::mincost::PROGRAM.to_string(),
            topology: Topology::ladder(n),
            steps: vec![
                DemoStep::Converge,
                DemoStep::Query {
                    querier: "n1".into(),
                    relation: "minCost".into(),
                    constraints: vec![(0, "n1".into()), (1, last.clone())],
                    kind: QueryKind::Lineage,
                    options: QueryOptions::default(),
                },
                DemoStep::Topology(TopologyEvent::LinkDown {
                    a: "n1".into(),
                    b: "n2".into(),
                }),
                DemoStep::Query {
                    querier: "n1".into(),
                    relation: "minCost".into(),
                    constraints: vec![(0, "n1".into()), (1, last)],
                    kind: QueryKind::ParticipatingNodes,
                    options: QueryOptions::cached(),
                },
            ],
            config: NetTrailsConfig::default(),
        }
    }

    /// Execute the script, returning the platform (for further inspection)
    /// and the outcome of every step.
    pub fn run(&self) -> Result<(NetTrails, Vec<DemoOutcome>)> {
        let mut nt = NetTrails::new(&self.program, self.topology.clone(), self.config.clone())?;
        nt.seed_links_from_topology();
        let mut outcomes = Vec::new();
        for step in &self.steps {
            let outcome = match step {
                DemoStep::Converge => DemoOutcome::Converged(nt.run_to_fixpoint()),
                DemoStep::Topology(event) => DemoOutcome::Converged(nt.apply_topology_event(event)),
                DemoStep::Query {
                    querier,
                    relation,
                    constraints,
                    kind,
                    options,
                } => {
                    let target = nt.find_tuple(relation, |t| {
                        constraints.iter().all(|(col, value)| {
                            t.values.get(*col).and_then(|v| v.as_addr()) == Some(value)
                        })
                    });
                    match target {
                        Some((_, tuple)) => {
                            let (result, stats) = nt
                                .query(&tuple)
                                .from_node(querier)
                                .kind(*kind)
                                .options(options.clone())
                                .run();
                            DemoOutcome::Answered {
                                target: Some(tuple),
                                result: Some(result),
                                stats,
                            }
                        }
                        None => DemoOutcome::Answered {
                            target: None,
                            result: None,
                            stats: QueryStats::default(),
                        },
                    }
                }
            };
            outcomes.push(outcome);
        }
        Ok((nt, outcomes))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mincost_walkthrough_executes_every_step() {
        let script = DemoScript::mincost_walkthrough(3);
        let (nt, outcomes) = script.run().unwrap();
        assert_eq!(outcomes.len(), 4);
        // Step 1: converged with real work.
        match &outcomes[0] {
            DemoOutcome::Converged(report) => assert!(report.insertions > 0),
            other => panic!("unexpected {other:?}"),
        }
        // Step 2: the lineage query found its target.
        match &outcomes[1] {
            DemoOutcome::Answered {
                target: Some(t),
                result: Some(QueryResult::Lineage(tree)),
                stats,
            } => {
                assert_eq!(t.relation, "minCost");
                assert!(tree.size() > 1);
                assert!(stats.vertices_visited > 0);
            }
            other => panic!("unexpected {other:?}"),
        }
        // Step 3: the link failure touched state.
        match &outcomes[2] {
            DemoOutcome::Converged(report) => assert!(report.tuples_touched() > 0),
            other => panic!("unexpected {other:?}"),
        }
        // Step 4: the follow-up query still answers (the destination is still
        // reachable the long way around the ladder).
        match &outcomes[3] {
            DemoOutcome::Answered {
                result: Some(QueryResult::ParticipatingNodes(nodes)),
                ..
            } => assert!(nodes.contains(&nt_runtime::NodeId::new("n1"))),
            other => panic!("unexpected {other:?}"),
        }
        // The platform is returned for further exploration.
        assert!(!nt.relation("minCost").is_empty());
    }

    #[test]
    fn queries_for_missing_tuples_answer_gracefully() {
        let script = DemoScript {
            program: protocols::mincost::PROGRAM.to_string(),
            topology: Topology::line(2),
            steps: vec![
                DemoStep::Converge,
                DemoStep::Query {
                    querier: "n1".into(),
                    relation: "minCost".into(),
                    constraints: vec![(0, "n1".into()), (1, "n99".into())],
                    kind: QueryKind::DerivationCount,
                    options: QueryOptions::default(),
                },
            ],
            config: NetTrailsConfig::default(),
        };
        let (_, outcomes) = script.run().unwrap();
        match &outcomes[1] {
            DemoOutcome::Answered {
                target: None,
                result: None,
                ..
            } => {}
            other => panic!("unexpected {other:?}"),
        }
    }
}
