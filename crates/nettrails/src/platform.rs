//! The NetTrails platform: engines + network + provenance, orchestrated.

use nt_runtime::{
    Addr, CompiledProgram, Delta, DeltaBatch, Derivation, EngineConfig, EngineStats, Firing,
    NodeEngine, Tuple, TupleId,
};
use provenance::{
    ProvGraph, ProvenanceSystem, QueryBatch, QueryEngine, QueryExecutor, QueryHandle, QueryKind,
    QueryMode, QueryOptions, QueryResult, QuerySpec, QueryStats, RuleExecNode, ShardStats,
    SystemStats, TraversalOrder, QUERY_CATEGORY,
};
use serde::{Deserialize, Serialize};
use simnet::{Delivered, Network, NetworkConfig, SimTime, Topology, TopologyEvent, TrafficStats};
use std::collections::BTreeMap;
use std::sync::Arc;

/// Traffic category used for protocol (tuple-shipping) messages.
pub const PROTOCOL_CATEGORY: &str = "protocol";

/// The payload carried by simulator messages between NetTrails nodes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum NetMessage {
    /// An inserted or deleted tuple together with the derivation that
    /// justifies it — the per-tuple wire format, kept as the measurable
    /// baseline batched shipping is compared against
    /// (`NetTrailsConfig::without_batching`).
    Delta {
        /// The change.
        delta: Delta,
        /// Why it holds (stored by the receiving engine; used for retraction).
        derivation: Derivation,
    },
    /// One engine round's deltas for a single destination: fixed-width
    /// records plus the shared dictionary header carrying the strings this
    /// destination has not been sent before. Priced as
    /// `header_bytes + Σ record bytes`, with one network framing header for
    /// the whole batch.
    DeltaBatch {
        /// The coalesced batch.
        batch: DeltaBatch,
    },
    /// One query-executor flush's requests from one node to another:
    /// expand-vertex/expand-exec/cancel records asking the destination to do
    /// traversal work, behind a first-use dictionary header (requests are
    /// string-free, so the header is usually empty). Charged to the
    /// `"prov-query"` category.
    QueryRequest {
        /// The sealed frame.
        batch: QueryBatch,
    },
    /// Completed proof subtrees travelling back to the node that asked for
    /// them — the response half of the query protocol, same frame format.
    QueryResponse {
        /// The sealed frame.
        batch: QueryBatch,
    },
}

/// Platform configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NetTrailsConfig {
    /// Capture provenance while the protocol runs (disable to measure the
    /// bare protocol for the maintenance-overhead experiment).
    pub capture_provenance: bool,
    /// Simulated network parameters.
    pub network: NetworkConfig,
    /// Safety cap on the number of engine/network rounds per
    /// [`NetTrails::run_to_fixpoint`] call.
    pub max_rounds: usize,
    /// Let engines probe secondary indexes through their join plans (the
    /// default). Disable for the reference full-scan evaluation used by the
    /// join-probe regression experiments.
    pub use_join_indexes: bool,
    /// Ship engine outboxes as one [`NetMessage::DeltaBatch`] per
    /// (round, destination) — the default. Disable for the per-tuple
    /// baseline (one `NetMessage::Delta` per record) the delta-shipping
    /// experiment compares against; payload pricing is identical in both
    /// modes, so the difference is purely per-message framing overhead.
    pub batch_shipping: bool,
    /// Tolerate deltas addressed to nodes that do not exist (they are
    /// counted in [`RunReport::misrouted`] and dropped). By default a
    /// misrouted delta fails loudly in debug builds — it means the program
    /// derived a head whose location attribute names an unknown node.
    pub tolerate_misrouted: bool,
    /// Number of worker shards the provenance arena is partitioned across.
    /// Each round's firing stream is partitioned by `head_home` and
    /// maintained shard-parallel; cross-shard `ruleExec` halves travel in
    /// per-destination maintenance batches. `1` (the default) is the
    /// sequential reference path; any value yields a bit-identical graph
    /// (see `provenance::shard`).
    pub prov_shards: usize,
    /// Evaluate each engine generation's monotonic rule triggers with up to
    /// this many shared-pool workers (the morsel-driven parallel fixpoint).
    /// `1` (the default) is the inline sequential path; any value yields
    /// bit-identical engine output (see `nt_runtime::engine`).
    pub fixpoint_workers: usize,
    /// Minimum trigger tasks in an engine generation before morsels are
    /// dispatched to the pool (below it evaluation runs inline with zero
    /// pool traffic). Defaults to `nt_runtime::FIXPOINT_DISPATCH_THRESHOLD`;
    /// `0` forces every parallel-configured generation through the pool —
    /// used by the end-to-end equivalence tests.
    pub fixpoint_dispatch_threshold: usize,
    /// Store engine tables column-major with dictionary-encoded address
    /// columns and vectorized join probes (the default). Disable for the
    /// row-major reference layout; either backing yields bit-identical
    /// engine output (see `nt_runtime::store`).
    pub columnar_storage: bool,
    /// Merge concurrent query sessions' records into one frame per
    /// (source, destination, direction) at each flush, sharing one first-use
    /// dictionary charge (`QueryExecutor::set_frame_merging`). Off by
    /// default: one frame per session, the PR 5 baseline the query-service
    /// experiment compares against. Either mode yields bit-identical
    /// results, visits, cache hits and per-session stats — merging only
    /// collapses frame counts and per-message framing overhead.
    pub merge_query_frames: bool,
}

impl Default for NetTrailsConfig {
    fn default() -> Self {
        NetTrailsConfig {
            capture_provenance: true,
            network: NetworkConfig::default(),
            max_rounds: 1_000_000,
            use_join_indexes: true,
            batch_shipping: true,
            tolerate_misrouted: false,
            prov_shards: 1,
            fixpoint_workers: 1,
            fixpoint_dispatch_threshold: nt_runtime::FIXPOINT_DISPATCH_THRESHOLD,
            columnar_storage: true,
            merge_query_frames: false,
        }
    }
}

impl NetTrailsConfig {
    /// A configuration with provenance capture disabled.
    pub fn without_provenance() -> Self {
        NetTrailsConfig {
            capture_provenance: false,
            ..NetTrailsConfig::default()
        }
    }

    /// A configuration whose engines evaluate joins by full scans (the
    /// pre-index baseline).
    pub fn without_join_indexes() -> Self {
        NetTrailsConfig {
            use_join_indexes: false,
            ..NetTrailsConfig::default()
        }
    }

    /// A configuration that ships one message per tuple (the pre-batching
    /// baseline the delta-shipping experiment compares against).
    pub fn without_batching() -> Self {
        NetTrailsConfig {
            batch_shipping: false,
            ..NetTrailsConfig::default()
        }
    }

    /// A configuration whose engines keep tuples in the row-major reference
    /// layout (the pre-columnar baseline the vectorized-join experiment
    /// compares against).
    pub fn with_row_storage() -> Self {
        NetTrailsConfig {
            columnar_storage: false,
            ..NetTrailsConfig::default()
        }
    }

    /// A configuration that maintains provenance across `shards` worker
    /// shards.
    pub fn with_prov_shards(shards: usize) -> Self {
        NetTrailsConfig {
            prov_shards: shards,
            ..NetTrailsConfig::default()
        }
    }

    /// A configuration whose engines evaluate rule triggers with up to
    /// `workers` shared-pool workers per generation.
    pub fn with_fixpoint_workers(workers: usize) -> Self {
        NetTrailsConfig {
            fixpoint_workers: workers,
            ..NetTrailsConfig::default()
        }
    }

    /// A configuration that merges concurrent query sessions' frames per
    /// destination (the query-service wire discipline).
    pub fn with_merged_query_frames() -> Self {
        NetTrailsConfig {
            merge_query_frames: true,
            ..NetTrailsConfig::default()
        }
    }
}

/// What happened during one `run_to_fixpoint` call.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct RunReport {
    /// Engine/network scheduling rounds executed.
    pub rounds: usize,
    /// Messages delivered by the network during the run.
    pub deliveries: usize,
    /// Local tuple insertions observed across all nodes.
    pub insertions: usize,
    /// Local tuple deletions observed across all nodes.
    pub deletions: usize,
    /// Messages addressed to a node that does not exist (dropped). Always 0
    /// for well-formed programs; a non-zero count means a rule derived a
    /// head whose location attribute names an unknown node. Unless
    /// [`NetTrailsConfig::tolerate_misrouted`] is set, this also fails
    /// loudly in debug builds.
    pub misrouted: usize,
    /// True when the round cap was hit before quiescence.
    pub truncated: bool,
}

impl RunReport {
    /// Tuples touched (inserted + deleted) — the work metric used by the
    /// incremental-vs-recompute experiment.
    pub fn tuples_touched(&self) -> usize {
        self.insertions + self.deletions
    }
}

/// Aggregated statistics of a platform instance.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct PlatformStats {
    /// Sum of per-node engine counters.
    pub engine: EngineStats,
    /// Protocol / tuple-shipping traffic.
    pub network: TrafficStats,
    /// Provenance store sizes and firing counts.
    pub provenance: SystemStats,
    /// Cross-node provenance maintenance traffic.
    pub provenance_traffic: TrafficStats,
    /// Cross-shard exchange of the sharded maintenance engine (batches,
    /// records, dictionary bytes). All zeros when `prov_shards == 1`.
    pub provenance_sharding: ShardStats,
    /// Tuples currently stored across all nodes (excluding internal outbox
    /// relations).
    pub stored_tuples: usize,
}

/// The NetTrails platform (see the crate documentation for an overview).
#[derive(Debug)]
pub struct NetTrails {
    program: Arc<CompiledProgram>,
    engines: BTreeMap<Addr, NodeEngine>,
    network: Network<NetMessage>,
    provenance: ProvenanceSystem,
    /// The in-process query engine: the [`QueryMode::Local`] path.
    query_engine: QueryEngine,
    /// The step-driven distributed query executor: the
    /// [`QueryMode::Distributed`] path, pumped by the round loop.
    query_executor: QueryExecutor,
    /// Misrouted deliveries observed outside `run_to_fixpoint` (see
    /// [`NetTrails::stray_misrouted`]).
    stray_misrouted: usize,
    config: NetTrailsConfig,
    source: String,
}

impl NetTrails {
    /// Compile `program_src` and instantiate one engine per topology node.
    pub fn new(
        program_src: &str,
        topology: Topology,
        config: NetTrailsConfig,
    ) -> nt_runtime::Result<Self> {
        let program = Arc::new(CompiledProgram::from_source(program_src)?);
        let mut engines = BTreeMap::new();
        for node in topology.nodes() {
            let mut engine_config = EngineConfig::new(node);
            engine_config.use_join_indexes = config.use_join_indexes;
            engine_config.fixpoint_workers = config.fixpoint_workers.max(1);
            engine_config.fixpoint_dispatch_threshold = config.fixpoint_dispatch_threshold;
            engine_config.columnar_storage = config.columnar_storage;
            engines.insert(
                Addr::new(node),
                NodeEngine::new(program.clone(), engine_config),
            );
        }
        let provenance = ProvenanceSystem::with_shards(topology.nodes(), config.prov_shards);
        let network = Network::new(topology, config.network.clone());
        // The local engine's estimate charges one round trip (request +
        // response) at the network's default per-link delay, so its numbers
        // line up with what the distributed executor measures on uniform
        // topologies.
        let query_engine =
            QueryEngine::with_hop_rtt_ms(2.0 * config.network.default_latency_ms as f64);
        let mut query_executor = QueryExecutor::new();
        query_executor.set_frame_merging(config.merge_query_frames);
        Ok(NetTrails {
            program,
            engines,
            network,
            provenance,
            query_engine,
            query_executor,
            stray_misrouted: 0,
            config,
            source: program_src.to_string(),
        })
    }

    /// The compiled program (post-localization).
    pub fn program(&self) -> &CompiledProgram {
        &self.program
    }

    /// The NDlog source the platform was built from.
    pub fn source(&self) -> &str {
        &self.source
    }

    /// Node names, in deterministic order.
    pub fn nodes(&self) -> Vec<Addr> {
        self.engines.keys().cloned().collect()
    }

    /// The simulated network (topology + traffic counters).
    pub fn network(&self) -> &Network<NetMessage> {
        &self.network
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.network.now()
    }

    /// Advance the simulated clock to `t` without delivering anything (no-op
    /// if `t` is in the past). Trace-driven workloads use this to model idle
    /// gaps between scheduled events, so measured latencies ride the same
    /// clock as the trace schedule.
    pub fn advance_clock_to(&mut self, t: SimTime) {
        self.network.advance_time_to(t);
    }

    /// The distributed provenance store.
    pub fn provenance(&self) -> &ProvenanceSystem {
        &self.provenance
    }

    /// The in-process (local-mode) query engine, exposing its cache and
    /// cumulative estimated traffic.
    pub fn query_engine(&self) -> &QueryEngine {
        &self.query_engine
    }

    /// The distributed query executor, exposing its cache, session state
    /// and cumulative wire traffic.
    pub fn query_executor(&self) -> &QueryExecutor {
        &self.query_executor
    }

    /// Assemble the centralized provenance graph (what the Log Store ships to
    /// the visualizer).
    pub fn provenance_graph(&self) -> ProvGraph {
        ProvGraph::from_system(&self.provenance)
    }

    /// Capture the whole system as a [`logstore::SystemSnapshot`]: every
    /// node's visible relations, the topology, the assembled provenance
    /// graph, the traffic counters, stamped with the identifier dictionary.
    /// The snapshot is *canonical* — tuple vectors and graph edges are in
    /// their sorted capture order — so the incremental capture path
    /// ([`logstore::SnapshotCapturer`]) can materialize it back
    /// bit-identically from a checkpoint + delta chain.
    pub fn capture_snapshot(&self) -> logstore::SystemSnapshot {
        let mut graph = self.provenance_graph();
        graph.edges.sort();
        graph.rebuild_adjacency();
        let mut snap = logstore::SystemSnapshot {
            time: self.now(),
            topology: self.network.topology().clone(),
            graph,
            traffic: self.network.stats().clone(),
            ..Default::default()
        };
        for node in self.nodes() {
            let engine = self.engines.get(&node).expect("engine exists");
            snap.nodes.insert(
                node,
                logstore::NodeSnapshot::capture(node.as_str(), engine.database(), &self.provenance),
            );
        }
        snap.stamp_dictionary();
        snap
    }

    /// A node's engine, if it exists.
    pub fn engine(&self, node: &str) -> Option<&NodeEngine> {
        self.engines.get(&Addr::new(node))
    }

    // ------------------------------------------------------------------
    // seeding facts
    // ------------------------------------------------------------------

    /// Queue the insertion of a base tuple at `node`.
    pub fn insert_fact(&mut self, node: &str, tuple: Tuple) {
        if let Some(engine) = self.engines.get_mut(&Addr::new(node)) {
            engine.insert_base(tuple);
        }
    }

    /// Queue the deletion of a base tuple at `node`.
    pub fn delete_fact(&mut self, node: &str, tuple: Tuple) {
        if let Some(engine) = self.engines.get_mut(&Addr::new(node)) {
            engine.delete_base(tuple);
        }
    }

    /// Insert a `link(@From,To,Cost)` base tuple for every directed link of
    /// the current topology (the standard way protocols are seeded).
    pub fn seed_links_from_topology(&mut self) {
        let links = protocols::link_tuples(self.network.topology());
        for (node, tuple) in links {
            self.insert_fact(&node, tuple);
        }
    }

    // ------------------------------------------------------------------
    // execution
    // ------------------------------------------------------------------

    /// Run engines and the network until the whole system is quiescent.
    pub fn run_to_fixpoint(&mut self) -> RunReport {
        let mut report = RunReport::default();
        loop {
            let mut progressed = false;
            // This round's firing stream: collected across engines (in
            // deterministic node order) and applied once per round through
            // the sharded maintenance pipeline, which partitions it by
            // `head_home`.
            let mut round_firings: Vec<Firing> = Vec::new();
            // 1. Run every engine with pending deltas to its local fixpoint.
            let nodes: Vec<Addr> = self.engines.keys().cloned().collect();
            for node in &nodes {
                let engine = self.engines.get_mut(node).expect("known node");
                if !engine.has_pending() {
                    continue;
                }
                progressed = true;
                let mut out = engine.run();
                report.truncated |= out.truncated;
                for change in &out.local_changes {
                    match change {
                        Delta::Insert(_) => report.insertions += 1,
                        Delta::Delete(_) => report.deletions += 1,
                    }
                }
                if self.config.capture_provenance {
                    round_firings.append(&mut out.firings);
                }
                for batch in out.sends {
                    if batch.is_empty() {
                        continue;
                    }
                    let dest = batch.dest;
                    if self.config.batch_shipping {
                        // One message per (round, dest), priced as the
                        // engine accounted it: dictionary header + n
                        // fixed-width record bodies.
                        let bytes = batch.wire_size();
                        let records = batch.len();
                        self.network.send_batch(
                            node,
                            dest,
                            NetMessage::DeltaBatch { batch },
                            bytes,
                            records,
                            PROTOCOL_CATEGORY,
                        );
                    } else {
                        // Per-tuple baseline: one message per record. The
                        // batch's dictionary header still has to reach the
                        // destination exactly once; charge it to the first
                        // record's message so total payload bytes match the
                        // engine's accounting in both modes.
                        let mut dict_bytes = batch.header_bytes();
                        for record in batch.records {
                            let bytes = record.wire_size() + std::mem::take(&mut dict_bytes);
                            self.network.send(
                                node,
                                dest,
                                NetMessage::Delta {
                                    delta: record.delta,
                                    derivation: record.derivation,
                                },
                                bytes,
                                PROTOCOL_CATEGORY,
                            );
                        }
                    }
                }
            }
            if !round_firings.is_empty() {
                self.provenance.apply_round(&round_firings);
            }
            // 2. Ship whatever the query executor staged (concurrent query
            // sessions ride the same wire discipline as everything else).
            progressed |= self.flush_query_frames();
            // 3. Deliver the next batch of in-flight messages.
            if !self.network.idle() {
                progressed = true;
                let batch = self.network.advance();
                report.deliveries += batch.len();
                for delivered in batch {
                    self.dispatch(delivered, &mut report);
                }
                // Query deliveries may immediately stage follow-up frames.
                progressed |= self.flush_query_frames();
            }
            if !progressed {
                break;
            }
            report.rounds += 1;
            if report.rounds >= self.config.max_rounds {
                report.truncated = true;
                break;
            }
        }
        report
    }

    /// Apply a topology event: update the simulated topology, translate it to
    /// base `link` tuple insertions/deletions at the affected nodes, and run
    /// the system back to a fixpoint. Returns the work report of the
    /// incremental recomputation — the quantity compared against
    /// recompute-from-scratch in the experiments.
    pub fn apply_topology_event(&mut self, event: &TopologyEvent) -> RunReport {
        let (added, removed) = self.network.topology_mut().apply(event);
        for link in removed {
            self.delete_fact(
                &link.from.clone(),
                protocols::link_tuple(&link.from, &link.to, link.cost),
            );
        }
        for link in added {
            self.insert_fact(
                &link.from.clone(),
                protocols::link_tuple(&link.from, &link.to, link.cost),
            );
        }
        self.run_to_fixpoint()
    }

    /// Build a fresh platform over the *current* topology and recompute all
    /// state from scratch. Used as the non-incremental baseline (E3).
    pub fn recompute_from_scratch(&self) -> nt_runtime::Result<(NetTrails, RunReport)> {
        let mut fresh = NetTrails::new(
            &self.source,
            self.network.topology().clone(),
            self.config.clone(),
        )?;
        fresh.seed_links_from_topology();
        let report = fresh.run_to_fixpoint();
        Ok((fresh, report))
    }

    // ------------------------------------------------------------------
    // inspection
    // ------------------------------------------------------------------

    /// Tuples of `relation` stored at `node`.
    pub fn relation_at(&self, node: &str, relation: &str) -> Vec<Tuple> {
        self.engines
            .get(&Addr::new(node))
            .map(|e| e.relation(relation))
            .unwrap_or_default()
    }

    /// All tuples of `relation` across every node, tagged with their node.
    pub fn relation(&self, relation: &str) -> Vec<(Addr, Tuple)> {
        let mut out = Vec::new();
        for (node, engine) in &self.engines {
            for t in engine.relation(relation) {
                out.push((*node, t));
            }
        }
        out
    }

    /// Find the first tuple of `relation` satisfying a predicate.
    pub fn find_tuple(
        &self,
        relation: &str,
        predicate: impl Fn(&Tuple) -> bool,
    ) -> Option<(Addr, Tuple)> {
        self.relation(relation)
            .into_iter()
            .find(|(_, t)| predicate(t))
    }

    // ------------------------------------------------------------------
    // provenance queries
    // ------------------------------------------------------------------

    /// Open a query session for `target`: a fluent builder over the
    /// question, traversal, pruning and execution mode, terminated by
    /// [`QuerySession::submit`] (asynchronous handle) or
    /// [`QuerySession::run`] (drive to completion).
    ///
    /// ```ignore
    /// let (result, stats) = nt
    ///     .query(&tuple)
    ///     .from_node("n3")
    ///     .kind(QueryKind::Lineage)
    ///     .traversal(TraversalOrder::BreadthFirst)
    ///     .max_depth(4)
    ///     .run();
    /// ```
    ///
    /// The querier defaults to the target's home node; the mode defaults to
    /// [`QueryMode::Distributed`], where every cross-node hop is a real
    /// `prov-query` frame through the simulated network and the reported
    /// latency is measured off the network clock.
    pub fn query(&mut self, target: &Tuple) -> QuerySession<'_> {
        self.query_vid(target.id())
    }

    /// Open a tenant-attributed request builder for the query service:
    ///
    /// ```ignore
    /// let request = nt.service("ops")
    ///     .deadline_ms(40.0)
    ///     .query(&suspicious_route)
    ///     .kind(QueryKind::Lineage)
    ///     .request();
    /// ```
    ///
    /// Unlike [`NetTrails::query`], nothing is submitted here: the built
    /// [`ServiceRequest`] is handed to `qsvc::QueryService::enqueue`, which
    /// owns admission, per-tenant fair scheduling and deadline enforcement.
    pub fn service(&mut self, tenant: &str) -> ServiceBuilder<'_> {
        ServiceBuilder {
            nt: self,
            tenant: tenant.to_string(),
            deadline_ms: None,
        }
    }

    /// Open a query session addressed directly by VID.
    pub fn query_vid(&mut self, vid: TupleId) -> QuerySession<'_> {
        let querier = self
            .provenance
            .vertex_home(vid)
            .or_else(|| self.engines.keys().next().copied())
            .unwrap_or_default();
        QuerySession {
            nt: self,
            spec: QuerySpec {
                querier,
                vid,
                kind: QueryKind::Lineage,
                mode: QueryMode::Distributed,
                options: QueryOptions::default(),
            },
        }
    }

    /// Submit a compiled [`QuerySpec`]. [`QueryMode::Local`] runs the
    /// in-process engine synchronously; [`QueryMode::Distributed`] starts a
    /// message-driven session that the round loop pumps.
    pub fn submit_query(&mut self, spec: QuerySpec) -> QueryHandle {
        match spec.mode {
            QueryMode::Local => {
                let (result, stats) = self.query_engine.run(&self.provenance, &spec);
                self.query_executor.adopt_result(result, stats)
            }
            QueryMode::Distributed => {
                let now = self.network.now();
                self.query_executor.submit(&self.provenance, spec, now)
            }
        }
    }

    /// True when the session has its final result (or was cancelled).
    pub fn query_done(&self, handle: QueryHandle) -> bool {
        self.query_executor.is_done(handle)
    }

    /// One pump step of the query plane: ship staged frames, then advance
    /// the network and deliver. Returns false when there was nothing to do.
    pub fn poll_queries(&mut self) -> bool {
        let mut progressed = self.flush_query_frames();
        if !self.network.idle() {
            progressed = true;
            let batch = self.network.advance();
            let mut sink = RunReport::default();
            for delivered in batch {
                self.dispatch(delivered, &mut sink);
            }
            // Misroutes delivered while pumping outside `run_to_fixpoint`
            // have no RunReport to land in; keep them visible.
            self.stray_misrouted += sink.misrouted;
            self.flush_query_frames();
        }
        progressed
    }

    /// Misrouted deliveries observed while pumping the query plane outside
    /// [`NetTrails::run_to_fixpoint`] (runs count their own into their
    /// [`RunReport::misrouted`]).
    pub fn stray_misrouted(&self) -> usize {
        self.stray_misrouted
    }

    /// Drive the network until `handle` completes and return its result.
    ///
    /// Panics if the session was cancelled (use [`NetTrails::cancel_query`]'s
    /// return value instead) or stalls, which would be an executor bug.
    pub fn wait_query(&mut self, handle: QueryHandle) -> (QueryResult, QueryStats) {
        while !self.query_executor.is_done(handle) {
            assert!(
                self.poll_queries(),
                "query session stalled with an idle network"
            );
        }
        let (result, stats) = self
            .query_executor
            .take_result(handle)
            .expect("session finished");
        (result.expect("query was cancelled, not completed"), stats)
    }

    /// Non-panicking redemption of a finished session: `Some` with the
    /// result and final stats when the session completed, `None` when it was
    /// cancelled (its stats remain available through
    /// [`NetTrails::cancel_query`]'s return value at cancel time) or when
    /// the handle is unknown / still running. Unlike
    /// [`NetTrails::wait_query`] this never pumps the network — callers that
    /// multiplex many sessions (the query service) drive
    /// [`NetTrails::poll_queries`] themselves and redeem whichever handles
    /// have finished.
    pub fn try_wait_query(&mut self, handle: QueryHandle) -> Option<(QueryResult, QueryStats)> {
        if !self.query_executor.is_done(handle) {
            return None;
        }
        let (result, stats) = self.query_executor.take_result(handle)?;
        Some((result?, stats))
    }

    /// Cancel a running session: outstanding subtrees are abandoned, one
    /// cancel frame per affected node is shipped (and charged), and the
    /// traffic spent so far is returned. Partial results remain redeemable
    /// through [`NetTrails::take_query_partials`].
    pub fn cancel_query(&mut self, handle: QueryHandle) -> QueryStats {
        let now = self.network.now();
        self.query_executor.cancel(handle, now);
        // Ship the cancel frames now (so they are charged to this session's
        // stats), but do NOT drain the network: other concurrent sessions
        // keep their own pace, and this session's in-flight strays are
        // dropped whenever the driver next advances deliveries.
        self.flush_query_frames();
        self.query_executor.stats_so_far(handle).unwrap_or_default()
    }

    /// Drain the root-level derivations a session has streamed so far
    /// (partial results; works while running, after completion and after
    /// cancellation).
    pub fn take_query_partials(&mut self, handle: QueryHandle) -> Vec<RuleExecNode> {
        self.query_executor.take_partials(handle)
    }

    /// Ship every staged query frame through the network. Returns true when
    /// anything was sent.
    fn flush_query_frames(&mut self) -> bool {
        let batches = self.query_executor.poll();
        let sent = !batches.is_empty();
        for batch in batches {
            let bytes = batch.wire_size();
            let records = batch.len();
            let (from, to) = (batch.from, batch.to);
            let message = if batch.is_request() {
                NetMessage::QueryRequest { batch }
            } else {
                NetMessage::QueryResponse { batch }
            };
            self.network
                .send_batch(from, to, message, bytes, records, QUERY_CATEGORY);
        }
        sent
    }

    /// Route one delivered message to its consumer: query frames to the
    /// executor, deltas to the destination engine.
    fn dispatch(&mut self, delivered: Delivered<NetMessage>, report: &mut RunReport) {
        match delivered.payload {
            NetMessage::QueryRequest { batch } | NetMessage::QueryResponse { batch } => {
                let now = self.network.now();
                self.query_executor.deliver(&self.provenance, batch, now);
            }
            payload => {
                let Some(engine) = self.engines.get_mut(&delivered.to) else {
                    report.misrouted += 1;
                    debug_assert!(
                        self.config.tolerate_misrouted,
                        "message misrouted to unknown node {} (payload {:?})",
                        delivered.to, payload
                    );
                    return;
                };
                match payload {
                    NetMessage::Delta { delta, derivation } => {
                        engine.apply_remote(delta, derivation)
                    }
                    NetMessage::DeltaBatch { batch } => {
                        for record in batch.records {
                            engine.apply_remote(record.delta, record.derivation);
                        }
                    }
                    NetMessage::QueryRequest { .. } | NetMessage::QueryResponse { .. } => {
                        unreachable!("query frames are dispatched above")
                    }
                }
            }
        }
    }

    /// Clear both provenance query caches — and the executor's
    /// per-destination dictionary memory, so byte counts start cold too
    /// (between benchmark configurations).
    pub fn clear_query_cache(&mut self) {
        self.query_engine.clear_cache();
        self.query_executor.clear_cache();
        self.query_executor.reset_dictionaries();
    }

    /// Aggregated statistics.
    pub fn stats(&self) -> PlatformStats {
        let mut engine = EngineStats::default();
        let mut stored_tuples = 0usize;
        for e in self.engines.values() {
            let s = e.stats();
            engine.deltas_processed += s.deltas_processed;
            engine.rule_firings += s.rule_firings;
            engine.retractions += s.retractions;
            engine.tuples_sent += s.tuples_sent;
            engine.bytes_sent += s.bytes_sent;
            engine.dict_bytes_sent += s.dict_bytes_sent;
            engine.join_probes += s.join_probes;
            engine.agg_recomputes += s.agg_recomputes;
            for table in e.database().tables() {
                if !table.schema.name.starts_with("__out::") {
                    stored_tuples += table.len();
                }
            }
        }
        PlatformStats {
            engine,
            network: self.network.stats().clone(),
            provenance: self.provenance.stats(),
            provenance_traffic: self.provenance.maintenance_traffic().clone(),
            provenance_sharding: self.provenance.shard_stats().clone(),
            stored_tuples,
        }
    }
}

/// A fluent query session builder; see [`NetTrails::query`]. Dropping the
/// builder without calling [`QuerySession::submit`] or [`QuerySession::run`]
/// issues nothing.
#[derive(Debug)]
pub struct QuerySession<'a> {
    nt: &'a mut NetTrails,
    spec: QuerySpec,
}

impl QuerySession<'_> {
    /// Issue the query from this node (default: the target's home).
    pub fn from_node(mut self, querier: &str) -> Self {
        self.spec.querier = Addr::new(querier);
        self
    }

    /// Which provenance question to ask (default: [`QueryKind::Lineage`]).
    pub fn kind(mut self, kind: QueryKind) -> Self {
        self.spec.kind = kind;
        self
    }

    /// Traversal order (default: depth-first).
    pub fn traversal(mut self, traversal: TraversalOrder) -> Self {
        self.spec.options.traversal = traversal;
        self
    }

    /// Reuse cached sub-results from previous queries.
    pub fn cached(mut self) -> Self {
        self.spec.options.use_cache = true;
        self
    }

    /// Threshold pruning: stop descending below this depth.
    pub fn max_depth(mut self, depth: usize) -> Self {
        self.spec.options.max_depth = Some(depth);
        self
    }

    /// Threshold pruning: expand at most this many alternative derivations
    /// per tuple vertex.
    pub fn max_derivations(mut self, limit: usize) -> Self {
        self.spec.options.max_derivations_per_vertex = Some(limit);
        self
    }

    /// Replace the whole option set at once.
    pub fn options(mut self, options: QueryOptions) -> Self {
        self.spec.options = options;
        self
    }

    /// Execution mode (default: [`QueryMode::Distributed`]).
    pub fn mode(mut self, mode: QueryMode) -> Self {
        self.spec.mode = mode;
        self
    }

    /// Shorthand for `.mode(QueryMode::Local)`: the in-process oracle path.
    pub fn local(self) -> Self {
        self.mode(QueryMode::Local)
    }

    /// The compiled spec this builder will submit.
    pub fn spec(&self) -> &QuerySpec {
        &self.spec
    }

    /// Submit the session and return its handle; the platform's round loop
    /// (or [`NetTrails::poll_queries`] / [`NetTrails::wait_query`]) drives
    /// it.
    pub fn submit(self) -> QueryHandle {
        let QuerySession { nt, spec } = self;
        nt.submit_query(spec)
    }

    /// Submit and drive the session to completion.
    pub fn run(self) -> (QueryResult, QueryStats) {
        let QuerySession { nt, spec } = self;
        let handle = nt.submit_query(spec);
        nt.wait_query(handle)
    }
}

/// A query spec attributed to a tenant, plus an optional per-session
/// deadline, ready for `qsvc::QueryService::enqueue`. Built by
/// [`NetTrails::service`]; carries no platform borrow, so requests can be
/// batched up front and admitted later.
#[derive(Debug, Clone, PartialEq)]
pub struct ServiceRequest {
    /// Tenant the session is accounted to.
    pub tenant: String,
    /// The compiled query.
    pub spec: QuerySpec,
    /// Deadline relative to admission (simulated milliseconds): a session
    /// still unfinished this long after it was *enqueued* is cancelled and
    /// counted expired. `None` never expires.
    pub deadline_ms: Option<f64>,
}

/// Tenant-scoped entry point to the query service; see [`NetTrails::service`].
#[derive(Debug)]
pub struct ServiceBuilder<'a> {
    nt: &'a mut NetTrails,
    tenant: String,
    deadline_ms: Option<f64>,
}

impl<'a> ServiceBuilder<'a> {
    /// Give every request built from this builder a deadline, in simulated
    /// milliseconds from enqueue time.
    pub fn deadline_ms(mut self, ms: f64) -> Self {
        self.deadline_ms = Some(ms);
        self
    }

    /// Start building a request against `target`'s proof tree.
    pub fn query(self, target: &Tuple) -> ServiceSession<'a> {
        let vid = target.id();
        self.query_vid(vid)
    }

    /// Start building a request addressed directly by VID.
    pub fn query_vid(self, vid: TupleId) -> ServiceSession<'a> {
        let ServiceBuilder {
            nt,
            tenant,
            deadline_ms,
        } = self;
        ServiceSession {
            session: nt.query_vid(vid),
            tenant,
            deadline_ms,
        }
    }
}

/// A fluent request builder mirroring [`QuerySession`]'s surface, finished
/// with [`ServiceSession::request`] instead of submitting directly.
#[derive(Debug)]
pub struct ServiceSession<'a> {
    session: QuerySession<'a>,
    tenant: String,
    deadline_ms: Option<f64>,
}

impl ServiceSession<'_> {
    /// Issue the query from this node (default: the target's home).
    pub fn from_node(mut self, querier: &str) -> Self {
        self.session = self.session.from_node(querier);
        self
    }

    /// Which provenance question to ask (default: [`QueryKind::Lineage`]).
    pub fn kind(mut self, kind: QueryKind) -> Self {
        self.session = self.session.kind(kind);
        self
    }

    /// Traversal order (default: depth-first).
    pub fn traversal(mut self, traversal: TraversalOrder) -> Self {
        self.session = self.session.traversal(traversal);
        self
    }

    /// Reuse cached sub-results from previous queries.
    pub fn cached(mut self) -> Self {
        self.session = self.session.cached();
        self
    }

    /// Threshold pruning: stop descending below this depth.
    pub fn max_depth(mut self, depth: usize) -> Self {
        self.session = self.session.max_depth(depth);
        self
    }

    /// Replace the whole option set at once.
    pub fn options(mut self, options: QueryOptions) -> Self {
        self.session = self.session.options(options);
        self
    }

    /// Deadline in simulated milliseconds from enqueue time (overrides the
    /// builder-level deadline).
    pub fn deadline_ms(mut self, ms: f64) -> Self {
        self.deadline_ms = Some(ms);
        self
    }

    /// Finish the request without submitting it; hand the result to
    /// `qsvc::QueryService::enqueue`.
    pub fn request(self) -> ServiceRequest {
        let ServiceSession {
            session,
            tenant,
            deadline_ms,
        } = self;
        ServiceRequest {
            tenant,
            spec: session.spec,
            deadline_ms,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nt_runtime::Value;
    use provenance::TraversalOrder;

    fn mincost_on(topology: Topology) -> NetTrails {
        let mut nt = NetTrails::new(
            protocols::mincost::PROGRAM,
            topology,
            NetTrailsConfig::default(),
        )
        .unwrap();
        nt.seed_links_from_topology();
        nt.run_to_fixpoint();
        nt
    }

    fn min_cost(nt: &NetTrails, from: &str, to: &str) -> Option<i64> {
        nt.find_tuple("minCost", |t| {
            t.values[0].as_addr() == Some(from) && t.values[1].as_addr() == Some(to)
        })
        .and_then(|(_, t)| t.values[2].as_int())
    }

    #[test]
    fn mincost_converges_on_a_line() {
        let nt = mincost_on(Topology::line(4));
        assert_eq!(min_cost(&nt, "n1", "n2"), Some(1));
        assert_eq!(min_cost(&nt, "n1", "n3"), Some(2));
        assert_eq!(min_cost(&nt, "n1", "n4"), Some(3));
        assert_eq!(min_cost(&nt, "n4", "n1"), Some(3));
    }

    #[test]
    fn mincost_finds_cheaper_multi_hop_paths() {
        // Triangle with an expensive direct edge: n1-n3 costs 10, but n1-n2-n3
        // costs 2.
        let mut topo = Topology::new();
        topo.add_bidi("n1", "n2", 1);
        topo.add_bidi("n2", "n3", 1);
        topo.add_bidi("n1", "n3", 10);
        let nt = mincost_on(topo);
        assert_eq!(min_cost(&nt, "n1", "n3"), Some(2));
    }

    #[test]
    fn link_failure_triggers_incremental_recomputation() {
        let mut nt = mincost_on(Topology::ring(4));
        assert_eq!(min_cost(&nt, "n1", "n2"), Some(1));
        // Fail the n1-n2 link: the ring still connects them the long way.
        let report = nt.apply_topology_event(&TopologyEvent::LinkDown {
            a: "n1".into(),
            b: "n2".into(),
        });
        assert!(report.tuples_touched() > 0);
        assert_eq!(min_cost(&nt, "n1", "n2"), Some(3));
        // The incremental result matches recomputation from scratch.
        let (fresh, _) = nt.recompute_from_scratch().unwrap();
        let mut incremental = nt.relation("minCost");
        let mut scratch = fresh.relation("minCost");
        incremental.sort_by_key(|(n, t)| (*n, t.to_string()));
        scratch.sort_by_key(|(n, t)| (*n, t.to_string()));
        assert_eq!(incremental, scratch);
    }

    #[test]
    fn disconnection_removes_derived_state() {
        let mut nt = mincost_on(Topology::line(3));
        assert!(min_cost(&nt, "n1", "n3").is_some());
        nt.apply_topology_event(&TopologyEvent::LinkDown {
            a: "n2".into(),
            b: "n3".into(),
        });
        assert_eq!(min_cost(&nt, "n1", "n3"), None, "n3 became unreachable");
        assert_eq!(min_cost(&nt, "n1", "n2"), Some(1), "n2 still reachable");
    }

    #[test]
    fn provenance_queries_work_end_to_end() {
        let mut nt = mincost_on(Topology::line(3));
        let (_, target) = nt
            .find_tuple("minCost", |t| {
                t.values[0].as_addr() == Some("n1") && t.values[1].as_addr() == Some("n3")
            })
            .unwrap();
        let (result, stats) = nt
            .query(&target)
            .from_node("n3")
            .kind(QueryKind::ParticipatingNodes)
            .run();
        let QueryResult::ParticipatingNodes(nodes) = result else {
            panic!("wrong result type");
        };
        assert!(
            nodes.contains(&nt_runtime::NodeId::new("n1"))
                && nodes.contains(&nt_runtime::NodeId::new("n2"))
        );
        assert!(stats.messages > 0);
        assert!(stats.latency_ms > 0.0, "hops take simulated time");
        // The query traffic rode the real wire, in its own category.
        assert!(nt.stats().network.category_messages(QUERY_CATEGORY) >= stats.messages);

        let (result, _) = nt
            .query(&target)
            .from_node("n1")
            .kind(QueryKind::BaseTuples)
            .run();
        let QueryResult::BaseTuples(bases) = result else {
            panic!()
        };
        assert!(
            bases
                .iter()
                .all(|(_, t)| t.as_ref().map(|t| t.relation == "link").unwrap_or(true)),
            "base tuples of minCost are links"
        );
        assert!(!bases.is_empty());
    }

    /// The distributed session and the in-process oracle agree on every
    /// result; the distributed one measures its latency off the clock.
    #[test]
    fn distributed_and_local_modes_agree() {
        let mut nt = mincost_on(Topology::ring(4));
        let targets = nt.relation("minCost");
        for kind in [
            QueryKind::Lineage,
            QueryKind::BaseTuples,
            QueryKind::ParticipatingNodes,
            QueryKind::DerivationCount,
        ] {
            for (node, tuple) in targets.iter().take(4) {
                let (dist, dist_stats) = nt.query(tuple).from_node(node).kind(kind).run();
                let (local, local_stats) = nt.query(tuple).from_node(node).kind(kind).local().run();
                assert_eq!(dist, local, "{kind:?}");
                assert_eq!(dist_stats.vertices_visited, local_stats.vertices_visited);
                assert_eq!(dist_stats.records, local_stats.records);
            }
        }
    }

    /// Breadth-first fan-out measurably beats depth-first on multi-hop
    /// proofs: the session clock spans max(hop chain), not the hop sum.
    #[test]
    fn breadth_first_fanout_measures_lower_latency() {
        let mut nt = mincost_on(Topology::line(4));
        let (node, target) = nt
            .find_tuple("minCost", |t| {
                t.values[0].as_addr() == Some("n1") && t.values[1].as_addr() == Some("n4")
            })
            .unwrap();
        let (r_dfs, dfs) = nt
            .query(&target)
            .from_node(node.as_str())
            .traversal(TraversalOrder::DepthFirst)
            .run();
        let (r_bfs, bfs) = nt
            .query(&target)
            .from_node(node.as_str())
            .traversal(TraversalOrder::BreadthFirst)
            .run();
        assert_eq!(r_dfs, r_bfs, "traversal order must not change the answer");
        assert_eq!(dfs.records, bfs.records, "same protocol records");
        assert!(dfs.latency_ms > 0.0 && bfs.latency_ms > 0.0);
        assert!(
            bfs.latency_ms < dfs.latency_ms,
            "measured fan-out latency {} must beat sequential {}",
            bfs.latency_ms,
            dfs.latency_ms
        );
        assert!(bfs.messages <= dfs.messages, "fan-out coalesces frames");
    }

    /// Cancelling a session stops its traffic; partials stay redeemable.
    #[test]
    fn queries_can_be_cancelled_mid_flight() {
        let mut nt = mincost_on(Topology::line(4));
        let (_, target) = nt
            .find_tuple("minCost", |t| {
                t.values[0].as_addr() == Some("n1") && t.values[1].as_addr() == Some("n4")
            })
            .unwrap();
        let full = nt.query(&target).from_node("n4").run().1;
        let handle = nt.query(&target).from_node("n4").submit();
        // Take a couple of pump steps, then abandon the traversal.
        nt.poll_queries();
        nt.poll_queries();
        assert!(!nt.query_done(handle));
        let cancelled = nt.cancel_query(handle);
        assert!(nt.query_done(handle));
        assert!(
            cancelled.records < full.records,
            "abandoned subtrees stop consuming traffic ({} vs {})",
            cancelled.records,
            full.records
        );
        let _ = nt.take_query_partials(handle);
    }

    /// `try_wait_query` is the non-panicking redemption path: `None` while
    /// running, `Some` exactly once on completion, `None` after cancellation.
    #[test]
    fn try_wait_query_never_panics_on_cancelled_sessions() {
        let mut nt = mincost_on(Topology::line(4));
        let (_, target) = nt
            .find_tuple("minCost", |t| {
                t.values[0].as_addr() == Some("n1") && t.values[1].as_addr() == Some("n4")
            })
            .unwrap();
        let handle = nt.query(&target).from_node("n4").submit();
        assert!(
            nt.try_wait_query(handle).is_none(),
            "still running: no result yet"
        );
        while !nt.query_done(handle) {
            assert!(nt.poll_queries(), "session stalled");
        }
        let (result, stats) = nt.try_wait_query(handle).expect("completed session");
        assert!(stats.latency_ms > 0.0);
        let (expected, _) = nt.query(&target).from_node("n4").run();
        assert_eq!(result, expected);
        assert!(
            nt.try_wait_query(handle).is_none(),
            "results are redeemed at most once"
        );

        // A cancelled session redeems to None instead of panicking.
        let cancelled = nt.query(&target).from_node("n4").submit();
        nt.poll_queries();
        nt.cancel_query(cancelled);
        assert!(nt.query_done(cancelled));
        assert!(nt.try_wait_query(cancelled).is_none());
    }

    /// End-to-end over the simulated network, merged sealing is
    /// observationally identical to per-session sealing for concurrent
    /// sessions — same results and same per-session stats (including
    /// measured latency) — while shipping strictly fewer query frames.
    #[test]
    fn merged_query_frames_match_per_session_sealing_end_to_end() {
        let run = |config: NetTrailsConfig| {
            let mut nt =
                NetTrails::new(protocols::mincost::PROGRAM, Topology::ring(5), config).unwrap();
            nt.seed_links_from_topology();
            nt.run_to_fixpoint();
            let (_, target) = nt
                .find_tuple("minCost", |t| {
                    t.values[0].as_addr() == Some("n1") && t.values[1].as_addr() == Some("n3")
                })
                .unwrap();
            let handles: Vec<QueryHandle> = ["n3", "n3", "n5", "n1"]
                .iter()
                .enumerate()
                .map(|(i, querier)| {
                    let traversal = if i % 2 == 0 {
                        TraversalOrder::BreadthFirst
                    } else {
                        TraversalOrder::DepthFirst
                    };
                    nt.query(&target)
                        .from_node(querier)
                        .traversal(traversal)
                        .submit()
                })
                .collect();
            while handles.iter().any(|h| !nt.query_done(*h)) {
                assert!(nt.poll_queries(), "sessions stalled");
            }
            let outcomes: Vec<_> = handles
                .iter()
                .map(|h| nt.try_wait_query(*h).expect("completed"))
                .collect();
            // Per-session bytes/dict_bytes are excluded: first-use
            // dictionary attribution follows frame order within a flush, so
            // merging may shift a shared symbol's charge between concurrent
            // sessions. The totals are compared instead.
            let per_session: Vec<_> = outcomes
                .iter()
                .map(|(result, s)| {
                    (
                        result.clone(),
                        s.messages,
                        s.records,
                        s.vertices_visited,
                        s.cache_hits,
                        s.latency_ms,
                    )
                })
                .collect();
            let totals: (u64, u64) = outcomes
                .iter()
                .fold((0, 0), |(b, d), (_, s)| (b + s.bytes, d + s.dict_bytes));
            (per_session, totals, nt.query_executor().traffic().messages)
        };
        let (merged, merged_totals, merged_frames) =
            run(NetTrailsConfig::with_merged_query_frames());
        let (split, split_totals, split_frames) = run(NetTrailsConfig::default());
        assert_eq!(merged, split, "results and per-session stats");
        assert_eq!(merged_totals, split_totals, "total bytes and dict bytes");
        assert!(
            merged_frames < split_frames,
            "merging collapses concurrent frames ({merged_frames} vs {split_frames})"
        );
    }

    /// The service builder compiles tenant-attributed requests without
    /// submitting anything.
    #[test]
    fn service_builder_attributes_requests_to_tenants() {
        let mut nt = mincost_on(Topology::line(3));
        let (_, target) = nt
            .find_tuple("minCost", |t| {
                t.values[0].as_addr() == Some("n1") && t.values[1].as_addr() == Some("n3")
            })
            .unwrap();
        let request = nt
            .service("ops")
            .deadline_ms(40.0)
            .query(&target)
            .from_node("n3")
            .kind(QueryKind::BaseTuples)
            .traversal(TraversalOrder::BreadthFirst)
            .request();
        assert_eq!(request.tenant, "ops");
        assert_eq!(request.deadline_ms, Some(40.0));
        assert_eq!(request.spec.vid, target.id());
        assert_eq!(request.spec.querier.as_str(), "n3");
        assert_eq!(request.spec.kind, QueryKind::BaseTuples);
        assert_eq!(nt.query_executor().active_sessions(), 0);
        // The request is an ordinary spec: submitting it by hand completes.
        let handle = nt.submit_query(request.spec);
        while !nt.query_done(handle) {
            assert!(nt.poll_queries());
        }
        assert!(nt.try_wait_query(handle).is_some());
    }

    /// The query cache, like the stores it mirrors, is invalidated by
    /// incremental maintenance: churn between cached queries can never
    /// serve a stale proof tree.
    #[test]
    fn cached_queries_stay_fresh_across_churn() {
        let mut nt = mincost_on(Topology::ring(4));
        let (node, target) = nt
            .find_tuple("minCost", |t| {
                t.values[0].as_addr() == Some("n1") && t.values[1].as_addr() == Some("n2")
            })
            .unwrap();
        let (before, _) = nt.query(&target).from_node(node.as_str()).cached().run();
        // Fail a link: minCost(n1,n2) now only holds the long way around.
        nt.apply_topology_event(&TopologyEvent::LinkDown {
            a: "n1".into(),
            b: "n2".into(),
        });
        let (_, fresh_target) = nt
            .find_tuple("minCost", |t| {
                t.values[0].as_addr() == Some("n1") && t.values[1].as_addr() == Some("n2")
            })
            .expect("still reachable the long way");
        let (cached_after, _) = nt
            .query(&fresh_target)
            .from_node(node.as_str())
            .cached()
            .run();
        let (uncached_after, _) = nt.query(&fresh_target).from_node(node.as_str()).run();
        assert_eq!(
            cached_after, uncached_after,
            "stale cache entries must be evicted, not served"
        );
        assert_ne!(before, cached_after, "the link failure changed the proof");
    }

    #[test]
    fn provenance_capture_can_be_disabled() {
        let mut nt = NetTrails::new(
            protocols::mincost::PROGRAM,
            Topology::line(3),
            NetTrailsConfig::without_provenance(),
        )
        .unwrap();
        nt.seed_links_from_topology();
        nt.run_to_fixpoint();
        assert_eq!(nt.stats().provenance.prov_entries, 0);
        // Protocol state is still computed.
        assert!(!nt.relation("minCost").is_empty());
    }

    #[test]
    fn provenance_shrinks_when_state_is_deleted() {
        let mut nt = mincost_on(Topology::line(3));
        let before = nt.stats().provenance.prov_entries;
        nt.apply_topology_event(&TopologyEvent::LinkDown {
            a: "n2".into(),
            b: "n3".into(),
        });
        let after = nt.stats().provenance.prov_entries;
        assert!(
            after < before,
            "provenance entries should shrink ({before} -> {after})"
        );
    }

    #[test]
    fn pathvector_paths_carry_the_route() {
        let mut nt = NetTrails::new(
            protocols::pathvector::PROGRAM,
            Topology::line(3),
            NetTrailsConfig::default(),
        )
        .unwrap();
        nt.seed_links_from_topology();
        nt.run_to_fixpoint();
        let (_, best) = nt
            .find_tuple("bestPathCost", |t| {
                t.values[0].as_addr() == Some("n1") && t.values[1].as_addr() == Some("n3")
            })
            .expect("best path cost derived");
        assert_eq!(best.values[2].as_int(), Some(2));
        // The path relation holds the explicit route n1 -> n2 -> n3.
        let path = nt
            .find_tuple("path", |t| {
                t.values[0].as_addr() == Some("n1")
                    && t.values[1].as_addr() == Some("n3")
                    && t.values[3].as_int() == Some(2)
            })
            .expect("path tuple");
        let route = path.1.values[2].as_list().unwrap();
        assert_eq!(route.len(), 3);
        assert_eq!(route[0], Value::addr("n1"));
        assert_eq!(route[2], Value::addr("n3"));
    }

    #[test]
    fn query_cache_and_traversal_options_are_exposed() {
        let mut nt = mincost_on(Topology::ladder(3));
        let (_, target) = nt.relation("minCost").into_iter().next_back().unwrap();
        let session = |nt: &mut NetTrails| {
            nt.query(&target)
                .from_node("n1")
                .traversal(TraversalOrder::BreadthFirst)
                .cached()
                .run()
        };
        let (_, first) = session(&mut nt);
        let (_, second) = session(&mut nt);
        assert!(second.messages <= first.messages);
        assert!(nt.query_executor().cache_size() > 0);
        nt.clear_query_cache();
        assert_eq!(nt.query_engine().cache_size(), 0);
        assert_eq!(nt.query_executor().cache_size(), 0);
    }

    #[test]
    fn stats_aggregate_engine_network_and_provenance() {
        let nt = mincost_on(Topology::line(3));
        let stats = nt.stats();
        assert!(stats.engine.rule_firings > 0);
        assert!(stats.network.messages > 0);
        assert!(stats.provenance.prov_entries > 0);
        assert!(stats.stored_tuples > 0);
    }

    /// The engine is the single source of truth for protocol payload bytes:
    /// what the network charged (minus its per-message framing headers) must
    /// equal `EngineStats::bytes_sent` exactly — in both shipping modes.
    #[test]
    fn engine_bytes_equal_network_bytes() {
        for config in [
            NetTrailsConfig::default(),
            NetTrailsConfig::without_batching(),
        ] {
            let header = config.network.header_bytes as u64;
            let mut nt =
                NetTrails::new(protocols::mincost::PROGRAM, Topology::ladder(3), config).unwrap();
            nt.seed_links_from_topology();
            nt.run_to_fixpoint();
            let stats = nt.stats();
            let msgs = stats.network.category_messages(PROTOCOL_CATEGORY);
            let payload = stats.network.category_bytes(PROTOCOL_CATEGORY) - msgs * header;
            assert_eq!(
                stats.engine.bytes_sent, payload,
                "engine accounting must match the network charge"
            );
            assert_eq!(stats.engine.tuples_sent, stats.network.records);
        }
    }

    /// Batched shipping actually coalesces: fewer protocol messages than
    /// shipped records, and fewer total protocol bytes than the per-tuple
    /// baseline (per-message framing headers are paid once per batch).
    #[test]
    fn batching_coalesces_messages_and_reduces_bytes() {
        let run = |config: NetTrailsConfig| {
            let mut nt =
                NetTrails::new(protocols::pathvector::PROGRAM, Topology::ladder(3), config)
                    .unwrap();
            nt.seed_links_from_topology();
            nt.run_to_fixpoint();
            nt.stats()
        };
        let batched = run(NetTrailsConfig::default());
        let per_tuple = run(NetTrailsConfig::without_batching());
        assert!(
            batched.network.messages < batched.network.records,
            "coalescing happened: {} messages carried {} records",
            batched.network.messages,
            batched.network.records,
        );
        assert_eq!(per_tuple.network.messages, per_tuple.network.records);
        // Identical engine work and payload in both modes...
        assert_eq!(batched.engine.tuples_sent, per_tuple.engine.tuples_sent);
        assert_eq!(batched.engine.bytes_sent, per_tuple.engine.bytes_sent);
        // ... so the byte saving is exactly the amortized framing headers.
        assert!(
            batched.network.bytes < per_tuple.network.bytes,
            "batched {} >= per-tuple {}",
            batched.network.bytes,
            per_tuple.network.bytes,
        );
    }

    /// Both shipping modes converge to identical protocol state.
    #[test]
    fn batched_and_per_tuple_shipping_reach_the_same_fixpoint() {
        let run = |config: NetTrailsConfig| {
            let mut nt =
                NetTrails::new(protocols::mincost::PROGRAM, Topology::ring(5), config).unwrap();
            nt.seed_links_from_topology();
            nt.run_to_fixpoint();
            let mut rows = nt.relation("minCost");
            rows.sort_by_key(|(n, t)| (*n, t.to_string()));
            rows
        };
        assert_eq!(
            run(NetTrailsConfig::default()),
            run(NetTrailsConfig::without_batching())
        );
    }

    /// Sharded provenance maintenance is invisible to the result: sorted
    /// protocol output, provenance stats and the per-store content digests
    /// are bit-identical to the single-shard run for every shard count.
    #[test]
    fn sharded_maintenance_matches_single_shard_run() {
        let run = |shards: usize| {
            let mut nt = NetTrails::new(
                protocols::pathvector::PROGRAM,
                Topology::ladder(3),
                NetTrailsConfig::with_prov_shards(shards),
            )
            .unwrap();
            nt.seed_links_from_topology();
            nt.run_to_fixpoint();
            // Churn: drop a link and re-converge, so retraction maintenance
            // also goes through the sharded pipeline.
            nt.apply_topology_event(&TopologyEvent::LinkDown {
                a: "n2".into(),
                b: "n3".into(),
            });
            let mut rows = nt.relation("bestPathCost");
            rows.sort_by_key(|(n, t)| (*n, t.to_string()));
            (
                rows,
                nt.provenance().stats(),
                nt.provenance().content_digest(),
            )
        };
        let (rows1, stats1, digest1) = run(1);
        for shards in [2usize, 4, 8] {
            let (rows, stats, digest) = run(shards);
            assert_eq!(rows, rows1, "sorted output identical at S={shards}");
            assert_eq!(stats, stats1, "provenance stats identical at S={shards}");
            assert_eq!(digest, digest1, "provenance graph identical at S={shards}");
        }
    }

    /// With more than one shard, cross-shard maintenance exchange shows up
    /// in the platform stats.
    #[test]
    fn cross_shard_exchange_is_reported() {
        let mut nt = NetTrails::new(
            protocols::mincost::PROGRAM,
            Topology::ladder(3),
            NetTrailsConfig::with_prov_shards(4),
        )
        .unwrap();
        nt.seed_links_from_topology();
        nt.run_to_fixpoint();
        let sharding = nt.stats().provenance_sharding;
        assert_eq!(sharding.shards, 4);
        assert!(sharding.phased_rounds > 0);
        assert!(
            sharding.cross_shard_records > 0,
            "a ladder's rules fire across shard boundaries"
        );
        assert!(sharding.cross_shard_dict_bytes > 0);
    }

    /// Deltas addressed to unknown nodes are counted, not silently dropped.
    #[test]
    fn misrouted_deltas_are_counted() {
        let mut nt = NetTrails::new(
            "r1 reach(@D,S) :- link(@S,D,C).",
            Topology::line(2),
            NetTrailsConfig {
                tolerate_misrouted: true,
                ..NetTrailsConfig::default()
            },
        )
        .unwrap();
        // A link whose endpoint names a node outside the topology: the
        // derived reach head is addressed to the non-existent "ghost".
        nt.insert_fact(
            "n1",
            Tuple::new(
                "link",
                vec![
                    nt_runtime::Value::addr("n1"),
                    nt_runtime::Value::addr("ghost"),
                    nt_runtime::Value::Int(1),
                ],
            ),
        );
        let report = nt.run_to_fixpoint();
        assert_eq!(report.misrouted, 1);
    }
}
