//! # nettrails — a declarative platform for maintaining and querying
//! provenance in distributed systems
//!
//! This crate is the integration layer of the reproduction (the box labelled
//! *NetTrails* in Figure 1 of the paper). It wires together:
//!
//! * the NDlog front-end (`ndlog`) and per-node runtime engines
//!   (`nt-runtime`) — the RapidNet role,
//! * the discrete-event network (`simnet`) — the ns-3 role,
//! * the ExSPAN provenance maintenance and query engines (`provenance`),
//! * the protocol library (`protocols`), the legacy/BGP integration (`bgp`),
//!   the log store (`logstore`) and the visualizer backend (`vis`).
//!
//! The central type is [`NetTrails`]: build it from an NDlog program and a
//! topology, seed base tuples, run the distributed computation to a fixpoint,
//! change the topology, and issue distributed provenance queries — all while
//! the platform incrementally maintains both network state and its provenance.
//!
//! ```
//! use nettrails::{NetTrails, NetTrailsConfig};
//! use provenance::QueryKind;
//! use simnet::Topology;
//!
//! let mut nt = NetTrails::new(
//!     protocols::mincost::PROGRAM,
//!     Topology::line(3),
//!     NetTrailsConfig::default(),
//! )
//! .unwrap();
//! nt.seed_links_from_topology();
//! nt.run_to_fixpoint();
//!
//! // n1 knows the cheapest cost to n3 (two hops of cost 1).
//! let (node, min_cost) = nt
//!     .find_tuple("minCost", |t| {
//!         t.values[0].as_addr() == Some("n1") && t.values[1].as_addr() == Some("n3")
//!     })
//!     .expect("minCost(n1,n3) derived");
//! assert_eq!(node, "n1");
//! assert_eq!(min_cost.values[2].as_int(), Some(2));
//!
//! // And its provenance can be queried from any node: the session rides the
//! // simulated wire as real per-destination query frames.
//! let (result, stats) = nt
//!     .query(&min_cost)
//!     .from_node("n3")
//!     .kind(QueryKind::ParticipatingNodes)
//!     .run();
//! assert!(stats.latency_ms > 0.0, "measured, not modelled");
//! ```

pub mod demo;
pub mod platform;
pub mod report;

pub use demo::{DemoOutcome, DemoScript, DemoStep};
pub use platform::{
    NetMessage, NetTrails, NetTrailsConfig, PlatformStats, QuerySession, RunReport, ServiceBuilder,
    ServiceRequest, ServiceSession,
};
pub use report::{ExperimentRow, ReportTable};

// Re-export the pieces users need to drive the platform without adding every
// sub-crate to their dependency list.
pub use ndlog;
pub use nt_runtime as runtime;
pub use protocols;
pub use provenance;
pub use simnet;
