//! Small reporting helpers shared by the examples and the benchmark harness.
//!
//! The NetTrails paper is a demonstration, so its "results" are scenario
//! walk-throughs rather than numeric tables; the benchmark harness
//! (`nettrails-bench`, binary `report`) nevertheless prints every experiment
//! as a table so EXPERIMENTS.md can record paper-claim vs. measured-shape side
//! by side. This module holds the tiny table type used for that output.

use serde::{Deserialize, Serialize};
use std::fmt;

/// One row of an experiment table: a label plus named metric columns.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExperimentRow {
    /// Row label (e.g. a parameter setting such as `n=16` or `caching=on`).
    pub label: String,
    /// (column name, value) pairs, printed in order.
    pub values: Vec<(String, f64)>,
}

impl ExperimentRow {
    /// Create a row.
    pub fn new(label: impl Into<String>) -> Self {
        ExperimentRow {
            label: label.into(),
            values: Vec::new(),
        }
    }

    /// Add a metric column.
    pub fn with(mut self, column: impl Into<String>, value: f64) -> Self {
        self.values.push((column.into(), value));
        self
    }

    /// Look up a metric by column name.
    pub fn get(&self, column: &str) -> Option<f64> {
        self.values
            .iter()
            .find(|(c, _)| c == column)
            .map(|(_, v)| *v)
    }
}

/// A titled table of experiment rows.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ReportTable {
    /// Experiment identifier (e.g. `E3 incremental maintenance`).
    pub title: String,
    /// Rows, in presentation order.
    pub rows: Vec<ExperimentRow>,
}

impl ReportTable {
    /// Create an empty table.
    pub fn new(title: impl Into<String>) -> Self {
        ReportTable {
            title: title.into(),
            rows: Vec::new(),
        }
    }

    /// Append a row.
    pub fn push(&mut self, row: ExperimentRow) {
        self.rows.push(row);
    }

    /// Column names, in first-seen order.
    pub fn columns(&self) -> Vec<String> {
        let mut cols = Vec::new();
        for row in &self.rows {
            for (c, _) in &row.values {
                if !cols.contains(c) {
                    cols.push(c.clone());
                }
            }
        }
        cols
    }
}

impl fmt::Display for ReportTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "== {} ==", self.title)?;
        let columns = self.columns();
        write!(f, "{:<24}", "case")?;
        for c in &columns {
            write!(f, " {c:>18}")?;
        }
        writeln!(f)?;
        for row in &self.rows {
            write!(f, "{:<24}", row.label)?;
            for c in &columns {
                match row.get(c) {
                    Some(v) if v.fract() == 0.0 && v.abs() < 1e15 => {
                        write!(f, " {:>18}", v as i64)?
                    }
                    Some(v) => write!(f, " {v:>18.3}")?,
                    None => write!(f, " {:>18}", "-")?,
                }
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rows_and_columns_round_trip() {
        let mut table = ReportTable::new("E7 query optimizations");
        table.push(
            ExperimentRow::new("caching=off")
                .with("messages", 42.0)
                .with("bytes", 4200.0),
        );
        table.push(
            ExperimentRow::new("caching=on")
                .with("messages", 7.0)
                .with("latency_ms", 1.5),
        );
        assert_eq!(table.columns(), vec!["messages", "bytes", "latency_ms"]);
        assert_eq!(table.rows[0].get("messages"), Some(42.0));
        assert_eq!(table.rows[1].get("bytes"), None);
        let text = table.to_string();
        assert!(text.contains("E7 query optimizations"));
        assert!(text.contains("caching=on"));
        assert!(text.contains("42"));
        assert!(text.contains("1.500"));
        assert!(text.contains(" -"));
    }
}
