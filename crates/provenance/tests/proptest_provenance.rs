//! Property-based tests for the provenance system: applying any sequence of
//! derivation firings followed by their retractions leaves the graph empty,
//! and the assembled graph is always acyclic when derivations respect
//! stratification (inputs created before outputs).

use nt_runtime::{base_rule_sym, Firing, NodeId, Sym, Tuple, Value};
use proptest::prelude::*;
use provenance::{ProvGraph, ProvenanceSystem};

/// Build a layered set of firings: base tuples in layer 0, each derived tuple
/// in layer i uses inputs from layer i-1.
fn layered_firings(layers: usize, width: usize, nodes: usize) -> Vec<Firing> {
    let node = |i: usize| NodeId::new(&format!("n{}", (i % nodes) + 1));
    let tuple = |layer: usize, i: usize| {
        Tuple::new(
            format!("rel{layer}"),
            vec![Value::addr(node(i)), Value::Int(i as i64)],
        )
    };
    let mut firings = Vec::new();
    for i in 0..width {
        firings.push(Firing {
            rule: base_rule_sym(),
            node: node(i),
            head: tuple(0, i),
            head_home: node(i),
            inputs: vec![],
            input_tuples: vec![],
            insert: true,
        });
    }
    for layer in 1..layers {
        for i in 0..width {
            let input_a = tuple(layer - 1, i);
            let input_b = tuple(layer - 1, (i + 1) % width);
            firings.push(Firing {
                rule: Sym::new(&format!("r{layer}")),
                node: node(i),
                head: tuple(layer, i),
                head_home: node(i + 1),
                inputs: vec![input_a.id(), input_b.id()],
                input_tuples: vec![input_a, input_b],
                insert: true,
            });
        }
    }
    firings
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The assembled provenance graph of layered derivations is acyclic and
    /// has one tuple vertex per distinct tuple.
    #[test]
    fn layered_graphs_are_acyclic(layers in 1usize..5, width in 1usize..5, nodes in 1usize..4) {
        let firings = layered_firings(layers, width, nodes);
        let mut sys = ProvenanceSystem::new((1..=nodes).map(|i| format!("n{i}")));
        sys.apply_firings(firings.iter());
        let graph = ProvGraph::from_system(&sys);
        prop_assert!(graph.is_acyclic());
        prop_assert_eq!(graph.tuple_vertex_count(), layers * width);
        prop_assert_eq!(graph.rule_exec_count(), (layers - 1) * width);
    }

    /// Applying every firing and then retracting every firing leaves no
    /// provenance state behind (incremental maintenance is lossless).
    #[test]
    fn insert_then_retract_everything_is_empty(layers in 1usize..5, width in 1usize..5) {
        let firings = layered_firings(layers, width, 3);
        let mut sys = ProvenanceSystem::new(["n1", "n2", "n3"]);
        sys.apply_firings(firings.iter());
        prop_assert!(sys.stats().prov_entries > 0);
        for f in firings.iter().rev() {
            let mut retraction = f.clone();
            retraction.insert = false;
            retraction.input_tuples.clear();
            sys.apply_firing(&retraction);
        }
        let stats = sys.stats();
        prop_assert_eq!(stats.prov_entries, 0);
        prop_assert_eq!(stats.rule_execs, 0);
    }

    /// Applying the same firings twice is idempotent.
    #[test]
    fn duplicate_application_is_idempotent(layers in 1usize..4, width in 1usize..4) {
        let firings = layered_firings(layers, width, 2);
        let mut once = ProvenanceSystem::new(["n1", "n2"]);
        once.apply_firings(firings.iter());
        let mut twice = ProvenanceSystem::new(["n1", "n2"]);
        twice.apply_firings(firings.iter());
        twice.apply_firings(firings.iter());
        prop_assert_eq!(once.stats().prov_entries, twice.stats().prov_entries);
        prop_assert_eq!(once.stats().rule_execs, twice.stats().rule_execs);
    }
}
