//! Equivalence of incremental provenance maintenance and recomputation.
//!
//! The interned, arena-backed [`ProvenanceSystem`] is maintained by applying
//! insert/retract firings in whatever order the engines emit them. This suite
//! drives it with random insert/delete churn and checks that the resulting
//! provenance graph is exactly the graph a fresh system reaches when it
//! replays only the *surviving* firings once, in canonical order — the
//! provenance-layer mirror of `proptest_join_equivalence.rs` in `nt-runtime`.
//!
//! Because the stores are set-semantics tables keyed by content-addressed
//! identifiers, the surviving state of each firing is decided by its last
//! operation (insert ⇒ present, retract ⇒ absent), independent of how much
//! churn happened in between and of arena slot reuse inside the stores.

use nt_runtime::{base_rule_sym, Firing, NodeId, Sym, Tuple, Value};
use proptest::prelude::*;
use provenance::{ProvGraph, ProvenanceSystem};

const NODES: [&str; 3] = ["n1", "n2", "n3"];

fn node(i: usize) -> NodeId {
    NodeId::new(NODES[i % NODES.len()])
}

fn tuple(layer: usize, i: usize) -> Tuple {
    Tuple::new(
        format!("rel{layer}"),
        vec![Value::addr(node(i)), Value::Int(i as i64)],
    )
}

/// A deterministic pool of candidate firings: `width` base tuples in layer 0,
/// and for each later layer one derived firing per position joining two
/// layer-below tuples, plus an alternative derivation every third position
/// (so some heads have multiple prov entries).
fn firing_pool(layers: usize, width: usize) -> Vec<Firing> {
    let mut pool = Vec::new();
    for i in 0..width {
        pool.push(Firing {
            rule: base_rule_sym(),
            node: node(i),
            head: tuple(0, i),
            head_home: node(i),
            inputs: vec![],
            input_tuples: vec![],
            insert: true,
        });
    }
    for layer in 1..layers {
        for i in 0..width {
            let a = tuple(layer - 1, i);
            let b = tuple(layer - 1, (i + 1) % width);
            pool.push(Firing {
                rule: Sym::new(&format!("r{layer}")),
                node: node(i),
                head: tuple(layer, i),
                head_home: node(i + 1),
                inputs: vec![a.id(), b.id()],
                input_tuples: vec![a.clone(), b],
                insert: true,
            });
            if i % 3 == 0 {
                // Alternative derivation of the same head from one input.
                pool.push(Firing {
                    rule: Sym::new(&format!("alt{layer}")),
                    node: node(i + 1),
                    head: tuple(layer, i),
                    head_home: node(i + 1),
                    inputs: vec![a.id()],
                    input_tuples: vec![a],
                    insert: true,
                });
            }
        }
    }
    pool
}

fn retraction_of(f: &Firing) -> Firing {
    let mut r = f.clone();
    r.insert = false;
    // Engines ship retractions without input tuple contents.
    r.input_tuples.clear();
    r
}

/// The structure of a graph up to isomorphism on the display cache: vertex
/// ids with their home and base flag (and rule/node for executions), plus the
/// sorted edge list. Tuple *contents* are deliberately excluded — they are a
/// best-effort display cache whose population is order-dependent (a store
/// drops a tuple's content when its vertex dies, even if a neighbour
/// execution registered the same content earlier).
fn graph_shape(g: &ProvGraph) -> Vec<String> {
    let mut shape: Vec<String> = g
        .vertices
        .iter()
        .map(|(id, v)| match v {
            provenance::ProvVertex::Tuple { home, is_base, .. } => {
                format!("{id:?}@{home} base={is_base}")
            }
            provenance::ProvVertex::RuleExec { rule, node, .. } => {
                format!("{id:?}@{node} rule={rule}")
            }
        })
        .collect();
    shape.extend(g.edges.iter().map(|e| format!("{:?}->{:?}", e.from, e.to)));
    shape
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Random insert/delete churn converges to the rebuild-from-scratch
    /// reference graph.
    #[test]
    fn churned_system_matches_scratch_rebuild(
        layers in 1usize..4,
        width in 1usize..5,
        ops in proptest::collection::vec((0usize..64, any::<bool>()), 0..80),
    ) {
        let pool = firing_pool(layers, width);
        // Last operation per pool entry decides survival (set semantics).
        let mut surviving = vec![false; pool.len()];
        let mut churned = ProvenanceSystem::new(NODES);
        for (raw_idx, insert) in ops {
            let idx = raw_idx % pool.len();
            if insert {
                churned.apply_firing(&pool[idx]);
            } else {
                churned.apply_firing(&retraction_of(&pool[idx]));
            }
            surviving[idx] = insert;
        }

        let mut scratch = ProvenanceSystem::new(NODES);
        for (idx, f) in pool.iter().enumerate() {
            if surviving[idx] {
                scratch.apply_firing(f);
            }
        }

        let churned_graph = ProvGraph::from_system(&churned);
        let scratch_graph = ProvGraph::from_system(&scratch);
        prop_assert!(churned_graph.is_acyclic());
        prop_assert_eq!(graph_shape(&churned_graph), graph_shape(&scratch_graph));

        let cs = churned.stats();
        let ss = scratch.stats();
        prop_assert_eq!(cs.prov_entries, ss.prov_entries);
        prop_assert_eq!(cs.rule_execs, ss.rule_execs);
        prop_assert_eq!(cs.tuple_vertices, ss.tuple_vertices);
    }

    /// Store-level canonical equality: per-node stores compare equal to the
    /// scratch stores regardless of arena history, and their content digests
    /// agree (the digest hashes resolved strings, never intern ids).
    #[test]
    fn per_store_state_matches_scratch_rebuild(
        ops in proptest::collection::vec((0usize..64, any::<bool>()), 0..60),
    ) {
        let pool = firing_pool(3, 3);
        let mut surviving = vec![false; pool.len()];
        let mut churned = ProvenanceSystem::new(NODES);
        for (raw_idx, insert) in ops {
            let idx = raw_idx % pool.len();
            if insert {
                churned.apply_firing(&pool[idx]);
            } else {
                churned.apply_firing(&retraction_of(&pool[idx]));
            }
            surviving[idx] = insert;
        }
        let mut scratch = ProvenanceSystem::new(NODES);
        for (idx, f) in pool.iter().enumerate() {
            if surviving[idx] {
                scratch.apply_firing(f);
            }
        }
        for name in NODES {
            let a = churned.store(name).unwrap();
            let b = scratch.store(name).unwrap();
            // Stores register input-tuple contents as display metadata that
            // intentionally outlives retracted executions, so compare the
            // graph content (prov + ruleExec), not the display cache.
            prop_assert_eq!(a.content_digest(), b.content_digest());
        }
    }
}
