//! Equivalence of incremental provenance maintenance and recomputation.
//!
//! The interned, arena-backed [`ProvenanceSystem`] is maintained by applying
//! insert/retract firings in whatever order the engines emit them. This suite
//! drives it with random insert/delete churn and checks that the resulting
//! provenance graph is exactly the graph a fresh system reaches when it
//! replays only the *surviving* firings once, in canonical order — the
//! provenance-layer mirror of `proptest_join_equivalence.rs` in `nt-runtime`.
//!
//! Because the stores are set-semantics tables keyed by content-addressed
//! identifiers, the surviving state of each firing is decided by its last
//! operation (insert ⇒ present, retract ⇒ absent), independent of how much
//! churn happened in between and of arena slot reuse inside the stores.
//!
//! The firing pool and graph projection live in `tests/common`, shared with
//! the sharded-maintenance equivalence suite.

mod common;

use common::{firing_pool, graph_shape, retraction_of, NODES};
use proptest::prelude::*;
use provenance::{ProvGraph, ProvenanceSystem};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Random insert/delete churn converges to the rebuild-from-scratch
    /// reference graph.
    #[test]
    fn churned_system_matches_scratch_rebuild(
        layers in 1usize..4,
        width in 1usize..5,
        ops in proptest::collection::vec((0usize..64, any::<bool>()), 0..80),
    ) {
        let pool = firing_pool(layers, width);
        // Last operation per pool entry decides survival (set semantics).
        let mut surviving = vec![false; pool.len()];
        let mut churned = ProvenanceSystem::new(NODES);
        for (raw_idx, insert) in ops {
            let idx = raw_idx % pool.len();
            if insert {
                churned.apply_firing(&pool[idx]);
            } else {
                churned.apply_firing(&retraction_of(&pool[idx]));
            }
            surviving[idx] = insert;
        }

        let mut scratch = ProvenanceSystem::new(NODES);
        for (idx, f) in pool.iter().enumerate() {
            if surviving[idx] {
                scratch.apply_firing(f);
            }
        }

        let churned_graph = ProvGraph::from_system(&churned);
        let scratch_graph = ProvGraph::from_system(&scratch);
        prop_assert!(churned_graph.is_acyclic());
        prop_assert_eq!(graph_shape(&churned_graph), graph_shape(&scratch_graph));

        let cs = churned.stats();
        let ss = scratch.stats();
        prop_assert_eq!(cs.prov_entries, ss.prov_entries);
        prop_assert_eq!(cs.rule_execs, ss.rule_execs);
        prop_assert_eq!(cs.tuple_vertices, ss.tuple_vertices);
    }

    /// Store-level canonical equality: per-node stores compare equal to the
    /// scratch stores regardless of arena history, and their content digests
    /// agree (the digest hashes resolved strings, never intern ids).
    #[test]
    fn per_store_state_matches_scratch_rebuild(
        ops in proptest::collection::vec((0usize..64, any::<bool>()), 0..60),
    ) {
        let pool = firing_pool(3, 3);
        let mut surviving = vec![false; pool.len()];
        let mut churned = ProvenanceSystem::new(NODES);
        for (raw_idx, insert) in ops {
            let idx = raw_idx % pool.len();
            if insert {
                churned.apply_firing(&pool[idx]);
            } else {
                churned.apply_firing(&retraction_of(&pool[idx]));
            }
            surviving[idx] = insert;
        }
        let mut scratch = ProvenanceSystem::new(NODES);
        for (idx, f) in pool.iter().enumerate() {
            if surviving[idx] {
                scratch.apply_firing(f);
            }
        }
        for name in NODES {
            let a = churned.store(name).unwrap();
            let b = scratch.store(name).unwrap();
            // Stores register input-tuple contents as display metadata that
            // intentionally outlives retracted executions, so compare the
            // graph content (prov + ruleExec), not the display cache.
            prop_assert_eq!(a.content_digest(), b.content_digest());
        }
    }
}
