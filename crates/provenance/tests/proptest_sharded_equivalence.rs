//! Sharded maintenance is invisible to the provenance graph.
//!
//! The shard router partitions every round's firing stream by `head_home`,
//! maintains the home halves shard-parallel and exchanges cross-shard
//! `ruleExec` halves through per-destination maintenance batches. This suite
//! drives single-shard and sharded (S ∈ {2, 4}) systems with the *same*
//! random insert/retract churn — chunked into random round sizes, so the
//! two-phase pipeline sees realistic multi-firing rounds — and checks that
//! the resulting provenance graphs are isomorphic, the per-store content
//! digests identical, and the aggregate stats and cross-node maintenance
//! traffic bit-identical.
//!
//! Reuses the firing pool and graph projection of `tests/common`, the same
//! harness as the PR 2 churn-vs-scratch equivalence suite.

mod common;

use common::{firing_pool, graph_shape, retraction_of, NODES};
use nt_runtime::Firing;
use proptest::prelude::*;
use provenance::{ProvGraph, ProvenanceSystem};

/// Chunk `ops` into rounds at the given cut points and apply each round
/// through the round pipeline (partition, home phase, batch exchange, exec
/// phase). `shards == 1` exercises the sequential reference path.
fn apply_chunked(shards: usize, stream: &[Firing], round_size: usize) -> ProvenanceSystem {
    let mut system = ProvenanceSystem::with_shards(NODES, shards);
    for round in stream.chunks(round_size.max(1)) {
        system.apply_round(round);
    }
    system
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Random insert/retract churn yields a provenance graph isomorphic to
    /// the single-shard path for S ∈ {2, 4}, regardless of how the stream is
    /// chunked into rounds.
    #[test]
    fn sharded_churn_matches_single_shard(
        layers in 1usize..4,
        width in 1usize..6,
        ops in proptest::collection::vec((0usize..128, any::<bool>()), 0..120),
        round_size in 1usize..40,
    ) {
        let pool = firing_pool(layers, width);
        let stream: Vec<Firing> = ops
            .into_iter()
            .map(|(raw_idx, insert)| {
                let f = &pool[raw_idx % pool.len()];
                if insert { f.clone() } else { retraction_of(f) }
            })
            .collect();

        let single = apply_chunked(1, &stream, round_size);
        let single_graph = ProvGraph::from_system(&single);
        let single_stats = single.stats();

        for shards in [2usize, 4] {
            let sharded = apply_chunked(shards, &stream, round_size);
            // Graph isomorphism (up to the order-dependent display cache).
            let sharded_graph = ProvGraph::from_system(&sharded);
            prop_assert!(sharded_graph.is_acyclic());
            prop_assert_eq!(graph_shape(&sharded_graph), graph_shape(&single_graph));
            // Aggregate stats and the system digest are bit-identical.
            prop_assert_eq!(&sharded.stats(), &single_stats);
            prop_assert_eq!(sharded.content_digest(), single.content_digest());
            // Cross-node maintenance traffic is a placement metric,
            // independent of sharding.
            prop_assert_eq!(sharded.maintenance_traffic(), single.maintenance_traffic());
            // Per-store canonical content matches store by store.
            for name in NODES {
                prop_assert_eq!(
                    sharded.store(name).unwrap().content_digest(),
                    single.store(name).unwrap().content_digest()
                );
            }
        }
    }

    /// Round chunking itself is immaterial: one big round and per-firing
    /// rounds reach the same sharded state.
    #[test]
    fn round_boundaries_do_not_change_the_result(
        ops in proptest::collection::vec((0usize..64, any::<bool>()), 0..80),
    ) {
        let pool = firing_pool(3, 4);
        let stream: Vec<Firing> = ops
            .into_iter()
            .map(|(raw_idx, insert)| {
                let f = &pool[raw_idx % pool.len()];
                if insert { f.clone() } else { retraction_of(f) }
            })
            .collect();
        for shards in [2usize, 4] {
            let one_round = apply_chunked(shards, &stream, stream.len().max(1));
            let per_firing = apply_chunked(shards, &stream, 1);
            prop_assert_eq!(one_round.content_digest(), per_firing.content_digest());
            prop_assert_eq!(one_round.stats(), per_firing.stats());
        }
    }
}
