//! Shared harness of the provenance equivalence suites: a deterministic pool
//! of candidate firings over a small multi-node network, plus the
//! graph-shape projection the suites compare up to isomorphism.
//!
//! Used by `proptest_prov_equivalence.rs` (incremental churn vs scratch
//! rebuild) and `proptest_sharded_equivalence.rs` (sharded vs single-shard
//! maintenance).

use nt_runtime::{base_rule_sym, Firing, NodeId, Sym, Tuple, Value};
use provenance::ProvGraph;

/// The nodes of the harness network. Eight nodes so that shard counts 2 and
/// 4 both split them across several shards.
pub const NODES: [&str; 8] = ["n1", "n2", "n3", "n4", "n5", "n6", "n7", "n8"];

pub fn node(i: usize) -> NodeId {
    NodeId::new(NODES[i % NODES.len()])
}

pub fn tuple(layer: usize, i: usize) -> Tuple {
    Tuple::new(
        format!("rel{layer}"),
        vec![Value::addr(node(i)), Value::Int(i as i64)],
    )
}

/// A deterministic pool of candidate firings: `width` base tuples in layer 0,
/// and for each later layer one derived firing per position joining two
/// layer-below tuples, plus an alternative derivation every third position
/// (so some heads have multiple prov entries). Heads are homed one node over
/// from the executing node, so derived firings cross nodes (and shards).
pub fn firing_pool(layers: usize, width: usize) -> Vec<Firing> {
    let mut pool = Vec::new();
    for i in 0..width {
        pool.push(Firing {
            rule: base_rule_sym(),
            node: node(i),
            head: tuple(0, i),
            head_home: node(i),
            inputs: vec![],
            input_tuples: vec![],
            insert: true,
        });
    }
    for layer in 1..layers {
        for i in 0..width {
            let a = tuple(layer - 1, i);
            let b = tuple(layer - 1, (i + 1) % width);
            pool.push(Firing {
                rule: Sym::new(&format!("r{layer}")),
                node: node(i),
                head: tuple(layer, i),
                head_home: node(i + 1),
                inputs: vec![a.id(), b.id()],
                input_tuples: vec![a.clone(), b],
                insert: true,
            });
            if i % 3 == 0 {
                // Alternative derivation of the same head from one input.
                pool.push(Firing {
                    rule: Sym::new(&format!("alt{layer}")),
                    node: node(i + 1),
                    head: tuple(layer, i),
                    head_home: node(i + 1),
                    inputs: vec![a.id()],
                    input_tuples: vec![a],
                    insert: true,
                });
            }
        }
    }
    pool
}

pub fn retraction_of(f: &Firing) -> Firing {
    let mut r = f.clone();
    r.insert = false;
    // Engines ship retractions without input tuple contents.
    r.input_tuples.clear();
    r
}

/// The structure of a graph up to isomorphism on the display cache: vertex
/// ids with their home and base flag (and rule/node for executions), plus the
/// sorted edge list. Tuple *contents* are deliberately excluded — they are a
/// best-effort display cache whose population is order-dependent (a store
/// drops a tuple's content when its vertex dies, even if a neighbour
/// execution registered the same content earlier).
pub fn graph_shape(g: &ProvGraph) -> Vec<String> {
    let mut shape: Vec<String> = g
        .vertices
        .iter()
        .map(|(id, v)| match v {
            provenance::ProvVertex::Tuple { home, is_base, .. } => {
                format!("{id:?}@{home} base={is_base}")
            }
            provenance::ProvVertex::RuleExec { rule, node, .. } => {
                format!("{id:?}@{node} rule={rule}")
            }
        })
        .collect();
    shape.extend(g.edges.iter().map(|e| format!("{:?}->{:?}", e.from, e.to)));
    shape
}
