//! A small ProQL-style path query language over the provenance graph.
//!
//! The paper's "ongoing research" section mentions "exploring distributed
//! variants of graph-based provenance query languages such as ProQL for
//! formulating queries and transformations over network provenance data". This
//! module implements the extension feature: a minimal path-expression language
//! evaluated against a [`ProvGraph`].
//!
//! Grammar:
//!
//! ```text
//! query   := "from" pattern step*
//! pattern := relation [ "@" node ]            (e.g. `minCost@n1`, or `minCost`)
//! step    := "back" [number]                  follow derivations upstream N levels (default all)
//!          | "forward" [number]               follow dataflow downstream
//!          | "bases"                          keep only base tuples
//!          | "nodes"                          project to the set of locations
//!          | "count"                          count the current vertex set
//! ```
//!
//! Example: `from minCost@n1 back bases` — all base tuples that the
//! `minCost` tuples stored at `n1` depend on.

use crate::graph::{ProvGraph, ProvVertex, VertexId};
use nt_runtime::Addr;
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;

/// One step of a ProQL-style query.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum ProqlStep {
    /// Follow provenance upstream (toward inputs); `None` = to the sources.
    Back(Option<usize>),
    /// Follow dataflow downstream (toward outputs); `None` = to the sinks.
    Forward(Option<usize>),
    /// Keep only base-tuple vertices.
    Bases,
    /// Project to the set of node locations.
    Nodes,
    /// Count the current vertex set.
    Count,
}

/// A parsed query: a starting pattern plus steps.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ProqlQuery {
    /// Relation name the query starts from.
    pub relation: String,
    /// Optional node restriction.
    pub node: Option<Addr>,
    /// Steps to apply.
    pub steps: Vec<ProqlStep>,
}

/// Result of evaluating a query.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ProqlResult {
    /// A set of vertices (rendered through their labels).
    Vertices(Vec<String>),
    /// A set of node names.
    Nodes(BTreeSet<Addr>),
    /// A count.
    Count(usize),
}

/// Parse a query string. Returns a readable error message on failure.
pub fn parse_query(src: &str) -> Result<ProqlQuery, String> {
    let tokens: Vec<&str> = src.split_whitespace().collect();
    if tokens.len() < 2 || tokens[0] != "from" {
        return Err("query must start with `from <relation>[@node]`".to_string());
    }
    let (relation, node) = match tokens[1].split_once('@') {
        Some((rel, node)) => (rel.to_string(), Some(Addr::new(node))),
        None => (tokens[1].to_string(), None),
    };
    if relation.is_empty() {
        return Err("missing relation name after `from`".to_string());
    }
    let mut steps = Vec::new();
    let mut i = 2;
    while i < tokens.len() {
        match tokens[i] {
            "back" | "forward" => {
                let count = tokens.get(i + 1).and_then(|t| t.parse::<usize>().ok());
                if count.is_some() {
                    i += 1;
                }
                if tokens[i - usize::from(count.is_some())] == "back" {
                    steps.push(ProqlStep::Back(count));
                } else {
                    steps.push(ProqlStep::Forward(count));
                }
            }
            "bases" => steps.push(ProqlStep::Bases),
            "nodes" => steps.push(ProqlStep::Nodes),
            "count" => steps.push(ProqlStep::Count),
            other => return Err(format!("unknown query step `{other}`")),
        }
        i += 1;
    }
    Ok(ProqlQuery {
        relation,
        node,
        steps,
    })
}

/// Evaluate a query against an assembled provenance graph.
pub fn evaluate(graph: &ProvGraph, query: &ProqlQuery) -> ProqlResult {
    // Seed set: tuple vertices of the given relation (optionally restricted to
    // a node).
    let mut current: BTreeSet<VertexId> = graph
        .vertices
        .iter()
        .filter_map(|(id, v)| match v {
            ProvVertex::Tuple {
                tuple: Some(t),
                home,
                ..
            } if t.relation == query.relation && query.node.map(|n| n == *home).unwrap_or(true) => {
                Some(*id)
            }
            _ => None,
        })
        .collect();

    for step in &query.steps {
        match step {
            ProqlStep::Back(levels) => {
                current = walk(graph, &current, *levels, Direction::Back);
            }
            ProqlStep::Forward(levels) => {
                current = walk(graph, &current, *levels, Direction::Forward);
            }
            ProqlStep::Bases => {
                current.retain(|id| {
                    matches!(
                        graph.vertices.get(id),
                        Some(ProvVertex::Tuple { is_base: true, .. })
                    )
                });
            }
            ProqlStep::Nodes => {
                let nodes: BTreeSet<Addr> = current
                    .iter()
                    .filter_map(|id| graph.vertices.get(id))
                    .map(ProvVertex::location_id)
                    .collect();
                return ProqlResult::Nodes(nodes);
            }
            ProqlStep::Count => return ProqlResult::Count(current.len()),
        }
    }
    let mut labels: Vec<String> = current
        .iter()
        .filter_map(|id| graph.vertices.get(id))
        .map(ProvVertex::label)
        .collect();
    labels.sort();
    ProqlResult::Vertices(labels)
}

#[derive(Clone, Copy)]
enum Direction {
    Back,
    Forward,
}

/// Walk the graph from a seed set. Rule-execution vertices are traversed
/// transparently (they never appear in results), so one "level" moves from
/// tuples to tuples.
fn walk(
    graph: &ProvGraph,
    seed: &BTreeSet<VertexId>,
    levels: Option<usize>,
    direction: Direction,
) -> BTreeSet<VertexId> {
    let mut result: BTreeSet<VertexId> = seed.clone();
    let mut frontier: BTreeSet<VertexId> = seed.clone();
    let max = levels.unwrap_or(usize::MAX);
    let mut level = 0usize;
    while !frontier.is_empty() && level < max {
        let mut next: BTreeSet<VertexId> = BTreeSet::new();
        for v in &frontier {
            let neighbors = match direction {
                Direction::Back => graph.predecessors(*v),
                Direction::Forward => graph.successors(*v),
            };
            for n in neighbors {
                // Step through rule-execution vertices.
                match graph.vertices.get(&n) {
                    Some(ProvVertex::RuleExec { .. }) => {
                        let second = match direction {
                            Direction::Back => graph.predecessors(n),
                            Direction::Forward => graph.successors(n),
                        };
                        for t in second {
                            if result.insert(t) {
                                next.insert(t);
                            }
                        }
                    }
                    Some(_) if result.insert(n) => {
                        next.insert(n);
                    }
                    Some(_) | None => {}
                }
            }
        }
        frontier = next;
        level += 1;
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::system::ProvenanceSystem;
    use nt_runtime::{Firing, Tuple, Value, BASE_RULE};

    fn tuple(rel: &str, node: &str, x: i64) -> Tuple {
        Tuple::new(rel, vec![Value::addr(node), Value::Int(x)])
    }

    fn graph() -> ProvGraph {
        let mut sys = ProvenanceSystem::new(["n1", "n2"]);
        let link = tuple("link", "n1", 5);
        let cost = tuple("cost", "n1", 5);
        let min_cost = tuple("minCost", "n2", 5);
        for f in [
            Firing {
                rule: BASE_RULE.into(),
                node: "n1".into(),
                head: link.clone(),
                head_home: "n1".into(),
                inputs: vec![],
                input_tuples: vec![],
                insert: true,
            },
            Firing {
                rule: "r1".into(),
                node: "n1".into(),
                head: cost.clone(),
                head_home: "n1".into(),
                inputs: vec![link.id()],
                input_tuples: vec![link.clone()],
                insert: true,
            },
            Firing {
                rule: "r3".into(),
                node: "n1".into(),
                head: min_cost.clone(),
                head_home: "n2".into(),
                inputs: vec![cost.id()],
                input_tuples: vec![cost.clone()],
                insert: true,
            },
        ] {
            sys.apply_firing(&f);
        }
        ProvGraph::from_system(&sys)
    }

    #[test]
    fn parse_accepts_the_documented_grammar() {
        let q = parse_query("from minCost@n2 back bases").unwrap();
        assert_eq!(q.relation, "minCost");
        assert_eq!(q.node, Some(Addr::new("n2")));
        assert_eq!(q.steps, vec![ProqlStep::Back(None), ProqlStep::Bases]);

        let q = parse_query("from cost back 1 count").unwrap();
        assert_eq!(q.steps, vec![ProqlStep::Back(Some(1)), ProqlStep::Count]);

        assert!(parse_query("minCost back").is_err());
        assert!(parse_query("from minCost sideways").is_err());
    }

    #[test]
    fn back_to_bases_finds_contributing_links() {
        let g = graph();
        let q = parse_query("from minCost@n2 back bases").unwrap();
        match evaluate(&g, &q) {
            ProqlResult::Vertices(labels) => {
                assert_eq!(labels.len(), 1);
                assert!(labels[0].contains("link"));
            }
            other => panic!("unexpected result {other:?}"),
        }
    }

    #[test]
    fn forward_reaches_downstream_tuples() {
        let g = graph();
        let q = parse_query("from link forward count").unwrap();
        match evaluate(&g, &q) {
            // link, cost, minCost are all reachable going forward.
            ProqlResult::Count(n) => assert_eq!(n, 3),
            other => panic!("unexpected result {other:?}"),
        }
    }

    #[test]
    fn nodes_projection_reports_locations() {
        let g = graph();
        let q = parse_query("from minCost back nodes").unwrap();
        match evaluate(&g, &q) {
            ProqlResult::Nodes(nodes) => {
                assert!(nodes.contains(&Addr::new("n1")));
                assert!(nodes.contains(&Addr::new("n2")));
            }
            other => panic!("unexpected result {other:?}"),
        }
    }

    #[test]
    fn bounded_back_walks_one_level() {
        let g = graph();
        let q = parse_query("from minCost back 1 count").unwrap();
        match evaluate(&g, &q) {
            // minCost + cost (one tuple-level upstream).
            ProqlResult::Count(n) => assert_eq!(n, 2),
            other => panic!("unexpected result {other:?}"),
        }
    }
}
