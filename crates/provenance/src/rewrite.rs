//! The automatic provenance rule-rewriting algorithm.
//!
//! ExSPAN captures provenance *declaratively*: "an automatic rule rewriting
//! algorithm takes as input an NDlog program and outputs a modified program
//! that contains additional rules for capturing the program's provenance
//! information. These additional rules define network provenance in terms of
//! views over base and derived tuples" (NetTrails, Section 2.2).
//!
//! [`rewrite_for_provenance`] reproduces that rewrite at the NDlog level: for
//! every derivation rule `rN h(@L, ...) :- b1(@L, ...), ..., bk(@L, ...)` of a
//! (localized) program it appends
//!
//! ```text
//! rN_exec ruleExec(@L, RID, "rN", VIDLIST) :- b1(@L,...), ..., bk(@L,...),
//!         VID1 := f_sha1(...), ..., VIDLIST := ..., RID := f_sha1(...).
//! rN_prov prov(@HLoc, VID, RID, @L)        :- ruleExec(@L, RID, "rN", ...), ...
//! ```
//!
//! The rewritten program is what a pure NDlog deployment would execute. The
//! NetTrails runtime in this repository captures the same information through
//! the engine's firing stream (see [`crate::system`]), which is semantically
//! equivalent and avoids re-deriving identifiers inside the interpreter; the
//! rewrite is nevertheless provided (and tested for validity) because it *is*
//! the paper's algorithm and is used to report the instrumentation overhead in
//! rules (how many extra rules / relations provenance capture adds).

use ndlog::{
    Aggregate, AggregateFunc, BodyElem, Expr, Literal, Materialize, Predicate, Program, Rule,
    RuleKind, Term,
};

/// Name of the provenance relation (`prov(@Loc, VID, RID, RLoc)`).
pub const PROV_RELATION: &str = "prov";
/// Name of the rule-execution relation (`ruleExec(@RLoc, RID, Rule, VIDList)`).
pub const RULE_EXEC_RELATION: &str = "ruleExec";

/// Statistics about a provenance rewrite, used to report instrumentation
/// overhead.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RewriteStats {
    /// Rules in the input program.
    pub input_rules: usize,
    /// Rules in the rewritten program.
    pub output_rules: usize,
    /// Extra relations introduced (always 2: `prov` and `ruleExec`).
    pub extra_relations: usize,
}

/// Rewrite a (localized) program so that it additionally derives the `prov`
/// and `ruleExec` relations. Returns the rewritten program and overhead
/// statistics. `maybe` rules are copied through unchanged — their provenance
/// is attributed by the legacy proxy at run time.
pub fn rewrite_for_provenance(program: &Program) -> (Program, RewriteStats) {
    let mut out = program.clone();
    out.materializations.push(Materialize {
        relation: PROV_RELATION.to_string(),
        lifetime: None,
        max_size: None,
        keys: vec![1, 2, 3, 4],
    });
    out.materializations.push(Materialize {
        relation: RULE_EXEC_RELATION.to_string(),
        lifetime: None,
        max_size: None,
        keys: vec![1, 2],
    });

    let mut generated = Vec::new();
    for rule in &program.rules {
        if rule.kind == RuleKind::Maybe {
            continue;
        }
        if let Some(pair) = rewrite_rule(rule) {
            generated.extend(pair);
        }
    }
    let stats = RewriteStats {
        input_rules: program.rules.len(),
        output_rules: program.rules.len() + generated.len(),
        extra_relations: 2,
    };
    out.rules.extend(generated);
    (out, stats)
}

/// Generate the `ruleExec` and `prov` capture rules for one derivation rule.
fn rewrite_rule(rule: &Rule) -> Option<Vec<Rule>> {
    let exec_loc = rule
        .positive_atoms()
        .next()
        .and_then(|a| a.location_variable().map(str::to_string))
        .or_else(|| rule.head.location_variable().map(str::to_string))?;
    let head_loc = rule.head.location_variable().map(str::to_string)?;

    // VID expressions for every positive body atom: f_sha1 over a list of the
    // atom's attributes (a faithful, if verbose, NDlog rendering of the
    // content-addressed tuple identifier).
    let positive: Vec<&Predicate> = rule.positive_atoms().collect();
    let mut body: Vec<BodyElem> = rule.body.clone();
    let mut vid_vars = Vec::new();
    for (i, atom) in positive.iter().enumerate() {
        let vid_var = format!("Vid{}", i + 1);
        body.push(BodyElem::Assign {
            var: vid_var.clone(),
            expr: Expr::Call {
                func: "f_sha1".to_string(),
                args: vec![attr_list_expr(atom)],
            },
        });
        vid_vars.push(vid_var);
    }
    // VIDLIST := f_concat(...) chain.
    body.push(BodyElem::Assign {
        var: "VidList".to_string(),
        expr: vid_list_expr(&vid_vars),
    });
    // RID := f_sha1(VIDLIST) — the rule name and node are folded in by
    // including them in the hashed list.
    body.push(BodyElem::Assign {
        var: "Rid".to_string(),
        expr: Expr::Call {
            func: "f_sha1".to_string(),
            args: vec![Expr::Call {
                func: "f_concat".to_string(),
                args: vec![
                    Expr::Const(Literal::Str(rule.name.clone())),
                    Expr::Var("VidList".to_string()),
                ],
            }],
        },
    });

    // ruleExec(@ExecLoc, Rid, "ruleName", VidList)
    let exec_rule = Rule {
        name: format!("{}_exec", rule.name),
        head: Predicate::new(
            RULE_EXEC_RELATION,
            vec![
                Term::loc_var(&exec_loc),
                Term::var("Rid"),
                Term::Constant {
                    value: Literal::Str(rule.name.clone()),
                    location: false,
                },
                Term::var("VidList"),
            ],
        ),
        body: body.clone(),
        kind: RuleKind::Derive,
    };

    // prov(@HeadLoc, Vid, Rid, ExecLoc) — the head tuple's VID hashes the head
    // attributes; the head may contain an aggregate, in which case the VID is
    // computed over the group attributes (the aggregate value is filled by the
    // aggregate rule itself and the provenance of aggregates is attributed to
    // the witness tuples at run time).
    let mut prov_body = body;
    prov_body.push(BodyElem::Assign {
        var: "HeadVid".to_string(),
        expr: Expr::Call {
            func: "f_sha1".to_string(),
            args: vec![attr_list_expr_head(&rule.head)],
        },
    });
    let prov_rule = Rule {
        name: format!("{}_prov", rule.name),
        head: Predicate::new(
            PROV_RELATION,
            vec![
                Term::loc_var(&head_loc),
                Term::var("HeadVid"),
                Term::var("Rid"),
                Term::var(&exec_loc),
            ],
        ),
        body: prov_body,
        kind: RuleKind::Derive,
    };
    Some(vec![exec_rule, prov_rule])
}

/// `f_concat("rel", f_concat(A1, f_concat(A2, ...)))` over an atom's terms.
fn attr_list_expr(atom: &Predicate) -> Expr {
    let mut expr = Expr::Const(Literal::Str(atom.relation.clone()));
    for term in &atom.terms {
        let term_expr = match term {
            Term::Variable { name, .. } => Expr::Var(name.clone()),
            Term::Constant { value, .. } => Expr::Const(value.clone()),
            Term::Wildcard => Expr::Const(Literal::Str("_".to_string())),
            Term::Aggregate(Aggregate { var, .. }) => Expr::Var(var.clone()),
        };
        expr = Expr::Call {
            func: "f_concat".to_string(),
            args: vec![expr, term_expr],
        };
    }
    expr
}

/// Same as [`attr_list_expr`] but skips `count<*>` aggregates (whose variable
/// is not bound in the body).
fn attr_list_expr_head(head: &Predicate) -> Expr {
    let mut expr = Expr::Const(Literal::Str(head.relation.clone()));
    for term in &head.terms {
        let term_expr = match term {
            Term::Variable { name, .. } => Expr::Var(name.clone()),
            Term::Constant { value, .. } => Expr::Const(value.clone()),
            Term::Wildcard => Expr::Const(Literal::Str("_".to_string())),
            Term::Aggregate(Aggregate {
                func: AggregateFunc::Count,
                var,
            }) if var == "*" => Expr::Const(Literal::Str("count".to_string())),
            Term::Aggregate(Aggregate { var, .. }) => Expr::Var(var.clone()),
        };
        expr = Expr::Call {
            func: "f_concat".to_string(),
            args: vec![expr, term_expr],
        };
    }
    expr
}

fn vid_list_expr(vid_vars: &[String]) -> Expr {
    let mut iter = vid_vars.iter().rev();
    let mut expr = match iter.next() {
        Some(last) => Expr::Call {
            func: "f_initlist".to_string(),
            args: vec![Expr::Var(last.clone())],
        },
        None => Expr::Call {
            func: "f_initlist".to_string(),
            args: vec![Expr::Const(Literal::Int(0))],
        },
    };
    for v in iter {
        expr = Expr::Call {
            func: "f_prepend".to_string(),
            args: vec![Expr::Var(v.clone()), expr],
        };
    }
    expr
}

#[cfg(test)]
mod tests {
    use super::*;
    use ndlog::{parse_program, validate_program};

    const MINCOST: &str = "materialize(link, infinity, infinity, keys(1,2,3)).\n\
         r1 cost(@S,D,C) :- link(@S,D,C).\n\
         r2 cost(@S,D,C) :- link(@S,Z,C1), minCost(@Z,D,C2), C := C1 + C2.\n\
         r3 minCost(@S,D,min<C>) :- cost(@S,D,C).";

    #[test]
    fn rewrite_adds_two_rules_per_derivation_rule() {
        let program = parse_program(MINCOST).unwrap();
        let (rewritten, stats) = rewrite_for_provenance(&program);
        assert_eq!(stats.input_rules, 3);
        assert_eq!(stats.output_rules, 3 + 6);
        assert_eq!(rewritten.rules.len(), 9);
        assert!(rewritten.rule("r1_exec").is_some());
        assert!(rewritten.rule("r1_prov").is_some());
        assert!(rewritten.materialization(PROV_RELATION).is_some());
        assert!(rewritten.materialization(RULE_EXEC_RELATION).is_some());
    }

    #[test]
    fn rewritten_program_is_valid_ndlog() {
        let program = parse_program(MINCOST).unwrap();
        let (rewritten, _) = rewrite_for_provenance(&program);
        validate_program(&rewritten).expect("rewritten program validates");
        // And it survives a print/parse round trip.
        let reparsed = parse_program(&rewritten.to_string()).unwrap();
        assert_eq!(reparsed.rules.len(), rewritten.rules.len());
    }

    #[test]
    fn maybe_rules_are_not_instrumented() {
        let program = parse_program(
            "br1 outputRoute(@AS,R2) ?- inputRoute(@AS,R1), f_isExtend(R2,R1,AS) == 1.",
        )
        .unwrap();
        let (rewritten, stats) = rewrite_for_provenance(&program);
        assert_eq!(stats.output_rules, 1);
        assert_eq!(rewritten.rules.len(), 1);
    }

    #[test]
    fn prov_rule_targets_the_head_home_node() {
        let program = parse_program("r1 reach(@D,S) :- link(@S,D,C).").unwrap();
        let (rewritten, _) = rewrite_for_provenance(&program);
        let prov_rule = rewritten.rule("r1_prov").unwrap();
        // prov entries are stored where the head tuple lives (@D), while the
        // rule executes at S.
        assert_eq!(prov_rule.head.location_variable(), Some("D"));
        let exec_rule = rewritten.rule("r1_exec").unwrap();
        assert_eq!(exec_rule.head.location_variable(), Some("S"));
    }
}
