//! The distributed provenance maintenance engine: a shard router over
//! [`ProvenanceShard`]s.
//!
//! A [`ProvenanceSystem`] owns one [`ProvenanceStore`] per node and consumes
//! the rule-execution events ([`Firing`]) emitted by the per-node runtime
//! engines. For every derivation it:
//!
//! 1. stores a `ruleExec` record at the node where the rule executed, and
//! 2. stores (or ships, when the head lives elsewhere) a `prov` entry at the
//!    head tuple's home node.
//!
//! Retraction firings remove the corresponding entries, so the provenance
//! graph is maintained *incrementally* as network state changes — the property
//! the paper demonstrates with link failures and mobile networks.
//!
//! ## Sharded maintenance
//!
//! The stores are partitioned across `S` shards by a stable hash of the node
//! name ([`nt_runtime::shard_route`]); each shard keeps its stores in a dense
//! arena, so one firing is applied with two integer-keyed lookups and zero
//! string clones or comparisons. A round of firings
//! ([`ProvenanceSystem::apply_round`]) is partitioned by
//! [`Firing::home_shard`], cross-shard `ruleExec` halves are exchanged as
//! per-destination [`MaintBatch`]es with once-per-destination dictionary
//! headers (the same wire discipline as the engine's batched delta
//! shipping), and per-shard maintenance then runs in parallel — the
//! per-shard apply closures (over disjoint `&mut` shard slices) are
//! dispatched to the persistent worker pool ([`crate::pool`]), each
//! merge-applying its substream and incoming records in stream-sequence
//! order. See the
//! [`crate::shard`] module documentation for the determinism argument: the
//! resulting stores and [`SystemStats`] are bit-identical for every shard
//! count.
//!
//! The cross-node shipments of `prov` entries are the **maintenance traffic**
//! of provenance capture; the system records it in a
//! [`simnet::TrafficStats`] under the `"prov-maintenance"` category so the
//! overhead experiment (E4 in DESIGN.md) can report it next to the protocol's
//! own traffic. Cross-**shard** exchange is a separate, shard-count-dependent
//! metric reported by [`ProvenanceSystem::shard_stats`].

pub use crate::shard::MAINTENANCE_CATEGORY;

use crate::shard::{MaintBatch, MaintRecord, ProvenanceShard, ShardStats};
use crate::store::ProvenanceStore;
use nt_runtime::{shard_route, Addr, Firing, NodeId, Tuple, TupleId};
use serde::{Deserialize, Serialize};
use simnet::TrafficStats;
use std::collections::{BTreeSet, HashSet};
use std::sync::OnceLock;

/// Rounds at least this large run their apply phase on the persistent
/// worker pool; smaller rounds run the identical phase inline (same
/// routing, same batch exchange, same result — dispatching is purely an
/// execution detail).
const SPAWN_THRESHOLD: usize = 64;

/// True when this machine can actually run shard workers concurrently.
/// On a single-core host worker dispatch only adds scheduling overhead, so
/// the apply phase runs inline there — the exact same `apply_pass` code, so
/// the result is identical; only wall-clock differs.
fn workers_available() -> bool {
    static AVAILABLE: OnceLock<bool> = OnceLock::new();
    *AVAILABLE.get_or_init(|| {
        std::thread::available_parallelism()
            .map(|p| p.get() > 1)
            .unwrap_or(false)
    })
}

/// Aggregate statistics across every node's provenance store.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SystemStats {
    /// Total `prov` entries.
    pub prov_entries: usize,
    /// Total `ruleExec` entries.
    pub rule_execs: usize,
    /// Total tuple vertices.
    pub tuple_vertices: usize,
    /// Total one-time dictionary bytes across stores.
    pub dict_bytes: usize,
    /// Total approximate bytes of provenance state.
    pub bytes: usize,
    /// Firings processed (derivations).
    pub firings_applied: u64,
    /// Retractions processed.
    pub retractions_applied: u64,
}

/// The distributed provenance maintenance engine: per-node stores re-homed
/// into `S` hash-partitioned shards, with rounds maintained shard-parallel.
#[derive(Debug, Clone)]
pub struct ProvenanceSystem {
    shards: Vec<ProvenanceShard>,
    traffic: TrafficStats,
    firings_applied: u64,
    retractions_applied: u64,
    /// Per-destination-shard dictionary memory: interned strings already
    /// shipped, so later batches carry only first-use entries (the same
    /// lifecycle as the engine's per-destination delta dictionaries).
    dict_sent: Vec<HashSet<&'static str>>,
    shard_stats: ShardStats,
}

impl Default for ProvenanceSystem {
    fn default() -> Self {
        ProvenanceSystem::with_shard_count(1)
    }
}

impl ProvenanceSystem {
    /// Create a single-shard system with stores for the given nodes.
    pub fn new(nodes: impl IntoIterator<Item = impl Into<NodeId>>) -> Self {
        Self::with_shards(nodes, 1)
    }

    /// Create a system with stores for the given nodes, partitioned across
    /// `shards` worker shards (clamped to at least 1).
    pub fn with_shards(nodes: impl IntoIterator<Item = impl Into<NodeId>>, shards: usize) -> Self {
        let mut system = ProvenanceSystem::with_shard_count(shards);
        for n in nodes {
            system.store_mut(n.into());
        }
        system
    }

    fn with_shard_count(shards: usize) -> Self {
        let shards = shards.max(1);
        ProvenanceSystem {
            shards: (0..shards).map(ProvenanceShard::new).collect(),
            traffic: TrafficStats::default(),
            firings_applied: 0,
            retractions_applied: 0,
            dict_sent: (0..shards).map(|_| HashSet::new()).collect(),
            shard_stats: ShardStats {
                shards,
                ..ShardStats::default()
            },
        }
    }

    /// Number of shards the store arena is partitioned into.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// The shard a node's store is homed on (stable name hash — the single
    /// resolution path shared with [`Firing::home_shard`]).
    pub fn shard_of(&self, node: NodeId) -> usize {
        shard_route(node, self.shards.len())
    }

    /// Iterate over the shards (router order).
    pub fn shards(&self) -> impl Iterator<Item = &ProvenanceShard> {
        self.shards.iter()
    }

    /// Access a node's store (creating it lazily if unknown).
    pub fn store_mut(&mut self, node: impl Into<NodeId>) -> &mut ProvenanceStore {
        let node = node.into();
        let shard = self.shard_of(node);
        self.shards[shard].store_mut(node)
    }

    /// Access a node's store. This is the single interned accessor: any
    /// `Into<NodeId>` (a `NodeId`, `&str`, `String`, …) is interned once and
    /// routed through the same shard hash the maintenance path uses.
    pub fn store(&self, node: impl Into<NodeId>) -> Option<&ProvenanceStore> {
        let node = node.into();
        self.shards[self.shard_of(node)].store(node)
    }

    /// Iterate over all stores in node-name order (deterministic and
    /// independent of the shard count and of store creation history).
    pub fn stores(&self) -> impl Iterator<Item = &ProvenanceStore> {
        let mut all: Vec<&ProvenanceStore> = self
            .shards
            .iter()
            .flat_map(ProvenanceShard::stores)
            .collect();
        all.sort_by_key(|s| s.node);
        all.into_iter()
    }

    /// Node names with provenance state, in name order.
    pub fn nodes(&self) -> Vec<Addr> {
        self.stores().map(|s| s.node).collect()
    }

    /// Cross-node provenance maintenance traffic recorded so far. This is a
    /// node-placement metric: identical for every shard count.
    pub fn maintenance_traffic(&self) -> &TrafficStats {
        &self.traffic
    }

    /// Cross-shard exchange metrics (batches, records, bytes). The only
    /// numbers that vary with the shard count.
    pub fn shard_stats(&self) -> &ShardStats {
        &self.shard_stats
    }

    /// Apply one rule-execution event from a runtime engine.
    pub fn apply_firing(&mut self, firing: &Firing) {
        self.apply_refs(&[firing]);
    }

    /// Apply every firing in a batch (the usual pattern after an engine run).
    pub fn apply_firings<'a>(&mut self, firings: impl IntoIterator<Item = &'a Firing>) {
        let refs: Vec<&Firing> = firings.into_iter().collect();
        self.apply_refs(&refs);
    }

    /// Apply one round's firing stream through the sharded pipeline:
    /// partition by [`Firing::home_shard`], exchange cross-shard `ruleExec`
    /// halves as [`MaintBatch`]es, then run per-shard maintenance in
    /// parallel, each shard merge-applying its substream and incoming
    /// records in stream-sequence order. With a single shard this
    /// degenerates to the sequential path; the result is bit-identical
    /// either way.
    pub fn apply_round(&mut self, firings: &[Firing]) {
        let refs: Vec<&Firing> = firings.iter().collect();
        self.apply_refs(&refs);
    }

    fn apply_refs(&mut self, firings: &[&Firing]) {
        for f in firings {
            if f.insert {
                self.firings_applied += 1;
            } else {
                self.retractions_applied += 1;
            }
        }
        let n = self.shards.len();
        if n == 1 {
            // Single shard: every exec half is local; apply in stream order.
            let shard = &mut self.shards[0];
            for f in firings {
                shard.apply_home(f, true, &mut self.traffic);
            }
            return;
        }
        if firings.is_empty() {
            return;
        }
        self.shard_stats.phased_rounds += 1;
        // Route: partition the stream by home shard (sequence-tagged, so the
        // apply phase can reproduce the global order per shard; exec
        // locality precomputed so workers never re-hash) and collect the
        // cross-shard ruleExec halves into per-(src, dst) outboxes.
        let mut routed: Vec<Vec<(u32, bool, &Firing)>> = vec![Vec::new(); n];
        let mut outboxes: Vec<Vec<Vec<MaintRecord>>> = vec![vec![Vec::new(); n]; n];
        let base = nt_runtime::base_rule_sym();
        for (seq, f) in firings.iter().enumerate() {
            let seq = seq as u32;
            let home = f.home_shard(n);
            let mut exec_local = true;
            if f.rule != base {
                let exec = f.exec_shard(n);
                if exec != home {
                    exec_local = false;
                    outboxes[home][exec].push(MaintRecord::from_firing(seq, f));
                }
            }
            routed[home].push((seq, exec_local, f));
        }
        // Exchange: seal the outboxes into cross-shard batches — serial, in
        // (src, dst) order, so dictionary first-use accounting is
        // deterministic — and hand each destination its records in ascending
        // sequence order.
        let mut incoming: Vec<Vec<MaintRecord>> = vec![Vec::new(); n];
        for (src, outbox) in outboxes.into_iter().enumerate() {
            for (dst, records) in outbox.into_iter().enumerate() {
                if records.is_empty() {
                    continue;
                }
                let batch = self.seal_batch(src, dst, records);
                incoming[dst].extend(batch.records);
            }
        }
        for records in &mut incoming {
            records.sort_by_key(|r| r.seq);
        }
        // Apply: per-shard maintenance over disjoint `&mut` shard slices
        // (long-lived pool workers for large rounds), merging each shard's
        // substream with its incoming records by sequence number. Per-shard
        // traffic deltas are merged in shard order afterwards (commutative
        // sums, so the totals are identical to the sequential path).
        let threaded = firings.len() >= SPAWN_THRESHOLD && workers_available();
        let deltas: Vec<TrafficStats> = if threaded {
            self.shard_stats.parallel_rounds += 1;
            // Dispatch the per-shard apply closures to the persistent worker
            // pool: long-lived threads parked on a queue, so deep fixpoints
            // stop paying a spawn/join per round. run_borrowed blocks until
            // every task acknowledged, which is what makes handing the
            // disjoint `&mut` shard borrows to the pool sound.
            let tasks: Vec<Box<dyn FnOnce() -> TrafficStats + Send + '_>> = self
                .shards
                .iter_mut()
                .zip(routed.iter().zip(incoming.iter()))
                .map(|(shard, (stream, execs))| {
                    Box::new(move || apply_pass(shard, stream, execs))
                        as Box<dyn FnOnce() -> TrafficStats + Send + '_>
                })
                .collect();
            crate::pool::run_borrowed(tasks)
        } else {
            self.shards
                .iter_mut()
                .zip(routed.iter().zip(incoming.iter()))
                .map(|(shard, (stream, execs))| apply_pass(shard, stream, execs))
                .collect()
        };
        for delta in &deltas {
            self.traffic.merge(delta);
        }
    }

    /// Seal one outbox into a [`MaintBatch`], shipping only the dictionary
    /// entries the destination shard has not been sent before, and account
    /// the exchange.
    fn seal_batch(&mut self, src: usize, dst: usize, records: Vec<MaintRecord>) -> MaintBatch {
        let mut needed: BTreeSet<&'static str> = BTreeSet::new();
        for r in &records {
            r.dictionary(&mut needed);
        }
        let sent = &mut self.dict_sent[dst];
        let dict: Vec<String> = needed
            .into_iter()
            .filter(|s| sent.insert(s))
            .map(str::to_string)
            .collect();
        let batch = MaintBatch {
            src_shard: src,
            dst_shard: dst,
            dict,
            records,
        };
        self.shard_stats.cross_shard_batches += 1;
        self.shard_stats.cross_shard_records += batch.len() as u64;
        self.shard_stats.cross_shard_body_bytes += batch.body_bytes() as u64;
        self.shard_stats.cross_shard_dict_bytes += batch.header_bytes() as u64;
        batch
    }

    /// Find the content of a tuple vertex. Tuple identifiers are content
    /// digests, so every store that knows a VID knows the same content.
    pub fn tuple(&self, vid: TupleId) -> Option<&Tuple> {
        self.shards
            .iter()
            .flat_map(ProvenanceShard::stores)
            .find_map(|s| s.tuple(vid))
    }

    /// The home node of a tuple vertex: the node whose `prov` table has it.
    pub fn vertex_home(&self, vid: TupleId) -> Option<NodeId> {
        self.shards
            .iter()
            .flat_map(ProvenanceShard::stores)
            .find(|s| s.has_vertex(vid))
            .map(|s| s.node)
    }

    /// Aggregate statistics across all stores. Shard-count invariant.
    pub fn stats(&self) -> SystemStats {
        let mut stats = SystemStats {
            firings_applied: self.firings_applied,
            retractions_applied: self.retractions_applied,
            ..SystemStats::default()
        };
        for store in self.shards.iter().flat_map(ProvenanceShard::stores) {
            let s = store.stats();
            stats.prov_entries += s.prov_entries;
            stats.rule_execs += s.rule_execs;
            stats.tuple_vertices += s.tuple_vertices;
            stats.dict_bytes += s.dict_bytes;
            stats.bytes += s.bytes;
        }
        stats
    }

    /// A stable digest of the whole system's canonical content (stores in
    /// name order) — the quantity the sharding equivalence tests and the
    /// bench sweep compare across shard counts.
    pub fn content_digest(&self) -> u64 {
        let mut h = nt_runtime::StableHasher::new();
        for store in self.stores() {
            h.write_u64(store.content_digest());
        }
        h.finish()
    }
}

/// Apply phase of one shard: merge its routed substream (home halves, plus
/// local exec halves) with the [`MaintRecord`]s shipped to it, in ascending
/// stream-sequence order — exactly the schedule the sequential single-shard
/// engine would run for the stores this shard owns. Cross-node maintenance
/// traffic is recorded locally and merged by the router afterwards.
fn apply_pass(
    shard: &mut ProvenanceShard,
    stream: &[(u32, bool, &Firing)],
    execs: &[MaintRecord],
) -> TrafficStats {
    let mut traffic = TrafficStats::default();
    let mut next_exec = 0usize;
    for &(seq, exec_local, firing) in stream {
        while next_exec < execs.len() && execs[next_exec].seq < seq {
            shard.apply_exec(&execs[next_exec]);
            next_exec += 1;
        }
        shard.apply_home(firing, exec_local, &mut traffic);
    }
    for record in &execs[next_exec..] {
        shard.apply_exec(record);
    }
    traffic
}

impl PartialEq for ProvenanceSystem {
    fn eq(&self, other: &Self) -> bool {
        self.dump() == other.dump()
    }
}

/// Canonical serialized form of a system (stores in node-name order).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct SystemDump {
    shards: usize,
    stores: Vec<ProvenanceStore>,
    traffic: TrafficStats,
    firings_applied: u64,
    retractions_applied: u64,
    shard_stats: ShardStats,
}

impl ProvenanceSystem {
    fn dump(&self) -> SystemDump {
        SystemDump {
            shards: self.shards.len(),
            stores: self.stores().cloned().collect(),
            traffic: self.traffic.clone(),
            firings_applied: self.firings_applied,
            retractions_applied: self.retractions_applied,
            shard_stats: self.shard_stats.clone(),
        }
    }
}

impl Serialize for ProvenanceSystem {
    fn serialize<S: serde::Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        self.dump().serialize(serializer)
    }
}

impl Deserialize for ProvenanceSystem {
    fn deserialize<'de, D: serde::Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        let dump = SystemDump::deserialize(d)?;
        let mut system = ProvenanceSystem::with_shard_count(dump.shards);
        system.traffic = dump.traffic;
        system.firings_applied = dump.firings_applied;
        system.retractions_applied = dump.retractions_applied;
        system.shard_stats = dump.shard_stats;
        // Re-home every store through the same routing hash. The
        // per-destination dictionary memory deliberately starts cold: a
        // restored system re-ships first-use strings, exactly like the
        // engine's per-destination delta dictionaries after a snapshot load.
        for store in dump.stores {
            let shard = system.shard_of(store.node);
            system.shards[shard].insert_store(store);
        }
        Ok(system)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nt_runtime::{base_rule_sym, Sym, Value};

    fn tuple(rel: &str, node: &str, x: i64) -> Tuple {
        Tuple::new(rel, vec![Value::addr(node), Value::Int(x)])
    }

    fn base_firing(t: &Tuple, node: &str) -> Firing {
        Firing {
            rule: base_rule_sym(),
            node: node.into(),
            head: t.clone(),
            head_home: node.into(),
            inputs: vec![],
            input_tuples: vec![],
            insert: true,
        }
    }

    fn rule_firing(rule: &str, exec: &str, head: &Tuple, home: &str, inputs: &[Tuple]) -> Firing {
        Firing {
            rule: Sym::new(rule),
            node: exec.into(),
            head: head.clone(),
            head_home: home.into(),
            inputs: inputs.iter().map(Tuple::id).collect(),
            input_tuples: inputs.to_vec(),
            insert: true,
        }
    }

    #[test]
    fn base_and_derived_firings_build_the_graph() {
        let mut sys = ProvenanceSystem::new(["n1", "n2"]);
        let link = tuple("link", "n1", 5);
        let cost = tuple("cost", "n2", 5);
        sys.apply_firing(&base_firing(&link, "n1"));
        // Rule fires at n1 but the head lives at n2 -> prov entry shipped.
        sys.apply_firing(&rule_firing(
            "r1",
            "n1",
            &cost,
            "n2",
            std::slice::from_ref(&link),
        ));

        let n1 = sys.store("n1").unwrap();
        let n2 = sys.store("n2").unwrap();
        assert!(n1.has_vertex(link.id()));
        assert_eq!(n1.iter_rule_execs().count(), 1);
        assert!(n2.has_vertex(cost.id()));
        let entries = n2.prov_entries(cost.id());
        assert_eq!(entries.len(), 1);
        assert_eq!(entries[0].rloc, "n1");
        // Maintenance traffic was charged for the cross-node prov entry.
        assert_eq!(
            sys.maintenance_traffic()
                .category_messages(MAINTENANCE_CATEGORY),
            1
        );
        assert_eq!(sys.vertex_home(cost.id()), Some(NodeId::new("n2")));
        assert_eq!(sys.tuple(link.id()), Some(&link));
    }

    #[test]
    fn retractions_remove_entries() {
        let mut sys = ProvenanceSystem::new(["n1"]);
        let link = tuple("link", "n1", 5);
        let cost = tuple("cost", "n1", 5);
        sys.apply_firing(&base_firing(&link, "n1"));
        let f = rule_firing("r1", "n1", &cost, "n1", std::slice::from_ref(&link));
        sys.apply_firing(&f);
        assert_eq!(sys.stats().prov_entries, 2);
        assert_eq!(sys.stats().rule_execs, 1);

        let mut retraction = f.clone();
        retraction.insert = false;
        retraction.input_tuples.clear();
        sys.apply_firing(&retraction);
        assert_eq!(sys.stats().rule_execs, 0);
        assert!(!sys.store("n1").unwrap().has_vertex(cost.id()));

        let mut base_retract = base_firing(&link, "n1");
        base_retract.insert = false;
        sys.apply_firing(&base_retract);
        assert_eq!(sys.stats().prov_entries, 0);
        assert_eq!(sys.stats().retractions_applied, 2);
    }

    #[test]
    fn duplicate_firings_are_idempotent() {
        let mut sys = ProvenanceSystem::new(["n1"]);
        let link = tuple("link", "n1", 5);
        let cost = tuple("cost", "n1", 5);
        sys.apply_firing(&base_firing(&link, "n1"));
        let f = rule_firing("r1", "n1", &cost, "n1", std::slice::from_ref(&link));
        sys.apply_firing(&f);
        sys.apply_firing(&f);
        assert_eq!(sys.stats().prov_entries, 2);
        assert_eq!(sys.stats().rule_execs, 1);
    }

    #[test]
    fn alternative_derivations_accumulate_prov_entries() {
        let mut sys = ProvenanceSystem::new(["n1"]);
        let l1 = tuple("link", "n1", 1);
        let l2 = tuple("link", "n1", 2);
        let reach = Tuple::new("reach", vec![Value::addr("n1"), Value::addr("n9")]);
        sys.apply_firing(&base_firing(&l1, "n1"));
        sys.apply_firing(&base_firing(&l2, "n1"));
        sys.apply_firing(&rule_firing("r1", "n1", &reach, "n1", &[l1]));
        sys.apply_firing(&rule_firing("r1", "n1", &reach, "n1", &[l2]));
        assert_eq!(
            sys.store("n1").unwrap().prov_entries(reach.id()).len(),
            2,
            "two alternative derivations recorded"
        );
    }

    #[test]
    fn lazily_created_stores_are_addressable() {
        let mut sys = ProvenanceSystem::new(Vec::<String>::new());
        let link = tuple("link", "n7", 1);
        sys.apply_firing(&base_firing(&link, "n7"));
        assert!(sys.store("n7").unwrap().has_vertex(link.id()));
        assert_eq!(sys.nodes(), vec![NodeId::new("n7")]);
    }

    #[test]
    fn serde_round_trips_the_whole_system() {
        let mut sys = ProvenanceSystem::new(["n1", "n2"]);
        let link = tuple("link", "n1", 5);
        let cost = tuple("cost", "n2", 5);
        sys.apply_firing(&base_firing(&link, "n1"));
        sys.apply_firing(&rule_firing(
            "r1",
            "n1",
            &cost,
            "n2",
            std::slice::from_ref(&link),
        ));
        let content = serde::to_content(&sys).unwrap();
        let back: ProvenanceSystem = serde::from_content(content).unwrap();
        assert_eq!(sys, back);
        assert_eq!(sys.stats(), back.stats());
        assert_eq!(back.vertex_home(cost.id()), Some(NodeId::new("n2")));
    }

    #[test]
    fn sharded_system_round_trips_and_rehomes_stores() {
        let mut sys = ProvenanceSystem::with_shards(["n1", "n2", "n3", "n4"], 4);
        for (i, node) in ["n1", "n2", "n3", "n4"].iter().enumerate() {
            let link = tuple("link", node, i as i64);
            sys.apply_firing(&base_firing(&link, node));
        }
        let content = serde::to_content(&sys).unwrap();
        let back: ProvenanceSystem = serde::from_content(content).unwrap();
        assert_eq!(sys, back);
        assert_eq!(back.num_shards(), 4);
        // Every store sits on the shard its name hashes to.
        for shard in back.shards() {
            for store in shard.stores() {
                assert_eq!(back.shard_of(store.node), shard.index());
            }
        }
    }

    /// The same firing stream produces the same graph, stats and digest for
    /// every shard count — the core determinism guarantee of the router.
    #[test]
    fn shard_count_does_not_change_the_graph() {
        let nodes: Vec<String> = (0..12).map(|i| format!("m{i}")).collect();
        let mut stream = Vec::new();
        let mut links = Vec::new();
        for (i, node) in nodes.iter().enumerate() {
            let link = tuple("link", node, i as i64);
            stream.push(base_firing(&link, node));
            links.push(link);
        }
        for (i, link) in links.iter().enumerate() {
            // Rule fires at node i, head homed at node (i+5) % 12: most
            // firings cross both nodes and shards.
            let head = tuple("cost", &nodes[(i + 5) % nodes.len()], i as i64);
            stream.push(rule_firing(
                "r1",
                &nodes[i],
                &head,
                &nodes[(i + 5) % nodes.len()],
                std::slice::from_ref(link),
            ));
        }
        // Retract a third of the derived heads.
        for (i, link) in links.iter().enumerate().filter(|(i, _)| i % 3 == 0) {
            let head = tuple("cost", &nodes[(i + 5) % nodes.len()], i as i64);
            let mut r = rule_firing(
                "r1",
                &nodes[i],
                &head,
                &nodes[(i + 5) % nodes.len()],
                std::slice::from_ref(link),
            );
            r.insert = false;
            r.input_tuples.clear();
            stream.push(r);
        }

        let mut single = ProvenanceSystem::with_shards(nodes.iter(), 1);
        single.apply_round(&stream);
        for shards in [2usize, 4, 8] {
            let mut sharded = ProvenanceSystem::with_shards(nodes.iter(), shards);
            sharded.apply_round(&stream);
            assert_eq!(sharded.content_digest(), single.content_digest());
            assert_eq!(sharded.stats(), single.stats());
            assert_eq!(
                sharded.maintenance_traffic(),
                single.maintenance_traffic(),
                "cross-node maintenance traffic is placement, not sharding"
            );
            assert_eq!(sharded.nodes(), single.nodes());
        }
    }

    /// Large rounds dispatch their apply phase to the persistent worker
    /// pool: the workers are spawned once and reused, never re-spawned per
    /// round.
    #[test]
    fn parallel_rounds_reuse_the_persistent_worker_pool() {
        if !workers_available() {
            return; // single-core host: the apply phase runs inline
        }
        let nodes: Vec<String> = (0..16).map(|i| format!("p{i:02}")).collect();
        let mut stream = Vec::new();
        for i in 0..(2 * SPAWN_THRESHOLD) {
            let t = tuple("link", &nodes[i % nodes.len()], i as i64);
            stream.push(base_firing(&t, &nodes[i % nodes.len()]));
        }
        let mut sys = ProvenanceSystem::with_shards(nodes.iter(), 4);
        sys.apply_round(&stream);
        assert_eq!(sys.shard_stats().parallel_rounds, 1);
        let workers = crate::pool::workers();
        assert!(workers > 0, "pool engaged for a large round");
        let jobs = crate::pool::jobs_executed();
        sys.apply_round(&stream);
        assert_eq!(sys.shard_stats().parallel_rounds, 2);
        assert_eq!(
            crate::pool::workers(),
            workers,
            "workers are reused, not re-spawned"
        );
        assert!(
            crate::pool::jobs_executed() >= jobs + 4,
            "second round ran on the pool"
        );
    }

    /// Cross-shard exchange is batched: records are counted, dictionaries
    /// ship first-use-only, and a repeated round re-ships no dictionary.
    #[test]
    fn cross_shard_exchange_is_batched_with_first_use_dictionaries() {
        let nodes: Vec<String> = (0..8).map(|i| format!("x{i}")).collect();
        let mut stream = Vec::new();
        for (i, node) in nodes.iter().enumerate() {
            let link = tuple("link", node, i as i64);
            stream.push(base_firing(&link, node));
            let head = tuple("cost", &nodes[(i + 3) % nodes.len()], i as i64);
            stream.push(rule_firing(
                "r1",
                node,
                &head,
                &nodes[(i + 3) % nodes.len()],
                std::slice::from_ref(&link),
            ));
        }
        let mut sys = ProvenanceSystem::with_shards(nodes.iter(), 4);
        sys.apply_round(&stream);
        let first = sys.shard_stats().clone();
        assert_eq!(first.shards, 4);
        assert!(first.cross_shard_records > 0, "stream crosses shards");
        assert!(first.cross_shard_batches <= first.cross_shard_records);
        assert!(first.cross_shard_dict_bytes > 0, "first round ships dict");
        // Re-apply the same round: same records, but the per-destination
        // dictionaries are already warm.
        sys.apply_round(&stream);
        let second = sys.shard_stats().clone();
        assert_eq!(
            second.cross_shard_records,
            first.cross_shard_records * 2,
            "same exchange volume"
        );
        assert_eq!(
            second.cross_shard_dict_bytes, first.cross_shard_dict_bytes,
            "no dictionary re-shipping"
        );
    }
}
