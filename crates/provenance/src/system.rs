//! The distributed provenance maintenance engine.
//!
//! A [`ProvenanceSystem`] owns one [`ProvenanceStore`] per node and consumes
//! the rule-execution events ([`Firing`]) emitted by the per-node runtime
//! engines. For every derivation it:
//!
//! 1. stores a `ruleExec` record at the node where the rule executed, and
//! 2. stores (or ships, when the head lives elsewhere) a `prov` entry at the
//!    head tuple's home node.
//!
//! Retraction firings remove the corresponding entries, so the provenance
//! graph is maintained *incrementally* as network state changes — the property
//! the paper demonstrates with link failures and mobile networks.
//!
//! The stores live in a dense arena indexed by interned [`NodeId`]; one
//! firing is applied with two integer-keyed lookups and zero string clones or
//! comparisons — the `Addr = String` B-tree this replaces re-hashed the node
//! name on every hop.
//!
//! The cross-node shipments of `prov` entries are the **maintenance traffic**
//! of provenance capture; the system records it in a
//! [`simnet::TrafficStats`] under the `"prov-maintenance"` category so the
//! overhead experiment (E4 in DESIGN.md) can report it next to the protocol's
//! own traffic.

use crate::store::{ProvEntry, ProvStoreStats, ProvenanceStore, RuleExec, RuleExecId};
use nt_runtime::{Addr, Firing, NodeId, Tuple, TupleId};
use serde::{Deserialize, Serialize};
use simnet::TrafficStats;
use std::collections::HashMap;

/// Category name used for provenance-maintenance traffic.
pub const MAINTENANCE_CATEGORY: &str = "prov-maintenance";

/// Aggregate statistics across every node's provenance store.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SystemStats {
    /// Total `prov` entries.
    pub prov_entries: usize,
    /// Total `ruleExec` entries.
    pub rule_execs: usize,
    /// Total tuple vertices.
    pub tuple_vertices: usize,
    /// Total one-time dictionary bytes across stores.
    pub dict_bytes: usize,
    /// Total approximate bytes of provenance state.
    pub bytes: usize,
    /// Firings processed (derivations).
    pub firings_applied: u64,
    /// Retractions processed.
    pub retractions_applied: u64,
}

/// The distributed provenance maintenance engine (one store per node, in a
/// dense arena indexed by interned node id).
#[derive(Debug, Clone, Default)]
pub struct ProvenanceSystem {
    stores: Vec<ProvenanceStore>,
    by_node: HashMap<NodeId, u32>,
    traffic: TrafficStats,
    firings_applied: u64,
    retractions_applied: u64,
}

impl ProvenanceSystem {
    /// Create a system with stores for the given nodes.
    pub fn new(nodes: impl IntoIterator<Item = impl Into<NodeId>>) -> Self {
        let mut system = ProvenanceSystem::default();
        for n in nodes {
            system.slot(n.into());
        }
        system
    }

    /// The arena slot of a node's store, creating it if unknown.
    fn slot(&mut self, node: NodeId) -> usize {
        match self.by_node.get(&node) {
            Some(&slot) => slot as usize,
            None => {
                let slot = self.stores.len();
                self.stores.push(ProvenanceStore::new(node));
                self.by_node.insert(node, slot as u32);
                slot
            }
        }
    }

    /// Access a node's store (creating it lazily if unknown).
    pub fn store_mut(&mut self, node: impl Into<NodeId>) -> &mut ProvenanceStore {
        let slot = self.slot(node.into());
        &mut self.stores[slot]
    }

    /// Access a node's store by boundary name.
    pub fn store(&self, node: &str) -> Option<&ProvenanceStore> {
        self.store_id(NodeId::new(node))
    }

    /// Access a node's store by interned id (the hot-path lookup).
    pub fn store_id(&self, node: NodeId) -> Option<&ProvenanceStore> {
        self.by_node
            .get(&node)
            .map(|&slot| &self.stores[slot as usize])
    }

    /// Iterate over all stores (arena order: creation order, deterministic).
    pub fn stores(&self) -> impl Iterator<Item = &ProvenanceStore> {
        self.stores.iter()
    }

    /// Node names with provenance state, in name order.
    pub fn nodes(&self) -> Vec<Addr> {
        let mut nodes: Vec<Addr> = self.stores.iter().map(|s| s.node).collect();
        nodes.sort();
        nodes
    }

    /// Cross-node provenance maintenance traffic recorded so far.
    pub fn maintenance_traffic(&self) -> &TrafficStats {
        &self.traffic
    }

    /// Apply one rule-execution event from a runtime engine.
    pub fn apply_firing(&mut self, firing: &Firing) {
        if firing.insert {
            self.firings_applied += 1;
            self.apply_insert(firing);
        } else {
            self.retractions_applied += 1;
            self.apply_retract(firing);
        }
    }

    /// Apply every firing in a batch (the usual pattern after an engine run).
    pub fn apply_firings<'a>(&mut self, firings: impl IntoIterator<Item = &'a Firing>) {
        for f in firings {
            self.apply_firing(f);
        }
    }

    fn apply_insert(&mut self, firing: &Firing) {
        let vid = firing.head.id();
        if firing.rule == nt_runtime::base_rule_sym() {
            let store = self.store_mut(firing.head_home);
            store.register_tuple(&firing.head);
            store.add_prov(
                vid,
                ProvEntry {
                    rid: None,
                    rloc: firing.head_home,
                },
            );
            return;
        }
        let rid = RuleExecId::compute(firing.rule, firing.node, &firing.inputs);
        // ruleExec lives where the rule fired.
        {
            let store = self.store_mut(firing.node);
            store.add_rule_exec(RuleExec {
                rid,
                rule: firing.rule,
                node: firing.node,
                inputs: firing.inputs.clone(),
            });
            // The input tuples are local to the executing node
            // (post-localization), so remember their contents for display.
            for input in &firing.input_tuples {
                store.register_tuple(input);
            }
        }
        // prov entry lives at the head tuple's home.
        let entry = ProvEntry {
            rid: Some(rid),
            rloc: firing.node,
        };
        if firing.head_home != firing.node {
            self.traffic.record(
                &firing.node,
                &firing.head_home,
                MAINTENANCE_CATEGORY,
                entry.wire_size() + firing.head.wire_size(),
            );
        }
        let store = self.store_mut(firing.head_home);
        store.register_tuple(&firing.head);
        store.add_prov(vid, entry);
    }

    fn apply_retract(&mut self, firing: &Firing) {
        let vid = firing.head.id();
        if firing.rule == nt_runtime::base_rule_sym() {
            let home = firing.head_home;
            self.store_mut(home).remove_prov(
                vid,
                &ProvEntry {
                    rid: None,
                    rloc: home,
                },
            );
            return;
        }
        let rid = RuleExecId::compute(firing.rule, firing.node, &firing.inputs);
        self.store_mut(firing.node).remove_rule_exec(rid);
        let entry = ProvEntry {
            rid: Some(rid),
            rloc: firing.node,
        };
        if firing.head_home != firing.node {
            self.traffic.record(
                &firing.node,
                &firing.head_home,
                MAINTENANCE_CATEGORY,
                entry.wire_size(),
            );
        }
        self.store_mut(firing.head_home).remove_prov(vid, &entry);
    }

    /// Find the content of a tuple vertex, looking at its home node first and
    /// then anywhere (the executing node also knows input tuple contents).
    pub fn tuple(&self, vid: TupleId) -> Option<&Tuple> {
        self.stores.iter().find_map(|s| s.tuple(vid))
    }

    /// The home node of a tuple vertex: the node whose `prov` table has it.
    pub fn vertex_home(&self, vid: TupleId) -> Option<NodeId> {
        self.stores
            .iter()
            .find(|s| s.has_vertex(vid))
            .map(|s| s.node)
    }

    /// Aggregate statistics across all stores.
    pub fn stats(&self) -> SystemStats {
        let mut stats = SystemStats {
            firings_applied: self.firings_applied,
            retractions_applied: self.retractions_applied,
            ..SystemStats::default()
        };
        for store in &self.stores {
            let ProvStoreStats {
                prov_entries,
                rule_execs,
                tuple_vertices,
                dict_bytes,
                bytes,
            } = store.stats();
            stats.prov_entries += prov_entries;
            stats.rule_execs += rule_execs;
            stats.tuple_vertices += tuple_vertices;
            stats.dict_bytes += dict_bytes;
            stats.bytes += bytes;
        }
        stats
    }
}

impl PartialEq for ProvenanceSystem {
    fn eq(&self, other: &Self) -> bool {
        self.dump() == other.dump()
    }
}

/// Canonical serialized form of a system (stores in node-name order).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct SystemDump {
    stores: Vec<ProvenanceStore>,
    traffic: TrafficStats,
    firings_applied: u64,
    retractions_applied: u64,
}

impl ProvenanceSystem {
    fn dump(&self) -> SystemDump {
        let mut stores = self.stores.clone();
        stores.sort_by_key(|s| s.node);
        SystemDump {
            stores,
            traffic: self.traffic.clone(),
            firings_applied: self.firings_applied,
            retractions_applied: self.retractions_applied,
        }
    }
}

impl Serialize for ProvenanceSystem {
    fn serialize<S: serde::Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        self.dump().serialize(serializer)
    }
}

impl Deserialize for ProvenanceSystem {
    fn deserialize<'de, D: serde::Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        let dump = SystemDump::deserialize(d)?;
        let mut system = ProvenanceSystem {
            traffic: dump.traffic,
            firings_applied: dump.firings_applied,
            retractions_applied: dump.retractions_applied,
            ..ProvenanceSystem::default()
        };
        for store in dump.stores {
            let node = store.node;
            let slot = system.stores.len();
            system.stores.push(store);
            system.by_node.insert(node, slot as u32);
        }
        Ok(system)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nt_runtime::{base_rule_sym, Sym, Value};

    fn tuple(rel: &str, node: &str, x: i64) -> Tuple {
        Tuple::new(rel, vec![Value::addr(node), Value::Int(x)])
    }

    fn base_firing(t: &Tuple, node: &str) -> Firing {
        Firing {
            rule: base_rule_sym(),
            node: node.into(),
            head: t.clone(),
            head_home: node.into(),
            inputs: vec![],
            input_tuples: vec![],
            insert: true,
        }
    }

    fn rule_firing(rule: &str, exec: &str, head: &Tuple, home: &str, inputs: &[Tuple]) -> Firing {
        Firing {
            rule: Sym::new(rule),
            node: exec.into(),
            head: head.clone(),
            head_home: home.into(),
            inputs: inputs.iter().map(Tuple::id).collect(),
            input_tuples: inputs.to_vec(),
            insert: true,
        }
    }

    #[test]
    fn base_and_derived_firings_build_the_graph() {
        let mut sys = ProvenanceSystem::new(["n1", "n2"]);
        let link = tuple("link", "n1", 5);
        let cost = tuple("cost", "n2", 5);
        sys.apply_firing(&base_firing(&link, "n1"));
        // Rule fires at n1 but the head lives at n2 -> prov entry shipped.
        sys.apply_firing(&rule_firing(
            "r1",
            "n1",
            &cost,
            "n2",
            std::slice::from_ref(&link),
        ));

        let n1 = sys.store("n1").unwrap();
        let n2 = sys.store("n2").unwrap();
        assert!(n1.has_vertex(link.id()));
        assert_eq!(n1.iter_rule_execs().count(), 1);
        assert!(n2.has_vertex(cost.id()));
        let entries = n2.prov_entries(cost.id());
        assert_eq!(entries.len(), 1);
        assert_eq!(entries[0].rloc, "n1");
        // Maintenance traffic was charged for the cross-node prov entry.
        assert_eq!(
            sys.maintenance_traffic()
                .category_messages(MAINTENANCE_CATEGORY),
            1
        );
        assert_eq!(sys.vertex_home(cost.id()), Some(NodeId::new("n2")));
        assert_eq!(sys.tuple(link.id()), Some(&link));
    }

    #[test]
    fn retractions_remove_entries() {
        let mut sys = ProvenanceSystem::new(["n1"]);
        let link = tuple("link", "n1", 5);
        let cost = tuple("cost", "n1", 5);
        sys.apply_firing(&base_firing(&link, "n1"));
        let f = rule_firing("r1", "n1", &cost, "n1", std::slice::from_ref(&link));
        sys.apply_firing(&f);
        assert_eq!(sys.stats().prov_entries, 2);
        assert_eq!(sys.stats().rule_execs, 1);

        let mut retraction = f.clone();
        retraction.insert = false;
        retraction.input_tuples.clear();
        sys.apply_firing(&retraction);
        assert_eq!(sys.stats().rule_execs, 0);
        assert!(!sys.store("n1").unwrap().has_vertex(cost.id()));

        let mut base_retract = base_firing(&link, "n1");
        base_retract.insert = false;
        sys.apply_firing(&base_retract);
        assert_eq!(sys.stats().prov_entries, 0);
        assert_eq!(sys.stats().retractions_applied, 2);
    }

    #[test]
    fn duplicate_firings_are_idempotent() {
        let mut sys = ProvenanceSystem::new(["n1"]);
        let link = tuple("link", "n1", 5);
        let cost = tuple("cost", "n1", 5);
        sys.apply_firing(&base_firing(&link, "n1"));
        let f = rule_firing("r1", "n1", &cost, "n1", std::slice::from_ref(&link));
        sys.apply_firing(&f);
        sys.apply_firing(&f);
        assert_eq!(sys.stats().prov_entries, 2);
        assert_eq!(sys.stats().rule_execs, 1);
    }

    #[test]
    fn alternative_derivations_accumulate_prov_entries() {
        let mut sys = ProvenanceSystem::new(["n1"]);
        let l1 = tuple("link", "n1", 1);
        let l2 = tuple("link", "n1", 2);
        let reach = Tuple::new("reach", vec![Value::addr("n1"), Value::addr("n9")]);
        sys.apply_firing(&base_firing(&l1, "n1"));
        sys.apply_firing(&base_firing(&l2, "n1"));
        sys.apply_firing(&rule_firing("r1", "n1", &reach, "n1", &[l1]));
        sys.apply_firing(&rule_firing("r1", "n1", &reach, "n1", &[l2]));
        assert_eq!(
            sys.store("n1").unwrap().prov_entries(reach.id()).len(),
            2,
            "two alternative derivations recorded"
        );
    }

    #[test]
    fn lazily_created_stores_are_addressable() {
        let mut sys = ProvenanceSystem::new(Vec::<String>::new());
        let link = tuple("link", "n7", 1);
        sys.apply_firing(&base_firing(&link, "n7"));
        assert!(sys.store("n7").unwrap().has_vertex(link.id()));
        assert_eq!(sys.nodes(), vec![NodeId::new("n7")]);
    }

    #[test]
    fn serde_round_trips_the_whole_system() {
        let mut sys = ProvenanceSystem::new(["n1", "n2"]);
        let link = tuple("link", "n1", 5);
        let cost = tuple("cost", "n2", 5);
        sys.apply_firing(&base_firing(&link, "n1"));
        sys.apply_firing(&rule_firing(
            "r1",
            "n1",
            &cost,
            "n2",
            std::slice::from_ref(&link),
        ));
        let content = serde::to_content(&sys).unwrap();
        let back: ProvenanceSystem = serde::from_content(content).unwrap();
        assert_eq!(sys, back);
        assert_eq!(sys.stats(), back.stats());
        assert_eq!(back.vertex_home(cost.id()), Some(NodeId::new("n2")));
    }
}
