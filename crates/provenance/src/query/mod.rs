//! The distributed provenance query engine.
//!
//! Provenance queries are issued against a tuple (identified by its VID and
//! home node) and traverse the distributed graph: the `prov` entries at the
//! tuple's home point to `ruleExec` records at the nodes where rules fired,
//! which in turn point to the input tuples whose `prov` entries live at those
//! same nodes, and so on until base tuples are reached.
//!
//! The module is split along the protocol's layers:
//!
//! * [`api`] — the public query surface: [`QueryKind`], [`QueryOptions`],
//!   [`QuerySpec`] (the compiled form a session builder produces),
//!   [`QueryHandle`], and the result types ([`ProofTree`], [`QueryResult`],
//!   [`QueryStats`]).
//! * [`wire`] — the message-driven protocol: [`QueryOp`] records carried in
//!   per-destination [`QueryBatch`] frames behind first-use dictionary
//!   headers (the same wire discipline as delta and maintenance batches).
//! * [`executor`] — two interchangeable execution engines: the step-driven
//!   [`QueryExecutor`] that runs sessions as per-node frontier state machines
//!   over a real message layer ([`QueryMode::Distributed`]), and the legacy
//!   in-process recursive [`QueryEngine`] kept as the equivalence oracle and
//!   single-node path ([`QueryMode::Local`]).
//!
//! Both engines answer the query types the paper demonstrates:
//!
//! * [`QueryKind::Lineage`] — the full proof tree of a tuple,
//! * [`QueryKind::BaseTuples`] — the set of contributing base tuples,
//! * [`QueryKind::ParticipatingNodes`] — "the set of all nodes that have been
//!   involved in the derivation of a given tuple",
//! * [`QueryKind::DerivationCount`] — "the total number of alternative
//!   derivations".
//!
//! and implement the three optimizations of Section 2.2: **caching** of
//! previously queried sub-results (invalidated by store version, so
//! incremental deletes can never serve stale trees), **alternative
//! tree-traversal orders** (sequential depth-first vs. parallel
//! breadth-first), and **threshold-based pruning**. Under the distributed
//! executor, the traversal-order trade-off is *measured*, not modelled: DFS
//! keeps one request outstanding while BFS fans the whole frontier out
//! concurrently, and [`QueryStats::latency_ms`] is read off the simulated
//! network clock.
//!
//! Every cross-node frame is charged to the `"prov-query"` traffic category,
//! so the benchmarks can show — as the demonstration does — that the
//! optimizations "effectively reduce the network traffic".

pub mod api;
pub mod executor;
pub mod wire;

pub use api::{
    ProofTree, QueryHandle, QueryKind, QueryMode, QueryOptions, QueryResult, QuerySpec, QueryStats,
    RuleExecNode, TraversalOrder, QUERY_CATEGORY,
};
pub use executor::{QueryEngine, QueryExecutor};
pub use wire::{QueryBatch, QueryOp};
