//! Query execution engines: the step-driven distributed [`QueryExecutor`]
//! and the legacy in-process [`QueryEngine`].
//!
//! ## The distributed executor
//!
//! [`QueryExecutor`] runs each submitted [`QuerySpec`] as a session of
//! per-node **frontier state machines**. Expanding a tuple vertex is work
//! performed *at the node that stores its `prov` entries*; fetching a
//! derivation's `ruleExec` record (and the proof subtrees of its inputs,
//! which are local to the executing node) from another node is a real
//! [`QueryOp::ExpandExec`] request that must round-trip through the message
//! layer before the traversal continues. The executor itself never moves a
//! message: [`QueryExecutor::poll`] seals everything its frames staged since
//! the last flush into per-destination [`QueryBatch`] frames (first-use
//! dictionary headers, one frame per direction and destination), and the
//! driver — the platform's round loop — ships them through the simulated
//! network and hands deliveries back to [`QueryExecutor::deliver`].
//!
//! Traversal order is therefore an *execution schedule*, not a latency
//! formula: [`TraversalOrder::DepthFirst`] keeps exactly one request
//! outstanding per session, while [`TraversalOrder::BreadthFirst`] fans out
//! every frontier child concurrently (coalesced per destination), and the
//! session's [`QueryStats::latency_ms`] is measured off the simulated clock
//! between submission and the final frame.
//!
//! The state machines replay the legacy recursion *exactly* — same visit
//! counts, same pruning decisions, same cache-consultation points, same
//! resulting trees — which is what the distributed-vs-local equivalence
//! suite (`tests/proptest_query_equivalence.rs` at the workspace root)
//! verifies. Concurrent breadth-first expansions of the same `(vid, node)`
//! sub-query under caching are deferred onto the in-flight computation
//! instead of racing it, preserving the sequential engine's hit counts.
//!
//! ## The legacy engine
//!
//! [`QueryEngine`] is the original synchronous recursion over
//! [`ProvenanceSystem`]. It generates no wire traffic and *estimates* hop
//! latency from [`QueryEngine::hop_rtt_ms`]. It remains the
//! [`QueryMode::Local`] path: the equivalence oracle, and the natural
//! choice for single-process embeddings (the BGP harness, the log store).
//!
//! Both engines share one [`QueryCache`] design: entries are keyed
//! `(vid, node)` and stamped with the owning store's mutation version, so a
//! sub-result cached before an incremental delete can never be served after
//! it — the cache is consulted, found stale, evicted and recomputed.

use crate::query::api::{
    collect_nodes, project_result, ProofTree, QueryHandle, QueryKind, QueryMode, QueryOptions,
    QueryResult, QuerySpec, QueryStats, RuleExecNode, TraversalOrder, QUERY_CATEGORY,
};
use crate::query::wire::{QueryBatch, QueryOp};
use crate::store::{ProvEntry, RuleExecId};
use crate::system::ProvenanceSystem;
use nt_runtime::{NodeId, Tuple, TupleId};
use simnet::{SimTime, TrafficStats};
use std::collections::{BTreeSet, HashMap, HashSet, VecDeque};

// ---------------------------------------------------------------------------
// shared result cache
// ---------------------------------------------------------------------------

#[derive(Debug, Clone)]
struct CacheEntry {
    tree: ProofTree,
    /// Mutation version of every store the subtree was read from (its own
    /// home plus every descendant vertex's home and executing node), at the
    /// time it was computed. `None` records a store that did not exist.
    deps: Vec<(NodeId, Option<u64>)>,
}

/// Result cache shared in design by both engines: `(vid, node)` → lineage
/// subtree, validated on every lookup against the mutation versions of
/// **all** the stores the subtree was read from — not just the root's home,
/// since a descendant node's churn changes the tree without touching the
/// root's own store. Maintenance that touches any involved store
/// (incremental deletes included) bumps its version, so stale entries are
/// evicted instead of served.
#[derive(Debug, Default)]
pub struct QueryCache {
    map: HashMap<(TupleId, NodeId), CacheEntry>,
}

impl QueryCache {
    /// Look up a cached subtree, evicting it if any store it depends on has
    /// changed since it was computed.
    fn lookup(
        &mut self,
        system: &ProvenanceSystem,
        vid: TupleId,
        node: NodeId,
    ) -> Option<&ProofTree> {
        match self.map.entry((vid, node)) {
            std::collections::hash_map::Entry::Occupied(e) => {
                let fresh = e
                    .get()
                    .deps
                    .iter()
                    .all(|(dep, version)| system.store(*dep).map(|s| s.version()) == *version);
                if fresh {
                    Some(&e.into_mut().tree)
                } else {
                    e.remove();
                    None
                }
            }
            std::collections::hash_map::Entry::Vacant(_) => None,
        }
    }

    /// Cache a computed subtree, stamped with the current version of every
    /// store it was read from.
    fn insert(&mut self, system: &ProvenanceSystem, vid: TupleId, node: NodeId, tree: ProofTree) {
        // The dep set is derived from the finished tree (every vertex home
        // and executing node it was read from), so both engines stamp
        // identically by construction.
        let mut nodes: BTreeSet<NodeId> = BTreeSet::new();
        nodes.insert(node);
        collect_nodes(&tree, &mut nodes);
        let deps = nodes
            .into_iter()
            .map(|n| (n, system.store(n).map(|s| s.version())))
            .collect();
        self.map.insert((vid, node), CacheEntry { tree, deps });
    }

    /// Number of cached subtrees.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Drop every cached subtree.
    pub fn clear(&mut self) {
        self.map.clear();
    }
}

// ---------------------------------------------------------------------------
// the legacy in-process engine (QueryMode::Local)
// ---------------------------------------------------------------------------

/// The in-process provenance query engine: a synchronous recursion over the
/// distributed stores, with modelled (not measured) hop latency. This is the
/// [`QueryMode::Local`] execution path; see the module documentation.
#[derive(Debug)]
pub struct QueryEngine {
    cache: QueryCache,
    /// Cumulative traffic across queries.
    traffic: TrafficStats,
    /// Modelled round-trip time charged per cross-node hop, in milliseconds
    /// (the distributed executor *measures* this instead). Drivers that also
    /// run a network should set it to twice the network's per-link delay so
    /// the estimate matches what the wire would measure.
    pub hop_rtt_ms: f64,
}

impl Default for QueryEngine {
    fn default() -> Self {
        QueryEngine {
            cache: QueryCache::default(),
            traffic: TrafficStats::default(),
            hop_rtt_ms: 2.0,
        }
    }
}

impl QueryEngine {
    /// Create an engine with an empty cache and the default hop estimate.
    pub fn new() -> Self {
        QueryEngine::default()
    }

    /// Create an engine whose latency estimate charges `hop_rtt_ms` per
    /// cross-node hop.
    pub fn with_hop_rtt_ms(hop_rtt_ms: f64) -> Self {
        QueryEngine {
            hop_rtt_ms,
            ..QueryEngine::default()
        }
    }

    /// Cumulative query traffic (all queries so far).
    pub fn traffic(&self) -> &TrafficStats {
        &self.traffic
    }

    /// Clear the result cache.
    pub fn clear_cache(&mut self) {
        self.cache.clear();
    }

    /// Number of cached subtrees.
    pub fn cache_size(&self) -> usize {
        self.cache.len()
    }

    /// Run a query of `kind` for the tuple `target`, issued from `querier`.
    ///
    /// The tuple's home node is looked up in the provenance system; an
    /// unknown tuple yields an empty result.
    pub fn query(
        &mut self,
        system: &ProvenanceSystem,
        querier: &str,
        target: &Tuple,
        kind: QueryKind,
        options: &QueryOptions,
    ) -> (QueryResult, QueryStats) {
        self.query_vid(system, querier, target.id(), kind, options)
    }

    /// Run a query addressed directly by VID.
    pub fn query_vid(
        &mut self,
        system: &ProvenanceSystem,
        querier: &str,
        vid: TupleId,
        kind: QueryKind,
        options: &QueryOptions,
    ) -> (QueryResult, QueryStats) {
        let spec = QuerySpec {
            querier: NodeId::new(querier),
            vid,
            kind,
            mode: QueryMode::Local,
            options: options.clone(),
        };
        self.run(system, &spec)
    }

    /// Run a compiled [`QuerySpec`] synchronously.
    pub fn run(
        &mut self,
        system: &ProvenanceSystem,
        spec: &QuerySpec,
    ) -> (QueryResult, QueryStats) {
        let mut stats = QueryStats::default();
        let home = system.vertex_home(spec.vid).unwrap_or(spec.querier);
        // The querying node contacts the tuple's home node.
        if home != spec.querier {
            self.charge(&mut stats, spec.querier, home, 64);
        }
        let mut visited = HashSet::new();
        let tree = self.expand(
            system,
            home,
            spec.vid,
            0,
            &spec.options,
            &mut stats,
            &mut visited,
        );
        (project_result(spec.kind, tree), stats)
    }

    /// Expand the proof tree of `vid`, whose `prov` entries live at `node`.
    #[allow(clippy::too_many_arguments)]
    fn expand(
        &mut self,
        system: &ProvenanceSystem,
        node: NodeId,
        vid: TupleId,
        depth: usize,
        options: &QueryOptions,
        stats: &mut QueryStats,
        visited: &mut HashSet<TupleId>,
    ) -> ProofTree {
        stats.vertices_visited += 1;
        let tuple = system.tuple(vid).cloned();
        if options.use_cache {
            if let Some(cached) = self.cache.lookup(system, vid, node) {
                stats.cache_hits += 1;
                return cached.clone();
            }
        }
        let mut tree = ProofTree {
            vid,
            tuple,
            home: node,
            is_base: false,
            derivations: Vec::new(),
            pruned: false,
        };
        // Cycle guard (the provenance graph is acyclic by construction, but a
        // malformed store must not hang the query engine).
        if !visited.insert(vid) {
            return tree;
        }
        if let Some(max_depth) = options.max_depth {
            if depth >= max_depth {
                tree.pruned = true;
                visited.remove(&vid);
                return tree;
            }
        }
        let entries = system
            .store(node)
            .map(|s| s.prov_entries(vid))
            .unwrap_or_default();
        let mut expanded = 0usize;
        let mut frontier_hops: Vec<f64> = Vec::new();
        for entry in &entries {
            if entry.is_base() {
                tree.is_base = true;
                continue;
            }
            if let Some(limit) = options.max_derivations_per_vertex {
                if expanded >= limit {
                    tree.pruned = true;
                    break;
                }
            }
            expanded += 1;
            let rid = entry.rid.expect("non-base entry has rid");
            // Fetch the ruleExec record from the node where the rule fired.
            if entry.rloc != node {
                self.charge(stats, node, entry.rloc, 96);
                frontier_hops.push(self.hop_rtt_ms);
            }
            let Some(exec) = system.store(entry.rloc).and_then(|s| s.rule_exec(rid)) else {
                continue;
            };
            let mut exec_node = RuleExecNode {
                rid,
                rule: exec.rule,
                node: exec.node,
                inputs: Vec::new(),
            };
            // Inputs are local to the executing node: recurse there.
            for input in &exec.inputs {
                let subtree = self.expand(
                    system,
                    entry.rloc,
                    *input,
                    depth + 1,
                    options,
                    stats,
                    visited,
                );
                exec_node.inputs.push(subtree);
            }
            tree.derivations.push(exec_node);
        }
        visited.remove(&vid);
        if options.use_cache && !tree.pruned {
            self.cache.insert(system, vid, node, tree.clone());
        }
        // Latency model: depth-first pays every hop sequentially; breadth-first
        // overlaps the hops of sibling derivations.
        match options.traversal {
            TraversalOrder::DepthFirst => {
                stats.latency_ms += frontier_hops.iter().sum::<f64>();
            }
            TraversalOrder::BreadthFirst => {
                stats.latency_ms += frontier_hops.iter().cloned().fold(0.0, f64::max);
            }
        }
        tree
    }

    fn charge(&mut self, stats: &mut QueryStats, from: NodeId, to: NodeId, bytes: usize) {
        // Request + reply.
        stats.messages += 2;
        stats.records += 2;
        stats.bytes += (bytes + 64) as u64;
        self.traffic.record(&from, &to, QUERY_CATEGORY, bytes);
        self.traffic.record(&to, &from, QUERY_CATEGORY, 64);
    }
}

// ---------------------------------------------------------------------------
// the step-driven distributed executor (QueryMode::Distributed)
// ---------------------------------------------------------------------------

/// Where a completed frame's result goes.
#[derive(Debug, Clone, Copy)]
enum Parent {
    /// Session root; `remote` means the querier is a different node than the
    /// target's home, so the finished tree travels back as a
    /// [`QueryOp::VertexDone`] frame.
    Root { remote: bool },
    /// Input slot of an exec frame at the same node.
    Exec { frame: u32, slot: u32 },
}

/// Per-vertex expansion state (runs at `node`, the vertex's home).
#[derive(Debug)]
struct VertexFrame {
    node: NodeId,
    vid: TupleId,
    depth: usize,
    /// Ancestor vertices of the traversal (cycle guard; equals the legacy
    /// recursion's `visited` path).
    path: Vec<TupleId>,
    parent: Parent,
    tree: ProofTree,
    entries: Vec<ProvEntry>,
    next_entry: usize,
    expanded: usize,
    /// One slot per issued derivation, in entry order; compacted (dropping
    /// missing execs) into `tree.derivations` at completion.
    children: Vec<Option<RuleExecNode>>,
    outstanding: usize,
    /// Breadth-first: all children were issued at start.
    scanned: bool,
    /// This frame registered itself as the in-flight computation for
    /// `(vid, node)` (caching on).
    registered: bool,
    /// Completion was already scheduled; duplicate advance events (fan-out
    /// queues one per child completion) must not re-complete the frame.
    completed: bool,
}

/// Per-rule-execution expansion state (runs at `node`, where the rule
/// fired).
#[derive(Debug)]
struct ExecFrame {
    node: NodeId,
    rid: RuleExecId,
    /// Depth of the requesting vertex (inputs expand at `depth + 1`).
    depth: usize,
    /// Cycle-guard path for the input subtrees (requester's path plus the
    /// requesting vid).
    path: Vec<TupleId>,
    /// Awaiting vertex frame and its derivation slot.
    parent_frame: u32,
    parent_slot: u32,
    /// The awaiting vertex lives on another node: the finished subtree
    /// travels back as a [`QueryOp::ExecDone`] frame.
    remote: bool,
    header: Option<RuleExecNode>,
    input_vids: Vec<TupleId>,
    inputs: Vec<Option<ProofTree>>,
    next_input: usize,
    outstanding: usize,
    scanned: bool,
    /// Completion was already scheduled (see [`VertexFrame::completed`]).
    completed: bool,
}

#[derive(Debug)]
enum Frame {
    Vertex(VertexFrame),
    Exec(ExecFrame),
    /// Retired after completion.
    Done,
}

/// Session-local scheduling events, drained in FIFO order. The flat event
/// loop (instead of recursion) keeps stack depth constant regardless of
/// proof size and makes the processing order deterministic.
#[derive(Debug)]
enum Event {
    StartVertex(u32),
    StartExec(u32),
    AdvanceVertex(u32),
    AdvanceExec(u32),
    VertexDone {
        frame: u32,
        tree: ProofTree,
        /// False for cycle-guard and cache-served completions, which the
        /// legacy engine never inserts into the cache.
        cacheable: bool,
    },
    ExecDone {
        frame: u32,
        exec: Option<RuleExecNode>,
    },
}

/// Move a frame's tree out, leaving a cheap placeholder behind (the frame
/// retires right after, so nothing reads it again).
fn take_tree(slot: &mut ProofTree) -> ProofTree {
    std::mem::replace(
        slot,
        ProofTree {
            vid: TupleId(0),
            tuple: None,
            home: NodeId::default(),
            is_base: false,
            derivations: Vec::new(),
            pruned: false,
        },
    )
}

/// A record staged for shipment, waiting for the next [`QueryExecutor::poll`]
/// flush to seal it into a per-destination frame.
#[derive(Debug)]
struct StagedOp {
    qid: u64,
    from: NodeId,
    to: NodeId,
    op: QueryOp,
}

/// Shared context threaded through session event handlers.
struct Ctx<'a> {
    system: &'a ProvenanceSystem,
    cache: &'a mut QueryCache,
    staged: &'a mut Vec<StagedOp>,
}

#[derive(Debug)]
struct Session {
    qid: u64,
    spec: QuerySpec,
    started_at: SimTime,
    frames: Vec<Frame>,
    queue: VecDeque<Event>,
    stats: QueryStats,
    /// Completed root-level derivations, streamed as they finish (drained by
    /// [`QueryExecutor::take_partials`]).
    partials: Vec<RuleExecNode>,
    /// Caching on: `(vid, node)` sub-queries currently being computed, so
    /// concurrent breadth-first duplicates defer instead of racing.
    in_flight: HashMap<(TupleId, NodeId), u32>,
    /// Frames deferred onto an in-flight computation, woken at completion.
    waiters: HashMap<u32, Vec<u32>>,
    /// Set when the root tree is complete; the executor finalizes it.
    root_result: Option<ProofTree>,
}

/// A finished (or cancelled) session, retained until the caller redeems its
/// handle.
#[derive(Debug)]
struct Finished {
    /// `None` for cancelled sessions.
    result: Option<QueryResult>,
    stats: QueryStats,
    partials: Vec<RuleExecNode>,
}

/// The step-driven distributed query executor. See the module documentation.
#[derive(Debug, Default)]
pub struct QueryExecutor {
    next_qid: u64,
    sessions: HashMap<u64, Session>,
    finished: HashMap<u64, Finished>,
    cache: QueryCache,
    /// Per-destination dictionary memory: interned strings already shipped,
    /// so later frames carry only first-use entries.
    dict_sent: HashMap<NodeId, HashSet<&'static str>>,
    staged: Vec<StagedOp>,
    /// Merge concurrent sessions' records into one frame per (endpoints,
    /// direction) at [`QueryExecutor::poll`] time (see
    /// [`QueryExecutor::set_frame_merging`]). Off by default: one frame per
    /// session, the PR 5 baseline.
    merge_frames: bool,
    /// Cumulative traffic across sessions.
    traffic: TrafficStats,
}

impl QueryExecutor {
    /// Create an executor with an empty cache and no sessions.
    pub fn new() -> Self {
        QueryExecutor::default()
    }

    /// Cumulative query traffic (all sessions so far).
    pub fn traffic(&self) -> &TrafficStats {
        &self.traffic
    }

    /// Number of cached subtrees.
    pub fn cache_size(&self) -> usize {
        self.cache.len()
    }

    /// Clear the result cache.
    pub fn clear_cache(&mut self) {
        self.cache.clear();
    }

    /// Forget which strings each destination has been sent, so the next
    /// frame toward a node re-ships its dictionary entries. Benchmark
    /// drivers reset this between configurations to keep byte comparisons
    /// fair (a warm dictionary would otherwise credit the second
    /// configuration with savings it did not earn).
    pub fn reset_dictionaries(&mut self) {
        self.dict_sent.clear();
    }

    /// Enable (or disable) cross-session frame merging: when on, one
    /// [`QueryExecutor::poll`] seals all concurrent sessions' records for a
    /// destination into a single frame per direction instead of one frame
    /// per session, sharing the destination's first-use dictionary charge.
    /// Per-destination delivery order is unchanged — within a merged frame
    /// records stay grouped by session in the order the per-session frames
    /// would have been sealed — so results, visit counts and cache hits are
    /// bit-identical to per-session sealing; only the frame count drops.
    pub fn set_frame_merging(&mut self, on: bool) {
        self.merge_frames = on;
    }

    /// True when [`QueryExecutor::poll`] merges concurrent sessions' records
    /// into shared per-destination frames.
    pub fn frame_merging(&self) -> bool {
        self.merge_frames
    }

    /// Number of sessions still executing.
    pub fn active_sessions(&self) -> usize {
        self.sessions.len()
    }

    /// True when no session is executing and nothing is staged for
    /// shipment.
    pub fn idle(&self) -> bool {
        self.sessions.is_empty() && self.staged.is_empty()
    }

    /// True when there are records staged for the next flush.
    pub fn has_staged(&self) -> bool {
        !self.staged.is_empty()
    }

    /// Submit a query session. Local work (everything reachable without
    /// crossing a node boundary) runs immediately; anything else is staged
    /// as wire records for the next [`QueryExecutor::poll`]. A query that
    /// never needs the wire is already done when this returns.
    pub fn submit(
        &mut self,
        system: &ProvenanceSystem,
        spec: QuerySpec,
        now: SimTime,
    ) -> QueryHandle {
        self.next_qid += 1;
        let qid = self.next_qid;
        let home = system.vertex_home(spec.vid).unwrap_or(spec.querier);
        let remote = home != spec.querier;
        let mut session = Session {
            qid,
            spec,
            started_at: now,
            frames: Vec::new(),
            queue: VecDeque::new(),
            stats: QueryStats::default(),
            partials: Vec::new(),
            in_flight: HashMap::new(),
            waiters: HashMap::new(),
            root_result: None,
        };
        session.frames.push(Frame::Vertex(VertexFrame {
            node: home,
            vid: session.spec.vid,
            depth: 0,
            path: Vec::new(),
            parent: Parent::Root { remote },
            tree: ProofTree {
                vid: session.spec.vid,
                tuple: None,
                home,
                is_base: false,
                derivations: Vec::new(),
                pruned: false,
            },
            entries: Vec::new(),
            next_entry: 0,
            expanded: 0,
            children: Vec::new(),
            outstanding: 0,
            scanned: false,
            registered: false,
            completed: false,
        }));
        if remote {
            // The querying node contacts the tuple's home node.
            self.staged.push(StagedOp {
                qid,
                from: session.spec.querier,
                to: home,
                op: QueryOp::ExpandVertex {
                    qid,
                    frame: 0,
                    vid: session.spec.vid,
                    depth: 0,
                    path: Vec::new(),
                },
            });
            self.sessions.insert(qid, session);
        } else {
            session.queue.push_back(Event::StartVertex(0));
            self.sessions.insert(qid, session);
            self.run_session(qid, system, now);
        }
        QueryHandle(qid)
    }

    /// Seal every staged record into per-destination [`QueryBatch`] frames
    /// with first-use dictionary headers and return them for shipment.
    ///
    /// By default each frame carries one session's records (one frame per
    /// session, direction and destination — the PR 5 baseline). With
    /// [`QueryExecutor::set_frame_merging`] on, concurrent sessions' records
    /// for the same (endpoints, direction) seal into a single shared frame.
    /// Either way the records stay grouped by session, in the first-staged
    /// order the per-session frames would have been sealed and delivered in,
    /// so merging never reorders per-destination processing.
    ///
    /// Accounting happens here, per contributing session: one message, its
    /// own record bodies, and the dictionary entries its records are first
    /// to reference toward that destination. For single-session frames this
    /// degenerates to charging the whole frame to its session.
    pub fn poll(&mut self) -> Vec<QueryBatch> {
        if self.staged.is_empty() {
            return Vec::new();
        }
        let staged = std::mem::take(&mut self.staged);
        // Group by (session, endpoints, direction) in first-appearance order
        // so frame sealing — and therefore dictionary first-use accounting —
        // is deterministic.
        type SessionKey = (u64, NodeId, NodeId, bool);
        let mut order: Vec<SessionKey> = Vec::new();
        let mut groups: HashMap<SessionKey, Vec<QueryOp>> = HashMap::new();
        for s in staged {
            let key = (s.qid, s.from, s.to, s.op.is_request());
            let group = groups.entry(key).or_default();
            if group.is_empty() {
                order.push(key);
            }
            group.push(s.op);
        }
        // Fold session groups into frames: merged mode coalesces every
        // session group sharing (endpoints, direction) into the frame keyed
        // by the first of them; per-session mode keeps one group per frame.
        let frames: Vec<Vec<SessionKey>> = if self.merge_frames {
            let mut frame_order: Vec<(NodeId, NodeId, bool)> = Vec::new();
            let mut folded: HashMap<(NodeId, NodeId, bool), Vec<SessionKey>> = HashMap::new();
            for key in order {
                let fkey = (key.1, key.2, key.3);
                let members = folded.entry(fkey).or_default();
                if members.is_empty() {
                    frame_order.push(fkey);
                }
                members.push(key);
            }
            frame_order
                .into_iter()
                .map(|fkey| folded.remove(&fkey).expect("frame exists"))
                .collect()
        } else {
            order.into_iter().map(|key| vec![key]).collect()
        };
        let mut batches = Vec::new();
        for members in frames {
            let (_, from, to, _) = members[0];
            let sent = self.dict_sent.entry(to).or_default();
            let mut dict: Vec<String> = Vec::new();
            let mut ops: Vec<QueryOp> = Vec::new();
            for key in members {
                let qid = key.0;
                let group = groups.remove(&key).expect("group exists");
                let mut needed: BTreeSet<&'static str> = BTreeSet::new();
                for op in &group {
                    op.dictionary(&mut needed);
                }
                // The session pays for exactly the entries its records are
                // first to ship toward this destination.
                let header: usize = needed
                    .into_iter()
                    .filter(|s| sent.insert(s))
                    .map(|s| {
                        dict.push(s.to_string());
                        nt_runtime::dict_entry_wire_size(s)
                    })
                    .sum();
                let body: usize = group.iter().map(QueryOp::wire_size).sum();
                let stats = match self.sessions.get_mut(&qid) {
                    Some(session) => Some(&mut session.stats),
                    None => self.finished.get_mut(&qid).map(|f| &mut f.stats),
                };
                // A vanished session (cancelled and redeemed): its records
                // still fly and are charged to cumulative traffic only.
                if let Some(stats) = stats {
                    stats.messages += 1;
                    stats.records += group.len() as u64;
                    stats.bytes += (body + header) as u64;
                    stats.dict_bytes += header as u64;
                }
                ops.extend(group);
            }
            // Keep the wire contract: dictionary entries travel sorted.
            dict.sort();
            let batch = QueryBatch {
                from,
                to,
                dict,
                ops,
            };
            self.traffic
                .record_batch(&from, &to, QUERY_CATEGORY, batch.wire_size(), batch.len());
            batches.push(batch);
        }
        batches
    }

    /// Hand a delivered frame to its session. Records of unknown sessions
    /// (cancelled or already finished) are dropped — that is precisely what
    /// cancellation buys: the subtree they would have continued stops
    /// generating traffic.
    pub fn deliver(&mut self, system: &ProvenanceSystem, batch: QueryBatch, now: SimTime) {
        for op in batch.ops {
            let qid = op.qid();
            let Some(session) = self.sessions.get_mut(&qid) else {
                continue;
            };
            match op {
                QueryOp::ExpandVertex { frame, .. } => {
                    session.queue.push_back(Event::StartVertex(frame));
                }
                QueryOp::ExpandExec { frame, .. } => {
                    session.queue.push_back(Event::StartExec(frame));
                }
                QueryOp::VertexDone { frame, tree, .. } => {
                    debug_assert_eq!(frame, 0, "only the root vertex crosses the wire");
                    session.root_result = Some(tree);
                }
                QueryOp::ExecDone { frame, exec, .. } => {
                    session.queue.push_back(Event::ExecDone { frame, exec });
                }
                QueryOp::Cancel { .. } => {
                    // State lives centrally; a cancel frame's job is done the
                    // moment it is accounted.
                }
            }
            self.run_session(qid, system, now);
        }
    }

    /// Adopt an externally computed result (the platform's
    /// `QueryMode::Local` path runs the legacy engine synchronously and
    /// files the answer here), so every mode redeems through one handle
    /// surface.
    pub fn adopt_result(&mut self, result: QueryResult, stats: QueryStats) -> QueryHandle {
        self.next_qid += 1;
        let qid = self.next_qid;
        self.finished.insert(
            qid,
            Finished {
                result: Some(result),
                stats,
                partials: Vec::new(),
            },
        );
        QueryHandle(qid)
    }

    /// True when the session has produced its final result (or was
    /// cancelled).
    pub fn is_done(&self, handle: QueryHandle) -> bool {
        self.finished.contains_key(&handle.0)
    }

    /// Redeem a finished session: `(result, stats)`, where the result is
    /// `None` for cancelled sessions. Returns `None` while the session is
    /// still executing (or for unknown handles).
    pub fn take_result(
        &mut self,
        handle: QueryHandle,
    ) -> Option<(Option<QueryResult>, QueryStats)> {
        let finished = self.finished.remove(&handle.0)?;
        Some((finished.result, finished.stats))
    }

    /// Drain the completed root-level derivations streamed so far (partial
    /// results). Works both while the session is executing and after it
    /// finished or was cancelled.
    pub fn take_partials(&mut self, handle: QueryHandle) -> Vec<RuleExecNode> {
        if let Some(session) = self.sessions.get_mut(&handle.0) {
            return std::mem::take(&mut session.partials);
        }
        if let Some(finished) = self.finished.get_mut(&handle.0) {
            return std::mem::take(&mut finished.partials);
        }
        Vec::new()
    }

    /// Snapshot of a running (or finished) session's stats so far.
    pub fn stats_so_far(&self, handle: QueryHandle) -> Option<QueryStats> {
        if let Some(session) = self.sessions.get(&handle.0) {
            return Some(session.stats.clone());
        }
        self.finished.get(&handle.0).map(|f| f.stats.clone())
    }

    /// Cancel a session: its state machines stop, in-flight responses will
    /// be dropped on delivery, and one [`QueryOp::Cancel`] frame per remote
    /// node with abandoned work is staged so the pruning itself is charged
    /// to the wire. Partial results remain redeemable.
    pub fn cancel(&mut self, handle: QueryHandle, now: SimTime) {
        let qid = handle.0;
        let Some(session) = self.sessions.remove(&qid) else {
            return;
        };
        // One cancel frame per distinct remote node with live frames.
        let mut nodes: BTreeSet<NodeId> = BTreeSet::new();
        for frame in &session.frames {
            match frame {
                Frame::Vertex(v) => {
                    nodes.insert(v.node);
                }
                Frame::Exec(e) => {
                    nodes.insert(e.node);
                }
                Frame::Done => {}
            }
        }
        for node in nodes {
            if node != session.spec.querier {
                self.staged.push(StagedOp {
                    qid,
                    from: session.spec.querier,
                    to: node,
                    op: QueryOp::Cancel { qid },
                });
            }
        }
        let mut stats = session.stats;
        stats.latency_ms = (now - session.started_at).as_micros() as f64 / 1000.0;
        self.finished.insert(
            qid,
            Finished {
                result: None,
                stats,
                partials: session.partials,
            },
        );
    }

    /// Drain a session's event queue, then finalize it if its root tree
    /// completed.
    fn run_session(&mut self, qid: u64, system: &ProvenanceSystem, now: SimTime) {
        let Some(session) = self.sessions.get_mut(&qid) else {
            return;
        };
        let mut ctx = Ctx {
            system,
            cache: &mut self.cache,
            staged: &mut self.staged,
        };
        session.drain(&mut ctx);
        if session.root_result.is_some() {
            let mut session = self.sessions.remove(&qid).expect("session exists");
            let tree = session.root_result.take().expect("root result set");
            let mut stats = session.stats;
            stats.latency_ms = (now - session.started_at).as_micros() as f64 / 1000.0;
            self.finished.insert(
                qid,
                Finished {
                    result: Some(project_result(session.spec.kind, tree)),
                    stats,
                    partials: session.partials,
                },
            );
        }
    }
}

impl Session {
    fn drain(&mut self, ctx: &mut Ctx<'_>) {
        while let Some(event) = self.queue.pop_front() {
            match event {
                Event::StartVertex(f) => self.start_vertex(f, ctx),
                Event::StartExec(e) => self.start_exec(e, ctx),
                Event::AdvanceVertex(f) => self.advance_vertex(f, ctx),
                Event::AdvanceExec(e) => self.advance_exec(e, ctx),
                Event::VertexDone {
                    frame,
                    tree,
                    cacheable,
                } => self.on_vertex_done(frame, tree, cacheable, ctx),
                Event::ExecDone { frame, exec } => self.on_exec_done(frame, exec),
            }
        }
    }

    fn vertex(&mut self, f: u32) -> &mut VertexFrame {
        match &mut self.frames[f as usize] {
            Frame::Vertex(v) => v,
            other => panic!("frame {f} is not a vertex frame: {other:?}"),
        }
    }

    fn exec(&mut self, e: u32) -> &mut ExecFrame {
        match &mut self.frames[e as usize] {
            Frame::Exec(x) => x,
            other => panic!("frame {e} is not an exec frame: {other:?}"),
        }
    }

    /// Begin expanding a vertex: the exact decision sequence of the legacy
    /// recursion — count the visit, consult the cache, guard against cycles,
    /// apply depth pruning, then read the local `prov` entries and expand
    /// derivations in the traversal's schedule.
    fn start_vertex(&mut self, f: u32, ctx: &mut Ctx<'_>) {
        self.stats.vertices_visited += 1;
        let use_cache = self.spec.options.use_cache;
        let (node, vid, depth, path_has_self) = {
            let frame = self.vertex(f);
            (
                frame.node,
                frame.vid,
                frame.depth,
                frame.path.contains(&frame.vid),
            )
        };
        if use_cache {
            if let Some(cached) = ctx.cache.lookup(ctx.system, vid, node) {
                self.stats.cache_hits += 1;
                let tree = cached.clone();
                self.vertex(f).completed = true;
                self.queue.push_back(Event::VertexDone {
                    frame: f,
                    tree,
                    cacheable: false,
                });
                return;
            }
        }
        let tuple = ctx.system.tuple(vid).cloned();
        self.vertex(f).tree.tuple = tuple;
        if path_has_self {
            // Cycle guard: return the bare vertex, never cached. Checked
            // BEFORE the in-flight defer below — on a cyclic (malformed)
            // store an ancestor frame is necessarily the one computing this
            // key, so deferring onto it would deadlock the session.
            let frame = self.vertex(f);
            frame.completed = true;
            let tree = take_tree(&mut frame.tree);
            self.queue.push_back(Event::VertexDone {
                frame: f,
                tree,
                cacheable: false,
            });
            return;
        }
        if use_cache {
            if let Some(&computing) = self.in_flight.get(&(vid, node)) {
                // A concurrent breadth-first branch is already computing this
                // sub-query; defer onto it instead of racing (preserves the
                // sequential engine's cache-hit accounting).
                self.stats.vertices_visited -= 1; // re-counted on wake
                self.waiters.entry(computing).or_default().push(f);
                return;
            }
            self.in_flight.insert((vid, node), f);
            self.vertex(f).registered = true;
        }
        if let Some(max_depth) = self.spec.options.max_depth {
            if depth >= max_depth {
                let frame = self.vertex(f);
                frame.completed = true;
                frame.tree.pruned = true;
                let tree = take_tree(&mut frame.tree);
                self.queue.push_back(Event::VertexDone {
                    frame: f,
                    tree,
                    cacheable: true,
                });
                return;
            }
        }
        let entries = ctx
            .system
            .store(node)
            .map(|s| s.prov_entries(vid))
            .unwrap_or_default();
        self.vertex(f).entries = entries;
        match self.spec.options.traversal {
            TraversalOrder::DepthFirst => self.advance_vertex(f, ctx),
            TraversalOrder::BreadthFirst => {
                // Fan out: issue every expandable derivation concurrently.
                let limit = self.spec.options.max_derivations_per_vertex;
                let mut to_issue: Vec<(u32, ProvEntry)> = Vec::new();
                {
                    let frame = self.vertex(f);
                    while frame.next_entry < frame.entries.len() {
                        let entry = frame.entries[frame.next_entry];
                        frame.next_entry += 1;
                        if entry.is_base() {
                            frame.tree.is_base = true;
                            continue;
                        }
                        if let Some(limit) = limit {
                            if frame.expanded >= limit {
                                frame.tree.pruned = true;
                                break;
                            }
                        }
                        frame.expanded += 1;
                        let slot = frame.children.len() as u32;
                        frame.children.push(None);
                        to_issue.push((slot, entry));
                    }
                    frame.outstanding = to_issue.len();
                    frame.scanned = true;
                }
                for (slot, entry) in to_issue {
                    self.issue_exec(f, slot, entry, ctx);
                }
                self.queue.push_back(Event::AdvanceVertex(f));
            }
        }
    }

    /// Depth-first: issue the next expandable derivation (one outstanding at
    /// a time); both orders: complete the vertex once nothing is
    /// outstanding and the entry scan is exhausted.
    fn advance_vertex(&mut self, f: u32, ctx: &mut Ctx<'_>) {
        // Duplicate advance events are normal under fan-out (one is queued
        // per child completion); a frame advances past completion only once,
        // and events for already-retired frames are ignored.
        let Frame::Vertex(frame) = &self.frames[f as usize] else {
            return;
        };
        if frame.completed || frame.outstanding > 0 {
            return;
        }
        if self.spec.options.traversal == TraversalOrder::DepthFirst {
            let limit = self.spec.options.max_derivations_per_vertex;
            loop {
                let next = {
                    let frame = self.vertex(f);
                    if frame.next_entry >= frame.entries.len() {
                        break;
                    }
                    let entry = frame.entries[frame.next_entry];
                    frame.next_entry += 1;
                    if entry.is_base() {
                        frame.tree.is_base = true;
                        continue;
                    }
                    if let Some(limit) = limit {
                        if frame.expanded >= limit {
                            frame.tree.pruned = true;
                            frame.next_entry = frame.entries.len();
                            break;
                        }
                    }
                    frame.expanded += 1;
                    let slot = frame.children.len() as u32;
                    frame.children.push(None);
                    frame.outstanding = 1;
                    Some((slot, entry))
                };
                if let Some((slot, entry)) = next {
                    self.issue_exec(f, slot, entry, ctx);
                    return;
                }
            }
        } else if !self.vertex(f).scanned {
            return;
        }
        // Entry scan exhausted, nothing outstanding: the vertex is complete.
        // The frame is about to retire, so its tree and children are moved
        // out, not cloned — completion costs O(result), not O(result) per
        // ancestor level.
        let tree = {
            let frame = self.vertex(f);
            frame.completed = true;
            let mut tree = take_tree(&mut frame.tree);
            tree.derivations = std::mem::take(&mut frame.children)
                .into_iter()
                .flatten()
                .collect();
            tree
        };
        self.queue.push_back(Event::VertexDone {
            frame: f,
            tree,
            cacheable: true,
        });
    }

    /// Create the exec frame for one derivation of vertex `f`. Local when
    /// the rule fired at the vertex's own node; otherwise a real
    /// [`QueryOp::ExpandExec`] request to the executing node.
    fn issue_exec(&mut self, f: u32, slot: u32, entry: ProvEntry, ctx: &mut Ctx<'_>) {
        let rid = entry.rid.expect("non-base entry has rid");
        let (node, vid, depth, mut path) = {
            let frame = self.vertex(f);
            (frame.node, frame.vid, frame.depth, frame.path.clone())
        };
        path.push(vid);
        let remote = entry.rloc != node;
        let e = self.frames.len() as u32;
        self.frames.push(Frame::Exec(ExecFrame {
            node: entry.rloc,
            rid,
            depth,
            path: path.clone(),
            parent_frame: f,
            parent_slot: slot,
            remote,
            header: None,
            input_vids: Vec::new(),
            inputs: Vec::new(),
            next_input: 0,
            outstanding: 0,
            scanned: false,
            completed: false,
        }));
        if remote {
            ctx.staged.push(StagedOp {
                qid: self.qid,
                from: node,
                to: entry.rloc,
                op: QueryOp::ExpandExec {
                    qid: self.qid,
                    frame: e,
                    rid,
                    depth: depth as u32,
                    path,
                },
            });
        } else {
            self.queue.push_back(Event::StartExec(e));
        }
    }

    /// Begin expanding a rule execution at its node: look the record up
    /// locally, then expand the proof subtrees of its inputs (which are
    /// local to the executing node) in the traversal's schedule.
    fn start_exec(&mut self, e: u32, ctx: &mut Ctx<'_>) {
        let (node, rid) = {
            let frame = self.exec(e);
            (frame.node, frame.rid)
        };
        let Some(exec) = ctx.system.store(node).and_then(|s| s.rule_exec(rid)) else {
            // Unknown rid at the node: the derivation contributes nothing
            // (mirrors the legacy engine's `continue`).
            self.complete_exec(e, None, ctx);
            return;
        };
        let header = RuleExecNode {
            rid,
            rule: exec.rule,
            node: exec.node,
            inputs: Vec::new(),
        };
        let input_vids = exec.inputs.clone();
        {
            let frame = self.exec(e);
            frame.header = Some(header);
            frame.inputs = vec![None; input_vids.len()];
            frame.input_vids = input_vids;
        }
        match self.spec.options.traversal {
            TraversalOrder::DepthFirst => self.advance_exec(e, ctx),
            TraversalOrder::BreadthFirst => {
                let n = {
                    let frame = self.exec(e);
                    frame.outstanding = frame.input_vids.len();
                    frame.scanned = true;
                    frame.input_vids.len()
                };
                for i in 0..n {
                    self.spawn_input(e, i as u32);
                }
                self.queue.push_back(Event::AdvanceExec(e));
            }
        }
    }

    fn advance_exec(&mut self, e: u32, ctx: &mut Ctx<'_>) {
        let Frame::Exec(frame) = &self.frames[e as usize] else {
            return;
        };
        if frame.completed || frame.outstanding > 0 {
            return;
        }
        if self.spec.options.traversal == TraversalOrder::DepthFirst {
            let spawn = {
                let frame = self.exec(e);
                if frame.next_input < frame.input_vids.len() {
                    let i = frame.next_input as u32;
                    frame.next_input += 1;
                    frame.outstanding = 1;
                    Some(i)
                } else {
                    None
                }
            };
            if let Some(i) = spawn {
                self.spawn_input(e, i);
                return;
            }
        } else if !self.exec(e).scanned {
            return;
        }
        let exec_node = {
            let frame = self.exec(e);
            let mut header = frame.header.take().expect("exec header set");
            header.inputs = std::mem::take(&mut frame.inputs)
                .into_iter()
                .flatten()
                .collect();
            header
        };
        self.complete_exec(e, Some(exec_node), ctx);
    }

    /// Create and start the vertex frame of one input tuple (always local to
    /// the executing node).
    fn spawn_input(&mut self, e: u32, slot: u32) {
        let (node, vid, depth, path) = {
            let frame = self.exec(e);
            (
                frame.node,
                frame.input_vids[slot as usize],
                frame.depth + 1,
                frame.path.clone(),
            )
        };
        let f = self.frames.len() as u32;
        self.frames.push(Frame::Vertex(VertexFrame {
            node,
            vid,
            depth,
            path,
            parent: Parent::Exec { frame: e, slot },
            tree: ProofTree {
                vid,
                tuple: None,
                home: node,
                is_base: false,
                derivations: Vec::new(),
                pruned: false,
            },
            entries: Vec::new(),
            next_entry: 0,
            expanded: 0,
            children: Vec::new(),
            outstanding: 0,
            scanned: false,
            registered: false,
            completed: false,
        }));
        self.queue.push_back(Event::StartVertex(f));
    }

    /// An exec frame finished computing (or failed to find its record):
    /// either respond over the wire or resume the awaiting vertex directly.
    fn complete_exec(&mut self, e: u32, exec: Option<RuleExecNode>, ctx: &mut Ctx<'_>) {
        let (remote, node, parent_frame) = {
            let frame = self.exec(e);
            frame.completed = true;
            (frame.remote, frame.node, frame.parent_frame)
        };
        if remote {
            let to = match &self.frames[parent_frame as usize] {
                Frame::Vertex(v) => v.node,
                other => panic!("exec parent is not a vertex: {other:?}"),
            };
            ctx.staged.push(StagedOp {
                qid: self.qid,
                from: node,
                to,
                op: QueryOp::ExecDone {
                    qid: self.qid,
                    frame: e,
                    exec,
                },
            });
        } else {
            self.queue.push_back(Event::ExecDone { frame: e, exec });
        }
    }

    /// A completed rule-execution subtree reached its awaiting vertex.
    fn on_exec_done(&mut self, e: u32, exec: Option<RuleExecNode>) {
        let (parent_frame, parent_slot) = {
            let frame = self.exec(e);
            (frame.parent_frame, frame.parent_slot)
        };
        self.frames[e as usize] = Frame::Done;
        {
            if parent_frame == 0 {
                // Root-level derivation: stream it as a partial result.
                if let Some(exec) = &exec {
                    self.partials.push(exec.clone());
                }
            }
            let frame = self.vertex(parent_frame);
            frame.children[parent_slot as usize] = exec;
            frame.outstanding -= 1;
        }
        self.queue.push_back(Event::AdvanceVertex(parent_frame));
    }

    /// A vertex subtree is complete: maintain the cache and in-flight
    /// bookkeeping, wake deferred duplicates, and route the tree to its
    /// parent (the session root or an exec frame's input slot).
    fn on_vertex_done(&mut self, f: u32, tree: ProofTree, cacheable: bool, ctx: &mut Ctx<'_>) {
        let (node, vid, parent, registered) = {
            let frame = self.vertex(f);
            (frame.node, frame.vid, frame.parent, frame.registered)
        };
        self.frames[f as usize] = Frame::Done;
        if registered {
            self.in_flight.remove(&(vid, node));
            if cacheable && !tree.pruned {
                ctx.cache.insert(ctx.system, vid, node, tree.clone());
            }
            if let Some(waiters) = self.waiters.remove(&f) {
                for w in waiters {
                    self.queue.push_back(Event::StartVertex(w));
                }
            }
        }
        match parent {
            Parent::Root { remote: false } => {
                self.root_result = Some(tree);
            }
            Parent::Root { remote: true } => {
                ctx.staged.push(StagedOp {
                    qid: self.qid,
                    from: node,
                    to: self.spec.querier,
                    op: QueryOp::VertexDone {
                        qid: self.qid,
                        frame: f,
                        tree,
                    },
                });
            }
            Parent::Exec { frame: e, slot } => {
                {
                    let frame = self.exec(e);
                    frame.inputs[slot as usize] = Some(tree);
                    frame.outstanding -= 1;
                }
                self.queue.push_back(Event::AdvanceExec(e));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nt_runtime::{Firing, Value, BASE_RULE};

    fn tuple(rel: &str, node: &str, x: i64) -> Tuple {
        Tuple::new(rel, vec![Value::addr(node), Value::Int(x)])
    }

    fn base(sys: &mut ProvenanceSystem, t: &Tuple, node: &str) {
        sys.apply_firing(&Firing {
            rule: BASE_RULE.into(),
            node: node.into(),
            head: t.clone(),
            head_home: node.into(),
            inputs: vec![],
            input_tuples: vec![],
            insert: true,
        });
    }

    fn derive(
        sys: &mut ProvenanceSystem,
        rule: &str,
        exec: &str,
        head: &Tuple,
        home: &str,
        inputs: &[Tuple],
    ) {
        sys.apply_firing(&Firing {
            rule: rule.into(),
            node: exec.into(),
            head: head.clone(),
            head_home: home.into(),
            inputs: inputs.iter().map(Tuple::id).collect(),
            input_tuples: inputs.to_vec(),
            insert: true,
        });
    }

    /// Build a 3-level distributed provenance graph:
    ///   base link@n1, link@n2
    ///   cost@n2 derived at n1 from link@n1
    ///   best@n3 derived at n2 from cost@n2 and link@n2  (two alternatives)
    fn sample_system() -> (ProvenanceSystem, Tuple) {
        let mut sys = ProvenanceSystem::new(["n1", "n2", "n3"]);
        let l1 = tuple("link", "n1", 1);
        let l2 = tuple("link", "n2", 2);
        let cost = tuple("cost", "n2", 3);
        let best = tuple("best", "n3", 3);
        base(&mut sys, &l1, "n1");
        base(&mut sys, &l2, "n2");
        derive(&mut sys, "r1", "n1", &cost, "n2", std::slice::from_ref(&l1));
        derive(
            &mut sys,
            "r2",
            "n2",
            &best,
            "n3",
            &[cost.clone(), l2.clone()],
        );
        // An alternative derivation of `best` directly from l2.
        derive(&mut sys, "r3", "n2", &best, "n3", std::slice::from_ref(&l2));
        (sys, best)
    }

    /// Drive a distributed session to completion with an immediate-delivery
    /// pump (latency semantics are the platform's concern; results and
    /// counts are tested here).
    fn run_distributed(
        ex: &mut QueryExecutor,
        sys: &ProvenanceSystem,
        querier: &str,
        target: &Tuple,
        kind: QueryKind,
        options: &QueryOptions,
    ) -> (QueryResult, QueryStats) {
        let spec = QuerySpec {
            querier: NodeId::new(querier),
            vid: target.id(),
            kind,
            mode: QueryMode::Distributed,
            options: options.clone(),
        };
        let handle = ex.submit(sys, spec, SimTime::ZERO);
        let mut safety = 0;
        while !ex.is_done(handle) {
            let batches = ex.poll();
            assert!(!batches.is_empty(), "pending session must stage frames");
            for batch in batches {
                ex.deliver(sys, batch, SimTime::ZERO);
            }
            safety += 1;
            assert!(safety < 10_000, "session failed to converge");
        }
        let (result, stats) = ex.take_result(handle).expect("finished");
        (result.expect("not cancelled"), stats)
    }

    #[test]
    fn lineage_builds_the_full_proof_tree() {
        let (sys, best) = sample_system();
        let mut qe = QueryEngine::new();
        let (result, stats) = qe.query(
            &sys,
            "n3",
            &best,
            QueryKind::Lineage,
            &QueryOptions::default(),
        );
        let QueryResult::Lineage(tree) = result else {
            panic!("expected lineage");
        };
        assert_eq!(tree.vid, best.id());
        assert_eq!(tree.derivations.len(), 2);
        assert!(tree.depth() >= 3);
        assert!(stats.vertices_visited >= 4);
        assert!(stats.messages > 0, "distributed traversal crosses nodes");
    }

    #[test]
    fn base_tuples_and_participating_nodes() {
        let (sys, best) = sample_system();
        let mut qe = QueryEngine::new();
        let (result, _) = qe.query(
            &sys,
            "n3",
            &best,
            QueryKind::BaseTuples,
            &QueryOptions::default(),
        );
        let QueryResult::BaseTuples(bases) = result else {
            panic!()
        };
        assert_eq!(bases.len(), 2, "two distinct base links contribute");

        let (result, _) = qe.query(
            &sys,
            "n3",
            &best,
            QueryKind::ParticipatingNodes,
            &QueryOptions::default(),
        );
        let QueryResult::ParticipatingNodes(nodes) = result else {
            panic!()
        };
        assert!(
            nodes.contains(&NodeId::new("n1"))
                && nodes.contains(&NodeId::new("n2"))
                && nodes.contains(&NodeId::new("n3"))
        );
    }

    #[test]
    fn derivation_count_counts_alternatives() {
        let (sys, best) = sample_system();
        let mut qe = QueryEngine::new();
        let (result, _) = qe.query(
            &sys,
            "n3",
            &best,
            QueryKind::DerivationCount,
            &QueryOptions::default(),
        );
        assert_eq!(result, QueryResult::DerivationCount(2));
    }

    #[test]
    fn caching_reduces_traffic_on_repeated_queries() {
        let (sys, best) = sample_system();
        let mut qe = QueryEngine::new();
        let opts = QueryOptions::cached();
        let (_, first) = qe.query(&sys, "n3", &best, QueryKind::Lineage, &opts);
        let (_, second) = qe.query(&sys, "n3", &best, QueryKind::Lineage, &opts);
        assert!(first.messages > 0);
        assert!(second.cache_hits > 0);
        assert!(
            second.messages < first.messages,
            "cached query saves traffic: {} vs {}",
            second.messages,
            first.messages
        );
        assert!(qe.cache_size() > 0);
        qe.clear_cache();
        assert_eq!(qe.cache_size(), 0);
    }

    #[test]
    fn stale_cache_entries_are_evicted_after_store_churn() {
        let (mut sys, best) = sample_system();
        let mut qe = QueryEngine::new();
        let opts = QueryOptions::cached();
        let (before, _) = qe.query(&sys, "n3", &best, QueryKind::Lineage, &opts);
        assert!(qe.cache_size() > 0);
        // Retract the alternative derivation r3(best <- l2): an incremental
        // delete that the pre-versioning cache would have survived.
        let l2 = tuple("link", "n2", 2);
        sys.apply_firing(&Firing {
            rule: "r3".into(),
            node: "n2".into(),
            head: best.clone(),
            head_home: "n3".into(),
            inputs: vec![l2.id()],
            input_tuples: vec![],
            insert: false,
        });
        let (after, _) = qe.query(&sys, "n3", &best, QueryKind::Lineage, &opts);
        let (QueryResult::Lineage(before), QueryResult::Lineage(after)) = (before, after) else {
            panic!()
        };
        assert_eq!(before.derivations.len(), 2);
        assert_eq!(
            after.derivations.len(),
            1,
            "the cached pre-delete tree must not be served"
        );
        // And the fresh answer matches an uncached engine's.
        let mut fresh = QueryEngine::new();
        let (fresh_result, _) = fresh.query(
            &sys,
            "n3",
            &best,
            QueryKind::Lineage,
            &QueryOptions::default(),
        );
        assert_eq!(QueryResult::Lineage(after), fresh_result);
    }

    /// Churn that only touches a *descendant* node's stores (the cached
    /// root's own store is untouched) must still evict the cached tree:
    /// entries are stamped with every involved store's version, not just
    /// the root's home.
    #[test]
    fn descendant_only_churn_evicts_cached_trees() {
        let (mut sys, best) = sample_system();
        let mut qe = QueryEngine::new();
        let opts = QueryOptions::cached();
        let (before, _) = qe.query(&sys, "n3", &best, QueryKind::Lineage, &opts);
        let n3_version = sys.store("n3").unwrap().version();
        // Retract r1 (cost@n2 derived at n1): touches only n1's ruleExec
        // table and n2's prov table — n3, where `best` is cached, is not
        // written at all.
        let l1 = tuple("link", "n1", 1);
        let cost = tuple("cost", "n2", 3);
        sys.apply_firing(&Firing {
            rule: "r1".into(),
            node: "n1".into(),
            head: cost,
            head_home: "n2".into(),
            inputs: vec![l1.id()],
            input_tuples: vec![],
            insert: false,
        });
        assert_eq!(
            sys.store("n3").unwrap().version(),
            n3_version,
            "the churn must not touch the root's own store for this test"
        );
        let (after, _) = qe.query(&sys, "n3", &best, QueryKind::Lineage, &opts);
        let mut fresh = QueryEngine::new();
        let (expected, _) = fresh.query(
            &sys,
            "n3",
            &best,
            QueryKind::Lineage,
            &QueryOptions::default(),
        );
        assert_eq!(
            after, expected,
            "descendant churn must evict the root entry"
        );
        assert_ne!(before, after, "the retraction changed the proof");
    }

    /// A cyclic (malformed) store must terminate under the distributed
    /// executor with caching on — the cycle guard runs before the in-flight
    /// defer, otherwise the re-reached vertex would wait on its own
    /// ancestor forever.
    #[test]
    fn cyclic_stores_terminate_with_caching_enabled() {
        use crate::store::{ProvEntry, RuleExec};
        let mut sys = ProvenanceSystem::new(["n1"]);
        let t = tuple("x", "n1", 1);
        let rid = RuleExecId::compute("r".into(), "n1".into(), &[t.id()]);
        let store = sys.store_mut("n1");
        store.register_tuple(&t);
        store.add_rule_exec(RuleExec {
            rid,
            rule: "r".into(),
            node: "n1".into(),
            inputs: vec![t.id()],
        });
        // x is derived from itself: a cycle no well-formed capture produces.
        store.add_prov(
            t.id(),
            ProvEntry {
                rid: Some(rid),
                rloc: "n1".into(),
            },
        );
        for traversal in [TraversalOrder::DepthFirst, TraversalOrder::BreadthFirst] {
            let opts = QueryOptions {
                use_cache: true,
                traversal,
                ..QueryOptions::default()
            };
            let mut local = QueryEngine::new();
            let (lr, ls) = local.query(&sys, "n1", &t, QueryKind::Lineage, &opts);
            let mut dist = QueryExecutor::new();
            let (dr, ds) = run_distributed(&mut dist, &sys, "n1", &t, QueryKind::Lineage, &opts);
            assert_eq!(lr, dr, "{traversal:?}");
            assert_eq!(ls.vertices_visited, ds.vertices_visited);
        }
    }

    #[test]
    fn pruning_limits_expansion() {
        let (sys, best) = sample_system();
        let mut qe = QueryEngine::new();
        let opts = QueryOptions {
            max_derivations_per_vertex: Some(1),
            ..QueryOptions::default()
        };
        let (result, pruned_stats) = qe.query(&sys, "n3", &best, QueryKind::Lineage, &opts);
        let QueryResult::Lineage(tree) = result else {
            panic!()
        };
        assert_eq!(tree.derivations.len(), 1);
        assert!(tree.pruned);

        let (_, full_stats) = qe.query(
            &sys,
            "n3",
            &best,
            QueryKind::Lineage,
            &QueryOptions::default(),
        );
        assert!(pruned_stats.messages < full_stats.messages);

        // Depth pruning.
        let opts = QueryOptions {
            max_depth: Some(1),
            ..QueryOptions::default()
        };
        let (result, _) = qe.query(&sys, "n3", &best, QueryKind::Lineage, &opts);
        let QueryResult::Lineage(tree) = result else {
            panic!()
        };
        assert!(tree.depth() <= 2);
    }

    #[test]
    fn breadth_first_traversal_has_lower_estimated_latency() {
        let (sys, best) = sample_system();
        let mut qe = QueryEngine::new();
        let dfs = QueryOptions {
            traversal: TraversalOrder::DepthFirst,
            ..QueryOptions::default()
        };
        let bfs = QueryOptions {
            traversal: TraversalOrder::BreadthFirst,
            ..QueryOptions::default()
        };
        let (_, dfs_stats) = qe.query(&sys, "n3", &best, QueryKind::Lineage, &dfs);
        let (_, bfs_stats) = qe.query(&sys, "n3", &best, QueryKind::Lineage, &bfs);
        assert_eq!(dfs_stats.messages, bfs_stats.messages, "same traffic");
        assert!(
            bfs_stats.latency_ms <= dfs_stats.latency_ms,
            "parallel traversal is not slower"
        );
    }

    #[test]
    fn unknown_tuples_yield_empty_results() {
        let (sys, _) = sample_system();
        let mut qe = QueryEngine::new();
        let ghost = tuple("ghost", "n9", 0);
        let (result, _) = qe.query(
            &sys,
            "n1",
            &ghost,
            QueryKind::DerivationCount,
            &QueryOptions::default(),
        );
        assert_eq!(result, QueryResult::DerivationCount(0));

        // The distributed executor agrees, without touching the wire.
        let mut ex = QueryExecutor::new();
        let (result, stats) = run_distributed(
            &mut ex,
            &sys,
            "n1",
            &ghost,
            QueryKind::DerivationCount,
            &QueryOptions::default(),
        );
        assert_eq!(result, QueryResult::DerivationCount(0));
        assert_eq!(stats.messages, 0);
    }

    /// The step-driven executor reproduces the legacy engine exactly: same
    /// results, same visit counts, and (for the sequential order) the same
    /// record counts — per kind, traversal and pruning setting.
    #[test]
    fn distributed_execution_matches_the_local_engine() {
        let (sys, best) = sample_system();
        let kinds = [
            QueryKind::Lineage,
            QueryKind::BaseTuples,
            QueryKind::ParticipatingNodes,
            QueryKind::DerivationCount,
        ];
        let option_sets = [
            QueryOptions::default(),
            QueryOptions::cached(),
            QueryOptions {
                traversal: TraversalOrder::BreadthFirst,
                ..QueryOptions::default()
            },
            QueryOptions {
                traversal: TraversalOrder::BreadthFirst,
                use_cache: true,
                ..QueryOptions::default()
            },
            QueryOptions {
                max_depth: Some(2),
                ..QueryOptions::default()
            },
            QueryOptions {
                max_derivations_per_vertex: Some(1),
                ..QueryOptions::default()
            },
        ];
        for kind in kinds {
            for options in &option_sets {
                // Fresh engines per combination: cache state starts equal.
                let mut local = QueryEngine::new();
                let mut dist = QueryExecutor::new();
                for _ in 0..2 {
                    let (lr, ls) = local.query(&sys, "n3", &best, kind, options);
                    let (dr, ds) = run_distributed(&mut dist, &sys, "n3", &best, kind, options);
                    assert_eq!(lr, dr, "{kind:?} {options:?}");
                    assert_eq!(
                        ls.vertices_visited, ds.vertices_visited,
                        "visits {kind:?} {options:?}"
                    );
                    assert_eq!(ls.cache_hits, ds.cache_hits, "hits {kind:?} {options:?}");
                    assert_eq!(ls.records, ds.records, "records {kind:?} {options:?}");
                    if options.traversal == TraversalOrder::DepthFirst {
                        assert_eq!(ls.messages, ds.messages, "msgs {kind:?} {options:?}");
                    } else {
                        assert!(ds.messages <= ls.messages, "fan-out coalesces frames");
                    }
                }
            }
        }
    }

    /// Breadth-first fan-out coalesces same-destination requests into one
    /// frame, so it ships fewer messages than depth-first for the same
    /// records.
    #[test]
    fn breadth_first_fan_out_coalesces_frames() {
        let (sys, best) = sample_system();
        let mut ex = QueryExecutor::new();
        let (_, dfs) = run_distributed(
            &mut ex,
            &sys,
            "n3",
            &best,
            QueryKind::Lineage,
            &QueryOptions::default(),
        );
        let (_, bfs) = run_distributed(
            &mut ex,
            &sys,
            "n3",
            &best,
            QueryKind::Lineage,
            &QueryOptions {
                traversal: TraversalOrder::BreadthFirst,
                ..QueryOptions::default()
            },
        );
        assert_eq!(dfs.records, bfs.records, "same protocol records");
        assert!(
            bfs.messages < dfs.messages,
            "{} < {}",
            bfs.messages,
            dfs.messages
        );
        assert!(bfs.bytes <= dfs.bytes);
    }

    /// Dictionary headers ship each interned string to a destination once:
    /// a repeated query re-ships no dictionary bytes.
    #[test]
    fn dictionaries_ship_first_use_only() {
        let (sys, best) = sample_system();
        let mut ex = QueryExecutor::new();
        let (_, first) = run_distributed(
            &mut ex,
            &sys,
            "n3",
            &best,
            QueryKind::Lineage,
            &QueryOptions::default(),
        );
        let (_, second) = run_distributed(
            &mut ex,
            &sys,
            "n3",
            &best,
            QueryKind::Lineage,
            &QueryOptions::default(),
        );
        assert!(first.dict_bytes > 0, "first responses carry the strings");
        assert_eq!(second.dict_bytes, 0, "no re-shipping to warm destinations");
        assert!(second.bytes < first.bytes);
    }

    /// Cancellation stops a session: the result is withdrawn, in-flight
    /// frames are dropped, and one cancel record per abandoned node is
    /// charged to the wire.
    #[test]
    fn cancellation_stops_traffic_and_keeps_partials_redeemable() {
        let (sys, best) = sample_system();
        let mut ex = QueryExecutor::new();
        let spec = QuerySpec {
            querier: NodeId::new("n1"),
            vid: best.id(),
            kind: QueryKind::Lineage,
            mode: QueryMode::Distributed,
            options: QueryOptions::default(),
        };
        let handle = ex.submit(&sys, spec, SimTime::ZERO);
        // Ship the first hop, then cancel before delivering anything else.
        let batches = ex.poll();
        assert!(!batches.is_empty());
        ex.cancel(handle, SimTime::ZERO);
        assert!(ex.is_done(handle));
        // The staged cancel frame still flies (and is charged).
        let cancels = ex.poll();
        assert!(cancels
            .iter()
            .any(|b| b.ops.iter().any(|op| matches!(op, QueryOp::Cancel { .. }))));
        // Late deliveries for the dead session are dropped without effect.
        for batch in batches {
            ex.deliver(&sys, batch, SimTime::ZERO);
        }
        let (result, stats) = ex.take_result(handle).expect("finished entry");
        assert!(result.is_none(), "cancelled sessions have no result");
        assert!(stats.messages >= 1);
        let full = {
            let mut ex2 = QueryExecutor::new();
            let (_, s) = run_distributed(
                &mut ex2,
                &sys,
                "n1",
                &best,
                QueryKind::Lineage,
                &QueryOptions::default(),
            );
            s
        };
        assert!(
            stats.records < full.records,
            "abandoned subtrees stop consuming traffic"
        );
    }

    /// Drain several concurrent sessions off one executor with an
    /// immediate-delivery pump (frames from one poll are delivered in seal
    /// order, the same per-destination order the simulated network
    /// preserves).
    fn drain_concurrent(ex: &mut QueryExecutor, sys: &ProvenanceSystem, handles: &[QueryHandle]) {
        let mut safety = 0;
        while handles.iter().any(|h| !ex.is_done(*h)) {
            let batches = ex.poll();
            assert!(!batches.is_empty(), "pending sessions must stage frames");
            for batch in batches {
                ex.deliver(sys, batch, SimTime::ZERO);
            }
            safety += 1;
            assert!(safety < 10_000, "sessions failed to converge");
        }
    }

    /// Satellite regression: with cross-session merging on, interleaved
    /// sessions never re-ship a symbol already charged to a destination in
    /// the same poll — the second session rides the first's shared first-use
    /// dictionary header — and [`QueryExecutor::reset_dictionaries`]
    /// restores exactly one full charge for the next interleaved pair.
    #[test]
    fn merged_frames_never_reship_a_symbol_within_one_poll() {
        let (sys, best) = sample_system();
        let spec = |querier: &str| QuerySpec {
            querier: NodeId::new(querier),
            vid: best.id(),
            kind: QueryKind::Lineage,
            mode: QueryMode::Distributed,
            options: QueryOptions::default(),
        };
        // Solo baseline: the dictionary charge one session pays alone.
        let mut solo = QueryExecutor::new();
        solo.set_frame_merging(true);
        let (_, solo_stats) = run_distributed(
            &mut solo,
            &sys,
            "n1",
            &best,
            QueryKind::Lineage,
            &QueryOptions::default(),
        );
        assert!(solo_stats.dict_bytes > 0, "responses carry strings");

        let mut ex = QueryExecutor::new();
        ex.set_frame_merging(true);
        let a = ex.submit(&sys, spec("n1"), SimTime::ZERO);
        let b = ex.submit(&sys, spec("n1"), SimTime::ZERO);
        // Interleaved drain, asserting per poll that no destination is ever
        // sent the same dictionary entry twice.
        let mut shipped: HashMap<NodeId, HashSet<String>> = HashMap::new();
        let mut safety = 0;
        while !(ex.is_done(a) && ex.is_done(b)) {
            let batches = ex.poll();
            assert!(!batches.is_empty());
            for batch in &batches {
                let seen = shipped.entry(batch.to).or_default();
                for entry in &batch.dict {
                    assert!(
                        seen.insert(entry.clone()),
                        "symbol {entry:?} re-shipped to {}",
                        batch.to
                    );
                }
            }
            for batch in batches {
                ex.deliver(&sys, batch, SimTime::ZERO);
            }
            safety += 1;
            assert!(safety < 10_000);
        }
        let (_, sa) = ex.take_result(a).expect("done");
        let (_, sb) = ex.take_result(b).expect("done");
        assert_eq!(
            sa.dict_bytes + sb.dict_bytes,
            solo_stats.dict_bytes,
            "two interleaved sessions pay one shared first-use charge"
        );
        // reset_dictionaries survives merging: the next interleaved pair
        // re-ships the full charge exactly once more.
        ex.reset_dictionaries();
        let c = ex.submit(&sys, spec("n1"), SimTime::ZERO);
        let d = ex.submit(&sys, spec("n1"), SimTime::ZERO);
        drain_concurrent(&mut ex, &sys, &[c, d]);
        let (_, sc) = ex.take_result(c).expect("done");
        let (_, sd) = ex.take_result(d).expect("done");
        assert_eq!(sc.dict_bytes + sd.dict_bytes, solo_stats.dict_bytes);
    }

    /// Merged sealing is observationally identical to per-session sealing
    /// for interleaved sessions: per-session results and stats (messages,
    /// records, bytes, dictionary bytes, visits, cache hits) are equal —
    /// merging collapses frames on the wire without touching any session's
    /// view of its own execution.
    #[test]
    fn merged_sealing_matches_per_session_sealing_for_interleaved_sessions() {
        let (sys, best) = sample_system();
        for traversal in [TraversalOrder::DepthFirst, TraversalOrder::BreadthFirst] {
            let options = QueryOptions {
                traversal,
                use_cache: true,
                ..QueryOptions::default()
            };
            let specs: Vec<QuerySpec> = ["n1", "n1", "n2", "n3"]
                .iter()
                .map(|querier| QuerySpec {
                    querier: NodeId::new(querier),
                    vid: best.id(),
                    kind: QueryKind::Lineage,
                    mode: QueryMode::Distributed,
                    options: options.clone(),
                })
                .collect();
            let run = |merge: bool| {
                let mut ex = QueryExecutor::new();
                ex.set_frame_merging(merge);
                let handles: Vec<QueryHandle> = specs
                    .iter()
                    .map(|spec| ex.submit(&sys, spec.clone(), SimTime::ZERO))
                    .collect();
                drain_concurrent(&mut ex, &sys, &handles);
                let outcomes: Vec<_> = handles
                    .iter()
                    .map(|h| ex.take_result(*h).expect("done"))
                    .collect();
                // Per-session bytes/dict_bytes are excluded: first-use
                // dictionary attribution follows frame order within a
                // flush, so merging may shift a shared symbol's charge
                // between concurrent sessions. Totals are compared instead.
                let per_session: Vec<_> = outcomes
                    .iter()
                    .map(|(result, s)| {
                        (
                            result.clone(),
                            s.messages,
                            s.records,
                            s.vertices_visited,
                            s.cache_hits,
                            s.latency_ms,
                        )
                    })
                    .collect();
                let totals: (u64, u64) = outcomes
                    .iter()
                    .fold((0, 0), |(b, d), (_, s)| (b + s.bytes, d + s.dict_bytes));
                (per_session, totals, ex.traffic().messages)
            };
            let (merged, merged_totals, merged_frames) = run(true);
            let (split, split_totals, split_frames) = run(false);
            assert_eq!(merged, split, "{traversal:?}: per-session outcomes");
            assert_eq!(merged_totals, split_totals, "{traversal:?}: totals");
            assert!(
                merged_frames < split_frames,
                "{traversal:?}: merging must collapse concurrent frames \
                 ({merged_frames} vs {split_frames})"
            );
        }
    }

    /// Partial results stream as root-level derivations complete.
    #[test]
    fn partial_results_stream_during_execution() {
        let (sys, best) = sample_system();
        let mut ex = QueryExecutor::new();
        let spec = QuerySpec {
            querier: NodeId::new("n3"),
            vid: best.id(),
            kind: QueryKind::Lineage,
            mode: QueryMode::Distributed,
            options: QueryOptions::default(),
        };
        let handle = ex.submit(&sys, spec, SimTime::ZERO);
        let mut streamed = Vec::new();
        let mut safety = 0;
        while !ex.is_done(handle) {
            for batch in ex.poll() {
                ex.deliver(&sys, batch, SimTime::ZERO);
            }
            streamed.extend(ex.take_partials(handle));
            safety += 1;
            assert!(safety < 10_000);
        }
        streamed.extend(ex.take_partials(handle));
        let (result, _) = ex.take_result(handle).expect("finished");
        let Some(QueryResult::Lineage(tree)) = result else {
            panic!()
        };
        assert_eq!(streamed.len(), tree.derivations.len());
        assert_eq!(streamed, tree.derivations);
    }
}
