//! The public query surface: options, specs, handles and result types.
//!
//! A query is described by a [`QuerySpec`] — target vertex, querying node,
//! question ([`QueryKind`]), execution mode ([`QueryMode`]) and optimization
//! knobs ([`QueryOptions`]). Callers usually build one through a fluent
//! session builder (`NetTrails::query(&tuple).kind(..).traversal(..)` in the
//! platform crate) and get back a [`QueryHandle`] they can poll, stream
//! partial results from, cancel, or wait on for the final
//! ([`QueryResult`], [`QueryStats`]) pair.

use crate::store::RuleExecId;
use nt_runtime::{Addr, NodeId, Sym, Tuple, TupleId};
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;

/// Traffic category used for provenance query messages.
pub const QUERY_CATEGORY: &str = "prov-query";

/// Which provenance question to ask.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum QueryKind {
    /// Full proof tree (lineage).
    Lineage,
    /// Set of contributing base tuples.
    BaseTuples,
    /// Set of nodes that participated in any derivation.
    ParticipatingNodes,
    /// Number of alternative derivations (proof trees).
    DerivationCount,
}

/// Order in which the distributed traversal visits the graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum TraversalOrder {
    /// Sequential depth-first traversal: one outstanding request at a time.
    /// Fewest simultaneous messages, highest latency.
    #[default]
    DepthFirst,
    /// Parallel breadth-first traversal: every child of a frontier is queried
    /// concurrently. Latency grows with the *depth* of the proof tree instead
    /// of its size.
    BreadthFirst,
}

/// How a query is executed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum QueryMode {
    /// Message-driven execution over the simulated network: cross-node hops
    /// are real [`crate::query::wire::QueryBatch`] frames, and
    /// [`QueryStats::latency_ms`] is measured off the network clock.
    #[default]
    Distributed,
    /// The legacy in-process recursion ([`crate::QueryEngine`]): no wire
    /// traffic is generated, hop costs are estimated. Kept as the
    /// equivalence oracle and for single-node embedding.
    Local,
}

/// Query execution options (the paper's optimization knobs).
///
/// The per-hop latency is no longer an option: under
/// [`QueryMode::Distributed`] it is whatever the network's per-link delay
/// config yields, measured; the local engine estimates with its own
/// [`crate::QueryEngine::hop_rtt_ms`] knob.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct QueryOptions {
    /// Reuse cached sub-results from previous queries.
    pub use_cache: bool,
    /// Traversal order.
    pub traversal: TraversalOrder,
    /// Expand at most this many alternative derivations per tuple vertex
    /// (threshold-based pruning); `None` = expand everything.
    pub max_derivations_per_vertex: Option<usize>,
    /// Stop descending below this depth (rule executions count one level);
    /// `None` = unbounded.
    pub max_depth: Option<usize>,
}

impl QueryOptions {
    /// Options with caching enabled.
    pub fn cached() -> Self {
        QueryOptions {
            use_cache: true,
            ..QueryOptions::default()
        }
    }
}

/// A fully-specified query: what to ask, from where, and how to execute it.
/// This is what a session builder compiles down to and what both execution
/// engines consume.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QuerySpec {
    /// Node issuing the query.
    pub querier: NodeId,
    /// Target tuple vertex.
    pub vid: TupleId,
    /// The question.
    pub kind: QueryKind,
    /// Execution mode.
    pub mode: QueryMode,
    /// Optimization knobs.
    pub options: QueryOptions,
}

/// Handle of a submitted query session. Cheap to copy; redeem it against the
/// executor (or the platform) for partial results, cancellation, or the
/// final result.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct QueryHandle(pub u64);

/// A proof tree: the lineage of a tuple.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ProofTree {
    /// The tuple vertex.
    pub vid: TupleId,
    /// Tuple contents, when known to the provenance system.
    pub tuple: Option<Tuple>,
    /// Node where the tuple lives (interned).
    pub home: NodeId,
    /// True when the tuple is a base tuple at this vertex (it may *also* have
    /// rule derivations).
    pub is_base: bool,
    /// One entry per (expanded) derivation.
    pub derivations: Vec<RuleExecNode>,
    /// True when pruning cut the expansion at this vertex.
    pub pruned: bool,
}

/// A rule-execution vertex in a proof tree.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RuleExecNode {
    /// Identifier of the rule execution.
    pub rid: RuleExecId,
    /// Rule name (interned).
    pub rule: Sym,
    /// Node where the rule executed (interned).
    pub node: NodeId,
    /// Sub-trees for every input tuple, in body order.
    pub inputs: Vec<ProofTree>,
}

impl ProofTree {
    /// Total number of vertices (tuple + rule-execution) in the tree.
    pub fn size(&self) -> usize {
        1 + self
            .derivations
            .iter()
            .map(|d| 1 + d.inputs.iter().map(ProofTree::size).sum::<usize>())
            .sum::<usize>()
    }

    /// Depth of the tree in tuple-vertex levels.
    pub fn depth(&self) -> usize {
        1 + self
            .derivations
            .iter()
            .flat_map(|d| d.inputs.iter().map(ProofTree::depth))
            .max()
            .unwrap_or(0)
    }

    /// Leaves of the tree that are base tuples.
    pub fn base_leaves(&self) -> Vec<&ProofTree> {
        let mut out = Vec::new();
        self.collect_base_leaves(&mut out);
        out
    }

    fn collect_base_leaves<'a>(&'a self, out: &mut Vec<&'a ProofTree>) {
        if self.is_base {
            out.push(self);
        }
        for d in &self.derivations {
            for input in &d.inputs {
                input.collect_base_leaves(out);
            }
        }
    }
}

/// Result of a provenance query.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum QueryResult {
    /// Lineage result.
    Lineage(ProofTree),
    /// Contributing base tuple identifiers (with contents when known).
    BaseTuples(Vec<(TupleId, Option<Tuple>)>),
    /// Participating node names.
    ParticipatingNodes(BTreeSet<Addr>),
    /// Number of alternative derivations.
    DerivationCount(u64),
}

/// Work and traffic measurements for a single query.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct QueryStats {
    /// Cross-node frames exchanged (request + response messages). Batched
    /// fan-out packs several records into one frame, so under
    /// [`TraversalOrder::BreadthFirst`] this can be smaller than `records`.
    pub messages: u64,
    /// Protocol records those frames carried (one per hop request/response).
    pub records: u64,
    /// Payload bytes exchanged, including dictionary headers.
    pub bytes: u64,
    /// Dictionary-header bytes (interned strings shipped once per
    /// destination on first use) within `bytes`.
    pub dict_bytes: u64,
    /// Vertices visited.
    pub vertices_visited: u64,
    /// Cache hits (sub-results reused).
    pub cache_hits: u64,
    /// Completion latency in milliseconds. Under
    /// [`QueryMode::Distributed`] this is *measured* — the simulated-clock
    /// span between submission and the last frame of the session — so
    /// breadth-first fan-out genuinely completes in `max(hop)` while
    /// depth-first pays every hop sequentially. Under [`QueryMode::Local`]
    /// it is the legacy per-hop estimate.
    pub latency_ms: f64,
}

/// Project a completed lineage tree into the requested result form. Shared
/// by the local and distributed engines, so the two paths cannot diverge in
/// anything but how the tree was obtained.
pub(crate) fn project_result(kind: QueryKind, tree: ProofTree) -> QueryResult {
    match kind {
        QueryKind::Lineage => QueryResult::Lineage(tree),
        QueryKind::BaseTuples => {
            let mut out: Vec<(TupleId, Option<Tuple>)> = tree
                .base_leaves()
                .iter()
                .map(|t| (t.vid, t.tuple.clone()))
                .collect();
            out.sort_by_key(|(vid, _)| *vid);
            out.dedup_by_key(|(vid, _)| *vid);
            QueryResult::BaseTuples(out)
        }
        QueryKind::ParticipatingNodes => {
            let mut nodes = BTreeSet::new();
            collect_nodes(&tree, &mut nodes);
            QueryResult::ParticipatingNodes(nodes)
        }
        QueryKind::DerivationCount => QueryResult::DerivationCount(count_derivations(&tree)),
    }
}

/// Every node a proof tree touches: each vertex's home and each rule
/// execution's node. Doubles as the set of stores the tree was *read* from,
/// which is what the query cache stamps entries with.
pub(crate) fn collect_nodes(tree: &ProofTree, out: &mut BTreeSet<Addr>) {
    out.insert(tree.home);
    for d in &tree.derivations {
        out.insert(d.node);
        for input in &d.inputs {
            collect_nodes(input, out);
        }
    }
}

/// Number of alternative derivations (proof trees) represented by a lineage
/// tree: base vertices contribute one derivation, every rule execution
/// contributes the product of its inputs' counts, and a tuple's count is the
/// sum over its derivations.
fn count_derivations(tree: &ProofTree) -> u64 {
    let mut count: u64 = if tree.is_base { 1 } else { 0 };
    for d in &tree.derivations {
        let mut product = 1u64;
        for input in &d.inputs {
            product = product.saturating_mul(count_derivations(input).max(1));
        }
        count = count.saturating_add(product);
    }
    if count == 0 && tree.pruned {
        // A pruned vertex still represents at least one derivation.
        1
    } else {
        count
    }
}
