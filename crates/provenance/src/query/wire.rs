//! The query wire protocol: per-destination frames of fixed-header records
//! behind first-use dictionary headers.
//!
//! Cross-node hops of the distributed traversal are [`QueryOp`] records.
//! Within one executor flush, every record a node produces for one
//! destination is coalesced into a single [`QueryBatch`] frame — the same
//! per-(source, destination) discipline as the engine's `DeltaBatch` delta
//! shipping and the shard router's `MaintBatch` exchange: fixed-width record
//! headers, interned identifiers priced at 4 bytes, and each identifier's
//! string shipped to a destination exactly once, in the dictionary header of
//! the first frame that references it.
//!
//! Requests are tiny and string-free (ids and digests only); responses carry
//! completed proof subtrees, whose interned rule/node/relation names are what
//! the dictionary headers pay for.
//!
//! With cross-session merging on (`QueryExecutor::set_frame_merging`), one
//! frame may carry records from several concurrent sessions: each session's
//! records stay contiguous and in staging order, sessions appear in
//! first-staging order, and the frame's dictionary header is the union of
//! first-use entries across all of them — charged to the destination once,
//! however many sessions reference the same symbol. Receivers need no new
//! decoding logic: every record still names its session via [`QueryOp::qid`].

use crate::query::api::{ProofTree, RuleExecNode};
use crate::store::{collect_addr_names, RuleExecId};
use nt_runtime::{NodeId, Sym, Tuple, TupleId};
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;

/// One record of the query protocol. `qid` names the session, `frame` the
/// continuation in the session's frame arena that the record targets (the
/// remote frame to start for requests, the awaiting frame to resume for
/// responses).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum QueryOp {
    /// Expand the proof tree of `vid`, whose `prov` entries live at the
    /// destination (the initial querier → home hop). `path` carries the
    /// ancestor vertices of the traversal for distributed cycle detection.
    ExpandVertex {
        /// Session id.
        qid: u64,
        /// Frame to start at the destination.
        frame: u32,
        /// Vertex to expand.
        vid: TupleId,
        /// Depth of the vertex in the traversal.
        depth: u32,
        /// Ancestor vertices (cycle guard).
        path: Vec<TupleId>,
    },
    /// Expand rule execution `rid` stored at the destination, including the
    /// proof subtrees of its input tuples (which are local to the executing
    /// node).
    ExpandExec {
        /// Session id.
        qid: u64,
        /// Frame to start at the destination.
        frame: u32,
        /// Rule execution to expand.
        rid: RuleExecId,
        /// Depth of the requesting vertex.
        depth: u32,
        /// Ancestor vertices (cycle guard).
        path: Vec<TupleId>,
    },
    /// Completed vertex subtree, returned to the awaiting frame.
    VertexDone {
        /// Session id.
        qid: u64,
        /// Awaiting frame at the destination.
        frame: u32,
        /// The completed subtree.
        tree: ProofTree,
    },
    /// Completed rule-execution subtree (`None` when the rid is unknown at
    /// the responding node), returned to the awaiting frame.
    ExecDone {
        /// Session id.
        qid: u64,
        /// Awaiting frame at the destination.
        frame: u32,
        /// The completed subtree, if the execution was found.
        exec: Option<RuleExecNode>,
    },
    /// Abandon all of the session's outstanding work at the destination
    /// (cancellation / pruning propagation): in-progress frames there are
    /// dropped and produce no further responses.
    Cancel {
        /// Session id.
        qid: u64,
    },
}

impl QueryOp {
    /// Session the record belongs to.
    pub fn qid(&self) -> u64 {
        match self {
            QueryOp::ExpandVertex { qid, .. }
            | QueryOp::ExpandExec { qid, .. }
            | QueryOp::VertexDone { qid, .. }
            | QueryOp::ExecDone { qid, .. }
            | QueryOp::Cancel { qid } => *qid,
        }
    }

    /// True for records that ask the destination to do expansion work
    /// (carried in `NetMessage::QueryRequest` frames); false for completed
    /// subtrees travelling back (`NetMessage::QueryResponse`).
    pub fn is_request(&self) -> bool {
        matches!(
            self,
            QueryOp::ExpandVertex { .. } | QueryOp::ExpandExec { .. } | QueryOp::Cancel { .. }
        )
    }

    /// Wire size of the record body in the interned encoding: a 1-byte tag,
    /// an 8-byte session id and a 4-byte frame id, plus the variant payload —
    /// 8-byte digests/vids (with 8 bytes per path ancestor) for requests,
    /// the interned subtree payload for responses. Dictionary cost is
    /// carried by the batch header ([`QueryBatch::header_bytes`]), not here.
    pub fn wire_size(&self) -> usize {
        let header = 1 + 8 + 4;
        header
            + match self {
                QueryOp::ExpandVertex { path, .. } => 8 + 4 + 8 * path.len(),
                QueryOp::ExpandExec { path, .. } => 8 + 4 + 8 * path.len(),
                QueryOp::VertexDone { tree, .. } => tree_wire_size(tree),
                QueryOp::ExecDone { exec, .. } => {
                    1 + exec.as_ref().map(exec_wire_size).unwrap_or(0)
                }
                QueryOp::Cancel { .. } => 0,
            }
    }

    /// The interned strings a receiver must know to decode this record.
    pub fn dictionary(&self, out: &mut BTreeSet<&'static str>) {
        match self {
            QueryOp::ExpandVertex { .. } | QueryOp::ExpandExec { .. } | QueryOp::Cancel { .. } => {}
            QueryOp::VertexDone { tree, .. } => tree_dictionary(tree, out),
            QueryOp::ExecDone { exec, .. } => {
                if let Some(exec) = exec {
                    exec_dictionary(exec, out);
                }
            }
        }
    }
}

/// One executor flush's records from one node to another, sealed for
/// shipment behind the dictionary entries the destination has not been sent
/// before.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QueryBatch {
    /// Sending node.
    pub from: NodeId,
    /// Receiving node.
    pub to: NodeId,
    /// Dictionary entries first shipped to `to` by this frame, in sorted
    /// order.
    pub dict: Vec<String>,
    /// The records.
    pub ops: Vec<QueryOp>,
}

impl QueryBatch {
    /// Bytes of the dictionary header: one shared pricing rule
    /// ([`nt_runtime::dict_entry_wire_size`]) with `DeltaBatch` headers,
    /// `MaintBatch` headers and snapshot dictionaries.
    pub fn header_bytes(&self) -> usize {
        self.dict
            .iter()
            .map(|s| nt_runtime::dict_entry_wire_size(s))
            .sum()
    }

    /// Bytes of the record bodies.
    pub fn body_bytes(&self) -> usize {
        self.ops.iter().map(QueryOp::wire_size).sum()
    }

    /// Total priced payload: dictionary header + record bodies.
    pub fn wire_size(&self) -> usize {
        self.header_bytes() + self.body_bytes()
    }

    /// Number of records in the frame.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// True when the frame carries no records.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// True when every record is a request (frames are homogeneous: the
    /// executor never mixes directions within one frame, even when merging
    /// sessions — direction is part of the merge key).
    pub fn is_request(&self) -> bool {
        self.ops.iter().all(QueryOp::is_request)
    }

    /// Number of distinct sessions whose records ride this frame. `1` for
    /// every frame under per-session sealing; merged frames report how many
    /// concurrent sessions shared this shipment (and its dictionary header).
    pub fn session_count(&self) -> usize {
        let mut qids: Vec<u64> = self.ops.iter().map(QueryOp::qid).collect();
        qids.sort_unstable();
        qids.dedup();
        qids.len()
    }
}

/// Wire size of a proof subtree in the interned encoding: per tuple vertex
/// an 8-byte vid, 4-byte home id and 2 flag bytes plus the optional tuple
/// payload; per rule-execution vertex an 8-byte rid and 4-byte rule/node
/// ids.
pub fn tree_wire_size(tree: &ProofTree) -> usize {
    8 + NodeId::WIRE_SIZE
        + 2
        + tree.tuple.as_ref().map(Tuple::wire_size).unwrap_or(0)
        + tree.derivations.iter().map(exec_wire_size).sum::<usize>()
}

/// Wire size of a rule-execution subtree (see [`tree_wire_size`]).
pub fn exec_wire_size(exec: &RuleExecNode) -> usize {
    8 + Sym::WIRE_SIZE + NodeId::WIRE_SIZE + exec.inputs.iter().map(tree_wire_size).sum::<usize>()
}

/// Collect the interned strings referenced by a proof subtree.
pub fn tree_dictionary(tree: &ProofTree, out: &mut BTreeSet<&'static str>) {
    out.insert(tree.home.as_str());
    if let Some(tuple) = &tree.tuple {
        out.insert(tuple.relation.as_str());
        collect_addr_names(&tuple.values, out);
    }
    for d in &tree.derivations {
        exec_dictionary(d, out);
    }
}

/// Collect the interned strings referenced by a rule-execution subtree.
pub fn exec_dictionary(exec: &RuleExecNode, out: &mut BTreeSet<&'static str>) {
    out.insert(exec.rule.as_str());
    out.insert(exec.node.as_str());
    for input in &exec.inputs {
        tree_dictionary(input, out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nt_runtime::Value;

    fn leaf(rel: &str, node: &str, x: i64) -> ProofTree {
        let tuple = Tuple::new(rel, vec![Value::addr(node), Value::Int(x)]);
        ProofTree {
            vid: tuple.id(),
            tuple: Some(tuple),
            home: NodeId::new(node),
            is_base: true,
            derivations: Vec::new(),
            pruned: false,
        }
    }

    #[test]
    fn request_records_are_fixed_width_plus_path() {
        let op = QueryOp::ExpandExec {
            qid: 1,
            frame: 2,
            rid: RuleExecId(9),
            depth: 3,
            path: vec![TupleId(1), TupleId(2)],
        };
        assert_eq!(op.wire_size(), (1 + 8 + 4) + 8 + 4 + 16);
        assert!(op.is_request());
        let mut dict = BTreeSet::new();
        op.dictionary(&mut dict);
        assert!(dict.is_empty(), "requests ship no strings");
    }

    #[test]
    fn response_records_price_the_subtree_and_name_its_strings() {
        let tree = leaf("link", "n1", 7);
        let tuple_bytes = tree.tuple.as_ref().unwrap().wire_size();
        let op = QueryOp::VertexDone {
            qid: 1,
            frame: 0,
            tree: tree.clone(),
        };
        assert_eq!(op.wire_size(), (1 + 8 + 4) + 8 + 4 + 2 + tuple_bytes);
        assert!(!op.is_request());
        let mut dict = BTreeSet::new();
        op.dictionary(&mut dict);
        for name in ["link", "n1"] {
            assert!(dict.contains(name), "{name} missing from dictionary");
        }
    }

    #[test]
    fn batches_price_header_and_bodies_separately() {
        let batch = QueryBatch {
            from: NodeId::new("n1"),
            to: NodeId::new("n2"),
            dict: vec!["link".to_string()],
            ops: vec![
                QueryOp::Cancel { qid: 4 },
                QueryOp::ExecDone {
                    qid: 4,
                    frame: 1,
                    exec: None,
                },
            ],
        };
        assert_eq!(batch.header_bytes(), 4 + 4 + 4);
        assert_eq!(batch.body_bytes(), (1 + 8 + 4) + (1 + 8 + 4) + 1);
        assert_eq!(batch.wire_size(), batch.header_bytes() + batch.body_bytes());
        assert_eq!(batch.len(), 2);
        assert!(!batch.is_empty());
        assert!(!batch.is_request(), "mixed frames count as responses");
        assert_eq!(batch.ops[0].qid(), 4);
    }

    #[test]
    fn session_count_reports_distinct_qids() {
        let mut batch = QueryBatch {
            from: NodeId::new("n1"),
            to: NodeId::new("n2"),
            dict: Vec::new(),
            ops: vec![QueryOp::Cancel { qid: 4 }, QueryOp::Cancel { qid: 4 }],
        };
        assert_eq!(batch.session_count(), 1);
        batch.ops.push(QueryOp::Cancel { qid: 9 });
        assert_eq!(batch.session_count(), 2, "merged frames count sessions");
    }
}
