//! A centralized view of the distributed provenance graph.
//!
//! NetTrails keeps provenance distributed, but "some state needs to be
//! centralized to facilitate the visualization of provenance queries and
//! results" (Section 2.3): per-node provenance is periodically captured in
//! snapshots and propagated to the Log Store at the visualization node. This
//! module builds that centralized graph — the acyclic graph G(V,E) with tuple
//! vertices and rule-execution vertices — from a [`ProvenanceSystem`], for
//! consumption by the `vis` crate (DOT export, hypertree layout) and the
//! `logstore` crate (snapshots).

use crate::store::RuleExecId;
use crate::system::ProvenanceSystem;
use nt_runtime::{Addr, NodeId, Sym, Tuple, TupleId};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, HashMap};

/// A vertex of the provenance graph.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ProvVertex {
    /// A tuple vertex (base tuple or computation result).
    Tuple {
        /// Tuple identifier.
        vid: TupleId,
        /// Tuple contents when known.
        tuple: Option<Tuple>,
        /// Node where the tuple lives (interned).
        home: NodeId,
        /// True when the tuple has a base derivation.
        is_base: bool,
    },
    /// A rule-execution vertex.
    RuleExec {
        /// Execution identifier.
        rid: RuleExecId,
        /// Rule name (interned).
        rule: Sym,
        /// Node where the rule fired (interned).
        node: NodeId,
    },
}

impl ProvVertex {
    /// A short label for display.
    pub fn label(&self) -> String {
        match self {
            ProvVertex::Tuple { tuple, vid, .. } => tuple
                .as_ref()
                .map(|t| t.to_string())
                .unwrap_or_else(|| vid.to_string()),
            ProvVertex::RuleExec { rule, node, .. } => format!("{rule}@{node}"),
        }
    }

    /// The node the vertex is stored at.
    pub fn location(&self) -> &str {
        self.location_id().as_str()
    }

    /// The interned id of the node the vertex is stored at.
    pub fn location_id(&self) -> NodeId {
        match self {
            ProvVertex::Tuple { home, .. } => *home,
            ProvVertex::RuleExec { node, .. } => *node,
        }
    }
}

/// Identifier of a vertex in the assembled graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum VertexId {
    /// A tuple vertex.
    Tuple(TupleId),
    /// A rule-execution vertex.
    RuleExec(RuleExecId),
}

/// A directed edge of the provenance graph (dataflow direction: from inputs
/// toward outputs).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub struct ProvEdge {
    /// Source vertex.
    pub from: VertexId,
    /// Destination vertex.
    pub to: VertexId,
}

/// The assembled, centralized provenance graph.
///
/// Adjacency is materialized as posting lists (`out_adj`/`in_adj`), so
/// [`ProvGraph::successors`] / [`ProvGraph::predecessors`] are O(degree)
/// lookups instead of a scan over every edge. The lists are derived data:
/// they are skipped by serialization and rebuilt on demand (equality compares
/// vertices and edges only).
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct ProvGraph {
    /// Vertices keyed by identifier. Serialized as an entry list so the graph
    /// can be embedded in JSON snapshots (JSON maps need string keys).
    #[serde(
        serialize_with = "serialize_vertices",
        deserialize_with = "deserialize_vertices"
    )]
    pub vertices: BTreeMap<VertexId, ProvVertex>,
    /// Edges (deduplicated, deterministic order).
    pub edges: Vec<ProvEdge>,
    /// Posting lists: vertex -> successors (dataflow direction).
    #[serde(skip)]
    out_adj: HashMap<VertexId, Vec<VertexId>>,
    /// Posting lists: vertex -> predecessors.
    #[serde(skip)]
    in_adj: HashMap<VertexId, Vec<VertexId>>,
}

impl PartialEq for ProvGraph {
    fn eq(&self, other: &Self) -> bool {
        self.vertices == other.vertices && self.edges == other.edges
    }
}

fn serialize_vertices<S>(
    vertices: &BTreeMap<VertexId, ProvVertex>,
    serializer: S,
) -> Result<S::Ok, S::Error>
where
    S: serde::Serializer,
{
    serializer.collect_seq(vertices.iter())
}

fn deserialize_vertices<'de, D>(deserializer: D) -> Result<BTreeMap<VertexId, ProvVertex>, D::Error>
where
    D: serde::Deserializer<'de>,
{
    let entries = Vec::<(VertexId, ProvVertex)>::deserialize(deserializer)?;
    Ok(entries.into_iter().collect())
}

impl ProvVertex {
    /// Approximate upload cost of shipping this vertex in a snapshot: the
    /// identifier, the interned location id, flags, and (for known tuples)
    /// the tuple payload. Names travel once in the snapshot dictionary.
    pub fn wire_size(&self) -> usize {
        match self {
            ProvVertex::Tuple { tuple, .. } => {
                8 + 4 + 1 + tuple.as_ref().map(Tuple::wire_size).unwrap_or(0)
            }
            ProvVertex::RuleExec { .. } => 8 + 4 + 4,
        }
    }
}

impl ProvGraph {
    /// Assemble the centralized graph from every node's provenance store.
    pub fn from_system(system: &ProvenanceSystem) -> Self {
        let mut graph = ProvGraph::default();
        // Tuple vertices from prov tables.
        for store in system.stores() {
            for (vid, entries) in store.iter_prov() {
                let is_base = entries.iter().any(|e| e.is_base());
                graph.vertices.insert(
                    VertexId::Tuple(vid),
                    ProvVertex::Tuple {
                        vid,
                        tuple: system.tuple(vid).cloned(),
                        home: store.node,
                        is_base,
                    },
                );
            }
        }
        // Rule-execution vertices and edges.
        for store in system.stores() {
            for exec in store.iter_rule_execs() {
                let rid = VertexId::RuleExec(exec.rid);
                graph.vertices.insert(
                    rid,
                    ProvVertex::RuleExec {
                        rid: exec.rid,
                        rule: exec.rule,
                        node: exec.node,
                    },
                );
                for input in &exec.inputs {
                    // Input tuples may live on the executing node but it is
                    // possible the prov table hasn't a vertex (pruned); add a
                    // placeholder vertex so the edge renders.
                    graph
                        .vertices
                        .entry(VertexId::Tuple(*input))
                        .or_insert_with(|| ProvVertex::Tuple {
                            vid: *input,
                            tuple: system.tuple(*input).cloned(),
                            home: exec.node,
                            is_base: false,
                        });
                    graph.edges.push(ProvEdge {
                        from: VertexId::Tuple(*input),
                        to: rid,
                    });
                }
            }
            // Edges from rule executions to the tuples they derive.
            for (vid, entries) in store.iter_prov() {
                for entry in entries {
                    if let Some(rid) = entry.rid {
                        graph.edges.push(ProvEdge {
                            from: VertexId::RuleExec(rid),
                            to: VertexId::Tuple(vid),
                        });
                    }
                }
            }
        }
        graph.edges.sort();
        graph.edges.dedup();
        graph.rebuild_adjacency();
        graph
    }

    /// (Re)build the adjacency posting lists from `edges` (needed after
    /// deserialization, where they are skipped).
    pub fn rebuild_adjacency(&mut self) {
        self.out_adj.clear();
        self.in_adj.clear();
        for e in &self.edges {
            self.out_adj.entry(e.from).or_default().push(e.to);
            self.in_adj.entry(e.to).or_default().push(e.from);
        }
    }

    /// True when the posting lists are in sync with `edges`.
    fn adjacency_built(&self) -> bool {
        self.edges.is_empty() || !self.out_adj.is_empty()
    }

    /// Approximate upload cost of shipping the whole graph in a snapshot:
    /// every vertex plus two vertex ids per edge.
    pub fn wire_size(&self) -> usize {
        self.vertices
            .values()
            .map(ProvVertex::wire_size)
            .sum::<usize>()
            + self.edges.len() * 16
    }

    /// Number of tuple vertices.
    pub fn tuple_vertex_count(&self) -> usize {
        self.vertices
            .keys()
            .filter(|v| matches!(v, VertexId::Tuple(_)))
            .count()
    }

    /// Number of rule-execution vertices.
    pub fn rule_exec_count(&self) -> usize {
        self.vertices
            .keys()
            .filter(|v| matches!(v, VertexId::RuleExec(_)))
            .count()
    }

    /// Outgoing edges of a vertex (posting-list lookup; falls back to an
    /// edge scan when the lists have not been rebuilt after deserialization).
    pub fn successors(&self, v: VertexId) -> Vec<VertexId> {
        if self.adjacency_built() {
            return self.out_adj.get(&v).cloned().unwrap_or_default();
        }
        self.edges
            .iter()
            .filter(|e| e.from == v)
            .map(|e| e.to)
            .collect()
    }

    /// Incoming edges of a vertex (posting-list lookup with scan fallback).
    pub fn predecessors(&self, v: VertexId) -> Vec<VertexId> {
        if self.adjacency_built() {
            return self.in_adj.get(&v).cloned().unwrap_or_default();
        }
        self.edges
            .iter()
            .filter(|e| e.to == v)
            .map(|e| e.from)
            .collect()
    }

    /// Base tuple vertices (the graph's sources).
    pub fn base_vertices(&self) -> Vec<VertexId> {
        self.vertices
            .iter()
            .filter_map(|(id, v)| match v {
                ProvVertex::Tuple { is_base: true, .. } => Some(*id),
                _ => None,
            })
            .collect()
    }

    /// True when the graph contains no directed cycle (it never should; the
    /// check is used by property tests and by the log-store integrity check).
    pub fn is_acyclic(&self) -> bool {
        // Kahn's algorithm.
        let mut indegree: BTreeMap<VertexId, usize> =
            self.vertices.keys().map(|v| (*v, 0)).collect();
        for e in &self.edges {
            *indegree.entry(e.to).or_insert(0) += 1;
        }
        let mut queue: Vec<VertexId> = indegree
            .iter()
            .filter(|(_, d)| **d == 0)
            .map(|(v, _)| *v)
            .collect();
        let mut removed = 0usize;
        while let Some(v) = queue.pop() {
            removed += 1;
            for succ in self.successors(v) {
                let d = indegree.get_mut(&succ).expect("known vertex");
                *d -= 1;
                if *d == 0 {
                    queue.push(succ);
                }
            }
        }
        removed == indegree.len()
    }

    /// Per-node vertex counts (how the graph is partitioned across the
    /// network) — the distribution statistic shown in the demonstration.
    pub fn vertices_per_node(&self) -> BTreeMap<Addr, usize> {
        let mut out: BTreeMap<Addr, usize> = BTreeMap::new();
        for v in self.vertices.values() {
            *out.entry(v.location_id()).or_default() += 1;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nt_runtime::{Firing, Value, BASE_RULE};

    fn tuple(rel: &str, node: &str, x: i64) -> Tuple {
        Tuple::new(rel, vec![Value::addr(node), Value::Int(x)])
    }

    fn sample_system() -> ProvenanceSystem {
        let mut sys = ProvenanceSystem::new(["n1", "n2"]);
        let link = tuple("link", "n1", 5);
        let cost = tuple("cost", "n2", 5);
        sys.apply_firing(&Firing {
            rule: BASE_RULE.into(),
            node: "n1".into(),
            head: link.clone(),
            head_home: "n1".into(),
            inputs: vec![],
            input_tuples: vec![],
            insert: true,
        });
        sys.apply_firing(&Firing {
            rule: "r1".into(),
            node: "n1".into(),
            head: cost.clone(),
            head_home: "n2".into(),
            inputs: vec![link.id()],
            input_tuples: vec![link],
            insert: true,
        });
        sys
    }

    #[test]
    fn graph_has_tuple_and_rule_vertices_and_is_acyclic() {
        let sys = sample_system();
        let graph = ProvGraph::from_system(&sys);
        assert_eq!(graph.tuple_vertex_count(), 2);
        assert_eq!(graph.rule_exec_count(), 1);
        assert_eq!(graph.edges.len(), 2);
        assert!(graph.is_acyclic());
        assert_eq!(graph.base_vertices().len(), 1);
    }

    #[test]
    fn successors_and_predecessors_follow_dataflow() {
        let sys = sample_system();
        let graph = ProvGraph::from_system(&sys);
        let base = graph.base_vertices()[0];
        let succs = graph.successors(base);
        assert_eq!(succs.len(), 1);
        assert!(matches!(succs[0], VertexId::RuleExec(_)));
        let derived = graph.successors(succs[0]);
        assert_eq!(derived.len(), 1);
        assert_eq!(graph.predecessors(derived[0]), succs);
    }

    #[test]
    fn vertices_per_node_reports_partitioning() {
        let sys = sample_system();
        let graph = ProvGraph::from_system(&sys);
        let per_node = graph.vertices_per_node();
        // link + ruleExec at n1, cost at n2.
        assert_eq!(per_node[&NodeId::new("n1")], 2);
        assert_eq!(per_node[&NodeId::new("n2")], 1);
    }

    #[test]
    fn labels_show_tuple_contents_when_known() {
        let sys = sample_system();
        let graph = ProvGraph::from_system(&sys);
        let labels: Vec<String> = graph.vertices.values().map(ProvVertex::label).collect();
        assert!(labels.iter().any(|l| l.contains("link(n1,5)")));
        assert!(labels.iter().any(|l| l.contains("r1@n1")));
    }
}
