//! The distributed provenance query engine.
//!
//! Provenance queries are issued against a tuple (identified by its VID and
//! home node) and traverse the distributed graph: the `prov` entries at the
//! tuple's home point to `ruleExec` records at the nodes where rules fired,
//! which in turn point to the input tuples whose `prov` entries live at those
//! same nodes, and so on until base tuples are reached.
//!
//! The engine answers the query types the paper demonstrates:
//!
//! * [`QueryKind::Lineage`] — the full proof tree of a tuple,
//! * [`QueryKind::BaseTuples`] — the set of contributing base tuples,
//! * [`QueryKind::ParticipatingNodes`] — "the set of all nodes that have been
//!   involved in the derivation of a given tuple",
//! * [`QueryKind::DerivationCount`] — "the total number of alternative
//!   derivations".
//!
//! and implements the three optimizations of Section 2.2: **caching** of
//! previously queried sub-results, **alternative tree-traversal orders**
//! (sequential depth-first vs. parallel breadth-first, which trades messages
//! in flight for latency), and **threshold-based pruning** (bounding the
//! number of alternative derivations expanded per vertex and the traversal
//! depth).
//!
//! Every cross-node hop is charged to the `"prov-query"` traffic category, so
//! the benchmarks can show — as the demonstration does — that the
//! optimizations "effectively reduce the network traffic".

use crate::store::RuleExecId;
use crate::system::ProvenanceSystem;
use nt_runtime::{Addr, NodeId, Sym, Tuple, TupleId};
use serde::{Deserialize, Serialize};
use simnet::TrafficStats;
use std::collections::{BTreeSet, HashMap, HashSet};

/// Traffic category used for provenance query messages.
pub const QUERY_CATEGORY: &str = "prov-query";

/// Which provenance question to ask.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum QueryKind {
    /// Full proof tree (lineage).
    Lineage,
    /// Set of contributing base tuples.
    BaseTuples,
    /// Set of nodes that participated in any derivation.
    ParticipatingNodes,
    /// Number of alternative derivations (proof trees).
    DerivationCount,
}

/// Order in which the distributed traversal visits the graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum TraversalOrder {
    /// Sequential depth-first traversal: one outstanding request at a time.
    /// Fewest simultaneous messages, highest latency.
    #[default]
    DepthFirst,
    /// Parallel breadth-first traversal: every child of a frontier is queried
    /// concurrently. Latency grows with the *depth* of the proof tree instead
    /// of its size.
    BreadthFirst,
}

/// Query execution options (the paper's optimization knobs).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QueryOptions {
    /// Reuse cached sub-results from previous queries.
    pub use_cache: bool,
    /// Traversal order.
    pub traversal: TraversalOrder,
    /// Expand at most this many alternative derivations per tuple vertex
    /// (threshold-based pruning); `None` = expand everything.
    pub max_derivations_per_vertex: Option<usize>,
    /// Stop descending below this depth (rule executions count one level);
    /// `None` = unbounded.
    pub max_depth: Option<usize>,
    /// Round-trip time charged per cross-node hop, in milliseconds (used for
    /// the latency estimate reported in [`QueryStats`]).
    pub hop_rtt_ms: f64,
}

impl Default for QueryOptions {
    fn default() -> Self {
        QueryOptions {
            use_cache: false,
            traversal: TraversalOrder::DepthFirst,
            max_derivations_per_vertex: None,
            max_depth: None,
            hop_rtt_ms: 2.0,
        }
    }
}

impl QueryOptions {
    /// Options with caching enabled.
    pub fn cached() -> Self {
        QueryOptions {
            use_cache: true,
            ..QueryOptions::default()
        }
    }
}

/// A proof tree: the lineage of a tuple.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ProofTree {
    /// The tuple vertex.
    pub vid: TupleId,
    /// Tuple contents, when known to the provenance system.
    pub tuple: Option<Tuple>,
    /// Node where the tuple lives (interned).
    pub home: NodeId,
    /// True when the tuple is a base tuple at this vertex (it may *also* have
    /// rule derivations).
    pub is_base: bool,
    /// One entry per (expanded) derivation.
    pub derivations: Vec<RuleExecNode>,
    /// True when pruning cut the expansion at this vertex.
    pub pruned: bool,
}

/// A rule-execution vertex in a proof tree.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RuleExecNode {
    /// Identifier of the rule execution.
    pub rid: RuleExecId,
    /// Rule name (interned).
    pub rule: Sym,
    /// Node where the rule executed (interned).
    pub node: NodeId,
    /// Sub-trees for every input tuple, in body order.
    pub inputs: Vec<ProofTree>,
}

impl ProofTree {
    /// Total number of vertices (tuple + rule-execution) in the tree.
    pub fn size(&self) -> usize {
        1 + self
            .derivations
            .iter()
            .map(|d| 1 + d.inputs.iter().map(ProofTree::size).sum::<usize>())
            .sum::<usize>()
    }

    /// Depth of the tree in tuple-vertex levels.
    pub fn depth(&self) -> usize {
        1 + self
            .derivations
            .iter()
            .flat_map(|d| d.inputs.iter().map(ProofTree::depth))
            .max()
            .unwrap_or(0)
    }

    /// Leaves of the tree that are base tuples.
    pub fn base_leaves(&self) -> Vec<&ProofTree> {
        let mut out = Vec::new();
        self.collect_base_leaves(&mut out);
        out
    }

    fn collect_base_leaves<'a>(&'a self, out: &mut Vec<&'a ProofTree>) {
        if self.is_base {
            out.push(self);
        }
        for d in &self.derivations {
            for input in &d.inputs {
                input.collect_base_leaves(out);
            }
        }
    }
}

/// Result of a provenance query.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum QueryResult {
    /// Lineage result.
    Lineage(ProofTree),
    /// Contributing base tuple identifiers (with contents when known).
    BaseTuples(Vec<(TupleId, Option<Tuple>)>),
    /// Participating node names.
    ParticipatingNodes(BTreeSet<Addr>),
    /// Number of alternative derivations.
    DerivationCount(u64),
}

/// Work and traffic measurements for a single query.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct QueryStats {
    /// Cross-node messages exchanged (requests + replies).
    pub messages: u64,
    /// Bytes exchanged.
    pub bytes: u64,
    /// Vertices visited.
    pub vertices_visited: u64,
    /// Cache hits (sub-results reused).
    pub cache_hits: u64,
    /// Estimated completion latency in milliseconds (depends on the traversal
    /// order).
    pub latency_ms: f64,
}

#[derive(Debug, Clone, PartialEq)]
struct CachedSubtree {
    tree: ProofTree,
    /// Messages that were needed to compute the subtree originally (used to
    /// report savings).
    messages_saved: u64,
}

/// The distributed provenance query processor.
///
/// The engine borrows the [`ProvenanceSystem`] immutably for each query and
/// keeps its own per-node result cache across queries, mirroring ExSPAN's
/// "caching previously queried results" optimization.
#[derive(Debug, Default)]
pub struct QueryEngine {
    /// Per-node cache keyed by fixed-width ids: (vid, node) -> cached lineage
    /// subtree. Hashing a key is two integer writes; no string is cloned or
    /// hashed anywhere on the query path.
    cache: HashMap<(TupleId, NodeId), CachedSubtree>,
    /// Cumulative traffic across queries.
    traffic: TrafficStats,
}

impl QueryEngine {
    /// Create an engine with an empty cache.
    pub fn new() -> Self {
        QueryEngine::default()
    }

    /// Cumulative query traffic (all queries so far).
    pub fn traffic(&self) -> &TrafficStats {
        &self.traffic
    }

    /// Clear the result cache.
    pub fn clear_cache(&mut self) {
        self.cache.clear();
    }

    /// Number of cached subtrees.
    pub fn cache_size(&self) -> usize {
        self.cache.len()
    }

    /// Run a query of `kind` for the tuple `target`, issued from `querier`.
    ///
    /// The tuple's home node is looked up in the provenance system; an
    /// unknown tuple yields an empty result.
    pub fn query(
        &mut self,
        system: &ProvenanceSystem,
        querier: &str,
        target: &Tuple,
        kind: QueryKind,
        options: &QueryOptions,
    ) -> (QueryResult, QueryStats) {
        self.query_vid(system, querier, target.id(), kind, options)
    }

    /// Run a query addressed directly by VID.
    pub fn query_vid(
        &mut self,
        system: &ProvenanceSystem,
        querier: &str,
        vid: TupleId,
        kind: QueryKind,
        options: &QueryOptions,
    ) -> (QueryResult, QueryStats) {
        let querier = NodeId::new(querier);
        let mut stats = QueryStats::default();
        let home = system.vertex_home(vid).unwrap_or(querier);
        // The querying node contacts the tuple's home node.
        if home != querier {
            self.charge(&mut stats, querier, home, 64, options);
        }
        let mut visited = HashSet::new();
        let tree = self.expand(system, home, vid, 0, options, &mut stats, &mut visited);
        let result = match kind {
            QueryKind::Lineage => QueryResult::Lineage(tree),
            QueryKind::BaseTuples => {
                let mut out: Vec<(TupleId, Option<Tuple>)> = tree
                    .base_leaves()
                    .iter()
                    .map(|t| (t.vid, t.tuple.clone()))
                    .collect();
                out.sort_by_key(|(vid, _)| *vid);
                out.dedup_by_key(|(vid, _)| *vid);
                QueryResult::BaseTuples(out)
            }
            QueryKind::ParticipatingNodes => {
                let mut nodes = BTreeSet::new();
                collect_nodes(&tree, &mut nodes);
                QueryResult::ParticipatingNodes(nodes)
            }
            QueryKind::DerivationCount => QueryResult::DerivationCount(count_derivations(&tree)),
        };
        (result, stats)
    }

    /// Expand the proof tree of `vid`, whose `prov` entries live at `node`.
    #[allow(clippy::too_many_arguments)]
    fn expand(
        &mut self,
        system: &ProvenanceSystem,
        node: NodeId,
        vid: TupleId,
        depth: usize,
        options: &QueryOptions,
        stats: &mut QueryStats,
        visited: &mut HashSet<TupleId>,
    ) -> ProofTree {
        stats.vertices_visited += 1;
        let tuple = system.tuple(vid).cloned();
        if options.use_cache {
            if let Some(cached) = self.cache.get(&(vid, node)) {
                stats.cache_hits += 1;
                return cached.tree.clone();
            }
        }
        let mut tree = ProofTree {
            vid,
            tuple,
            home: node,
            is_base: false,
            derivations: Vec::new(),
            pruned: false,
        };
        // Cycle guard (the provenance graph is acyclic by construction, but a
        // malformed store must not hang the query engine).
        if !visited.insert(vid) {
            return tree;
        }
        if let Some(max_depth) = options.max_depth {
            if depth >= max_depth {
                tree.pruned = true;
                visited.remove(&vid);
                return tree;
            }
        }
        let messages_before = stats.messages;
        let entries = system
            .store(node)
            .map(|s| s.prov_entries(vid))
            .unwrap_or_default();
        let mut expanded = 0usize;
        let mut frontier_hops: Vec<f64> = Vec::new();
        for entry in &entries {
            if entry.is_base() {
                tree.is_base = true;
                continue;
            }
            if let Some(limit) = options.max_derivations_per_vertex {
                if expanded >= limit {
                    tree.pruned = true;
                    break;
                }
            }
            expanded += 1;
            let rid = entry.rid.expect("non-base entry has rid");
            // Fetch the ruleExec record from the node where the rule fired.
            if entry.rloc != node {
                self.charge(stats, node, entry.rloc, 96, options);
                frontier_hops.push(options.hop_rtt_ms);
            }
            let Some(exec) = system.store(entry.rloc).and_then(|s| s.rule_exec(rid)) else {
                continue;
            };
            let mut exec_node = RuleExecNode {
                rid,
                rule: exec.rule,
                node: exec.node,
                inputs: Vec::new(),
            };
            // Inputs are local to the executing node: recurse there.
            for input in &exec.inputs {
                let subtree = self.expand(
                    system,
                    entry.rloc,
                    *input,
                    depth + 1,
                    options,
                    stats,
                    visited,
                );
                exec_node.inputs.push(subtree);
            }
            tree.derivations.push(exec_node);
        }
        visited.remove(&vid);
        if options.use_cache && !tree.pruned {
            self.cache.insert(
                (vid, node),
                CachedSubtree {
                    tree: tree.clone(),
                    messages_saved: stats.messages - messages_before,
                },
            );
        }
        // Latency model: depth-first pays every hop sequentially; breadth-first
        // overlaps the hops of sibling derivations.
        match options.traversal {
            TraversalOrder::DepthFirst => {
                stats.latency_ms += frontier_hops.iter().sum::<f64>();
            }
            TraversalOrder::BreadthFirst => {
                stats.latency_ms += frontier_hops.iter().cloned().fold(0.0, f64::max);
            }
        }
        tree
    }

    fn charge(
        &mut self,
        stats: &mut QueryStats,
        from: NodeId,
        to: NodeId,
        bytes: usize,
        _options: &QueryOptions,
    ) {
        // Request + reply.
        stats.messages += 2;
        stats.bytes += (bytes + 64) as u64;
        self.traffic.record(&from, &to, QUERY_CATEGORY, bytes);
        self.traffic.record(&to, &from, QUERY_CATEGORY, 64);
    }
}

fn collect_nodes(tree: &ProofTree, out: &mut BTreeSet<Addr>) {
    out.insert(tree.home);
    for d in &tree.derivations {
        out.insert(d.node);
        for input in &d.inputs {
            collect_nodes(input, out);
        }
    }
}

/// Number of alternative derivations (proof trees) represented by a lineage
/// tree: base vertices contribute one derivation, every rule execution
/// contributes the product of its inputs' counts, and a tuple's count is the
/// sum over its derivations.
fn count_derivations(tree: &ProofTree) -> u64 {
    let mut count: u64 = if tree.is_base { 1 } else { 0 };
    for d in &tree.derivations {
        let mut product = 1u64;
        for input in &d.inputs {
            product = product.saturating_mul(count_derivations(input).max(1));
        }
        count = count.saturating_add(product);
    }
    if count == 0 && tree.pruned {
        // A pruned vertex still represents at least one derivation.
        1
    } else {
        count
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nt_runtime::{Firing, Value, BASE_RULE};

    fn tuple(rel: &str, node: &str, x: i64) -> Tuple {
        Tuple::new(rel, vec![Value::addr(node), Value::Int(x)])
    }

    fn base(sys: &mut ProvenanceSystem, t: &Tuple, node: &str) {
        sys.apply_firing(&Firing {
            rule: BASE_RULE.into(),
            node: node.into(),
            head: t.clone(),
            head_home: node.into(),
            inputs: vec![],
            input_tuples: vec![],
            insert: true,
        });
    }

    fn derive(
        sys: &mut ProvenanceSystem,
        rule: &str,
        exec: &str,
        head: &Tuple,
        home: &str,
        inputs: &[Tuple],
    ) {
        sys.apply_firing(&Firing {
            rule: rule.into(),
            node: exec.into(),
            head: head.clone(),
            head_home: home.into(),
            inputs: inputs.iter().map(Tuple::id).collect(),
            input_tuples: inputs.to_vec(),
            insert: true,
        });
    }

    /// Build a 3-level distributed provenance graph:
    ///   base link@n1, link@n2
    ///   cost@n2 derived at n1 from link@n1
    ///   best@n3 derived at n2 from cost@n2 and link@n2  (two alternatives)
    fn sample_system() -> (ProvenanceSystem, Tuple) {
        let mut sys = ProvenanceSystem::new(["n1", "n2", "n3"]);
        let l1 = tuple("link", "n1", 1);
        let l2 = tuple("link", "n2", 2);
        let cost = tuple("cost", "n2", 3);
        let best = tuple("best", "n3", 3);
        base(&mut sys, &l1, "n1");
        base(&mut sys, &l2, "n2");
        derive(&mut sys, "r1", "n1", &cost, "n2", std::slice::from_ref(&l1));
        derive(
            &mut sys,
            "r2",
            "n2",
            &best,
            "n3",
            &[cost.clone(), l2.clone()],
        );
        // An alternative derivation of `best` directly from l2.
        derive(&mut sys, "r3", "n2", &best, "n3", std::slice::from_ref(&l2));
        (sys, best)
    }

    #[test]
    fn lineage_builds_the_full_proof_tree() {
        let (sys, best) = sample_system();
        let mut qe = QueryEngine::new();
        let (result, stats) = qe.query(
            &sys,
            "n3",
            &best,
            QueryKind::Lineage,
            &QueryOptions::default(),
        );
        let QueryResult::Lineage(tree) = result else {
            panic!("expected lineage");
        };
        assert_eq!(tree.vid, best.id());
        assert_eq!(tree.derivations.len(), 2);
        assert!(tree.depth() >= 3);
        assert!(stats.vertices_visited >= 4);
        assert!(stats.messages > 0, "distributed traversal crosses nodes");
    }

    #[test]
    fn base_tuples_and_participating_nodes() {
        let (sys, best) = sample_system();
        let mut qe = QueryEngine::new();
        let (result, _) = qe.query(
            &sys,
            "n3",
            &best,
            QueryKind::BaseTuples,
            &QueryOptions::default(),
        );
        let QueryResult::BaseTuples(bases) = result else {
            panic!()
        };
        assert_eq!(bases.len(), 2, "two distinct base links contribute");

        let (result, _) = qe.query(
            &sys,
            "n3",
            &best,
            QueryKind::ParticipatingNodes,
            &QueryOptions::default(),
        );
        let QueryResult::ParticipatingNodes(nodes) = result else {
            panic!()
        };
        assert!(
            nodes.contains(&NodeId::new("n1"))
                && nodes.contains(&NodeId::new("n2"))
                && nodes.contains(&NodeId::new("n3"))
        );
    }

    #[test]
    fn derivation_count_counts_alternatives() {
        let (sys, best) = sample_system();
        let mut qe = QueryEngine::new();
        let (result, _) = qe.query(
            &sys,
            "n3",
            &best,
            QueryKind::DerivationCount,
            &QueryOptions::default(),
        );
        assert_eq!(result, QueryResult::DerivationCount(2));
    }

    #[test]
    fn caching_reduces_traffic_on_repeated_queries() {
        let (sys, best) = sample_system();
        let mut qe = QueryEngine::new();
        let opts = QueryOptions::cached();
        let (_, first) = qe.query(&sys, "n3", &best, QueryKind::Lineage, &opts);
        let (_, second) = qe.query(&sys, "n3", &best, QueryKind::Lineage, &opts);
        assert!(first.messages > 0);
        assert!(second.cache_hits > 0);
        assert!(
            second.messages < first.messages,
            "cached query saves traffic: {} vs {}",
            second.messages,
            first.messages
        );
        assert!(qe.cache_size() > 0);
        qe.clear_cache();
        assert_eq!(qe.cache_size(), 0);
    }

    #[test]
    fn pruning_limits_expansion() {
        let (sys, best) = sample_system();
        let mut qe = QueryEngine::new();
        let opts = QueryOptions {
            max_derivations_per_vertex: Some(1),
            ..QueryOptions::default()
        };
        let (result, pruned_stats) = qe.query(&sys, "n3", &best, QueryKind::Lineage, &opts);
        let QueryResult::Lineage(tree) = result else {
            panic!()
        };
        assert_eq!(tree.derivations.len(), 1);
        assert!(tree.pruned);

        let (_, full_stats) = qe.query(
            &sys,
            "n3",
            &best,
            QueryKind::Lineage,
            &QueryOptions::default(),
        );
        assert!(pruned_stats.messages < full_stats.messages);

        // Depth pruning.
        let opts = QueryOptions {
            max_depth: Some(1),
            ..QueryOptions::default()
        };
        let (result, _) = qe.query(&sys, "n3", &best, QueryKind::Lineage, &opts);
        let QueryResult::Lineage(tree) = result else {
            panic!()
        };
        assert!(tree.depth() <= 2);
    }

    #[test]
    fn breadth_first_traversal_has_lower_estimated_latency() {
        let (sys, best) = sample_system();
        let mut qe = QueryEngine::new();
        let dfs = QueryOptions {
            traversal: TraversalOrder::DepthFirst,
            ..QueryOptions::default()
        };
        let bfs = QueryOptions {
            traversal: TraversalOrder::BreadthFirst,
            ..QueryOptions::default()
        };
        let (_, dfs_stats) = qe.query(&sys, "n3", &best, QueryKind::Lineage, &dfs);
        let (_, bfs_stats) = qe.query(&sys, "n3", &best, QueryKind::Lineage, &bfs);
        assert_eq!(dfs_stats.messages, bfs_stats.messages, "same traffic");
        assert!(
            bfs_stats.latency_ms <= dfs_stats.latency_ms,
            "parallel traversal is not slower"
        );
    }

    #[test]
    fn unknown_tuples_yield_empty_results() {
        let (sys, _) = sample_system();
        let mut qe = QueryEngine::new();
        let ghost = tuple("ghost", "n9", 0);
        let (result, _) = qe.query(
            &sys,
            "n1",
            &ghost,
            QueryKind::DerivationCount,
            &QueryOptions::default(),
        );
        assert_eq!(result, QueryResult::DerivationCount(0));
    }
}
