//! # provenance — the ExSPAN network-provenance engine of NetTrails
//!
//! This crate reproduces the two halves of ExSPAN as described in the
//! NetTrails paper (Section 2.2):
//!
//! * the **maintenance engine** ([`store`], [`system`]) incrementally
//!   maintains the network provenance graph as distributed relational tables —
//!   `prov(@Loc, VID, RID, RLoc)` stored at each tuple's home node and
//!   `ruleExec(@RLoc, RID, Rule, VIDs)` stored at the node where the rule
//!   fired. The tables are fed by the rule-execution events
//!   ([`nt_runtime::Firing`]) emitted by the per-node engines; the NDlog-level
//!   view of the same construction is produced by the automatic
//!   [`rewrite`]r, mirroring the rule-rewriting algorithm of ExSPAN.
//! * the **distributed query engine** ([`query`]) traverses the distributed
//!   graph to answer customizable provenance queries — a tuple's full lineage
//!   (proof tree), the set of contributing base tuples, the set of
//!   participating nodes, and the number of alternative derivations — with the
//!   three optimizations highlighted in the paper: caching of previously
//!   queried results, alternative tree-traversal orders, and threshold-based
//!   pruning. Queries execute either as message-driven sessions over a real
//!   wire layer (the step-driven [`QueryExecutor`], `QueryMode::Distributed`)
//!   or through the legacy in-process recursion ([`QueryEngine`],
//!   `QueryMode::Local`), with a property suite proving the two bit-identical.
//!
//! The [`graph`] module assembles a global (centralized) view of the
//! distributed graph for the visualizer and the log store, matching the
//! "system snapshots propagated to a central Log Store" workflow of Section
//! 2.3.

pub mod graph;
pub mod proql;
pub mod query;
pub mod rewrite;
pub mod shard;
pub mod store;
pub mod system;

/// The process-wide persistent worker pool, hoisted into its own `nt-pool`
/// crate so the runtime's parallel fixpoint can share it without a dependency
/// cycle. Re-exported here so existing `provenance::pool::*` callers (the
/// sharded apply phase, the query executor pump) keep working unchanged.
pub use nt_pool as pool;

pub use graph::{ProvEdge, ProvGraph, ProvVertex, VertexId};
pub use proql::{parse_query as parse_proql, ProqlQuery, ProqlResult};
pub use query::{
    ProofTree, QueryBatch, QueryEngine, QueryExecutor, QueryHandle, QueryKind, QueryMode, QueryOp,
    QueryOptions, QueryResult, QuerySpec, QueryStats, RuleExecNode, TraversalOrder, QUERY_CATEGORY,
};
pub use rewrite::{rewrite_for_provenance, PROV_RELATION, RULE_EXEC_RELATION};
pub use shard::{MaintBatch, MaintRecord, ProvenanceShard, ShardStats, MAINTENANCE_CATEGORY};
pub use store::{ProvEntry, ProvStoreStats, ProvenanceStore, RuleExec, RuleExecId};
pub use system::{ProvenanceSystem, SystemStats};
