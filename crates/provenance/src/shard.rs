//! One shard of the partitioned provenance arena, plus the cross-shard
//! maintenance batch format.
//!
//! The [`crate::ProvenanceSystem`] router hashes every node into one of `S`
//! shards ([`nt_runtime::shard_route`] — a stable name hash shared with the
//! runtime's firing-stream tags) and re-homes each node's
//! [`ProvenanceStore`] inside its shard's dense arena. A round of firings is
//! then maintained in two steps:
//!
//! 1. **Route + exchange** (serial, cheap): the stream is partitioned by
//!    [`nt_runtime::Firing::home_shard`], each firing tagged with its stream
//!    sequence number. Firings whose executing node is homed on a different
//!    shard than their head get the `ruleExec` half of their maintenance
//!    work — a [`MaintRecord`] — shipped to the executing node's shard in a
//!    per-(source, destination) [`MaintBatch`]: fixed-width records behind a
//!    once-per-destination dictionary header, the same wire discipline as
//!    the engine's `DeltaBatch` delta shipping.
//! 2. **Apply** (parallel, scoped threads over disjoint `&mut` shard
//!    slices): each shard merge-applies its routed substream (the `prov`
//!    entry + head registration of each firing, plus the `ruleExec` half
//!    when the executing node is local) and its incoming [`MaintRecord`]s,
//!    in ascending sequence order.
//!
//! Determinism: every operation on one store happens at the shard that owns
//! it, and the sequence-ordered merge applies those operations in exactly
//! the order the sequential single-shard engine would. The resulting stores
//! — including the order-sensitive tuple display cache — are bit-identical
//! for every shard count; only the cross-shard exchange metrics
//! ([`ShardStats`]) vary with `S`.

use crate::store::{collect_addr_names, ProvEntry, ProvenanceStore, RuleExec, RuleExecId};
use nt_runtime::{Firing, NodeId, Sym, Tuple, TupleId};
use serde::{Deserialize, Serialize};
use simnet::TrafficStats;
use std::collections::{BTreeSet, HashMap};

/// Category name used for provenance-maintenance traffic.
pub const MAINTENANCE_CATEGORY: &str = "prov-maintenance";

/// The `ruleExec` half of a firing whose executing node is homed on another
/// shard: everything the destination shard needs to maintain its `ruleExec`
/// table and input-tuple display cache at the right stream position. A
/// fixed-width header (sequence number, polarity, rid, interned rule/node
/// ids) plus the input posting list and, for insertions, the input tuple
/// contents.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MaintRecord {
    /// Round-local stream sequence number of the originating firing; the
    /// destination shard merge-applies records and its own substream in
    /// ascending sequence order, reproducing the sequential schedule.
    pub seq: u32,
    /// True for a derivation, false for a retraction.
    pub insert: bool,
    /// Rule name (interned).
    pub rule: Sym,
    /// The executing node — the record's destination store.
    pub node: NodeId,
    /// Input tuple identifiers, in body order.
    pub inputs: Vec<TupleId>,
    /// Input tuple contents (empty for retractions, which carry only ids).
    pub input_tuples: Vec<Tuple>,
}

impl MaintRecord {
    /// Build the shippable `ruleExec` half of a derived firing. The caller
    /// (the router) is responsible for only doing this when the executing
    /// node is homed on a different shard than the head. The rule-execution
    /// id is *not* shipped: it is a stable digest of (rule, node, inputs),
    /// so the destination shard derives it — off the serial routing path and
    /// off the wire, exactly like delta-shipping receivers re-derive
    /// content-addressed identifiers.
    pub fn from_firing(seq: u32, firing: &Firing) -> Self {
        debug_assert!(firing.rule != nt_runtime::base_rule_sym());
        MaintRecord {
            seq,
            insert: firing.insert,
            rule: firing.rule,
            node: firing.node,
            inputs: firing.inputs.clone(),
            input_tuples: if firing.insert {
                firing.input_tuples.clone()
            } else {
                // Engines ship retractions without input tuple contents.
                Vec::new()
            },
        }
    }

    /// The rule-execution id this record maintains (derived, never shipped).
    pub fn rid(&self) -> RuleExecId {
        RuleExecId::compute(self.rule, self.node, &self.inputs)
    }

    /// Wire size of the record body in the interned encoding: 4-byte
    /// sequence number, 1-byte polarity, fixed-width rule/node ids, 8 bytes
    /// per input VID, plus the interned input-tuple payloads. Dictionary
    /// cost is carried by the batch header ([`MaintBatch::header_bytes`]),
    /// not here.
    pub fn wire_size(&self) -> usize {
        4 + 1
            + Sym::WIRE_SIZE
            + NodeId::WIRE_SIZE
            + 8 * self.inputs.len()
            + self
                .input_tuples
                .iter()
                .map(Tuple::wire_size)
                .sum::<usize>()
    }

    /// The interned strings a receiver must know to decode this record.
    pub(crate) fn dictionary(&self, out: &mut BTreeSet<&'static str>) {
        out.insert(self.rule.as_str());
        out.insert(self.node.as_str());
        for t in &self.input_tuples {
            out.insert(t.relation.as_str());
            collect_addr_names(&t.values, out);
        }
    }
}

/// One routing outbox sealed for shipment: every [`MaintRecord`] one source
/// shard produced for one destination shard during a round, behind the
/// dictionary entries the destination has not been sent before. Mirrors the
/// engine's `DeltaBatch` wire format (PR 3): fixed-width bodies, first-use
/// strings shipped once per destination, one framing unit per batch.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MaintBatch {
    /// Shard that produced the records.
    pub src_shard: usize,
    /// Shard that must apply them.
    pub dst_shard: usize,
    /// Dictionary entries first shipped to `dst_shard` by this batch, in
    /// sorted order.
    pub dict: Vec<String>,
    /// The records, in ascending sequence order.
    pub records: Vec<MaintRecord>,
}

impl MaintBatch {
    /// Bytes of the dictionary header: one shared pricing rule
    /// ([`nt_runtime::dict_entry_wire_size`]) with `DeltaBatch` headers and
    /// snapshot dictionaries.
    pub fn header_bytes(&self) -> usize {
        self.dict
            .iter()
            .map(|s| nt_runtime::dict_entry_wire_size(s))
            .sum()
    }

    /// Bytes of the record bodies.
    pub fn body_bytes(&self) -> usize {
        self.records.iter().map(MaintRecord::wire_size).sum()
    }

    /// Total priced payload: dictionary header + fixed-width record bodies.
    pub fn wire_size(&self) -> usize {
        self.header_bytes() + self.body_bytes()
    }

    /// Number of records in the batch.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True when the batch carries no records.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }
}

/// Cross-shard exchange metrics of the sharded maintenance engine. These are
/// the only numbers that legitimately vary with the shard count; the graph,
/// per-store digests and [`crate::SystemStats`] are shard-count-invariant.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ShardStats {
    /// Number of shards the arena is partitioned into.
    pub shards: usize,
    /// Rounds applied through the route/exchange/apply pipeline.
    pub phased_rounds: u64,
    /// Rounds whose apply phase actually ran on scoped worker threads
    /// (small rounds run the same phase inline).
    pub parallel_rounds: u64,
    /// Cross-shard maintenance batches sealed.
    pub cross_shard_batches: u64,
    /// Maintenance records those batches carried.
    pub cross_shard_records: u64,
    /// Fixed-width record-body bytes exchanged across shards.
    pub cross_shard_body_bytes: u64,
    /// Once-per-destination dictionary-header bytes exchanged across shards.
    pub cross_shard_dict_bytes: u64,
}

/// One shard of the provenance arena: the stores of every node whose stable
/// name hash routes here, in a dense creation-order arena (the same layout
/// the pre-sharding `ProvenanceSystem` used for the whole network).
#[derive(Debug, Clone, Default)]
pub struct ProvenanceShard {
    index: usize,
    stores: Vec<ProvenanceStore>,
    by_node: HashMap<NodeId, u32>,
}

impl ProvenanceShard {
    /// Create an empty shard.
    pub(crate) fn new(index: usize) -> Self {
        ProvenanceShard {
            index,
            ..ProvenanceShard::default()
        }
    }

    /// This shard's position in the router.
    pub fn index(&self) -> usize {
        self.index
    }

    /// Number of stores homed on this shard.
    pub fn len(&self) -> usize {
        self.stores.len()
    }

    /// True when no node is homed on this shard.
    pub fn is_empty(&self) -> bool {
        self.stores.is_empty()
    }

    /// The arena slot of a node's store, creating it if unknown.
    fn slot(&mut self, node: NodeId) -> usize {
        match self.by_node.get(&node) {
            Some(&slot) => slot as usize,
            None => {
                let slot = self.stores.len();
                self.stores.push(ProvenanceStore::new(node));
                self.by_node.insert(node, slot as u32);
                slot
            }
        }
    }

    /// Access a node's store (creating it lazily if unknown). The caller is
    /// responsible for routing: the node must hash to this shard.
    pub(crate) fn store_mut(&mut self, node: NodeId) -> &mut ProvenanceStore {
        let slot = self.slot(node);
        &mut self.stores[slot]
    }

    /// Access a node's store.
    pub(crate) fn store(&self, node: NodeId) -> Option<&ProvenanceStore> {
        self.by_node
            .get(&node)
            .map(|&slot| &self.stores[slot as usize])
    }

    /// Adopt a fully built store (snapshot restore path).
    pub(crate) fn insert_store(&mut self, store: ProvenanceStore) {
        let node = store.node;
        let slot = self.slot(node);
        self.stores[slot] = store;
    }

    /// Iterate over this shard's stores in arena (creation) order.
    pub fn stores(&self) -> impl Iterator<Item = &ProvenanceStore> {
        self.stores.iter()
    }

    /// Apply the home half of one firing: the `prov` entry and head-tuple
    /// registration at `head_home` (which must be homed on this shard), plus
    /// the `ruleExec` half when `exec_local` says the executing node lives
    /// here too (when it does not, the router has already shipped the
    /// corresponding [`MaintRecord`] to the owning shard).
    ///
    /// Cross-**node** maintenance traffic (the paper's E4 overhead metric) is
    /// recorded into `traffic` exactly as the single-shard engine does — that
    /// accounting is about node placement and is independent of sharding.
    pub(crate) fn apply_home(
        &mut self,
        firing: &Firing,
        exec_local: bool,
        traffic: &mut TrafficStats,
    ) {
        if firing.insert {
            self.apply_home_insert(firing, exec_local, traffic);
        } else {
            self.apply_home_retract(firing, exec_local, traffic);
        }
    }

    fn apply_home_insert(&mut self, firing: &Firing, exec_local: bool, traffic: &mut TrafficStats) {
        let vid = firing.head.id();
        if firing.rule == nt_runtime::base_rule_sym() {
            let store = self.store_mut(firing.head_home);
            store.register_tuple(&firing.head);
            store.add_prov(
                vid,
                ProvEntry {
                    rid: None,
                    rloc: firing.head_home,
                },
            );
            return;
        }
        let rid = RuleExecId::compute(firing.rule, firing.node, &firing.inputs);
        // ruleExec lives where the rule fired; apply it here when that is
        // this shard.
        if exec_local {
            let store = self.store_mut(firing.node);
            store.add_rule_exec(RuleExec {
                rid,
                rule: firing.rule,
                node: firing.node,
                inputs: firing.inputs.clone(),
            });
            // The input tuples are local to the executing node
            // (post-localization), so remember their contents for display.
            for input in &firing.input_tuples {
                store.register_tuple(input);
            }
        }
        // prov entry lives at the head tuple's home.
        let entry = ProvEntry {
            rid: Some(rid),
            rloc: firing.node,
        };
        if firing.head_home != firing.node {
            traffic.record(
                &firing.node,
                &firing.head_home,
                MAINTENANCE_CATEGORY,
                entry.wire_size() + firing.head.wire_size(),
            );
        }
        let store = self.store_mut(firing.head_home);
        store.register_tuple(&firing.head);
        store.add_prov(vid, entry);
    }

    fn apply_home_retract(
        &mut self,
        firing: &Firing,
        exec_local: bool,
        traffic: &mut TrafficStats,
    ) {
        let vid = firing.head.id();
        if firing.rule == nt_runtime::base_rule_sym() {
            let home = firing.head_home;
            self.store_mut(home).remove_prov(
                vid,
                &ProvEntry {
                    rid: None,
                    rloc: home,
                },
            );
            return;
        }
        let rid = RuleExecId::compute(firing.rule, firing.node, &firing.inputs);
        if exec_local {
            self.store_mut(firing.node).remove_rule_exec(rid);
        }
        let entry = ProvEntry {
            rid: Some(rid),
            rloc: firing.node,
        };
        if firing.head_home != firing.node {
            traffic.record(
                &firing.node,
                &firing.head_home,
                MAINTENANCE_CATEGORY,
                entry.wire_size(),
            );
        }
        self.store_mut(firing.head_home).remove_prov(vid, &entry);
    }

    /// Apply a shipped `ruleExec` half at the executing node's store (which
    /// must be homed on this shard).
    pub(crate) fn apply_exec(&mut self, record: &MaintRecord) {
        let rid = record.rid();
        if record.insert {
            let store = self.store_mut(record.node);
            store.add_rule_exec(RuleExec {
                rid,
                rule: record.rule,
                node: record.node,
                inputs: record.inputs.clone(),
            });
            // The input tuples are local to the executing node
            // (post-localization), so remember their contents for display.
            for input in &record.input_tuples {
                store.register_tuple(input);
            }
        } else {
            self.store_mut(record.node).remove_rule_exec(rid);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nt_runtime::Value;

    #[test]
    fn maint_record_wire_size_is_fixed_width_plus_payload() {
        let t = Tuple::new("link", vec![Value::addr("n1"), Value::Int(1)]);
        let rec = MaintRecord {
            seq: 0,
            insert: true,
            rule: Sym::new("r1"),
            node: NodeId::new("n1"),
            inputs: vec![t.id()],
            input_tuples: vec![t.clone()],
        };
        assert_eq!(rec.wire_size(), 4 + 1 + 4 + 4 + 8 + t.wire_size());
        let retract = MaintRecord {
            insert: false,
            input_tuples: Vec::new(),
            ..rec.clone()
        };
        assert_eq!(retract.wire_size(), 4 + 1 + 4 + 4 + 8);
    }

    #[test]
    fn maint_record_from_firing_carries_the_exec_half() {
        let input = Tuple::new("link", vec![Value::addr("n1"), Value::Int(1)]);
        let head = Tuple::new("cost", vec![Value::addr("n2"), Value::Int(1)]);
        let mut firing = Firing {
            rule: Sym::new("r1"),
            node: NodeId::new("n1"),
            head,
            head_home: NodeId::new("n2"),
            inputs: vec![input.id()],
            input_tuples: vec![input.clone()],
            insert: true,
        };
        let rec = MaintRecord::from_firing(7, &firing);
        assert_eq!(rec.seq, 7);
        assert!(rec.insert);
        assert_eq!(
            rec.rid(),
            RuleExecId::compute(firing.rule, firing.node, &firing.inputs)
        );
        assert_eq!(rec.input_tuples, vec![input]);
        firing.insert = false;
        let retract = MaintRecord::from_firing(8, &firing);
        assert!(!retract.insert);
        assert!(
            retract.input_tuples.is_empty(),
            "retractions ship without input contents"
        );
    }

    #[test]
    fn maint_batch_prices_header_and_bodies() {
        let rec = MaintRecord {
            seq: 1,
            insert: false,
            rule: Sym::new("r1"),
            node: NodeId::new("n1"),
            inputs: vec![],
            input_tuples: vec![],
        };
        let batch = MaintBatch {
            src_shard: 0,
            dst_shard: 1,
            dict: vec!["r1".to_string(), "n1".to_string()],
            records: vec![rec.clone(), rec],
        };
        assert_eq!(batch.header_bytes(), (4 + 4 + 2) * 2);
        assert_eq!(batch.body_bytes(), 2 * (4 + 1 + 4 + 4));
        assert_eq!(batch.wire_size(), batch.header_bytes() + batch.body_bytes());
        assert_eq!(batch.len(), 2);
        assert!(!batch.is_empty());
    }

    #[test]
    fn record_dictionary_covers_rule_node_and_tuple_names() {
        let t = Tuple::new("link", vec![Value::addr("n9"), Value::Int(1)]);
        let rec = MaintRecord {
            seq: 0,
            insert: true,
            rule: Sym::new("ruleX"),
            node: NodeId::new("nodeY"),
            inputs: vec![t.id()],
            input_tuples: vec![t],
        };
        let mut dict = BTreeSet::new();
        rec.dictionary(&mut dict);
        for name in ["ruleX", "nodeY", "link", "n9"] {
            assert!(dict.contains(name), "{name} missing from dictionary");
        }
    }
}
