//! Per-node provenance storage: the `prov` and `ruleExec` relations.
//!
//! ExSPAN partitions the provenance graph across the network:
//!
//! * `prov(@Loc, VID, RID, RLoc)` — stored at `Loc`, the home of the tuple
//!   identified by `VID`. Each entry says "one derivation of this tuple was
//!   produced by rule execution `RID`, which ran at node `RLoc`". Base tuples
//!   carry a distinguished entry with no rule execution.
//! * `ruleExec(@RLoc, RID, Rule, [VID_1..VID_n])` — stored at `RLoc`, the node
//!   where the rule fired, recording the rule name and the identifiers of the
//!   body tuples.
//!
//! Together these relations are the vertices and edges of the provenance graph
//! G(V,E) of the paper: tuple vertices (VIDs), rule-execution vertices (RIDs),
//! and the dataflow edges between them.

use nt_runtime::{Addr, StableHasher, Tuple, TupleId};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// Identifier of a rule-execution vertex: a stable digest of the rule name,
/// the executing node and the input tuple identifiers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct RuleExecId(pub u64);

impl RuleExecId {
    /// Compute the RID for a rule execution.
    pub fn compute(rule: &str, node: &str, inputs: &[TupleId]) -> Self {
        let mut h = StableHasher::new();
        h.write_str(rule);
        h.write_str(node);
        h.write_u64(inputs.len() as u64);
        for i in inputs {
            h.write_u64(i.0);
        }
        RuleExecId(h.finish())
    }
}

impl fmt::Display for RuleExecId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "rid:{:016x}", self.0)
    }
}

/// One entry of the `prov` relation: a derivation of a tuple.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub struct ProvEntry {
    /// The rule execution that produced the tuple; `None` marks a base tuple
    /// inserted by the environment.
    pub rid: Option<RuleExecId>,
    /// The node where that rule executed (equal to the tuple's home for base
    /// tuples).
    pub rloc: Addr,
}

impl ProvEntry {
    /// True for the base-tuple entry.
    pub fn is_base(&self) -> bool {
        self.rid.is_none()
    }

    /// Approximate wire size of the entry when shipped between nodes.
    pub fn wire_size(&self) -> usize {
        8 + 8 + 4 + self.rloc.len()
    }
}

/// One entry of the `ruleExec` relation.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RuleExec {
    /// Identifier of this execution.
    pub rid: RuleExecId,
    /// Rule name.
    pub rule: String,
    /// Node where the rule executed.
    pub node: Addr,
    /// Input tuple identifiers, in body order.
    pub inputs: Vec<TupleId>,
}

impl RuleExec {
    /// Approximate wire size of the entry.
    pub fn wire_size(&self) -> usize {
        8 + self.rule.len() + self.node.len() + 8 * self.inputs.len()
    }
}

/// Size counters for one node's provenance state; the maintenance-overhead
/// experiment (E4) sums these across nodes.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ProvStoreStats {
    /// Number of `prov` entries stored at this node.
    pub prov_entries: usize,
    /// Number of `ruleExec` entries stored at this node.
    pub rule_execs: usize,
    /// Number of distinct tuple vertices known at this node.
    pub tuple_vertices: usize,
    /// Approximate bytes of provenance state.
    pub bytes: usize,
}

/// One node's partition of the provenance graph.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ProvenanceStore {
    /// The node this store belongs to.
    pub node: Addr,
    /// `prov` relation: VID -> derivations of the tuple (homed at this node).
    prov: BTreeMap<TupleId, BTreeSet<ProvEntry>>,
    /// `ruleExec` relation: RID -> execution record (executed at this node).
    rule_execs: BTreeMap<RuleExecId, RuleExec>,
    /// Display information: VID -> tuple content, for tuples homed here.
    tuples: BTreeMap<TupleId, Tuple>,
}

impl ProvenanceStore {
    /// Create an empty store for a node.
    pub fn new(node: impl Into<Addr>) -> Self {
        ProvenanceStore {
            node: node.into(),
            ..Default::default()
        }
    }

    /// Record the content of a tuple homed at this node (so queries and the
    /// visualizer can show attribute values, as in Figure 2(c) of the paper).
    pub fn register_tuple(&mut self, tuple: &Tuple) {
        self.tuples.insert(tuple.id(), tuple.clone());
    }

    /// Forget a tuple's content (after its last derivation disappears).
    pub fn unregister_tuple(&mut self, vid: TupleId) {
        self.tuples.remove(&vid);
    }

    /// The recorded content of a tuple, if known.
    pub fn tuple(&self, vid: TupleId) -> Option<&Tuple> {
        self.tuples.get(&vid)
    }

    /// Add a `prov` entry (idempotent).
    pub fn add_prov(&mut self, vid: TupleId, entry: ProvEntry) -> bool {
        self.prov.entry(vid).or_default().insert(entry)
    }

    /// Remove a `prov` entry. Returns true when it was present. When the last
    /// entry of a VID disappears the vertex itself is dropped.
    pub fn remove_prov(&mut self, vid: TupleId, entry: &ProvEntry) -> bool {
        let Some(set) = self.prov.get_mut(&vid) else {
            return false;
        };
        let removed = set.remove(entry);
        if set.is_empty() {
            self.prov.remove(&vid);
            self.tuples.remove(&vid);
        }
        removed
    }

    /// The derivations of a tuple homed at this node.
    pub fn prov_entries(&self, vid: TupleId) -> Vec<ProvEntry> {
        self.prov
            .get(&vid)
            .map(|s| s.iter().cloned().collect())
            .unwrap_or_default()
    }

    /// True when the tuple vertex exists at this node.
    pub fn has_vertex(&self, vid: TupleId) -> bool {
        self.prov.contains_key(&vid)
    }

    /// Iterate over all (VID, entries) pairs.
    pub fn iter_prov(&self) -> impl Iterator<Item = (&TupleId, &BTreeSet<ProvEntry>)> {
        self.prov.iter()
    }

    /// Add a `ruleExec` entry (idempotent).
    pub fn add_rule_exec(&mut self, exec: RuleExec) -> bool {
        match self.rule_execs.entry(exec.rid) {
            std::collections::btree_map::Entry::Occupied(_) => false,
            std::collections::btree_map::Entry::Vacant(v) => {
                v.insert(exec);
                true
            }
        }
    }

    /// Remove a rule execution record.
    pub fn remove_rule_exec(&mut self, rid: RuleExecId) -> bool {
        self.rule_execs.remove(&rid).is_some()
    }

    /// Look up a rule execution record.
    pub fn rule_exec(&self, rid: RuleExecId) -> Option<&RuleExec> {
        self.rule_execs.get(&rid)
    }

    /// Iterate over rule executions recorded at this node.
    pub fn iter_rule_execs(&self) -> impl Iterator<Item = &RuleExec> {
        self.rule_execs.values()
    }

    /// Size counters.
    pub fn stats(&self) -> ProvStoreStats {
        let prov_entries: usize = self.prov.values().map(BTreeSet::len).sum();
        let bytes: usize = self
            .prov
            .values()
            .flat_map(|s| s.iter().map(ProvEntry::wire_size))
            .sum::<usize>()
            + self
                .rule_execs
                .values()
                .map(RuleExec::wire_size)
                .sum::<usize>()
            + self.tuples.values().map(Tuple::wire_size).sum::<usize>();
        ProvStoreStats {
            prov_entries,
            rule_execs: self.rule_execs.len(),
            tuple_vertices: self.prov.len(),
            bytes,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nt_runtime::Value;

    fn tuple(rel: &str, node: &str, x: i64) -> Tuple {
        Tuple::new(rel, vec![Value::addr(node), Value::Int(x)])
    }

    #[test]
    fn rid_is_stable_and_order_sensitive() {
        let a = TupleId(1);
        let b = TupleId(2);
        assert_eq!(
            RuleExecId::compute("r1", "n1", &[a, b]),
            RuleExecId::compute("r1", "n1", &[a, b])
        );
        assert_ne!(
            RuleExecId::compute("r1", "n1", &[a, b]),
            RuleExecId::compute("r1", "n1", &[b, a])
        );
        assert_ne!(
            RuleExecId::compute("r1", "n1", &[a]),
            RuleExecId::compute("r1", "n2", &[a])
        );
    }

    #[test]
    fn prov_entries_are_idempotent_and_removable() {
        let mut store = ProvenanceStore::new("n1");
        let t = tuple("cost", "n1", 3);
        let vid = t.id();
        store.register_tuple(&t);
        let base = ProvEntry {
            rid: None,
            rloc: "n1".into(),
        };
        assert!(store.add_prov(vid, base.clone()));
        assert!(!store.add_prov(vid, base.clone()), "idempotent");
        let exec = ProvEntry {
            rid: Some(RuleExecId::compute("r1", "n2", &[TupleId(9)])),
            rloc: "n2".into(),
        };
        store.add_prov(vid, exec.clone());
        assert_eq!(store.prov_entries(vid).len(), 2);
        assert!(store.remove_prov(vid, &base));
        assert!(!store.remove_prov(vid, &base));
        assert!(store.has_vertex(vid));
        assert!(store.remove_prov(vid, &exec));
        assert!(!store.has_vertex(vid), "vertex dropped with last entry");
        assert!(store.tuple(vid).is_none(), "tuple content dropped too");
    }

    #[test]
    fn rule_execs_round_trip() {
        let mut store = ProvenanceStore::new("n1");
        let rid = RuleExecId::compute("r2", "n1", &[TupleId(1), TupleId(2)]);
        let exec = RuleExec {
            rid,
            rule: "r2".into(),
            node: "n1".into(),
            inputs: vec![TupleId(1), TupleId(2)],
        };
        assert!(store.add_rule_exec(exec.clone()));
        assert!(!store.add_rule_exec(exec.clone()));
        assert_eq!(store.rule_exec(rid), Some(&exec));
        assert!(store.remove_rule_exec(rid));
        assert!(store.rule_exec(rid).is_none());
    }

    #[test]
    fn stats_reflect_contents() {
        let mut store = ProvenanceStore::new("n1");
        let t = tuple("cost", "n1", 3);
        store.register_tuple(&t);
        store.add_prov(
            t.id(),
            ProvEntry {
                rid: None,
                rloc: "n1".into(),
            },
        );
        store.add_rule_exec(RuleExec {
            rid: RuleExecId::compute("r1", "n1", &[t.id()]),
            rule: "r1".into(),
            node: "n1".into(),
            inputs: vec![t.id()],
        });
        let stats = store.stats();
        assert_eq!(stats.prov_entries, 1);
        assert_eq!(stats.rule_execs, 1);
        assert_eq!(stats.tuple_vertices, 1);
        assert!(stats.bytes > 0);
    }
}
