//! Per-node provenance storage: the `prov` and `ruleExec` relations.
//!
//! ExSPAN partitions the provenance graph across the network:
//!
//! * `prov(@Loc, VID, RID, RLoc)` — stored at `Loc`, the home of the tuple
//!   identified by `VID`. Each entry says "one derivation of this tuple was
//!   produced by rule execution `RID`, which ran at node `RLoc`". Base tuples
//!   carry a distinguished entry with no rule execution.
//! * `ruleExec(@RLoc, RID, Rule, [VID_1..VID_n])` — stored at `RLoc`, the node
//!   where the rule fired, recording the rule name and the identifiers of the
//!   body tuples.
//!
//! Together these relations are the vertices and edges of the provenance graph
//! G(V,E) of the paper: tuple vertices (VIDs), rule-execution vertices (RIDs),
//! and the dataflow edges between them.
//!
//! ## Storage layout
//!
//! The store is arena-backed: vertices and rule executions live in dense
//! `Vec` slots (with free-list reuse) addressed through `HashMap` id → slot
//! indexes, and every record is fixed-size — a [`ProvEntry`] is a `Copy`
//! 16-byte record (8-byte rid + interned 4-byte `rloc`), a [`RuleExec`] is a
//! fixed header plus the posting list of its input VIDs. Rule and node names
//! are interned ([`Sym`]/[`NodeId`]), so maintenance never clones or
//! re-hashes strings; the string dictionary travels once per snapshot (see
//! [`ProvStoreStats::dict_bytes`]), not once per entry.

use nt_runtime::{rule_exec_digest, NodeId, StableHasher, Sym, Tuple, TupleId, Value};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeSet, HashMap};
use std::fmt;

/// Identifier of a rule-execution vertex: a stable digest of the rule name,
/// the executing node and the input tuple identifiers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct RuleExecId(pub u64);

impl RuleExecId {
    /// Compute the RID for a rule execution from interned identifiers.
    ///
    /// Delegates to [`nt_runtime::rule_exec_digest`] — the single stable-digest
    /// implementation shared with the string-keyed entry point
    /// ([`RuleExecId::compute_str`]), so interned and string inputs cannot
    /// silently diverge. The digest hashes the resolved strings, never the
    /// intern ids, and is therefore identical on every node and across runs.
    pub fn compute(rule: Sym, node: NodeId, inputs: &[TupleId]) -> Self {
        Self::compute_str(rule.as_str(), node.as_str(), inputs)
    }

    /// Compute the RID from boundary (string) identifiers.
    pub fn compute_str(rule: &str, node: &str, inputs: &[TupleId]) -> Self {
        RuleExecId(rule_exec_digest(rule, node, inputs.iter().map(|i| i.0)))
    }
}

impl fmt::Display for RuleExecId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "rid:{:016x}", self.0)
    }
}

/// One entry of the `prov` relation: a derivation of a tuple. A fixed-size
/// `Copy` record.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ProvEntry {
    /// The rule execution that produced the tuple; `None` marks a base tuple
    /// inserted by the environment.
    pub rid: Option<RuleExecId>,
    /// The node where that rule executed (equal to the tuple's home for base
    /// tuples).
    pub rloc: NodeId,
}

impl ProvEntry {
    /// True for the base-tuple entry.
    pub fn is_base(&self) -> bool {
        self.rid.is_none()
    }

    /// Wire size of the entry in the interned encoding: an 8-byte rid (the
    /// base-tuple case is a reserved encoding, not extra bytes) plus a
    /// fixed-width interned `rloc` id. The one-time dictionary cost of the
    /// names behind the ids is accounted separately
    /// ([`ProvStoreStats::dict_bytes`]).
    pub fn wire_size(&self) -> usize {
        8 + NodeId::WIRE_SIZE
    }
}

/// One entry of the `ruleExec` relation: a fixed-size header (rid + interned
/// rule and node ids) plus the posting list of input VIDs.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RuleExec {
    /// Identifier of this execution.
    pub rid: RuleExecId,
    /// Rule name (interned).
    pub rule: Sym,
    /// Node where the rule executed (interned).
    pub node: NodeId,
    /// Input tuple identifiers, in body order.
    pub inputs: Vec<TupleId>,
}

impl RuleExec {
    /// Wire size of the entry in the interned encoding: 8-byte rid,
    /// fixed-width rule and node ids, and 8 bytes per input VID. Dictionary
    /// cost is accounted once per store ([`ProvStoreStats::dict_bytes`]).
    pub fn wire_size(&self) -> usize {
        8 + Sym::WIRE_SIZE + NodeId::WIRE_SIZE + 8 * self.inputs.len()
    }
}

/// Size counters for one node's provenance state; the maintenance-overhead
/// experiment (E4) sums these across nodes.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ProvStoreStats {
    /// Number of `prov` entries stored at this node.
    pub prov_entries: usize,
    /// Number of `ruleExec` entries stored at this node.
    pub rule_execs: usize,
    /// Number of distinct tuple vertices known at this node.
    pub tuple_vertices: usize,
    /// One-time dictionary cost: the distinct rule/relation/node names this
    /// store references, priced as id + length-prefixed string each. This is
    /// what a snapshot upload pays once so that every fixed-width id in
    /// `bytes` resolves remotely.
    pub dict_bytes: usize,
    /// Approximate bytes of provenance state (fixed-width interned records
    /// plus the one-time dictionary).
    pub bytes: usize,
}

/// A vertex slot in the store arena.
#[derive(Debug, Clone)]
struct VertexSlot {
    vid: TupleId,
    /// Sorted, deduplicated entries (canonical order, independent of the
    /// insert/retract interleaving that produced them).
    entries: Vec<ProvEntry>,
    live: bool,
}

impl Default for VertexSlot {
    fn default() -> Self {
        VertexSlot {
            vid: TupleId(0),
            entries: Vec::new(),
            live: false,
        }
    }
}

/// An execution slot in the store arena.
#[derive(Debug, Clone)]
struct ExecSlot {
    exec: RuleExec,
    live: bool,
}

/// One node's partition of the provenance graph (arena-backed; see the module
/// documentation for the layout).
#[derive(Debug, Clone, Default)]
pub struct ProvenanceStore {
    /// The node this store belongs to.
    pub node: NodeId,
    vertices: Vec<VertexSlot>,
    vertex_index: HashMap<TupleId, u32>,
    free_vertices: Vec<u32>,
    execs: Vec<ExecSlot>,
    exec_index: HashMap<RuleExecId, u32>,
    free_execs: Vec<u32>,
    /// Display information: VID -> tuple content, for tuples homed here.
    tuples: HashMap<TupleId, Tuple>,
    /// Mutation counter: bumped whenever the store's content actually
    /// changes (idempotent re-inserts do not count). Query caches stamp
    /// their entries with this version, so incremental maintenance — deletes
    /// included — invalidates exactly the sub-results it could have changed.
    version: u64,
}

impl ProvenanceStore {
    /// Create an empty store for a node.
    pub fn new(node: impl Into<NodeId>) -> Self {
        ProvenanceStore {
            node: node.into(),
            ..Default::default()
        }
    }

    /// The store's mutation version (see the `version` field).
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Record the content of a tuple homed at this node (so queries and the
    /// visualizer can show attribute values, as in Figure 2(c) of the paper).
    pub fn register_tuple(&mut self, tuple: &Tuple) {
        let prev = self.tuples.insert(tuple.id(), tuple.clone());
        if prev.as_ref() != Some(tuple) {
            self.version += 1;
        }
    }

    /// Forget a tuple's content (after its last derivation disappears).
    pub fn unregister_tuple(&mut self, vid: TupleId) {
        if self.tuples.remove(&vid).is_some() {
            self.version += 1;
        }
    }

    /// The recorded content of a tuple, if known.
    pub fn tuple(&self, vid: TupleId) -> Option<&Tuple> {
        self.tuples.get(&vid)
    }

    /// Add a `prov` entry (idempotent). Returns true when it was new.
    pub fn add_prov(&mut self, vid: TupleId, entry: ProvEntry) -> bool {
        let slot = match self.vertex_index.get(&vid) {
            Some(&slot) => slot as usize,
            None => {
                let slot = match self.free_vertices.pop() {
                    Some(free) => free as usize,
                    None => {
                        self.vertices.push(VertexSlot::default());
                        self.vertices.len() - 1
                    }
                };
                self.vertices[slot] = VertexSlot {
                    vid,
                    entries: Vec::new(),
                    live: true,
                };
                self.vertex_index.insert(vid, slot as u32);
                slot
            }
        };
        let entries = &mut self.vertices[slot].entries;
        match entries.binary_search(&entry) {
            Ok(_) => false,
            Err(pos) => {
                entries.insert(pos, entry);
                self.version += 1;
                true
            }
        }
    }

    /// Remove a `prov` entry. Returns true when it was present. When the last
    /// entry of a VID disappears the vertex itself is dropped.
    pub fn remove_prov(&mut self, vid: TupleId, entry: &ProvEntry) -> bool {
        let Some(&slot) = self.vertex_index.get(&vid) else {
            return false;
        };
        let vertex = &mut self.vertices[slot as usize];
        let Ok(pos) = vertex.entries.binary_search(entry) else {
            return false;
        };
        vertex.entries.remove(pos);
        if vertex.entries.is_empty() {
            vertex.live = false;
            self.vertex_index.remove(&vid);
            self.free_vertices.push(slot);
            self.tuples.remove(&vid);
        }
        self.version += 1;
        true
    }

    /// The derivations of a tuple homed at this node (sorted canonical
    /// order).
    pub fn prov_entries(&self, vid: TupleId) -> Vec<ProvEntry> {
        self.entries_of(vid).to_vec()
    }

    /// Borrowed view of a vertex's entries (empty slice for unknown VIDs).
    pub fn entries_of(&self, vid: TupleId) -> &[ProvEntry] {
        self.vertex_index
            .get(&vid)
            .map(|&slot| self.vertices[slot as usize].entries.as_slice())
            .unwrap_or(&[])
    }

    /// True when the tuple vertex exists at this node.
    pub fn has_vertex(&self, vid: TupleId) -> bool {
        self.vertex_index.contains_key(&vid)
    }

    /// Iterate over all (VID, entries) pairs in arena order.
    pub fn iter_prov(&self) -> impl Iterator<Item = (TupleId, &[ProvEntry])> {
        self.vertices
            .iter()
            .filter(|v| v.live)
            .map(|v| (v.vid, v.entries.as_slice()))
    }

    /// Add a `ruleExec` entry (idempotent). Returns true when it was new.
    pub fn add_rule_exec(&mut self, exec: RuleExec) -> bool {
        if self.exec_index.contains_key(&exec.rid) {
            return false;
        }
        let rid = exec.rid;
        let slot = match self.free_execs.pop() {
            Some(free) => {
                self.execs[free as usize] = ExecSlot { exec, live: true };
                free
            }
            None => {
                self.execs.push(ExecSlot { exec, live: true });
                (self.execs.len() - 1) as u32
            }
        };
        self.exec_index.insert(rid, slot);
        self.version += 1;
        true
    }

    /// Remove a rule execution record.
    pub fn remove_rule_exec(&mut self, rid: RuleExecId) -> bool {
        let Some(slot) = self.exec_index.remove(&rid) else {
            return false;
        };
        self.execs[slot as usize].live = false;
        self.execs[slot as usize].exec.inputs.clear();
        self.free_execs.push(slot);
        self.version += 1;
        true
    }

    /// Look up a rule execution record.
    pub fn rule_exec(&self, rid: RuleExecId) -> Option<&RuleExec> {
        self.exec_index
            .get(&rid)
            .map(|&slot| &self.execs[slot as usize].exec)
    }

    /// Iterate over rule executions recorded at this node, in arena order.
    pub fn iter_rule_execs(&self) -> impl Iterator<Item = &RuleExec> {
        self.execs.iter().filter(|s| s.live).map(|s| &s.exec)
    }

    /// Iterate over the registered tuple contents (display metadata).
    pub fn iter_tuples(&self) -> impl Iterator<Item = &Tuple> {
        self.tuples.values()
    }

    /// The distinct interned names this store references (rule names and node
    /// names) — the dictionary a snapshot of this store must carry once.
    fn dictionary(&self) -> BTreeSet<&'static str> {
        let mut dict: BTreeSet<&'static str> = BTreeSet::new();
        dict.insert(self.node.as_str());
        for v in self.vertices.iter().filter(|v| v.live) {
            for e in &v.entries {
                dict.insert(e.rloc.as_str());
            }
        }
        for s in self.execs.iter().filter(|s| s.live) {
            dict.insert(s.exec.rule.as_str());
            dict.insert(s.exec.node.as_str());
        }
        for t in self.tuples.values() {
            dict.insert(t.relation.as_str());
            // Address values inside tuples are priced at fixed id width by
            // `Tuple::wire_size`, so their names belong to the dictionary too.
            collect_addr_names(&t.values, &mut dict);
        }
        dict
    }

    /// Size counters.
    pub fn stats(&self) -> ProvStoreStats {
        let mut prov_entries = 0usize;
        let mut record_bytes = 0usize;
        for v in self.vertices.iter().filter(|v| v.live) {
            prov_entries += v.entries.len();
            record_bytes += v.entries.iter().map(ProvEntry::wire_size).sum::<usize>();
        }
        let mut rule_execs = 0usize;
        for s in self.execs.iter().filter(|s| s.live) {
            rule_execs += 1;
            record_bytes += s.exec.wire_size();
        }
        record_bytes += self.tuples.values().map(Tuple::wire_size).sum::<usize>();
        // One-time dictionary: 4-byte id + length-prefixed string per name.
        let dict_bytes: usize = self
            .dictionary()
            .iter()
            .map(|s| nt_runtime::dict_entry_wire_size(s))
            .sum();
        ProvStoreStats {
            prov_entries,
            rule_execs,
            tuple_vertices: self.vertex_index.len(),
            dict_bytes,
            bytes: record_bytes + dict_bytes,
        }
    }

    /// A canonical (sorted) dump of the store, used for serialization and
    /// equality — two stores holding the same graph compare equal regardless
    /// of the arena history that produced them.
    fn dump(&self) -> StoreDump {
        let mut prov: Vec<(TupleId, Vec<ProvEntry>)> = self
            .iter_prov()
            .map(|(vid, entries)| (vid, entries.to_vec()))
            .collect();
        prov.sort_by_key(|(vid, _)| *vid);
        let mut rule_execs: Vec<RuleExec> = self.iter_rule_execs().cloned().collect();
        rule_execs.sort_by_key(|e| e.rid);
        let mut tuples: Vec<Tuple> = self.tuples.values().cloned().collect();
        tuples.sort_by_key(Tuple::id);
        StoreDump {
            node: self.node,
            prov,
            rule_execs,
            tuples,
        }
    }

    /// A stable digest of the store's canonical content (used by tests and
    /// the log-store integrity check).
    pub fn content_digest(&self) -> u64 {
        let dump = self.dump();
        let mut h = StableHasher::new();
        h.write_str(dump.node.as_str());
        h.write_u64(dump.prov.len() as u64);
        for (vid, entries) in &dump.prov {
            h.write_u64(vid.0);
            h.write_u64(entries.len() as u64);
            for e in entries {
                h.write_u64(e.rid.map(|r| r.0).unwrap_or(0));
                h.write_str(e.rloc.as_str());
            }
        }
        h.write_u64(dump.rule_execs.len() as u64);
        for e in &dump.rule_execs {
            h.write_u64(e.rid.0);
            h.write_str(e.rule.as_str());
            h.write_str(e.node.as_str());
            h.write_u64(e.inputs.len() as u64);
            for i in &e.inputs {
                h.write_u64(i.0);
            }
        }
        h.finish()
    }
}

/// Collect interned address names appearing in a value tree.
pub(crate) fn collect_addr_names(values: &[Value], out: &mut BTreeSet<&'static str>) {
    for v in values {
        match v {
            Value::Addr(a) => {
                out.insert(a.as_str());
            }
            Value::List(l) => collect_addr_names(l, out),
            _ => {}
        }
    }
}

impl PartialEq for ProvenanceStore {
    fn eq(&self, other: &Self) -> bool {
        self.dump() == other.dump()
    }
}

/// Canonical serialized form of a store.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct StoreDump {
    node: NodeId,
    prov: Vec<(TupleId, Vec<ProvEntry>)>,
    rule_execs: Vec<RuleExec>,
    tuples: Vec<Tuple>,
}

impl Serialize for ProvenanceStore {
    fn serialize<S: serde::Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        self.dump().serialize(serializer)
    }
}

impl Deserialize for ProvenanceStore {
    fn deserialize<'de, D: serde::Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        let dump = StoreDump::deserialize(d)?;
        let mut store = ProvenanceStore::new(dump.node);
        for (vid, entries) in dump.prov {
            for entry in entries {
                store.add_prov(vid, entry);
            }
        }
        for exec in dump.rule_execs {
            store.add_rule_exec(exec);
        }
        for tuple in dump.tuples {
            store.register_tuple(&tuple);
        }
        Ok(store)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nt_runtime::Value;

    fn tuple(rel: &str, node: &str, x: i64) -> Tuple {
        Tuple::new(rel, vec![Value::addr(node), Value::Int(x)])
    }

    fn sym(s: &str) -> Sym {
        Sym::new(s)
    }

    fn nid(s: &str) -> NodeId {
        NodeId::new(s)
    }

    #[test]
    fn rid_is_stable_and_order_sensitive() {
        let a = TupleId(1);
        let b = TupleId(2);
        assert_eq!(
            RuleExecId::compute(sym("r1"), nid("n1"), &[a, b]),
            RuleExecId::compute(sym("r1"), nid("n1"), &[a, b])
        );
        assert_ne!(
            RuleExecId::compute(sym("r1"), nid("n1"), &[a, b]),
            RuleExecId::compute(sym("r1"), nid("n1"), &[b, a])
        );
        assert_ne!(
            RuleExecId::compute(sym("r1"), nid("n1"), &[a]),
            RuleExecId::compute(sym("r1"), nid("n2"), &[a])
        );
        // The interned and string entry points share one digest.
        assert_eq!(
            RuleExecId::compute(sym("r1"), nid("n1"), &[a, b]),
            RuleExecId::compute_str("r1", "n1", &[a, b])
        );
    }

    #[test]
    fn prov_entries_are_idempotent_and_removable() {
        let mut store = ProvenanceStore::new("n1");
        let t = tuple("cost", "n1", 3);
        let vid = t.id();
        store.register_tuple(&t);
        let base = ProvEntry {
            rid: None,
            rloc: "n1".into(),
        };
        assert!(store.add_prov(vid, base));
        assert!(!store.add_prov(vid, base), "idempotent");
        let exec = ProvEntry {
            rid: Some(RuleExecId::compute(sym("r1"), nid("n2"), &[TupleId(9)])),
            rloc: "n2".into(),
        };
        store.add_prov(vid, exec);
        assert_eq!(store.prov_entries(vid).len(), 2);
        assert!(store.remove_prov(vid, &base));
        assert!(!store.remove_prov(vid, &base));
        assert!(store.has_vertex(vid));
        assert!(store.remove_prov(vid, &exec));
        assert!(!store.has_vertex(vid), "vertex dropped with last entry");
        assert!(store.tuple(vid).is_none(), "tuple content dropped too");
    }

    #[test]
    fn vertex_slots_are_reused_after_removal() {
        let mut store = ProvenanceStore::new("n1");
        let base = ProvEntry {
            rid: None,
            rloc: "n1".into(),
        };
        for round in 0..3 {
            for i in 0..10 {
                store.add_prov(TupleId(100 + i), base);
            }
            for i in 0..10 {
                assert!(store.remove_prov(TupleId(100 + i), &base));
            }
            assert_eq!(store.stats().tuple_vertices, 0, "round {round}");
        }
        // The arena never grew past one generation of vertices.
        assert!(store.vertices.len() <= 10);
    }

    #[test]
    fn rule_execs_round_trip() {
        let mut store = ProvenanceStore::new("n1");
        let rid = RuleExecId::compute(sym("r2"), nid("n1"), &[TupleId(1), TupleId(2)]);
        let exec = RuleExec {
            rid,
            rule: "r2".into(),
            node: "n1".into(),
            inputs: vec![TupleId(1), TupleId(2)],
        };
        assert!(store.add_rule_exec(exec.clone()));
        assert!(!store.add_rule_exec(exec.clone()));
        assert_eq!(store.rule_exec(rid), Some(&exec));
        assert!(store.remove_rule_exec(rid));
        assert!(store.rule_exec(rid).is_none());
    }

    #[test]
    fn stats_reflect_contents_and_price_the_dictionary() {
        let mut store = ProvenanceStore::new("n1");
        let t = tuple("cost", "n1", 3);
        store.register_tuple(&t);
        store.add_prov(
            t.id(),
            ProvEntry {
                rid: None,
                rloc: "n1".into(),
            },
        );
        store.add_rule_exec(RuleExec {
            rid: RuleExecId::compute(sym("r1"), nid("n1"), &[t.id()]),
            rule: "r1".into(),
            node: "n1".into(),
            inputs: vec![t.id()],
        });
        let stats = store.stats();
        assert_eq!(stats.prov_entries, 1);
        assert_eq!(stats.rule_execs, 1);
        assert_eq!(stats.tuple_vertices, 1);
        // Dictionary: "n1", "r1", "cost".
        assert_eq!(stats.dict_bytes, (8 + 2) + (8 + 2) + (8 + 4));
        assert!(stats.bytes > stats.dict_bytes);
    }

    #[test]
    fn version_counts_real_mutations_only() {
        let mut store = ProvenanceStore::new("n1");
        assert_eq!(store.version(), 0);
        let t = tuple("cost", "n1", 3);
        store.register_tuple(&t);
        let v1 = store.version();
        assert!(v1 > 0);
        // Idempotent re-registration of identical content: no bump.
        store.register_tuple(&t);
        assert_eq!(store.version(), v1);
        let base = ProvEntry {
            rid: None,
            rloc: "n1".into(),
        };
        store.add_prov(t.id(), base);
        let v2 = store.version();
        assert!(v2 > v1);
        store.add_prov(t.id(), base);
        assert_eq!(store.version(), v2, "duplicate prov entry is a no-op");
        // Deletes bump too — the property the query cache relies on.
        store.remove_prov(t.id(), &base);
        assert!(store.version() > v2);
        let v3 = store.version();
        store.remove_prov(t.id(), &base);
        assert_eq!(store.version(), v3, "removing a missing entry is a no-op");
    }

    #[test]
    fn equality_and_digest_ignore_arena_history() {
        let base = ProvEntry {
            rid: None,
            rloc: "n1".into(),
        };
        let other = ProvEntry {
            rid: Some(RuleExecId(7)),
            rloc: "n2".into(),
        };
        // Store A: churn before reaching the final state.
        let mut a = ProvenanceStore::new("n1");
        a.add_prov(TupleId(1), base);
        a.add_prov(TupleId(9), base);
        a.remove_prov(TupleId(9), &base);
        a.add_prov(TupleId(1), other);
        // Store B: the final state directly, in a different order.
        let mut b = ProvenanceStore::new("n1");
        b.add_prov(TupleId(1), other);
        b.add_prov(TupleId(1), base);
        assert_eq!(a, b);
        assert_eq!(a.content_digest(), b.content_digest());
    }

    #[test]
    fn serde_round_trips_through_the_canonical_dump() {
        let mut store = ProvenanceStore::new("n1");
        let t = tuple("cost", "n1", 3);
        store.register_tuple(&t);
        store.add_prov(
            t.id(),
            ProvEntry {
                rid: None,
                rloc: "n1".into(),
            },
        );
        store.add_rule_exec(RuleExec {
            rid: RuleExecId(42),
            rule: "r1".into(),
            node: "n1".into(),
            inputs: vec![t.id()],
        });
        let content = serde::to_content(&store).unwrap();
        let back: ProvenanceStore = serde::from_content(content).unwrap();
        assert_eq!(store, back);
        assert_eq!(store.stats(), back.stats());
    }
}
