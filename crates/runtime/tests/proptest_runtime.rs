//! Property-based tests for runtime values, tuples and the derivation store.

use nt_runtime::{Derivation, Membership, RelationSchema, Table, Tuple, TupleId, Value};
use proptest::prelude::*;

fn value_strategy() -> impl Strategy<Value = Value> {
    prop_oneof![
        any::<i64>().prop_map(Value::Int),
        any::<bool>().prop_map(Value::Bool),
        "[a-z0-9]{0,8}".prop_map(Value::Str),
        "[a-z0-9]{1,4}".prop_map(Value::addr),
        (-1000.0f64..1000.0).prop_map(Value::Double),
        Just(Value::Infinity),
        proptest::collection::vec(any::<i64>().prop_map(Value::Int), 0..4).prop_map(Value::List),
    ]
}

fn tuple_strategy() -> impl Strategy<Value = Tuple> {
    (
        "[a-z]{1,6}",
        proptest::collection::vec(value_strategy(), 1..5),
    )
        .prop_map(|(rel, vals)| Tuple::new(rel, vals))
}

proptest! {
    /// Value ordering is a total order: antisymmetric and transitive under
    /// sorting (sorting twice gives the same result, comparisons never panic).
    #[test]
    fn value_ordering_is_total(mut values in proptest::collection::vec(value_strategy(), 0..20)) {
        let mut sorted = values.clone();
        sorted.sort();
        sorted.sort();
        values.sort();
        prop_assert_eq!(values, sorted);
    }

    /// Equal values hash equally (stable content hashing).
    #[test]
    fn equal_values_have_equal_hashes(v in value_strategy()) {
        let a = Tuple::new("t", vec![v.clone()]).id();
        let b = Tuple::new("t", vec![v]).id();
        prop_assert_eq!(a, b);
    }

    /// Tuple ids are content addressed: changing any value changes the id
    /// (modulo astronomically unlikely collisions within a small sample).
    #[test]
    fn tuple_ids_distinguish_contents(t in tuple_strategy(), extra in value_strategy()) {
        let mut other = t.clone();
        other.values.push(extra);
        prop_assert_ne!(t.id(), other.id());
    }

    /// The derivation store never loses track: after any sequence of
    /// add/remove operations the tuple is present iff it has at least one
    /// derivation, and `len()` matches the number of distinct present keys.
    #[test]
    fn table_membership_is_consistent(ops in proptest::collection::vec((0u8..2, 0u8..4, 0u8..3), 1..40)) {
        let schema = RelationSchema {
            name: "t".into(),
            arity: 1,
            location_col: 0,
            key_cols: vec![0],
            is_base: true,
            lifetime: None,
        };
        let mut table = Table::new(schema);
        let tuples: Vec<Tuple> = (0..4)
            .map(|i| Tuple::new("t", vec![Value::Int(i as i64)]))
            .collect();
        let derivations: Vec<Derivation> = (0..3)
            .map(|i| Derivation {
                rule: format!("r{i}").into(),
                node: "n1".into(),
                inputs: vec![TupleId(i as u64)],
            })
            .collect();
        for (op, t_idx, d_idx) in ops {
            let tuple = &tuples[t_idx as usize];
            let derivation = &derivations[d_idx as usize];
            let result = if op == 0 {
                table.add_derivation(tuple, derivation.clone())
            } else {
                table.remove_derivation(tuple, derivation)
            };
            // Membership report matches reality.
            let present = table.contains(tuple);
            match result {
                Membership::Appeared | Membership::AddedDerivation | Membership::Unchanged
                | Membership::RemovedDerivation | Membership::Replaced(_) => {
                    prop_assert!(present)
                }
                Membership::Disappeared => prop_assert!(!present),
                Membership::NotFound => {}
            }
            // Every stored tuple has at least one derivation, and the id index
            // agrees with the primary index.
            for stored in table.iter() {
                prop_assert!(!stored.derivations().is_empty());
                let tuple = stored.to_tuple();
                prop_assert_eq!(
                    table.get_by_id(tuple.id()).map(|s| s.to_tuple()),
                    Some(tuple)
                );
            }
        }
    }
}
