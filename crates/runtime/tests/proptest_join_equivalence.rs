//! Property: the planned, index-backed join pipeline derives exactly the
//! same fixpoint as the reference full-scan evaluation, over random programs
//! and random insert/delete sequences — while never examining more join
//! candidates.
//!
//! The program pool exercises every evaluation path the planner touches:
//! single-atom projection, two-atom joins probing on shared variables,
//! constants in probe columns, filters + assignments, negation
//! (reconciliation) and `min` aggregation (group recomputation).

use nt_runtime::{CompiledProgram, EngineConfig, NodeEngine, Tuple, Value};
use proptest::prelude::*;
use std::collections::BTreeMap;
use std::sync::Arc;

const PROGRAMS: &[&str] = &[
    // Projection + two-atom join probing on the shared variables (S, B).
    "r1 g(@S,A,B) :- e(@S,A,B).\n\
     r2 h(@S,A,C) :- e(@S,A,B), f(@S,B,C).",
    // Join with a constant probe column, a filter and an assignment.
    "r1 h(@S,A,C) :- e(@S,A,B), f(@S,B,C), C < 3.\n\
     r2 k(@S,A,D) :- e(@S,A,1), D := A + 1.",
    // Negation: reconciliation-based maintenance.
    "r1 miss(@S,A,B) :- e(@S,A,B), !f(@S,A,B).",
    // Aggregation: group recomputation probed by the group key.
    "materialize(m, infinity, infinity, keys(1,2)).\n\
     r1 m(@S,min<B>) :- e(@S,A,B).\n\
     r2 g(@S,A) :- e(@S,A,B), f(@S,B,A).",
    // Three-atom chain join: the planner must order by connectivity.
    "r1 chain(@S,A,D) :- e(@S,A,B), f(@S,B,C), e(@S,C,D).",
];

/// One operation: insert (true) or delete (false) a fact of `e` or `f`.
type Op = (bool, bool, i64, i64, bool);

fn fact(relation: &str, a: i64, b: i64, b_double: bool) -> Tuple {
    // `b_double` stores the last column as an equal Double instead of an Int
    // (Value's total order equates them), exercising the index-key
    // normalization against the scan path's cross-type matching.
    let b_value = if b_double {
        Value::Double(b as f64)
    } else {
        Value::Int(b)
    };
    Tuple::new(relation, vec![Value::addr("n1"), Value::Int(a), b_value])
}

/// Apply the ops to an engine and return its final database as a
/// comparison-friendly map: relation -> tuple -> sorted derivation dump.
fn run_ops(
    program: &Arc<CompiledProgram>,
    config: EngineConfig,
    ops: &[Op],
) -> (BTreeMap<String, BTreeMap<String, Vec<String>>>, u64) {
    let mut engine = NodeEngine::new(program.clone(), config);
    for (insert, use_e, a, b, b_double) in ops {
        let tuple = fact(if *use_e { "e" } else { "f" }, *a, *b, *b_double);
        if *insert {
            engine.insert_base(tuple);
        } else {
            engine.delete_base(tuple);
        }
        engine.run();
    }
    let mut state = BTreeMap::new();
    for table in engine.database().tables() {
        let mut tuples = BTreeMap::new();
        for stored in table.iter() {
            let mut derivations: Vec<String> = stored
                .derivations()
                .iter()
                .map(|d| format!("{d:?}"))
                .collect();
            derivations.sort();
            tuples.insert(stored.to_tuple().to_string(), derivations);
        }
        state.insert(table.schema.name.clone(), tuples);
    }
    (state, engine.stats().join_probes)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Indexed and full-scan evaluation agree on every relation (tuples AND
    /// their supporting derivations) after any insert/delete sequence, and
    /// the indexed path never examines more candidates.
    #[test]
    fn indexed_join_matches_full_scan_fixpoint(
        program_idx in 0usize..5,
        ops in proptest::collection::vec(
            (any::<bool>(), any::<bool>(), 0i64..4, 0i64..4, any::<bool>()),
            1..25,
        ),
    ) {
        let program = Arc::new(
            CompiledProgram::from_source(PROGRAMS[program_idx]).expect("pool programs compile"),
        );
        let (indexed_state, indexed_probes) =
            run_ops(&program, EngineConfig::new("n1"), &ops);
        let (scan_state, scan_probes) =
            run_ops(&program, EngineConfig::new("n1").without_indexes(), &ops);
        prop_assert_eq!(indexed_state, scan_state);
        prop_assert!(
            indexed_probes <= scan_probes,
            "indexed path examined {} candidates, scan path {}",
            indexed_probes,
            scan_probes
        );
    }

    /// Deleting everything that was inserted leaves every relation empty on
    /// both paths (no stale index entries resurrect tuples).
    #[test]
    fn full_retraction_drains_both_paths(
        program_idx in 0usize..5,
        facts in proptest::collection::vec(
            (any::<bool>(), 0i64..4, 0i64..4, any::<bool>()),
            1..12,
        ),
    ) {
        let program = Arc::new(
            CompiledProgram::from_source(PROGRAMS[program_idx]).expect("pool programs compile"),
        );
        let mut ops: Vec<Op> = facts
            .iter()
            .map(|(e, a, b, d)| (true, *e, *a, *b, *d))
            .collect();
        ops.extend(facts.iter().map(|(e, a, b, d)| (false, *e, *a, *b, *d)));
        for config in [EngineConfig::new("n1"), EngineConfig::new("n1").without_indexes()] {
            let (state, _) = run_ops(&program, config, &ops);
            for (relation, tuples) in &state {
                prop_assert!(
                    tuples.is_empty(),
                    "relation {} still holds {} tuples after full retraction",
                    relation,
                    tuples.len()
                );
            }
        }
    }
}
