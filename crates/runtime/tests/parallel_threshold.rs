//! The dispatch threshold keeps tiny generations off the worker pool.
//!
//! A parallel-configured engine must not pay any pool overhead — no job
//! allocation, no queue traffic — for generations below
//! [`nt_runtime::FIXPOINT_DISPATCH_THRESHOLD`] trigger tasks; only a
//! generation at or above the threshold may enqueue pool jobs. The check
//! reads the pool's global `jobs_executed` counter, so this test lives alone
//! in its own binary: test binaries run their `#[test]`s on multiple
//! threads, and a concurrent pool user would race the counter.

use nt_runtime::{
    CompiledProgram, EngineConfig, NodeEngine, Tuple, Value, FIXPOINT_DISPATCH_THRESHOLD,
};
use std::sync::Arc;

fn fact(a: i64, b: i64) -> Tuple {
    Tuple::new("e", vec![Value::addr("n1"), Value::Int(a), Value::Int(b)])
}

#[test]
fn small_generations_never_touch_the_pool() {
    let program = Arc::new(
        CompiledProgram::from_source(
            "r1 g(@S,A,B) :- e(@S,A,B).\nr2 h(@S,A,C) :- e(@S,A,B), e(@S,B,C).",
        )
        .expect("program compiles"),
    );
    let mut engine = NodeEngine::new(
        program.clone(),
        EngineConfig::new("n1").with_fixpoint_workers(4),
    );

    // Well below the threshold: a handful of deltas per generation. The
    // engine is configured for 4 workers, yet the pool must see zero jobs.
    let before = nt_pool::jobs_executed();
    for round in 0..4i64 {
        for a in 0..8i64 {
            engine.insert_base(fact(round * 8 + a, a));
        }
        engine.run();
    }
    assert_eq!(
        nt_pool::jobs_executed(),
        before,
        "sub-threshold generations must not allocate pool jobs"
    );

    // One generation with >= FIXPOINT_DISPATCH_THRESHOLD trigger tasks (two
    // rules fire per inserted tuple) must take the dispatch path.
    let before = nt_pool::jobs_executed();
    for a in 0..FIXPOINT_DISPATCH_THRESHOLD as i64 {
        engine.insert_base(fact(1000 + a, a));
    }
    engine.run();
    assert!(
        nt_pool::jobs_executed() > before,
        "an at-threshold generation must dispatch morsels to the pool"
    );

    // A sequential engine never dispatches, no matter how large the
    // generation.
    let mut sequential = NodeEngine::new(program, EngineConfig::new("n1"));
    let before = nt_pool::jobs_executed();
    for a in 0..2 * FIXPOINT_DISPATCH_THRESHOLD as i64 {
        sequential.insert_base(fact(a, a));
    }
    sequential.run();
    assert_eq!(
        nt_pool::jobs_executed(),
        before,
        "W=1 engines must stay on the inline path"
    );
}
