//! Property: the columnar table backing is *bit-identical* to the row-major
//! reference layout. For random programs (joins, filters, assignments,
//! negation, `min` aggregation, remote heads) and random batched
//! insert/delete sequences, an engine storing its tables column-major must
//! produce, run for run, exactly the same [`nt_runtime::StepOutput`] —
//! outbox [`nt_runtime::DeltaBatch`]es including their dictionary headers,
//! the provenance firing stream, local membership changes and the truncation
//! flag — the same final tables with the same supporting derivations, and
//! the same [`nt_runtime::EngineStats`] (`join_probes` included: the
//! vectorized probe kernel must yield exactly the candidates the row store's
//! probe yields, in the same order) as a row-backed engine, at every worker
//! count.

use nt_runtime::{
    CompiledProgram, EngineConfig, EngineStats, NodeEngine, StepOutput, TableBacking, Tuple, Value,
};
use proptest::prelude::*;
use std::collections::BTreeMap;
use std::sync::Arc;

const PROGRAMS: &[&str] = &[
    // Projection + two-atom join probing on the shared variables (S, B).
    "r1 g(@S,A,B) :- e(@S,A,B).\n\
     r2 h(@S,A,C) :- e(@S,A,B), f(@S,B,C).",
    // Join with a constant probe column, a filter and an assignment.
    "r1 h(@S,A,C) :- e(@S,A,B), f(@S,B,C), C < 3.\n\
     r2 k(@S,A,D) :- e(@S,A,1), D := A + 1.",
    // Negation: reconciliation-based maintenance.
    "r1 miss(@S,A,B) :- e(@S,A,B), !f(@S,A,B).",
    // Aggregation: group recomputation probed by the group key.
    "materialize(m, infinity, infinity, keys(1,2)).\n\
     r1 m(@S,min<B>) :- e(@S,A,B).\n\
     r2 g(@S,A) :- e(@S,A,B), f(@S,B,A).",
    // Three-atom chain join: the probe kernel anchored on different columns
    // per step.
    "r1 chain(@S,A,D) :- e(@S,A,B), f(@S,B,C), e(@S,C,D).",
    // Remote heads: outbox tables store tuples of the *head* relation under
    // a `__out::` table name — the columnar per-slot relation must preserve
    // that distinction or retractions stop shipping.
    "r1 ship(@D,A,B) :- e(@S,A,B), peer(@S,D).\n\
     r2 h(@S,A,C) :- e(@S,A,B), f(@S,B,C).",
];

/// One operation: insert (true) or delete (false) a fact of `e` or `f`.
type Op = (bool, bool, i64, i64, bool);

fn fact(relation: &str, a: i64, b: i64, b_double: bool) -> Tuple {
    let b_value = if b_double {
        Value::Double(b as f64)
    } else {
        Value::Int(b)
    };
    Tuple::new(relation, vec![Value::addr("n1"), Value::Int(a), b_value])
}

/// relation -> tuple -> sorted derivation debug strings.
type TableDump = BTreeMap<String, BTreeMap<String, Vec<String>>>;

/// Apply the ops in batches of `batch` deltas per run and return every run's
/// full output, the final table dump and the engine counters.
fn run_ops(
    program: &Arc<CompiledProgram>,
    config: EngineConfig,
    ops: &[Op],
    batch: usize,
) -> (Vec<StepOutput>, TableDump, EngineStats) {
    let mut engine = NodeEngine::new(program.clone(), config);
    engine.insert_base(Tuple::new(
        "peer",
        vec![Value::addr("n1"), Value::addr("n2")],
    ));
    engine.insert_base(Tuple::new(
        "peer",
        vec![Value::addr("n1"), Value::addr("n3")],
    ));
    let mut outputs = vec![engine.run()];
    for chunk in ops.chunks(batch.max(1)) {
        for (insert, use_e, a, b, b_double) in chunk {
            let tuple = fact(if *use_e { "e" } else { "f" }, *a, *b, *b_double);
            if *insert {
                engine.insert_base(tuple);
            } else {
                engine.delete_base(tuple);
            }
        }
        outputs.push(engine.run());
    }
    let mut state = BTreeMap::new();
    for table in engine.database().tables() {
        let mut tuples = BTreeMap::new();
        for stored in table.iter() {
            let mut derivations: Vec<String> = stored
                .derivations()
                .iter()
                .map(|d| format!("{d:?}"))
                .collect();
            derivations.sort();
            tuples.insert(stored.to_tuple().to_string(), derivations);
        }
        state.insert(table.schema.name.clone(), tuples);
    }
    (outputs, state, engine.stats().clone())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// Columnar storage equals the row reference bit for bit: per-run
    /// outputs, final tables and counters, at W ∈ {1, 4} (the parallel
    /// configuration pins the dispatch threshold to 0 so every generation
    /// takes the pool path over the columnar probe kernel).
    #[test]
    fn columnar_matches_row_store(
        program_idx in 0usize..6,
        batch in 1usize..6,
        ops in proptest::collection::vec(
            (any::<bool>(), any::<bool>(), 0i64..4, 0i64..4, any::<bool>()),
            1..25,
        ),
    ) {
        let program = Arc::new(
            CompiledProgram::from_source(PROGRAMS[program_idx]).expect("pool programs compile"),
        );
        for workers in [1usize, 4] {
            let mut row_config = EngineConfig::new("n1").with_row_storage();
            let mut col_config = EngineConfig::new("n1");
            if workers > 1 {
                row_config = row_config
                    .with_fixpoint_workers(workers)
                    .with_fixpoint_dispatch_threshold(0);
                col_config = col_config
                    .with_fixpoint_workers(workers)
                    .with_fixpoint_dispatch_threshold(0);
            }
            prop_assert_eq!(col_config.columnar_storage, true);
            prop_assert_eq!(row_config.columnar_storage, false);
            let row = run_ops(&program, row_config, &ops, batch);
            let col = run_ops(&program, col_config, &ops, batch);
            prop_assert_eq!(
                &row.0, &col.0,
                "per-run outputs diverged between backings at W={}", workers
            );
            prop_assert_eq!(
                &row.1, &col.1,
                "final tables diverged between backings at W={}", workers
            );
            prop_assert_eq!(
                &row.2, &col.2,
                "engine stats diverged between backings at W={}", workers
            );
        }
    }

    /// Full retraction drains every relation under the columnar backing
    /// exactly as it does under the row backing — slot recycling through the
    /// free list must never resurrect a tuple or strand an outbox entry.
    #[test]
    fn full_retraction_drains_both_backings(
        program_idx in 0usize..6,
        facts in proptest::collection::vec(
            (any::<bool>(), 0i64..4, 0i64..4, any::<bool>()),
            1..12,
        ),
    ) {
        let program = Arc::new(
            CompiledProgram::from_source(PROGRAMS[program_idx]).expect("pool programs compile"),
        );
        let mut ops: Vec<Op> = facts
            .iter()
            .map(|(e, a, b, d)| (true, *e, *a, *b, *d))
            .collect();
        ops.extend(facts.iter().map(|(e, a, b, d)| (false, *e, *a, *b, *d)));
        for backing in [TableBacking::Columnar, TableBacking::Row] {
            let config = match backing {
                TableBacking::Columnar => EngineConfig::new("n1"),
                TableBacking::Row => EngineConfig::new("n1").with_row_storage(),
            };
            let (_, state, _) = run_ops(&program, config, &ops, 4);
            for (relation, tuples) in &state {
                if relation == "peer" {
                    continue;
                }
                prop_assert!(
                    tuples.is_empty(),
                    "relation {} still holds {} tuples after full retraction ({:?} backing)",
                    relation,
                    tuples.len(),
                    backing
                );
            }
        }
    }
}
