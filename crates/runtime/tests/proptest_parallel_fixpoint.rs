//! Property: the morsel-driven parallel fixpoint is *bit-identical* to the
//! sequential path at every worker count. For random programs (joins,
//! filters, assignments, negation, `min` aggregation, remote heads) and
//! random batched insert/delete sequences, an engine configured with W ∈
//! {2, 4} workers must produce, run for run, exactly the same
//! [`nt_runtime::StepOutput`] — outbox [`nt_runtime::DeltaBatch`]es including
//! their dictionary headers, the provenance firing stream, local membership
//! changes and the truncation flag — the same final tables with the same
//! supporting derivations, and the same [`nt_runtime::EngineStats`] as the
//! W = 1 engine.
//!
//! The dispatch threshold is pinned to 0 so even tiny generations take the
//! pool path (the host sweep in the bench covers large generations); a
//! second property leaves the default threshold in place to exercise the
//! inline fallback's equality too.

use nt_runtime::{
    CompiledProgram, EngineConfig, EngineStats, NodeEngine, StepOutput, Tuple, Value,
};
use proptest::prelude::*;
use std::collections::BTreeMap;
use std::sync::Arc;

const PROGRAMS: &[&str] = &[
    // Projection + two-atom join probing on the shared variables (S, B).
    "r1 g(@S,A,B) :- e(@S,A,B).\n\
     r2 h(@S,A,C) :- e(@S,A,B), f(@S,B,C).",
    // Join with a constant probe column, a filter and an assignment.
    "r1 h(@S,A,C) :- e(@S,A,B), f(@S,B,C), C < 3.\n\
     r2 k(@S,A,D) :- e(@S,A,1), D := A + 1.",
    // Negation: reconciliation-based maintenance.
    "r1 miss(@S,A,B) :- e(@S,A,B), !f(@S,A,B).",
    // Aggregation: group recomputation probed by the group key.
    "materialize(m, infinity, infinity, keys(1,2)).\n\
     r1 m(@S,min<B>) :- e(@S,A,B).\n\
     r2 g(@S,A) :- e(@S,A,B), f(@S,B,A).",
    // Three-atom chain join: morsels carrying skewed per-task work.
    "r1 chain(@S,A,D) :- e(@S,A,B), f(@S,B,C), e(@S,C,D).",
    // Remote heads: derivations shipped to another node exercise the outbox
    // tables, send coalescing and per-destination dictionary headers.
    "r1 ship(@D,A,B) :- e(@S,A,B), peer(@S,D).\n\
     r2 h(@S,A,C) :- e(@S,A,B), f(@S,B,C).",
];

/// One operation: insert (true) or delete (false) a fact of `e` or `f`.
type Op = (bool, bool, i64, i64, bool);

fn fact(relation: &str, a: i64, b: i64, b_double: bool) -> Tuple {
    let b_value = if b_double {
        Value::Double(b as f64)
    } else {
        Value::Int(b)
    };
    Tuple::new(relation, vec![Value::addr("n1"), Value::Int(a), b_value])
}

/// relation -> tuple -> sorted derivation debug strings.
type TableDump = BTreeMap<String, BTreeMap<String, Vec<String>>>;

/// Apply the ops in batches of `batch` deltas per run (multi-delta
/// generations are where parallel evaluation actually happens) and return
/// every run's full output, the final table dump and the engine counters.
fn run_ops(
    program: &Arc<CompiledProgram>,
    config: EngineConfig,
    ops: &[Op],
    batch: usize,
) -> (Vec<StepOutput>, TableDump, EngineStats) {
    let mut engine = NodeEngine::new(program.clone(), config);
    // Peers for the remote-head program; inert facts for the others.
    engine.insert_base(Tuple::new(
        "peer",
        vec![Value::addr("n1"), Value::addr("n2")],
    ));
    engine.insert_base(Tuple::new(
        "peer",
        vec![Value::addr("n1"), Value::addr("n3")],
    ));
    let mut outputs = vec![engine.run()];
    for chunk in ops.chunks(batch.max(1)) {
        for (insert, use_e, a, b, b_double) in chunk {
            let tuple = fact(if *use_e { "e" } else { "f" }, *a, *b, *b_double);
            if *insert {
                engine.insert_base(tuple);
            } else {
                engine.delete_base(tuple);
            }
        }
        outputs.push(engine.run());
    }
    let mut state = BTreeMap::new();
    for table in engine.database().tables() {
        let mut tuples = BTreeMap::new();
        for stored in table.iter() {
            let mut derivations: Vec<String> = stored
                .derivations
                .iter()
                .map(|d| format!("{d:?}"))
                .collect();
            derivations.sort();
            tuples.insert(stored.tuple.to_string(), derivations);
        }
        state.insert(table.schema.name.clone(), tuples);
    }
    (outputs, state, engine.stats().clone())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// W ∈ {2, 4} with a zero dispatch threshold (every generation goes
    /// through the pool) equals W = 1 bit for bit: per-run outputs, final
    /// tables and counters.
    #[test]
    fn forced_dispatch_matches_sequential(
        program_idx in 0usize..6,
        batch in 1usize..6,
        ops in proptest::collection::vec(
            (any::<bool>(), any::<bool>(), 0i64..4, 0i64..4, any::<bool>()),
            1..25,
        ),
    ) {
        let program = Arc::new(
            CompiledProgram::from_source(PROGRAMS[program_idx]).expect("pool programs compile"),
        );
        let baseline = run_ops(&program, EngineConfig::new("n1"), &ops, batch);
        for workers in [2usize, 4] {
            let config = EngineConfig::new("n1")
                .with_fixpoint_workers(workers)
                .with_fixpoint_dispatch_threshold(0);
            let parallel = run_ops(&program, config, &ops, batch);
            prop_assert_eq!(
                &baseline.0, &parallel.0,
                "per-run outputs diverged at W={}", workers
            );
            prop_assert_eq!(
                &baseline.1, &parallel.1,
                "final tables diverged at W={}", workers
            );
            prop_assert_eq!(
                &baseline.2, &parallel.2,
                "engine stats diverged at W={}", workers
            );
        }
    }

    /// The default threshold keeps small generations inline; a parallel
    /// configuration must still be indistinguishable.
    #[test]
    fn default_threshold_matches_sequential(
        program_idx in 0usize..6,
        batch in 1usize..6,
        ops in proptest::collection::vec(
            (any::<bool>(), any::<bool>(), 0i64..4, 0i64..4, any::<bool>()),
            1..20,
        ),
    ) {
        let program = Arc::new(
            CompiledProgram::from_source(PROGRAMS[program_idx]).expect("pool programs compile"),
        );
        let baseline = run_ops(&program, EngineConfig::new("n1"), &ops, batch);
        let parallel = run_ops(
            &program,
            EngineConfig::new("n1").with_fixpoint_workers(4),
            &ops,
            batch,
        );
        prop_assert_eq!(&baseline.0, &parallel.0);
        prop_assert_eq!(&baseline.1, &parallel.1);
        prop_assert_eq!(&baseline.2, &parallel.2);
    }

    /// Full retraction drains every relation at every worker count (no
    /// candidate computed against the frozen tables resurrects a tuple).
    #[test]
    fn full_retraction_drains_all_worker_counts(
        program_idx in 0usize..6,
        facts in proptest::collection::vec(
            (any::<bool>(), 0i64..4, 0i64..4, any::<bool>()),
            1..12,
        ),
    ) {
        let program = Arc::new(
            CompiledProgram::from_source(PROGRAMS[program_idx]).expect("pool programs compile"),
        );
        let mut ops: Vec<Op> = facts
            .iter()
            .map(|(e, a, b, d)| (true, *e, *a, *b, *d))
            .collect();
        ops.extend(facts.iter().map(|(e, a, b, d)| (false, *e, *a, *b, *d)));
        for workers in [1usize, 2, 4] {
            let config = EngineConfig::new("n1")
                .with_fixpoint_workers(workers)
                .with_fixpoint_dispatch_threshold(0);
            let (_, state, _) = run_ops(&program, config, &ops, 4);
            for (relation, tuples) in &state {
                if relation == "peer" {
                    continue;
                }
                prop_assert!(
                    tuples.is_empty(),
                    "relation {} still holds {} tuples after full retraction at W={}",
                    relation,
                    tuples.len(),
                    workers
                );
            }
        }
    }
}
