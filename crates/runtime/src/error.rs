//! Runtime error type.

use std::fmt;

/// Result alias for the runtime crate.
pub type Result<T> = std::result::Result<T, RuntimeError>;

/// Errors raised while compiling a program to the runtime representation or
/// while executing it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RuntimeError {
    /// The program references relations inconsistently (arity / location).
    Schema(String),
    /// A rule cannot be compiled (unsupported shape, bad localization, ...).
    Compile {
        /// Rule the problem was found in, if known.
        rule: Option<String>,
        /// Human-readable description.
        message: String,
    },
    /// An expression failed to evaluate (type error, unknown variable, ...).
    Eval(String),
    /// A tuple does not match the schema of its relation.
    BadTuple(String),
}

impl RuntimeError {
    /// Construct a schema error.
    pub fn schema(msg: impl Into<String>) -> Self {
        RuntimeError::Schema(msg.into())
    }

    /// Construct a compilation error.
    pub fn compile(rule: Option<&str>, msg: impl Into<String>) -> Self {
        RuntimeError::Compile {
            rule: rule.map(str::to_string),
            message: msg.into(),
        }
    }

    /// Construct an evaluation error.
    pub fn eval(msg: impl Into<String>) -> Self {
        RuntimeError::Eval(msg.into())
    }

    /// Construct a bad-tuple error.
    pub fn bad_tuple(msg: impl Into<String>) -> Self {
        RuntimeError::BadTuple(msg.into())
    }
}

impl fmt::Display for RuntimeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RuntimeError::Schema(m) => write!(f, "schema error: {m}"),
            RuntimeError::Compile { rule, message } => match rule {
                Some(r) => write!(f, "cannot compile rule `{r}`: {message}"),
                None => write!(f, "cannot compile program: {message}"),
            },
            RuntimeError::Eval(m) => write!(f, "evaluation error: {m}"),
            RuntimeError::BadTuple(m) => write!(f, "bad tuple: {m}"),
        }
    }
}

impl std::error::Error for RuntimeError {}

impl From<ndlog::NdlogError> for RuntimeError {
    fn from(e: ndlog::NdlogError) -> Self {
        RuntimeError::Compile {
            rule: None,
            message: e.to_string(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        assert!(RuntimeError::schema("x").to_string().contains("schema"));
        assert!(RuntimeError::compile(Some("r1"), "y")
            .to_string()
            .contains("r1"));
        assert!(RuntimeError::eval("z").to_string().contains("evaluation"));
        assert!(RuntimeError::bad_tuple("w")
            .to_string()
            .contains("bad tuple"));
    }

    #[test]
    fn converts_ndlog_errors() {
        let e: RuntimeError = ndlog::NdlogError::validation(Some("r9"), "boom").into();
        assert!(e.to_string().contains("boom"));
    }
}
