//! Tuples and tuple identifiers.

use crate::value::{StableHasher, Sym, Value};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Content-addressed tuple identifier (the ExSPAN "VID").
///
/// A VID is a stable digest of the relation name and every attribute value, so
/// any node that holds (or merely mentions) a tuple computes the same
/// identifier without coordination. VIDs are the vertices of the distributed
/// provenance graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct TupleId(pub u64);

impl fmt::Display for TupleId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "vid:{:016x}", self.0)
    }
}

/// A ground tuple: relation name plus attribute values. The relation name is
/// interned ([`Sym`]), so cloning a tuple never copies it and relation
/// comparisons on the join/provenance hot paths are integer compares.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Tuple {
    /// Relation this tuple belongs to.
    pub relation: Sym,
    /// Attribute values, in schema order.
    pub values: Vec<Value>,
}

impl Tuple {
    /// Create a tuple (interning the relation name).
    pub fn new(relation: impl Into<Sym>, values: Vec<Value>) -> Self {
        Tuple {
            relation: relation.into(),
            values,
        }
    }

    /// Number of attributes.
    pub fn arity(&self) -> usize {
        self.values.len()
    }

    /// The stable content-addressed identifier of this tuple.
    pub fn id(&self) -> TupleId {
        let mut h = StableHasher::new();
        h.write_str(&self.relation);
        h.write_u64(self.values.len() as u64);
        for v in &self.values {
            v.stable_hash_into(&mut h);
        }
        TupleId(h.finish())
    }

    /// The value of the location attribute given its column index.
    pub fn location(&self, loc_col: usize) -> Option<&str> {
        self.values.get(loc_col).and_then(|v| v.as_addr())
    }

    /// Approximate wire size in bytes (for traffic accounting). The relation
    /// name ships as a fixed-width interned id (the dictionary travels once
    /// per snapshot, not per tuple).
    pub fn wire_size(&self) -> usize {
        8 + Sym::WIRE_SIZE + self.values.iter().map(Value::wire_size).sum::<usize>()
    }

    /// Project the tuple onto the given column indices.
    pub fn project(&self, cols: &[usize]) -> Vec<Value> {
        cols.iter()
            .filter_map(|&c| self.values.get(c).cloned())
            .collect()
    }
}

impl fmt::Display for Tuple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}(", self.relation)?;
        for (i, v) in self.values.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, ")")
    }
}

/// A change to a relation: the unit the incremental engine processes and the
/// unit that travels between nodes.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Delta {
    /// The tuple is inserted (or re-derived).
    Insert(Tuple),
    /// The tuple is deleted (or its last derivation disappeared).
    Delete(Tuple),
}

impl Delta {
    /// The tuple the delta refers to.
    pub fn tuple(&self) -> &Tuple {
        match self {
            Delta::Insert(t) | Delta::Delete(t) => t,
        }
    }

    /// True for insertions.
    pub fn is_insert(&self) -> bool {
        matches!(self, Delta::Insert(_))
    }

    /// Map the delta to the opposite polarity (used when retracting a rule's
    /// effects).
    pub fn inverted(&self) -> Delta {
        match self {
            Delta::Insert(t) => Delta::Delete(t.clone()),
            Delta::Delete(t) => Delta::Insert(t.clone()),
        }
    }
}

impl fmt::Display for Delta {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Delta::Insert(t) => write!(f, "+{t}"),
            Delta::Delete(t) => write!(f, "-{t}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn link(s: &str, d: &str, c: i64) -> Tuple {
        Tuple::new("link", vec![Value::addr(s), Value::addr(d), Value::Int(c)])
    }

    #[test]
    fn id_is_stable_and_content_addressed() {
        assert_eq!(link("n1", "n2", 3).id(), link("n1", "n2", 3).id());
        assert_ne!(link("n1", "n2", 3).id(), link("n1", "n2", 4).id());
        assert_ne!(
            link("n1", "n2", 3).id(),
            Tuple::new(
                "edge",
                vec![Value::addr("n1"), Value::addr("n2"), Value::Int(3)]
            )
            .id()
        );
    }

    #[test]
    fn location_extraction() {
        let t = link("n7", "n9", 1);
        assert_eq!(t.location(0), Some("n7"));
        assert_eq!(t.location(1), Some("n9"));
        assert_eq!(t.location(2), None);
    }

    #[test]
    fn delta_inversion_round_trips() {
        let d = Delta::Insert(link("a", "b", 1));
        assert_eq!(d.inverted().inverted(), d);
        assert!(d.is_insert());
        assert!(!d.inverted().is_insert());
    }

    #[test]
    fn display_is_readable() {
        assert_eq!(link("n1", "n2", 3).to_string(), "link(n1,n2,3)");
        assert_eq!(
            Delta::Delete(link("n1", "n2", 3)).to_string(),
            "-link(n1,n2,3)"
        );
    }

    #[test]
    fn project_selects_columns() {
        let t = link("n1", "n2", 3);
        assert_eq!(t.project(&[2, 0]), vec![Value::Int(3), Value::addr("n1")]);
    }
}
