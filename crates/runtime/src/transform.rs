//! Automatic rule localization.
//!
//! NDlog allows *link-restricted* rules whose body atoms live at two different
//! nodes, e.g. the classic path-vector step
//!
//! ```text
//! r2 cost(@S,D,C) :- link(@S,Z,C1), cost(@Z,D,C2), C := C1 + C2.
//! ```
//!
//! where `link` tuples live at `S` and `cost` tuples live at `Z`. A single
//! node cannot evaluate this join directly. The declarative-networking
//! localization rewrite (Loo et al., and implemented by RapidNet) turns every
//! such rule into rules whose bodies are single-location, introducing an
//! auxiliary relation that ships the necessary attributes to the remote node:
//!
//! ```text
//! r2_s1 r2_aux(@Z,S,C1)  :- link(@S,Z,C1).
//! r2    cost(@S,D,C)     :- r2_aux(@Z,S,C1), cost(@Z,D,C2), C := C1 + C2.
//! ```
//!
//! After the rewrite every rule body is local; only *head* tuples (and the
//! auxiliary tuples) travel over the network, which is exactly the execution
//! model the runtime engine implements. The provenance layer sees the rewritten
//! rules — the same view ExSPAN instruments.

use crate::error::{Result, RuntimeError};
use ndlog::localize::{localize_rule, RuleLocation};
use ndlog::{BodyElem, Materialize, Predicate, Program, Rule, RuleKind, Term};
use std::collections::BTreeSet;

/// Suffix used for the generated ship rule of a localized rule.
pub const SHIP_RULE_SUFFIX: &str = "_s1";
/// Suffix used for the generated auxiliary relation of a localized rule.
pub const AUX_RELATION_SUFFIX: &str = "_aux";

/// Rewrite a program so that every rule's positive body atoms share a single
/// location variable. Rules that are already local are kept verbatim.
///
/// `maybe` rules are never localized (they are evaluated by the legacy proxy,
/// not by the engine) and are copied through unchanged.
pub fn localize_program(program: &Program) -> Result<Program> {
    let mut out = Program {
        materializations: program.materializations.clone(),
        rules: Vec::new(),
    };
    for rule in &program.rules {
        if rule.kind == RuleKind::Maybe {
            out.rules.push(rule.clone());
            continue;
        }
        let localized = localize_rule(rule)?;
        if localized.remote_locations.is_empty() {
            out.rules.push(rule.clone());
            continue;
        }
        if localized.remote_locations.len() > 1 {
            return Err(RuntimeError::compile(
                Some(&rule.name),
                "rules spanning more than two locations are not supported; \
                 split the rule manually",
            ));
        }
        let exec_var = match &localized.exec_location {
            RuleLocation::Variable(v) => v.clone(),
            RuleLocation::Constant(_) => {
                return Err(RuntimeError::compile(
                    Some(&rule.name),
                    "cannot localize a rule whose first atom is pinned to a constant location",
                ))
            }
        };
        let remote_var = localized.remote_locations[0].clone();
        let (ship, local) = split_rule(rule, &exec_var, &remote_var)?;
        // Declare the auxiliary relation as a stored relation with set
        // semantics so late-arriving remote tuples can still join.
        out.materializations.push(Materialize {
            relation: ship.head.relation.clone(),
            lifetime: None,
            max_size: None,
            keys: (1..=ship.head.terms.len()).collect(),
        });
        out.rules.push(ship);
        out.rules.push(local);
    }
    Ok(out)
}

/// Split one link-restricted rule into (ship rule, local rule).
fn split_rule(rule: &Rule, exec_var: &str, remote_var: &str) -> Result<(Rule, Rule)> {
    let aux_relation = format!("{}{}", rule.name, AUX_RELATION_SUFFIX);

    let mut exec_atoms: Vec<Predicate> = Vec::new();
    let mut remote_atoms: Vec<Predicate> = Vec::new();
    let mut other_elems: Vec<BodyElem> = Vec::new();

    for elem in &rule.body {
        match elem {
            BodyElem::Atom(p) if !p.negated => {
                match p.location_variable() {
                    Some(v) if v == exec_var => exec_atoms.push(p.clone()),
                    Some(v) if v == remote_var => remote_atoms.push(p.clone()),
                    // Constant-located atoms stay with the local (remote-side)
                    // rule; the engine ships them explicitly anyway.
                    _ => remote_atoms.push(p.clone()),
                }
            }
            other => other_elems.push(other.clone()),
        }
    }
    if exec_atoms.is_empty() || remote_atoms.is_empty() {
        return Err(RuntimeError::compile(
            Some(&rule.name),
            "internal error: localization split produced an empty side",
        ));
    }

    // Variables bound by the exec-side atoms.
    let mut exec_vars: BTreeSet<String> = BTreeSet::new();
    for a in &exec_atoms {
        exec_vars.extend(a.variables());
    }
    // Variables needed by the rest of the rule (remote atoms, filters,
    // assignments, negated atoms and the head).
    let mut needed: BTreeSet<String> = BTreeSet::new();
    for a in &remote_atoms {
        needed.extend(a.variables());
    }
    for elem in &other_elems {
        match elem {
            BodyElem::Atom(p) => needed.extend(p.variables()),
            BodyElem::Assign { expr, .. } => {
                let mut vs = Vec::new();
                expr.variables(&mut vs);
                needed.extend(vs);
            }
            BodyElem::Filter(expr) => {
                let mut vs = Vec::new();
                expr.variables(&mut vs);
                needed.extend(vs);
            }
        }
    }
    needed.extend(rule.head.variables());

    // Shipped attributes: exec-side variables that are needed downstream,
    // excluding the remote location variable itself (it becomes the aux
    // relation's location attribute). Keep deterministic (sorted) order.
    let shipped: Vec<String> = exec_vars
        .iter()
        .filter(|v| needed.contains(*v) && *v != remote_var)
        .cloned()
        .collect();

    // Ship rule: aux(@Remote, shipped...) :- exec_atoms...
    let mut aux_terms = vec![Term::loc_var(remote_var)];
    aux_terms.extend(shipped.iter().map(Term::var));
    let ship_head = Predicate::new(aux_relation.clone(), aux_terms.clone());
    let ship_rule = Rule {
        name: format!("{}{}", rule.name, SHIP_RULE_SUFFIX),
        head: ship_head,
        body: exec_atoms.iter().cloned().map(BodyElem::Atom).collect(),
        kind: RuleKind::Derive,
    };

    // Local rule: original head :- aux(@Remote, shipped...), remote_atoms...,
    // other elements (assignments / filters / negated atoms) in source order.
    let mut local_body: Vec<BodyElem> =
        vec![BodyElem::Atom(Predicate::new(aux_relation, aux_terms))];
    local_body.extend(remote_atoms.into_iter().map(BodyElem::Atom));
    local_body.extend(other_elems);
    let local_rule = Rule {
        name: rule.name.clone(),
        head: rule.head.clone(),
        body: local_body,
        kind: RuleKind::Derive,
    };

    Ok((ship_rule, local_rule))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ndlog::parse_program;

    #[test]
    fn local_rules_pass_through_unchanged() {
        let program = parse_program(
            "r1 cost(@S,D,C) :- link(@S,D,C).\nr3 minCost(@S,D,min<C>) :- cost(@S,D,C).",
        )
        .unwrap();
        let localized = localize_program(&program).unwrap();
        assert_eq!(localized.rules, program.rules);
    }

    #[test]
    fn link_restricted_rule_is_split_in_two() {
        let program =
            parse_program("r2 cost(@S,D,C) :- link(@S,Z,C1), cost(@Z,D,C2), C := C1 + C2.")
                .unwrap();
        let localized = localize_program(&program).unwrap();
        assert_eq!(localized.rules.len(), 2);
        let ship = &localized.rules[0];
        let local = &localized.rules[1];
        assert_eq!(ship.name, "r2_s1");
        assert_eq!(ship.head.relation, "r2_aux");
        // The aux tuple lives at Z and carries S and C1.
        assert_eq!(ship.head.location_variable(), Some("Z"));
        let vars = ship.head.variables();
        assert!(vars.contains(&"S".to_string()));
        assert!(vars.contains(&"C1".to_string()));
        // Ship rule body is the link atom only.
        assert_eq!(ship.body.len(), 1);
        // Local rule joins the aux relation with the local cost table.
        assert_eq!(local.name, "r2");
        assert_eq!(local.head.relation, "cost");
        let first_atom = local.body[0].as_atom().unwrap();
        assert_eq!(first_atom.relation, "r2_aux");
        // And an aux materialization was added.
        assert!(localized.materialization("r2_aux").is_some());
        // Every rewritten rule is now single-location.
        for rule in &localized.rules {
            let lr = ndlog::localize::localize_rule(rule).unwrap();
            assert!(
                lr.remote_locations.is_empty(),
                "rule {} still remote",
                rule.name
            );
        }
    }

    #[test]
    fn localized_program_still_validates() {
        let program = parse_program(
            "r1 path(@S,D,P,C) :- link(@S,D,C), P := f_initlist2(S, D).\n\
             r2 path(@S,D,P,C) :- link(@S,Z,C1), path(@Z,D,P2,C2), \
                f_member(P2, S) == 0, C := C1 + C2, P := f_prepend(S, P2).\n\
             r3 bestPathCost(@S,D,min<C>) :- path(@S,D,P,C).",
        )
        .unwrap();
        let localized = localize_program(&program).unwrap();
        ndlog::validate_program(&localized).unwrap();
        assert_eq!(localized.rules.len(), 4);
    }

    #[test]
    fn maybe_rules_are_not_localized() {
        let program = parse_program(
            "br1 outputRoute(@AS,R2) ?- inputRoute(@AS,R1), f_isExtend(R2,R1,AS) == 1.",
        )
        .unwrap();
        let localized = localize_program(&program).unwrap();
        assert_eq!(localized.rules, program.rules);
    }

    #[test]
    fn three_location_rules_are_rejected() {
        let program =
            parse_program("r1 tri(@S,X) :- link(@S,Z,C1), link2(@Z,W,C2), data(@W,X).").unwrap();
        assert!(localize_program(&program).is_err());
    }
}
