//! Tuple storage: per-relation tables with derivation tracking and the
//! per-node database.
//!
//! Every stored tuple carries the multiset of **derivations** that currently
//! support it. A derivation is either the distinguished *base* derivation
//! (the tuple was inserted by the environment — a link report, a received
//! trace event, ...) or a rule firing identified by the rule name, the node
//! where the rule executed and the identifiers of the input tuples. A tuple is
//! *present* while it has at least one supporting derivation; when the last
//! derivation is retracted the tuple disappears and the deletion cascades
//! through the reverse-dependency index. This is exactly the information the
//! ExSPAN provenance graph records, which is why NetTrails can reuse the same
//! machinery for both incremental maintenance and provenance.

use crate::catalog::RelationSchema;
use crate::tuple::{Tuple, TupleId};
use crate::value::Value;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, HashMap, HashSet};

/// The rule name used for base (externally inserted) tuples.
pub const BASE_RULE: &str = "__base";

/// One derivation supporting a tuple.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Derivation {
    /// Rule that fired (or [`BASE_RULE`]).
    pub rule: String,
    /// Node on which the rule executed.
    pub node: String,
    /// Identifiers of the body tuples that fed the firing, in body order.
    pub inputs: Vec<TupleId>,
}

impl Derivation {
    /// The base derivation for externally inserted tuples at `node`.
    pub fn base(node: impl Into<String>) -> Self {
        Derivation {
            rule: BASE_RULE.to_string(),
            node: node.into(),
            inputs: Vec::new(),
        }
    }

    /// True for base derivations.
    pub fn is_base(&self) -> bool {
        self.rule == BASE_RULE
    }
}

/// A tuple plus its supporting derivations.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StoredTuple {
    /// The tuple.
    pub tuple: Tuple,
    /// Current supporting derivations (deduplicated).
    pub derivations: Vec<Derivation>,
}

/// Outcome of adding or removing a derivation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Membership {
    /// The tuple became present (0 -> 1 derivations) — an insertion delta.
    Appeared,
    /// The tuple was already present and gained a *new* alternative
    /// derivation. No membership change, but the provenance graph grows.
    AddedDerivation,
    /// The tuple was already present and lost one of several derivations.
    RemovedDerivation,
    /// Nothing changed (the derivation to add was already recorded).
    Unchanged,
    /// The tuple lost its last derivation — a deletion delta.
    Disappeared,
    /// Adding a tuple displaced an older tuple with the same primary key
    /// (update-in-place semantics of `materialize`). Carries the displaced
    /// tuple.
    Replaced(Tuple),
    /// The derivation to remove was not present / the tuple was unknown.
    NotFound,
}

impl Membership {
    /// True when the tuple is present after the operation.
    pub fn present(&self) -> bool {
        matches!(
            self,
            Membership::Appeared
                | Membership::AddedDerivation
                | Membership::RemovedDerivation
                | Membership::Unchanged
                | Membership::Replaced(_)
        )
    }
}

/// A single relation's storage.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Table {
    /// Schema of the relation.
    pub schema: RelationSchema,
    /// Stored tuples keyed by their primary-key projection.
    tuples: BTreeMap<Vec<Value>, StoredTuple>,
    /// Secondary index: tuple id -> primary key, for O(1) lookups by VID
    /// (provenance queries and cascade deletions address tuples by id).
    #[serde(skip)]
    by_id: HashMap<TupleId, Vec<Value>>,
}

impl Table {
    /// Create an empty table.
    pub fn new(schema: RelationSchema) -> Self {
        Table {
            schema,
            tuples: BTreeMap::new(),
            by_id: HashMap::new(),
        }
    }

    /// Rebuild the secondary id index (needed after deserialization, where the
    /// index is skipped).
    pub fn rebuild_index(&mut self) {
        self.by_id = self
            .tuples
            .iter()
            .map(|(k, st)| (st.tuple.id(), k.clone()))
            .collect();
    }

    /// Look up a stored tuple by its content-addressed identifier.
    pub fn get_by_id(&self, id: TupleId) -> Option<&StoredTuple> {
        self.by_id.get(&id).and_then(|k| self.tuples.get(k))
    }

    fn key_of(&self, tuple: &Tuple) -> Vec<Value> {
        tuple.project(&self.schema.key_cols)
    }

    /// Number of stored (present) tuples.
    pub fn len(&self) -> usize {
        self.tuples.len()
    }

    /// True when no tuple is present.
    pub fn is_empty(&self) -> bool {
        self.tuples.is_empty()
    }

    /// Iterate over present tuples in deterministic (key) order.
    pub fn iter(&self) -> impl Iterator<Item = &StoredTuple> {
        self.tuples.values()
    }

    /// Look up the stored entry for an exact tuple (same key *and* same
    /// content).
    pub fn get(&self, tuple: &Tuple) -> Option<&StoredTuple> {
        self.tuples
            .get(&self.key_of(tuple))
            .filter(|st| st.tuple == *tuple)
    }

    /// Look up by primary key only.
    pub fn get_by_key(&self, key: &[Value]) -> Option<&StoredTuple> {
        self.tuples.get(key)
    }

    /// True when the exact tuple is present.
    pub fn contains(&self, tuple: &Tuple) -> bool {
        self.get(tuple).is_some()
    }

    /// Add a derivation for `tuple`, inserting it if necessary.
    ///
    /// Returns how the table membership changed. When the relation has
    /// update-in-place keys and a *different* tuple with the same key was
    /// present, that tuple is removed and returned via
    /// [`Membership::Replaced`]; the caller is responsible for cascading the
    /// implied deletion.
    pub fn add_derivation(&mut self, tuple: &Tuple, derivation: Derivation) -> Membership {
        let key = self.key_of(tuple);
        match self.tuples.get_mut(&key) {
            Some(existing) if existing.tuple == *tuple => {
                if existing.derivations.contains(&derivation) {
                    Membership::Unchanged
                } else {
                    existing.derivations.push(derivation);
                    Membership::AddedDerivation
                }
            }
            Some(_) => {
                // Key collision with different content: replace.
                let old = self
                    .tuples
                    .insert(
                        key.clone(),
                        StoredTuple {
                            tuple: tuple.clone(),
                            derivations: vec![derivation],
                        },
                    )
                    .expect("entry existed");
                self.by_id.remove(&old.tuple.id());
                self.by_id.insert(tuple.id(), key);
                Membership::Replaced(old.tuple)
            }
            None => {
                self.tuples.insert(
                    key.clone(),
                    StoredTuple {
                        tuple: tuple.clone(),
                        derivations: vec![derivation],
                    },
                );
                self.by_id.insert(tuple.id(), key);
                Membership::Appeared
            }
        }
    }

    /// Remove one derivation of `tuple` (matching exactly). Returns
    /// [`Membership::Disappeared`] when that was the last derivation.
    pub fn remove_derivation(&mut self, tuple: &Tuple, derivation: &Derivation) -> Membership {
        let key = self.key_of(tuple);
        let Some(existing) = self.tuples.get_mut(&key) else {
            return Membership::NotFound;
        };
        if existing.tuple != *tuple {
            return Membership::NotFound;
        }
        let before = existing.derivations.len();
        existing.derivations.retain(|d| d != derivation);
        if existing.derivations.len() == before {
            return Membership::NotFound;
        }
        if existing.derivations.is_empty() {
            self.tuples.remove(&key);
            self.by_id.remove(&tuple.id());
            Membership::Disappeared
        } else {
            Membership::RemovedDerivation
        }
    }

    /// Remove every derivation of `tuple` produced by `rule` at `node`.
    /// Used when reconciling non-monotonic (negation / aggregate) rules.
    pub fn remove_rule_derivations(&mut self, tuple: &Tuple, rule: &str) -> Membership {
        let key = self.key_of(tuple);
        let Some(existing) = self.tuples.get_mut(&key) else {
            return Membership::NotFound;
        };
        if existing.tuple != *tuple {
            return Membership::NotFound;
        }
        let before = existing.derivations.len();
        existing.derivations.retain(|d| d.rule != rule);
        if existing.derivations.len() == before {
            return Membership::NotFound;
        }
        if existing.derivations.is_empty() {
            self.tuples.remove(&key);
            self.by_id.remove(&tuple.id());
            Membership::Disappeared
        } else {
            Membership::RemovedDerivation
        }
    }

    /// Forcefully remove a tuple and all of its derivations (used for
    /// update-in-place replacement cascades). Returns the stored entry if it
    /// was present.
    pub fn remove_tuple(&mut self, tuple: &Tuple) -> Option<StoredTuple> {
        let key = self.key_of(tuple);
        match self.tuples.get(&key) {
            Some(st) if st.tuple == *tuple => {
                self.by_id.remove(&tuple.id());
                self.tuples.remove(&key)
            }
            _ => None,
        }
    }

    /// All tuples currently present, cloned (snapshot order is deterministic).
    pub fn tuples(&self) -> Vec<Tuple> {
        self.tuples.values().map(|st| st.tuple.clone()).collect()
    }
}

/// Statistics about a database, used by the benchmarks to report state size
/// and by the log store for snapshot metadata.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct DatabaseStats {
    /// Total number of present tuples across relations.
    pub tuples: usize,
    /// Total number of derivations across tuples.
    pub derivations: usize,
    /// Number of relations with at least one tuple.
    pub nonempty_relations: usize,
}

/// The per-node database: one [`Table`] per relation plus the reverse
/// dependency index used for cascading deletions.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Database {
    tables: BTreeMap<String, Table>,
    /// input tuple id -> (relation, derived tuple id) pairs of derivations
    /// that used it. The derived tuple ids refer to tuples stored in
    /// `tables`.
    #[serde(skip)]
    dependents: HashMap<TupleId, HashSet<(String, TupleId)>>,
}

impl Database {
    /// Create an empty database with the given relation schemas.
    pub fn new(schemas: impl IntoIterator<Item = RelationSchema>) -> Self {
        let mut db = Database::default();
        for s in schemas {
            db.tables.insert(s.name.clone(), Table::new(s));
        }
        db
    }

    /// Register an additional relation (idempotent).
    pub fn register(&mut self, schema: RelationSchema) {
        self.tables
            .entry(schema.name.clone())
            .or_insert_with(|| Table::new(schema));
    }

    /// Access a table.
    pub fn table(&self, relation: &str) -> Option<&Table> {
        self.tables.get(relation)
    }

    /// Mutable access to a table.
    pub fn table_mut(&mut self, relation: &str) -> Option<&mut Table> {
        self.tables.get_mut(relation)
    }

    /// Iterate over all tables.
    pub fn tables(&self) -> impl Iterator<Item = &Table> {
        self.tables.values()
    }

    /// Record that `derived` (in `relation`) has a derivation using `input`.
    pub fn index_dependency(&mut self, input: TupleId, relation: &str, derived: TupleId) {
        self.dependents
            .entry(input)
            .or_default()
            .insert((relation.to_string(), derived));
    }

    /// Tuples that have a derivation using `input`, as (relation, stored
    /// tuple, matching derivations) triples.
    pub fn dependents_of(&self, input: TupleId) -> Vec<(String, Tuple, Vec<Derivation>)> {
        let mut out = Vec::new();
        if let Some(deps) = self.dependents.get(&input) {
            // Deterministic order.
            let mut deps: Vec<_> = deps.iter().cloned().collect();
            deps.sort();
            for (relation, derived_id) in deps {
                if let Some(st) = self
                    .tables
                    .get(&relation)
                    .and_then(|table| table.get_by_id(derived_id))
                {
                    let matching: Vec<Derivation> = st
                        .derivations
                        .iter()
                        .filter(|d| d.inputs.contains(&input))
                        .cloned()
                        .collect();
                    if !matching.is_empty() {
                        out.push((relation.clone(), st.tuple.clone(), matching));
                    }
                }
            }
        }
        out
    }

    /// Drop the dependency-index entry for `input` (after its dependents have
    /// been processed).
    pub fn clear_dependency(&mut self, input: TupleId) {
        self.dependents.remove(&input);
    }

    /// Compute summary statistics.
    pub fn stats(&self) -> DatabaseStats {
        let mut stats = DatabaseStats::default();
        for t in self.tables.values() {
            if !t.is_empty() {
                stats.nonempty_relations += 1;
            }
            stats.tuples += t.len();
            stats.derivations += t.iter().map(|st| st.derivations.len()).sum::<usize>();
        }
        stats
    }

    /// All tuples of a relation (empty vec when the relation is unknown).
    pub fn relation_tuples(&self, relation: &str) -> Vec<Tuple> {
        self.table(relation).map(|t| t.tuples()).unwrap_or_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schema(name: &str, arity: usize, keys: Vec<usize>) -> RelationSchema {
        RelationSchema {
            name: name.into(),
            arity,
            location_col: 0,
            key_cols: keys,
            is_base: true,
            lifetime: None,
        }
    }

    fn link(s: &str, d: &str, c: i64) -> Tuple {
        Tuple::new(
            "link",
            vec![Value::addr(s), Value::addr(d), Value::Int(c)],
        )
    }

    #[test]
    fn add_and_remove_derivations_track_membership() {
        let mut t = Table::new(schema("link", 3, vec![0, 1, 2]));
        let tup = link("a", "b", 1);
        let d1 = Derivation::base("a");
        let d2 = Derivation {
            rule: "r1".into(),
            node: "a".into(),
            inputs: vec![TupleId(42)],
        };
        assert_eq!(t.add_derivation(&tup, d1.clone()), Membership::Appeared);
        assert_eq!(t.add_derivation(&tup, d2.clone()), Membership::AddedDerivation);
        // Duplicate derivations are ignored.
        assert_eq!(t.add_derivation(&tup, d2.clone()), Membership::Unchanged);
        assert_eq!(t.get(&tup).unwrap().derivations.len(), 2);
        assert_eq!(t.get_by_id(tup.id()).unwrap().tuple, tup);
        assert_eq!(t.remove_derivation(&tup, &d1), Membership::RemovedDerivation);
        assert_eq!(t.remove_derivation(&tup, &d1), Membership::NotFound);
        assert_eq!(t.remove_derivation(&tup, &d2), Membership::Disappeared);
        assert!(t.is_empty());
        assert!(t.get_by_id(tup.id()).is_none());
    }

    #[test]
    fn update_in_place_replaces_by_key() {
        // keys(1,2): the cost column is not part of the key.
        let mut t = Table::new(schema("link", 3, vec![0, 1]));
        assert_eq!(
            t.add_derivation(&link("a", "b", 1), Derivation::base("a")),
            Membership::Appeared
        );
        match t.add_derivation(&link("a", "b", 7), Derivation::base("a")) {
            Membership::Replaced(old) => assert_eq!(old, link("a", "b", 1)),
            other => panic!("expected replacement, got {other:?}"),
        }
        assert_eq!(t.len(), 1);
        assert!(t.contains(&link("a", "b", 7)));
        assert!(!t.contains(&link("a", "b", 1)));
    }

    #[test]
    fn remove_rule_derivations_only_touches_that_rule() {
        let mut t = Table::new(schema("cost", 3, vec![0, 1, 2]));
        let tup = link("a", "b", 4);
        t.add_derivation(&tup, Derivation::base("a"));
        t.add_derivation(
            &tup,
            Derivation {
                rule: "r2".into(),
                node: "a".into(),
                inputs: vec![],
            },
        );
        assert_eq!(t.remove_rule_derivations(&tup, "r2"), Membership::RemovedDerivation);
        assert_eq!(t.remove_rule_derivations(&tup, "r2"), Membership::NotFound);
        assert_eq!(
            t.remove_rule_derivations(&tup, BASE_RULE),
            Membership::Disappeared
        );
    }

    #[test]
    fn database_dependency_index_round_trip() {
        let mut db = Database::new(vec![
            schema("link", 3, vec![0, 1, 2]),
            schema("cost", 3, vec![0, 1, 2]),
        ]);
        let base = link("a", "b", 1);
        let derived = Tuple::new(
            "cost",
            vec![Value::addr("a"), Value::addr("b"), Value::Int(1)],
        );
        db.table_mut("link")
            .unwrap()
            .add_derivation(&base, Derivation::base("a"));
        let deriv = Derivation {
            rule: "r1".into(),
            node: "a".into(),
            inputs: vec![base.id()],
        };
        db.table_mut("cost")
            .unwrap()
            .add_derivation(&derived, deriv.clone());
        db.index_dependency(base.id(), "cost", derived.id());

        let deps = db.dependents_of(base.id());
        assert_eq!(deps.len(), 1);
        assert_eq!(deps[0].0, "cost");
        assert_eq!(deps[0].1, derived);
        assert_eq!(deps[0].2, vec![deriv]);

        db.clear_dependency(base.id());
        assert!(db.dependents_of(base.id()).is_empty());
    }

    #[test]
    fn stats_count_tuples_and_derivations() {
        let mut db = Database::new(vec![schema("link", 3, vec![0, 1, 2])]);
        db.table_mut("link")
            .unwrap()
            .add_derivation(&link("a", "b", 1), Derivation::base("a"));
        db.table_mut("link")
            .unwrap()
            .add_derivation(&link("a", "c", 2), Derivation::base("a"));
        let stats = db.stats();
        assert_eq!(stats.tuples, 2);
        assert_eq!(stats.derivations, 2);
        assert_eq!(stats.nonempty_relations, 1);
    }

    #[test]
    fn relation_tuples_of_unknown_relation_is_empty() {
        let db = Database::default();
        assert!(db.relation_tuples("nope").is_empty());
    }
}
