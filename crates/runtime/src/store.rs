//! Tuple storage: per-relation tables with derivation tracking and the
//! per-node database.
//!
//! Every stored tuple carries the multiset of **derivations** that currently
//! support it. A derivation is either the distinguished *base* derivation
//! (the tuple was inserted by the environment — a link report, a received
//! trace event, ...) or a rule firing identified by the rule name, the node
//! where the rule executed and the identifiers of the input tuples. A tuple is
//! *present* while it has at least one supporting derivation; when the last
//! derivation is retracted the tuple disappears and the deletion cascades
//! through the reverse-dependency index. This is exactly the information the
//! ExSPAN provenance graph records, which is why NetTrails can reuse the same
//! machinery for both incremental maintenance and provenance.
//!
//! ## Storage backings
//!
//! A [`Table`] has two interchangeable representations behind one API:
//!
//! * **Columnar** (the default): tuples live column-major in a
//!   `ColumnStore`-shaped arena — one dictionary-encoded `u32` column per
//!   `Addr`-valued attribute (the dictionary *is* the process-global intern
//!   pool, so encoding is free), plain `Vec<i64>` / `Vec<f64>` columns for
//!   numeric attributes, and a `Vec<Value>` overflow column for strings,
//!   lists and mixed-type attributes. A validity bitmap plus a slot
//!   free-list keeps physical slots stable across churn, and secondary
//!   indexes are per-column posting lists of `u32` slot numbers. Join
//!   probes verify bound columns directly against the contiguous column
//!   vectors — no per-candidate pointer chase and no per-candidate
//!   allocation (see [`tuple_materializations`]).
//! * **Row** (`TableBacking::Row`): the original `BTreeMap<key,
//!   StoredTuple>` layout, kept as the reference implementation the
//!   equivalence proptests and the `vectorized_joins` benchmark compare the
//!   columnar path against.
//!
//! Both backings answer [`Table::probe`] with **exactly the same candidate
//! sequence**: the anchor posting list is chosen identically (first
//! strictly-smallest among the bound columns), posting lists append on
//! insert and compact on remove in the same order, the no-bound-column scan
//! iterates in primary-key order, and the residual bound columns are
//! verified with the shared [`normalize_for_index`] predicate. That is what
//! lets the engine prove runs bit-identical across backings.

use crate::catalog::RelationSchema;
use crate::tuple::{Tuple, TupleId};
use crate::value::{values_match, NodeId, Sym, Value};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, HashMap, HashSet};
use std::sync::atomic::{AtomicU64, Ordering};

/// The rule name used for base (externally inserted) tuples.
pub const BASE_RULE: &str = "__base";

/// The interned [`BASE_RULE`] symbol (memoized — callers on the firing hot
/// path compare handles with integer equality, no pool lookup).
pub fn base_rule_sym() -> Sym {
    static BASE: std::sync::OnceLock<Sym> = std::sync::OnceLock::new();
    *BASE.get_or_init(|| Sym::new(BASE_RULE))
}

/// One derivation supporting a tuple. Rule and node are interned handles, so
/// a `Derivation` clone copies three machine words plus the input-id list.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Derivation {
    /// Rule that fired (or [`BASE_RULE`]).
    pub rule: Sym,
    /// Node on which the rule executed.
    pub node: NodeId,
    /// Identifiers of the body tuples that fed the firing, in body order.
    pub inputs: Vec<TupleId>,
}

impl Derivation {
    /// The base derivation for externally inserted tuples at `node`.
    pub fn base(node: impl Into<NodeId>) -> Self {
        Derivation {
            rule: base_rule_sym(),
            node: node.into(),
            inputs: Vec::new(),
        }
    }

    /// True for base derivations.
    pub fn is_base(&self) -> bool {
        self.rule == base_rule_sym()
    }

    /// Wire size of the derivation in the interned encoding: fixed-width rule
    /// and node handles, a 4-byte input count and 8 bytes per input id. A
    /// shipped delta always carries its derivation (the receiving engine
    /// stores it for retraction), so traffic accounting must price it.
    pub fn wire_size(&self) -> usize {
        Sym::WIRE_SIZE + NodeId::WIRE_SIZE + 4 + 8 * self.inputs.len()
    }
}

/// A tuple plus its supporting derivations.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StoredTuple {
    /// The tuple.
    pub tuple: Tuple,
    /// Current supporting derivations (deduplicated).
    pub derivations: Vec<Derivation>,
}

/// Outcome of adding or removing a derivation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Membership {
    /// The tuple became present (0 -> 1 derivations) — an insertion delta.
    Appeared,
    /// The tuple was already present and gained a *new* alternative
    /// derivation. No membership change, but the provenance graph grows.
    AddedDerivation,
    /// The tuple was already present and lost one of several derivations.
    RemovedDerivation,
    /// Nothing changed (the derivation to add was already recorded).
    Unchanged,
    /// The tuple lost its last derivation — a deletion delta.
    Disappeared,
    /// Adding a tuple displaced an older tuple with the same primary key
    /// (update-in-place semantics of `materialize`). Carries the displaced
    /// tuple.
    Replaced(Tuple),
    /// The derivation to remove was not present / the tuple was unknown.
    NotFound,
}

impl Membership {
    /// True when the tuple is present after the operation.
    pub fn present(&self) -> bool {
        matches!(
            self,
            Membership::Appeared
                | Membership::AddedDerivation
                | Membership::RemovedDerivation
                | Membership::Unchanged
                | Membership::Replaced(_)
        )
    }
}

/// Which physical layout a [`Table`] stores its tuples in.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum TableBacking {
    /// Column-major slots with dictionary-encoded address columns (the
    /// default).
    #[default]
    Columnar,
    /// The row-major `BTreeMap` reference layout.
    Row,
}

/// Normalize a value for secondary-index keys — the **single source of
/// truth** for both the legacy row-store index keys and the columnar
/// store's posting-list keys and dictionary-code lookups: whenever two
/// values are equal for matching purposes they must land on the same key,
/// or index probes would miss tuples the scan path finds.
///
/// * The engine's `values_match` treats `Addr` and `Str` with the same text
///   as equal (programs write location constants as strings; tuples carry
///   addresses) → `Addr` keys become `Str`. A dictionary-encoded column
///   resolves the normalized text back to its pool code (without interning)
///   when probing.
/// * `Value`'s total order compares `Int` and `Double` numerically
///   (`Int(2) == Double(2.0)`) while their stable hashes differ → integral
///   doubles become `Int`. (Doubles at or beyond ±2^63 keep their own key;
///   equality with a saturating `Int` there is not representable anyway.)
/// * NaNs compare equal to each other regardless of payload bits → all NaNs
///   share one canonical key.
/// * Lists compare elementwise, so their elements are normalized
///   recursively.
pub fn normalize_for_index(v: &Value) -> Value {
    match v {
        Value::Addr(a) => Value::Str(a.as_str().to_string()),
        Value::Double(d) => {
            if d.is_nan() {
                Value::Double(f64::NAN)
            } else if d.fract() == 0.0 && *d >= i64::MIN as f64 && *d < i64::MAX as f64 {
                Value::Int(*d as i64)
            } else {
                Value::Double(*d)
            }
        }
        Value::List(l) => Value::List(l.iter().map(normalize_for_index).collect()),
        other => other.clone(),
    }
}

/// Does a stored value match an already-normalized probe key? Exactly the
/// predicate `normalize_for_index(v) == norm`, evaluated without cloning
/// `v`. Both storage backings verify residual bound columns with this, so
/// their probe results cannot drift apart.
fn matches_normalized(v: &Value, norm: &Value) -> bool {
    match v {
        Value::Addr(a) => matches!(norm, Value::Str(s) if a.as_str() == s),
        Value::Double(d) => {
            if d.is_nan() {
                matches!(norm, Value::Double(n) if n.is_nan())
            } else if d.fract() == 0.0 && *d >= i64::MIN as f64 && *d < i64::MAX as f64 {
                matches!(norm, Value::Int(i) if *i == *d as i64)
            } else {
                matches!(norm, Value::Double(n) if n == d)
            }
        }
        Value::List(l) => matches!(
            norm,
            Value::List(n) if l.len() == n.len()
                && l.iter().zip(n).all(|(a, b)| matches_normalized(a, b))
        ),
        other => other == norm,
    }
}

/// Process-wide count of tuples materialized out of columnar slots. Probing
/// and column matching never materialize; only [`TupleRef::to_tuple`] /
/// [`TupleRef::to_stored`] (and row replacement/removal bookkeeping) do.
/// The regression test for the vectorized probe kernel asserts this stays
/// flat while candidates are scanned and filtered.
static TUPLE_MATERIALIZATIONS: AtomicU64 = AtomicU64::new(0);

/// Current value of the columnar-materialization counter (monotonic,
/// process-wide). Intended for allocation-regression tests.
pub fn tuple_materializations() -> u64 {
    TUPLE_MATERIALIZATIONS.load(Ordering::Relaxed)
}

// --------------------------------------------------------------------------
// columnar backing
// --------------------------------------------------------------------------

/// One attribute's storage in a columnar table. The kind is picked from the
/// first value written while the table has no physical slots; a later write
/// of an incompatible variant promotes the column to `Other` (materializing
/// the existing codes — always possible because the intern pool is
/// append-only, so every dictionary code stays decodable).
#[derive(Debug, Clone)]
enum Column {
    /// Dictionary-encoded `Addr` attribute: the `u32` codes are raw intern
    /// pool indexes, so encoding a tuple is free and decoding is one array
    /// index into the pool.
    Dict(Vec<u32>),
    /// Plain integers.
    Int(Vec<i64>),
    /// Plain doubles (bit-exact storage; NaN payloads survive).
    Double(Vec<f64>),
    /// Overflow: strings, lists, bools, ids, infinity, or mixed types.
    Other(Vec<Value>),
}

impl Column {
    fn new_for(v: &Value) -> Column {
        match v {
            Value::Addr(_) => Column::Dict(Vec::new()),
            Value::Int(_) => Column::Int(Vec::new()),
            Value::Double(_) => Column::Double(Vec::new()),
            _ => Column::Other(Vec::new()),
        }
    }

    fn len(&self) -> usize {
        match self {
            Column::Dict(xs) => xs.len(),
            Column::Int(xs) => xs.len(),
            Column::Double(xs) => xs.len(),
            Column::Other(xs) => xs.len(),
        }
    }

    /// Decode the value at a physical slot. Zero-allocation for the typed
    /// columns; `Other` clones the stored value.
    fn value_at(&self, slot: usize) -> Value {
        match self {
            Column::Dict(xs) => Value::Addr(decode_dict(xs[slot])),
            Column::Int(xs) => Value::Int(xs[slot]),
            Column::Double(xs) => Value::Double(xs[slot]),
            Column::Other(xs) => xs[slot].clone(),
        }
    }

    /// Structural equality of the slot against `v` under `Value`'s own `Eq`
    /// (which equates `Int`/`Double` numerically), without materializing.
    fn eq_value(&self, slot: usize, v: &Value) -> bool {
        match self {
            Column::Dict(xs) => matches!(v, Value::Addr(a) if a.index() == xs[slot]),
            Column::Int(xs) => Value::Int(xs[slot]) == *v,
            Column::Double(xs) => Value::Double(xs[slot]) == *v,
            Column::Other(xs) => xs[slot] == *v,
        }
    }

    /// `values_match` semantics (structural equality plus `Addr`↔`Str` text
    /// equality) against the slot, without materializing.
    fn matches_value(&self, slot: usize, v: &Value) -> bool {
        match self {
            Column::Dict(xs) => match v {
                Value::Addr(a) => a.index() == xs[slot],
                Value::Str(s) => decode_dict(xs[slot]).as_str() == s,
                _ => false,
            },
            Column::Int(xs) => values_match(v, &Value::Int(xs[slot])),
            Column::Double(xs) => values_match(v, &Value::Double(xs[slot])),
            Column::Other(xs) => values_match(v, &xs[slot]),
        }
    }

    /// [`matches_normalized`] against the slot, without materializing.
    fn matches_norm(&self, slot: usize, norm: &Value) -> bool {
        match self {
            Column::Dict(xs) => {
                matches!(norm, Value::Str(s) if decode_dict(xs[slot]).as_str() == s)
            }
            Column::Int(xs) => matches_normalized(&Value::Int(xs[slot]), norm),
            Column::Double(xs) => matches_normalized(&Value::Double(xs[slot]), norm),
            Column::Other(xs) => matches_normalized(&xs[slot], norm),
        }
    }

    /// Append a physical slot holding `v` (promoting the column first if the
    /// variant does not fit).
    fn push(&mut self, v: &Value) {
        if self.len() == 0 {
            *self = Column::new_for(v);
        }
        match (&mut *self, v) {
            (Column::Dict(xs), Value::Addr(a)) => xs.push(a.index()),
            (Column::Int(xs), Value::Int(i)) => xs.push(*i),
            (Column::Double(xs), Value::Double(d)) => xs.push(*d),
            (Column::Other(xs), v) => xs.push(v.clone()),
            _ => {
                self.promote();
                match self {
                    Column::Other(xs) => xs.push(v.clone()),
                    _ => unreachable!("promotion yields Other"),
                }
            }
        }
    }

    /// Overwrite an existing physical slot with `v` (promoting if needed).
    fn write(&mut self, slot: usize, v: &Value) {
        match (&mut *self, v) {
            (Column::Dict(xs), Value::Addr(a)) => xs[slot] = a.index(),
            (Column::Int(xs), Value::Int(i)) => xs[slot] = *i,
            (Column::Double(xs), Value::Double(d)) => xs[slot] = *d,
            (Column::Other(xs), v) => xs[slot] = v.clone(),
            _ => {
                self.promote();
                match self {
                    Column::Other(xs) => xs[slot] = v.clone(),
                    _ => unreachable!("promotion yields Other"),
                }
            }
        }
    }

    /// Widen the column to `Other`, materializing every physical slot (dead
    /// slots still carry a decodable last value).
    fn promote(&mut self) {
        let widened = match self {
            Column::Dict(xs) => xs.iter().map(|c| Value::Addr(decode_dict(*c))).collect(),
            Column::Int(xs) => xs.iter().map(|i| Value::Int(*i)).collect(),
            Column::Double(xs) => xs.iter().map(|d| Value::Double(*d)).collect(),
            Column::Other(_) => return,
        };
        *self = Column::Other(widened);
    }

    /// Resident bytes of the column's payload (dictionary columns are 4
    /// bytes per slot — the dictionary itself lives once in the process-wide
    /// intern pool).
    fn resident_bytes(&self) -> usize {
        match self {
            Column::Dict(xs) => 4 * xs.len(),
            Column::Int(xs) => 8 * xs.len(),
            Column::Double(xs) => 8 * xs.len(),
            Column::Other(xs) => xs.iter().map(Value::wire_size).sum(),
        }
    }
}

/// Decode a dictionary code written by this process. Codes are only ever
/// produced from live handles, and the intern pool is append-only, so the
/// lookup cannot fail on uncorrupted state.
fn decode_dict(code: u32) -> NodeId {
    NodeId::from_index(code).expect("dictionary code decodes against the intern pool")
}

/// Column-major storage for one relation: parallel column vectors indexed by
/// physical slot, a validity bitmap, a slot free-list, and the lookaside
/// maps (primary key, tuple id, per-column posting lists) that answer point
/// lookups and probes.
#[derive(Debug, Clone, Default)]
struct ColumnStore {
    /// Per-slot relation symbol. Usually constant across the table, but the
    /// engine's outbox tables are *named* `__out::<relation>` while storing
    /// tuples of `<relation>` — the tuple's own relation is part of its
    /// identity (row-store equality compares it), so it is kept per slot
    /// (one dictionary code) rather than derived from the schema.
    rels: Vec<Sym>,
    /// Per-slot content-addressed tuple id (parallel to the columns).
    ids: Vec<TupleId>,
    /// Per-slot supporting derivations.
    derivs: Vec<Vec<Derivation>>,
    /// One column per attribute; every column has `ids.len()` physical
    /// slots.
    cols: Vec<Column>,
    /// Validity bitmap: bit = slot holds a live tuple.
    live: Vec<u64>,
    /// Dead slots available for reuse (keeps `TupleId`-addressed state and
    /// the posting lists stable across churn instead of shifting slots).
    free: Vec<u32>,
    live_count: usize,
    /// Primary-key projection -> slot (iteration order of the table).
    by_key: BTreeMap<Vec<Value>, u32>,
    /// Tuple id -> slot (provenance queries and cascade deletions address
    /// tuples by id).
    by_id: HashMap<TupleId, u32>,
    /// Per-column posting lists: normalized value -> live slots carrying it,
    /// in insertion order.
    postings: Vec<HashMap<Value, Vec<u32>>>,
}

impl ColumnStore {
    fn new(arity: usize) -> Self {
        ColumnStore {
            cols: (0..arity).map(|_| Column::Other(Vec::new())).collect(),
            postings: (0..arity).map(|_| HashMap::new()).collect(),
            ..ColumnStore::default()
        }
    }

    fn is_live(&self, slot: u32) -> bool {
        let (word, bit) = (slot as usize / 64, slot as usize % 64);
        self.live.get(word).is_some_and(|w| w & (1 << bit) != 0)
    }

    fn set_live(&mut self, slot: u32, value: bool) {
        let (word, bit) = (slot as usize / 64, slot as usize % 64);
        if self.live.len() <= word {
            self.live.resize(word + 1, 0);
        }
        if value {
            self.live[word] |= 1 << bit;
        } else {
            self.live[word] &= !(1 << bit);
        }
    }

    /// Structural equality (the row store's `existing.tuple == *tuple`)
    /// against a live slot, column by column.
    fn slot_eq_tuple(&self, slot: u32, tuple: &Tuple) -> bool {
        self.rels[slot as usize] == tuple.relation
            && tuple.values.len() == self.cols.len()
            && self
                .cols
                .iter()
                .zip(&tuple.values)
                .all(|(col, v)| col.eq_value(slot as usize, v))
    }

    /// Materialize the tuple stored in a slot (counted — see
    /// [`tuple_materializations`]).
    fn tuple_at(&self, slot: u32) -> Tuple {
        TUPLE_MATERIALIZATIONS.fetch_add(1, Ordering::Relaxed);
        Tuple {
            relation: self.rels[slot as usize],
            values: self
                .cols
                .iter()
                .map(|c| c.value_at(slot as usize))
                .collect(),
        }
    }

    /// Insert a brand-new entry (the key must be vacant), reusing a free
    /// slot when one exists.
    fn insert_row(&mut self, key: Vec<Value>, tuple: &Tuple, derivations: Vec<Derivation>) {
        debug_assert_eq!(tuple.values.len(), self.cols.len());
        let slot = match self.free.pop() {
            Some(slot) => {
                self.rels[slot as usize] = tuple.relation;
                self.ids[slot as usize] = tuple.id();
                self.derivs[slot as usize] = derivations;
                for (col, v) in self.cols.iter_mut().zip(&tuple.values) {
                    col.write(slot as usize, v);
                }
                slot
            }
            None => {
                let slot = u32::try_from(self.ids.len()).expect("columnar slot overflow");
                self.rels.push(tuple.relation);
                self.ids.push(tuple.id());
                self.derivs.push(derivations);
                for (col, v) in self.cols.iter_mut().zip(&tuple.values) {
                    col.push(v);
                }
                slot
            }
        };
        self.set_live(slot, true);
        self.live_count += 1;
        self.by_id.insert(tuple.id(), slot);
        self.by_key.insert(key, slot);
        self.index_slot(slot, &tuple.values);
    }

    fn index_slot(&mut self, slot: u32, values: &[Value]) {
        for (col, v) in values.iter().enumerate() {
            if let Some(index) = self.postings.get_mut(col) {
                index.entry(normalize_for_index(v)).or_default().push(slot);
            }
        }
    }

    fn unindex_slot(&mut self, slot: u32, values: &[Value]) {
        for (col, v) in values.iter().enumerate() {
            if let Some(index) = self.postings.get_mut(col) {
                let key = normalize_for_index(v);
                if let Some(slots) = index.get_mut(&key) {
                    slots.retain(|s| *s != slot);
                    if slots.is_empty() {
                        index.remove(&key);
                    }
                }
            }
        }
    }

    /// Kill a live slot: clear the bit, recycle the slot, drop the lookaside
    /// entries. `values` are the stored tuple's values (for unindexing).
    fn kill_slot(&mut self, slot: u32, key: &[Value], id: TupleId, values: &[Value]) {
        self.unindex_slot(slot, values);
        self.by_key.remove(key);
        self.by_id.remove(&id);
        self.set_live(slot, false);
        self.live_count -= 1;
        self.free.push(slot);
        self.derivs[slot as usize].clear();
    }

    /// Rebuild the bitmap, id map and posting lists from the primary-key map
    /// and the column arenas (key order, like the row store's rebuild).
    fn rebuild_indexes(&mut self) {
        self.live.iter_mut().for_each(|w| *w = 0);
        self.by_id.clear();
        self.postings = (0..self.cols.len()).map(|_| HashMap::new()).collect();
        let slots: Vec<u32> = self.by_key.values().copied().collect();
        self.live_count = slots.len();
        for slot in slots {
            self.set_live(slot, true);
            self.by_id.insert(self.ids[slot as usize], slot);
            let values: Vec<Value> = self
                .cols
                .iter()
                .map(|c| c.value_at(slot as usize))
                .collect();
            self.index_slot(slot, &values);
        }
        let live: HashSet<u32> = self.by_key.values().copied().collect();
        self.free = (0..self.ids.len() as u32)
            .filter(|s| !live.contains(s))
            .rev()
            .collect();
    }

    /// Resident bytes: column payloads, per-slot relation codes and ids,
    /// bitmap, posting lists (4-byte slot entries), and derivation records
    /// (priced like their wire encoding).
    fn resident_bytes(&self) -> usize {
        self.cols.iter().map(Column::resident_bytes).sum::<usize>()
            + 8 * self.ids.len()
            + 4 * self.rels.len()
            + 8 * self.live.len()
            + 4 * self
                .postings
                .iter()
                .flat_map(|index| index.values().map(Vec::len))
                .sum::<usize>()
            + self
                .derivs
                .iter()
                .flat_map(|ds| ds.iter().map(Derivation::wire_size))
                .sum::<usize>()
    }
}

// --------------------------------------------------------------------------
// row backing (the reference layout)
// --------------------------------------------------------------------------

/// The original row-major layout: stored tuples keyed by their primary-key
/// projection, with id and per-column secondary indexes on the side.
#[derive(Debug, Clone, Default)]
struct RowStore {
    tuples: BTreeMap<Vec<Value>, StoredTuple>,
    by_id: HashMap<TupleId, Vec<Value>>,
    /// value (normalized) -> ids of the tuples carrying it, per column.
    col_indexes: Vec<HashMap<Value, Vec<TupleId>>>,
}

impl RowStore {
    fn new(arity: usize) -> Self {
        RowStore {
            tuples: BTreeMap::new(),
            by_id: HashMap::new(),
            col_indexes: vec![HashMap::new(); arity],
        }
    }

    fn get_by_id(&self, id: TupleId) -> Option<&StoredTuple> {
        self.by_id.get(&id).and_then(|k| self.tuples.get(k))
    }

    fn index_tuple_values(&mut self, id: TupleId, values: &[Value]) {
        for (col, v) in values.iter().enumerate() {
            if let Some(index) = self.col_indexes.get_mut(col) {
                index.entry(normalize_for_index(v)).or_default().push(id);
            }
        }
    }

    fn unindex_tuple_values(&mut self, id: TupleId, values: &[Value]) {
        for (col, v) in values.iter().enumerate() {
            if let Some(index) = self.col_indexes.get_mut(col) {
                let key = normalize_for_index(v);
                if let Some(ids) = index.get_mut(&key) {
                    ids.retain(|i| *i != id);
                    if ids.is_empty() {
                        index.remove(&key);
                    }
                }
            }
        }
    }

    fn rebuild_indexes(&mut self, arity: usize) {
        self.by_id = self
            .tuples
            .iter()
            .map(|(k, st)| (st.tuple.id(), k.clone()))
            .collect();
        self.col_indexes = vec![HashMap::new(); arity];
        let entries: Vec<(TupleId, Vec<Value>)> = self
            .tuples
            .values()
            .map(|st| (st.tuple.id(), st.tuple.values.clone()))
            .collect();
        for (id, values) in entries {
            self.index_tuple_values(id, &values);
        }
    }

    /// Resident bytes: tuple and derivation records (priced like their wire
    /// encoding) plus the posting lists (8-byte tuple-id entries — twice the
    /// columnar layout's 4-byte slot entries).
    fn resident_bytes(&self) -> usize {
        self.tuples
            .values()
            .map(|st| {
                st.tuple.wire_size()
                    + st.derivations
                        .iter()
                        .map(Derivation::wire_size)
                        .sum::<usize>()
            })
            .sum::<usize>()
            + 8 * self
                .col_indexes
                .iter()
                .flat_map(|index| index.values().map(Vec::len))
                .sum::<usize>()
    }
}

// --------------------------------------------------------------------------
// shared candidate handle
// --------------------------------------------------------------------------

#[derive(Clone, Copy)]
enum RefInner<'a> {
    Stored(&'a StoredTuple),
    Slot(&'a ColumnStore, u32),
}

/// A borrowed handle to one stored tuple, independent of the table's
/// backing. Probe candidates, point lookups and table iteration all yield
/// `TupleRef`s; the join kernels match columns through it without
/// materializing a `Tuple` until a candidate actually survives.
#[derive(Clone, Copy)]
pub struct TupleRef<'a>(RefInner<'a>);

impl<'a> TupleRef<'a> {
    /// The relation the tuple belongs to.
    pub fn relation(&self) -> Sym {
        match self.0 {
            RefInner::Stored(st) => st.tuple.relation,
            RefInner::Slot(store, slot) => store.rels[slot as usize],
        }
    }

    /// Number of attributes.
    pub fn arity(&self) -> usize {
        match self.0 {
            RefInner::Stored(st) => st.tuple.values.len(),
            RefInner::Slot(store, _) => store.cols.len(),
        }
    }

    /// The content-addressed tuple identifier (precomputed for columnar
    /// slots — no hashing).
    pub fn id(&self) -> TupleId {
        match self.0 {
            RefInner::Stored(st) => st.tuple.id(),
            RefInner::Slot(store, slot) => store.ids[slot as usize],
        }
    }

    /// The supporting derivations.
    pub fn derivations(&self) -> &'a [Derivation] {
        match self.0 {
            RefInner::Stored(st) => &st.derivations,
            RefInner::Slot(store, slot) => &store.derivs[slot as usize],
        }
    }

    /// Decode one attribute as an owned value (allocation-free for
    /// dictionary and numeric columns).
    pub fn value(&self, col: usize) -> Value {
        match self.0 {
            RefInner::Stored(st) => st.tuple.values[col].clone(),
            RefInner::Slot(store, slot) => store.cols[col].value_at(slot as usize),
        }
    }

    /// `values_match` semantics against one attribute, without
    /// materializing.
    pub fn matches(&self, col: usize, v: &Value) -> bool {
        match self.0 {
            RefInner::Stored(st) => values_match(v, &st.tuple.values[col]),
            RefInner::Slot(store, slot) => store.cols[col].matches_value(slot as usize, v),
        }
    }

    /// Does attribute `col` match text `s` (a `Str` or `Addr` with that
    /// text)? The allocation-free equivalent of matching a string literal.
    pub fn matches_text(&self, col: usize, s: &str) -> bool {
        match self.0 {
            RefInner::Stored(st) => match &st.tuple.values[col] {
                Value::Str(t) => t == s,
                Value::Addr(a) => a.as_str() == s,
                _ => false,
            },
            RefInner::Slot(store, slot) => match &store.cols[col] {
                Column::Dict(xs) => decode_dict(xs[slot as usize]).as_str() == s,
                Column::Other(xs) => match &xs[slot as usize] {
                    Value::Str(t) => t == s,
                    Value::Addr(a) => a.as_str() == s,
                    _ => false,
                },
                _ => false,
            },
        }
    }

    /// Materialize an owned tuple (for columnar slots this is the counted
    /// materialization — see [`tuple_materializations`]).
    pub fn to_tuple(&self) -> Tuple {
        match self.0 {
            RefInner::Stored(st) => st.tuple.clone(),
            RefInner::Slot(store, slot) => store.tuple_at(slot),
        }
    }

    /// Materialize the stored entry (tuple + derivations).
    pub fn to_stored(&self) -> StoredTuple {
        match self.0 {
            RefInner::Stored(st) => st.clone(),
            RefInner::Slot(store, slot) => StoredTuple {
                tuple: store.tuple_at(slot),
                derivations: store.derivs[slot as usize].clone(),
            },
        }
    }
}

// --------------------------------------------------------------------------
// probe iterator (the vectorized kernel's cursor)
// --------------------------------------------------------------------------

/// One residual bound-column check of a columnar probe, pre-encoded so the
/// per-candidate work is a typed compare against a contiguous column.
enum ColFilter {
    /// Dictionary column: compare raw codes (the probe text resolved to a
    /// pool code without interning).
    DictCode(usize, u32),
    /// Any other column: compare against the normalized probe key.
    Norm(usize, Value),
}

enum ProbeInner<'a> {
    Empty,
    /// Row backing, posting-list anchored: candidate ids chase `by_id` (the
    /// pointer-heavy baseline the columnar layout exists to replace).
    RowIds {
        store: &'a RowStore,
        ids: std::slice::Iter<'a, TupleId>,
        /// Residual bound columns as (column, normalized key).
        filter: Vec<(usize, Value)>,
    },
    /// Row backing, no bound columns (or stale indexes): key-order scan.
    RowScan {
        values: std::collections::btree_map::Values<'a, Vec<Value>, StoredTuple>,
        filter: Vec<(usize, Value)>,
    },
    /// Columnar backing, posting-list anchored: candidate slots verified
    /// directly against the column vectors.
    ColSlots {
        store: &'a ColumnStore,
        slots: std::slice::Iter<'a, u32>,
        filter: Vec<ColFilter>,
    },
    /// Columnar backing, no bound columns: key-order scan.
    ColScan {
        store: &'a ColumnStore,
        slots: std::collections::btree_map::Values<'a, Vec<Value>, u32>,
    },
}

/// Iterator returned by [`Table::probe`]. Yields exactly the stored tuples
/// matching **all** bound columns, in a deterministic order that is
/// identical across storage backings (see the module documentation).
pub struct ProbeIter<'a>(ProbeInner<'a>);

impl<'a> Iterator for ProbeIter<'a> {
    type Item = TupleRef<'a>;

    fn next(&mut self) -> Option<TupleRef<'a>> {
        match &mut self.0 {
            ProbeInner::Empty => None,
            ProbeInner::RowIds { store, ids, filter } => {
                for id in ids.by_ref() {
                    let Some(st) = store.get_by_id(*id) else {
                        continue;
                    };
                    if filter
                        .iter()
                        .all(|(col, key)| matches_normalized(&st.tuple.values[*col], key))
                    {
                        return Some(TupleRef(RefInner::Stored(st)));
                    }
                }
                None
            }
            ProbeInner::RowScan { values, filter } => {
                for st in values.by_ref() {
                    if filter
                        .iter()
                        .all(|(col, key)| matches_normalized(&st.tuple.values[*col], key))
                    {
                        return Some(TupleRef(RefInner::Stored(st)));
                    }
                }
                None
            }
            ProbeInner::ColSlots {
                store,
                slots,
                filter,
            } => {
                for slot in slots.by_ref() {
                    debug_assert!(store.is_live(*slot), "posting lists only hold live slots");
                    let ok = filter.iter().all(|f| match f {
                        ColFilter::DictCode(col, code) => match &store.cols[*col] {
                            Column::Dict(xs) => xs[*slot as usize] == *code,
                            _ => unreachable!("DictCode filters target Dict columns"),
                        },
                        ColFilter::Norm(col, key) => {
                            store.cols[*col].matches_norm(*slot as usize, key)
                        }
                    });
                    if ok {
                        return Some(TupleRef(RefInner::Slot(store, *slot)));
                    }
                }
                None
            }
            ProbeInner::ColScan { store, slots } => slots
                .next()
                .map(|slot| TupleRef(RefInner::Slot(store, *slot))),
        }
    }
}

/// Iterator over a table's live tuples in primary-key order.
pub struct TableIter<'a>(TableIterInner<'a>);

enum TableIterInner<'a> {
    Row(std::collections::btree_map::Values<'a, Vec<Value>, StoredTuple>),
    Col {
        store: &'a ColumnStore,
        slots: std::collections::btree_map::Values<'a, Vec<Value>, u32>,
    },
}

impl<'a> Iterator for TableIter<'a> {
    type Item = TupleRef<'a>;

    fn next(&mut self) -> Option<TupleRef<'a>> {
        match &mut self.0 {
            TableIterInner::Row(values) => values.next().map(|st| TupleRef(RefInner::Stored(st))),
            TableIterInner::Col { store, slots } => slots
                .next()
                .map(|slot| TupleRef(RefInner::Slot(store, *slot))),
        }
    }
}

// --------------------------------------------------------------------------
// the table
// --------------------------------------------------------------------------

#[derive(Debug, Clone)]
enum Repr {
    Row(RowStore),
    Col(ColumnStore),
}

/// A single relation's storage (columnar by default; see the module
/// documentation for the layout).
#[derive(Debug, Clone)]
pub struct Table {
    /// Schema of the relation.
    pub schema: RelationSchema,
    repr: Repr,
}

impl Table {
    /// Create an empty table with the default (columnar) backing.
    pub fn new(schema: RelationSchema) -> Self {
        Table::with_backing(schema, TableBacking::default())
    }

    /// Create an empty table with an explicit backing.
    pub fn with_backing(schema: RelationSchema, backing: TableBacking) -> Self {
        let repr = match backing {
            TableBacking::Row => Repr::Row(RowStore::new(schema.arity)),
            TableBacking::Columnar => Repr::Col(ColumnStore::new(schema.arity)),
        };
        Table { schema, repr }
    }

    /// Which physical layout this table uses.
    pub fn backing(&self) -> TableBacking {
        match &self.repr {
            Repr::Row(_) => TableBacking::Row,
            Repr::Col(_) => TableBacking::Columnar,
        }
    }

    /// Rebuild the secondary indexes (bitmap, id map and posting lists) from
    /// the primary data — needed after deserialization-like surgery; cheap
    /// no-op state-wise otherwise.
    pub fn rebuild_index(&mut self) {
        match &mut self.repr {
            Repr::Row(row) => row.rebuild_indexes(self.schema.arity),
            Repr::Col(col) => col.rebuild_indexes(),
        }
    }

    /// Iterate over the candidate tuples for a join probe with the given
    /// bound columns. The most selective posting list among the bound
    /// columns anchors the probe and the remaining bound columns are
    /// verified against the stored columns directly, so the iterator yields
    /// exactly the tuples matching every bound column. With no bound
    /// columns it degrades to a key-order scan. A bound value absent from
    /// its posting index short-circuits to an empty iterator.
    pub fn probe<'a>(&'a self, bound_cols: &[(usize, Value)]) -> ProbeIter<'a> {
        if bound_cols.is_empty() {
            return ProbeIter(match &self.repr {
                Repr::Row(row) => ProbeInner::RowScan {
                    values: row.tuples.values(),
                    filter: Vec::new(),
                },
                Repr::Col(col) => ProbeInner::ColScan {
                    store: col,
                    slots: col.by_key.values(),
                },
            });
        }
        let norm: Vec<(usize, Value)> = bound_cols
            .iter()
            .map(|(col, v)| (*col, normalize_for_index(v)))
            .collect();
        match &self.repr {
            Repr::Row(row) => {
                if row.col_indexes.len() != self.schema.arity {
                    // Stale indexes (post-surgery): filtered key-order scan.
                    return ProbeIter(ProbeInner::RowScan {
                        values: row.tuples.values(),
                        filter: norm,
                    });
                }
                let mut best: Option<(usize, &Vec<TupleId>)> = None;
                for (pos, (col, key)) in norm.iter().enumerate() {
                    let Some(index) = row.col_indexes.get(*col) else {
                        continue;
                    };
                    match index.get(key) {
                        None => return ProbeIter(ProbeInner::Empty),
                        Some(ids) => {
                            if best.is_none_or(|(_, b)| ids.len() < b.len()) {
                                best = Some((pos, ids));
                            }
                        }
                    }
                }
                let Some((anchor, ids)) = best else {
                    return ProbeIter(ProbeInner::Empty);
                };
                let filter: Vec<(usize, Value)> = norm
                    .into_iter()
                    .enumerate()
                    .filter(|(pos, _)| *pos != anchor)
                    .map(|(_, entry)| entry)
                    .collect();
                ProbeIter(ProbeInner::RowIds {
                    store: row,
                    ids: ids.iter(),
                    filter,
                })
            }
            Repr::Col(col) => {
                let mut best: Option<(usize, &Vec<u32>)> = None;
                for (pos, (c, key)) in norm.iter().enumerate() {
                    let Some(index) = col.postings.get(*c) else {
                        continue;
                    };
                    match index.get(key) {
                        None => return ProbeIter(ProbeInner::Empty),
                        Some(slots) => {
                            if best.is_none_or(|(_, b)| slots.len() < b.len()) {
                                best = Some((pos, slots));
                            }
                        }
                    }
                }
                let Some((anchor, slots)) = best else {
                    return ProbeIter(ProbeInner::Empty);
                };
                let mut filter = Vec::with_capacity(norm.len().saturating_sub(1));
                for (pos, (c, key)) in norm.iter().enumerate() {
                    if pos == anchor {
                        continue;
                    }
                    match &col.cols[*c] {
                        Column::Dict(_) => match key {
                            Value::Str(s) => match NodeId::lookup(s) {
                                // Text never interned ⇒ no stored address
                                // carries it ⇒ nothing can match.
                                None => return ProbeIter(ProbeInner::Empty),
                                Some(n) => filter.push(ColFilter::DictCode(*c, n.index())),
                            },
                            // A non-text key can never equal an address.
                            _ => return ProbeIter(ProbeInner::Empty),
                        },
                        _ => filter.push(ColFilter::Norm(*c, key.clone())),
                    }
                }
                ProbeIter(ProbeInner::ColSlots {
                    store: col,
                    slots: slots.iter(),
                    filter,
                })
            }
        }
    }

    /// Look up a stored tuple by its content-addressed identifier.
    pub fn get_by_id(&self, id: TupleId) -> Option<TupleRef<'_>> {
        match &self.repr {
            Repr::Row(row) => row.get_by_id(id).map(|st| TupleRef(RefInner::Stored(st))),
            Repr::Col(col) => col
                .by_id
                .get(&id)
                .map(|slot| TupleRef(RefInner::Slot(col, *slot))),
        }
    }

    fn key_of(&self, tuple: &Tuple) -> Vec<Value> {
        tuple.project(&self.schema.key_cols)
    }

    /// Number of stored (present) tuples.
    pub fn len(&self) -> usize {
        match &self.repr {
            Repr::Row(row) => row.tuples.len(),
            Repr::Col(col) => col.live_count,
        }
    }

    /// True when no tuple is present.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Iterate over present tuples in deterministic (key) order.
    pub fn iter(&self) -> TableIter<'_> {
        TableIter(match &self.repr {
            Repr::Row(row) => TableIterInner::Row(row.tuples.values()),
            Repr::Col(col) => TableIterInner::Col {
                store: col,
                slots: col.by_key.values(),
            },
        })
    }

    /// Look up the stored entry for an exact tuple (same key *and* same
    /// content).
    pub fn get(&self, tuple: &Tuple) -> Option<TupleRef<'_>> {
        let key = self.key_of(tuple);
        match &self.repr {
            Repr::Row(row) => row
                .tuples
                .get(&key)
                .filter(|st| st.tuple == *tuple)
                .map(|st| TupleRef(RefInner::Stored(st))),
            Repr::Col(col) => col
                .by_key
                .get(&key)
                .filter(|slot| col.slot_eq_tuple(**slot, tuple))
                .map(|slot| TupleRef(RefInner::Slot(col, *slot))),
        }
    }

    /// Look up by primary key only.
    pub fn get_by_key(&self, key: &[Value]) -> Option<TupleRef<'_>> {
        match &self.repr {
            Repr::Row(row) => row.tuples.get(key).map(|st| TupleRef(RefInner::Stored(st))),
            Repr::Col(col) => col
                .by_key
                .get(key)
                .map(|slot| TupleRef(RefInner::Slot(col, *slot))),
        }
    }

    /// True when the exact tuple is present.
    pub fn contains(&self, tuple: &Tuple) -> bool {
        self.get(tuple).is_some()
    }

    /// Add a derivation for `tuple`, inserting it if necessary.
    ///
    /// Returns how the table membership changed. When the relation has
    /// update-in-place keys and a *different* tuple with the same key was
    /// present, that tuple is removed and returned via
    /// [`Membership::Replaced`]; the caller is responsible for cascading the
    /// implied deletion.
    pub fn add_derivation(&mut self, tuple: &Tuple, derivation: Derivation) -> Membership {
        let key = self.key_of(tuple);
        match &mut self.repr {
            Repr::Row(row) => match row.tuples.get_mut(&key) {
                Some(existing) if existing.tuple == *tuple => {
                    if existing.derivations.contains(&derivation) {
                        Membership::Unchanged
                    } else {
                        existing.derivations.push(derivation);
                        Membership::AddedDerivation
                    }
                }
                Some(_) => {
                    // Key collision with different content: replace.
                    let old = row
                        .tuples
                        .insert(
                            key.clone(),
                            StoredTuple {
                                tuple: tuple.clone(),
                                derivations: vec![derivation],
                            },
                        )
                        .expect("entry existed");
                    row.by_id.remove(&old.tuple.id());
                    row.by_id.insert(tuple.id(), key);
                    row.unindex_tuple_values(old.tuple.id(), &old.tuple.values);
                    row.index_tuple_values(tuple.id(), &tuple.values);
                    Membership::Replaced(old.tuple)
                }
                None => {
                    row.tuples.insert(
                        key.clone(),
                        StoredTuple {
                            tuple: tuple.clone(),
                            derivations: vec![derivation],
                        },
                    );
                    row.by_id.insert(tuple.id(), key);
                    row.index_tuple_values(tuple.id(), &tuple.values);
                    Membership::Appeared
                }
            },
            Repr::Col(col) => match col.by_key.get(&key).copied() {
                Some(slot) if col.slot_eq_tuple(slot, tuple) => {
                    let derivs = &mut col.derivs[slot as usize];
                    if derivs.contains(&derivation) {
                        Membership::Unchanged
                    } else {
                        derivs.push(derivation);
                        Membership::AddedDerivation
                    }
                }
                Some(slot) => {
                    // Key collision with different content: rewrite the slot
                    // in place (same physical slot, fresh id and postings —
                    // the posting lists see the new tuple appended, exactly
                    // like the row store's replacement).
                    let old = col.tuple_at(slot);
                    let old_id = col.ids[slot as usize];
                    col.unindex_slot(slot, &old.values);
                    col.by_id.remove(&old_id);
                    col.rels[slot as usize] = tuple.relation;
                    col.ids[slot as usize] = tuple.id();
                    col.derivs[slot as usize] = vec![derivation];
                    for (c, v) in col.cols.iter_mut().zip(&tuple.values) {
                        c.write(slot as usize, v);
                    }
                    col.by_id.insert(tuple.id(), slot);
                    col.index_slot(slot, &tuple.values);
                    Membership::Replaced(old)
                }
                None => {
                    col.insert_row(key, tuple, vec![derivation]);
                    Membership::Appeared
                }
            },
        }
    }

    /// Remove one derivation of `tuple` (matching exactly). Returns
    /// [`Membership::Disappeared`] when that was the last derivation.
    pub fn remove_derivation(&mut self, tuple: &Tuple, derivation: &Derivation) -> Membership {
        self.remove_matching(tuple, |d| d == derivation)
    }

    /// Remove every derivation of `tuple` produced by `rule` at `node`.
    /// Used when reconciling non-monotonic (negation / aggregate) rules.
    pub fn remove_rule_derivations(&mut self, tuple: &Tuple, rule: &str) -> Membership {
        self.remove_matching(tuple, |d| d.rule == rule)
    }

    fn remove_matching(
        &mut self,
        tuple: &Tuple,
        doomed: impl Fn(&Derivation) -> bool,
    ) -> Membership {
        let key = self.key_of(tuple);
        match &mut self.repr {
            Repr::Row(row) => {
                let Some(existing) = row.tuples.get_mut(&key) else {
                    return Membership::NotFound;
                };
                if existing.tuple != *tuple {
                    return Membership::NotFound;
                }
                let before = existing.derivations.len();
                existing.derivations.retain(|d| !doomed(d));
                if existing.derivations.len() == before {
                    return Membership::NotFound;
                }
                if existing.derivations.is_empty() {
                    row.tuples.remove(&key);
                    row.by_id.remove(&tuple.id());
                    row.unindex_tuple_values(tuple.id(), &tuple.values);
                    Membership::Disappeared
                } else {
                    Membership::RemovedDerivation
                }
            }
            Repr::Col(col) => {
                let Some(slot) = col.by_key.get(&key).copied() else {
                    return Membership::NotFound;
                };
                if !col.slot_eq_tuple(slot, tuple) {
                    return Membership::NotFound;
                }
                let derivs = &mut col.derivs[slot as usize];
                let before = derivs.len();
                derivs.retain(|d| !doomed(d));
                if derivs.len() == before {
                    return Membership::NotFound;
                }
                if derivs.is_empty() {
                    let id = col.ids[slot as usize];
                    col.kill_slot(slot, &key, id, &tuple.values);
                    Membership::Disappeared
                } else {
                    Membership::RemovedDerivation
                }
            }
        }
    }

    /// Forcefully remove a tuple and all of its derivations (used for
    /// update-in-place replacement cascades). Returns the stored entry if it
    /// was present.
    pub fn remove_tuple(&mut self, tuple: &Tuple) -> Option<StoredTuple> {
        let key = self.key_of(tuple);
        match &mut self.repr {
            Repr::Row(row) => match row.tuples.get(&key) {
                Some(st) if st.tuple == *tuple => {
                    row.by_id.remove(&tuple.id());
                    row.unindex_tuple_values(tuple.id(), &tuple.values);
                    row.tuples.remove(&key)
                }
                _ => None,
            },
            Repr::Col(col) => {
                let slot = col.by_key.get(&key).copied()?;
                if !col.slot_eq_tuple(slot, tuple) {
                    return None;
                }
                let stored = StoredTuple {
                    tuple: col.tuple_at(slot),
                    derivations: std::mem::take(&mut col.derivs[slot as usize]),
                };
                let id = col.ids[slot as usize];
                col.kill_slot(slot, &key, id, &tuple.values);
                Some(stored)
            }
        }
    }

    /// All tuples currently present, cloned (snapshot order is deterministic).
    pub fn tuples(&self) -> Vec<Tuple> {
        self.iter().map(|r| r.to_tuple()).collect()
    }

    /// Resident bytes of the table's payload under its current backing:
    /// column vectors + slot ids + bitmap (+ derivations) for columnar,
    /// wire-priced stored tuples for row. Reported by the
    /// `vectorized_joins` benchmark to compare layout footprints.
    pub fn storage_bytes(&self) -> usize {
        match &self.repr {
            Repr::Row(row) => row.resident_bytes(),
            Repr::Col(col) => col.resident_bytes(),
        }
    }

    /// Insert a deserialized entry (key must be vacant — used by the serde
    /// rebuild path).
    fn insert_stored(&mut self, stored: StoredTuple) {
        let key = self.key_of(&stored.tuple);
        match &mut self.repr {
            Repr::Row(row) => {
                row.by_id.insert(stored.tuple.id(), key.clone());
                row.index_tuple_values(stored.tuple.id(), &stored.tuple.values);
                row.tuples.insert(key, stored);
            }
            Repr::Col(col) => {
                col.insert_row(key, &stored.tuple, stored.derivations);
            }
        }
    }
}

// A table serializes as (schema, backing, rows in key order): dictionary
// codes and slot numbers are process-local and never leave the process —
// deserialization re-encodes every row, rebuilding the column arenas,
// bitmap, free-list and posting lists from scratch.
impl Serialize for Table {
    fn serialize<S: serde::Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        let rows: Vec<StoredTuple> = self.iter().map(|r| r.to_stored()).collect();
        (&self.schema, self.backing(), rows).serialize(serializer)
    }
}

impl Deserialize for Table {
    fn deserialize<'de, D: serde::Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        let (schema, backing, rows) =
            <(RelationSchema, TableBacking, Vec<StoredTuple>)>::deserialize(d)?;
        let mut table = Table::with_backing(schema, backing);
        for row in rows {
            table.insert_stored(row);
        }
        Ok(table)
    }
}

/// Statistics about a database, used by the benchmarks to report state size
/// and by the log store for snapshot metadata.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct DatabaseStats {
    /// Total number of present tuples across relations.
    pub tuples: usize,
    /// Total number of derivations across tuples.
    pub derivations: usize,
    /// Number of relations with at least one tuple.
    pub nonempty_relations: usize,
}

/// The per-node database: one [`Table`] per relation plus the reverse
/// dependency index used for cascading deletions.
#[derive(Debug, Clone, Default)]
pub struct Database {
    /// Tables keyed by interned relation symbol. A `HashMap` so the join hot
    /// path pays one integer hash per lookup — `Sym`'s `Ord` resolves
    /// strings, which would put lock-taking string compares inside a B-tree
    /// walk.
    tables: HashMap<Sym, Table>,
    /// Relation symbols in name order (maintained on register), so iteration
    /// and serialization stay deterministic despite the hash map.
    order: Vec<Sym>,
    /// input tuple id -> (relation, derived tuple id) pairs of derivations
    /// that used it. The derived tuple ids refer to tuples stored in
    /// `tables`.
    dependents: HashMap<TupleId, HashSet<(Sym, TupleId)>>,
    /// Backing used for tables registered on this database.
    backing: TableBacking,
}

impl Database {
    /// Create an empty database with the given relation schemas (columnar
    /// tables).
    pub fn new(schemas: impl IntoIterator<Item = RelationSchema>) -> Self {
        Database::with_backing(schemas, TableBacking::default())
    }

    /// Create an empty database whose tables use an explicit backing.
    pub fn with_backing(
        schemas: impl IntoIterator<Item = RelationSchema>,
        backing: TableBacking,
    ) -> Self {
        let mut db = Database {
            backing,
            ..Database::default()
        };
        for s in schemas {
            db.register(s);
        }
        db
    }

    /// The backing newly registered tables use.
    pub fn backing(&self) -> TableBacking {
        self.backing
    }

    /// Register an additional relation (idempotent).
    pub fn register(&mut self, schema: RelationSchema) {
        let sym = Sym::new(&schema.name);
        if let std::collections::hash_map::Entry::Vacant(v) = self.tables.entry(sym) {
            v.insert(Table::with_backing(schema, self.backing));
            let pos = self.order.partition_point(|s| *s < sym);
            self.order.insert(pos, sym);
        }
    }

    /// Access a table by (boundary) relation name.
    pub fn table(&self, relation: &str) -> Option<&Table> {
        self.tables.get(&Sym::new(relation))
    }

    /// Access a table by interned relation symbol (the hot-path lookup).
    pub fn table_sym(&self, relation: Sym) -> Option<&Table> {
        self.tables.get(&relation)
    }

    /// Mutable access to a table.
    pub fn table_mut(&mut self, relation: &str) -> Option<&mut Table> {
        self.tables.get_mut(&Sym::new(relation))
    }

    /// Mutable access to a table by interned symbol.
    pub fn table_mut_sym(&mut self, relation: Sym) -> Option<&mut Table> {
        self.tables.get_mut(&relation)
    }

    /// Iterate over all tables, in relation-name order.
    pub fn tables(&self) -> impl Iterator<Item = &Table> {
        self.order.iter().map(|s| &self.tables[s])
    }

    /// Iterate over `(relation symbol, table)` pairs in relation-name order
    /// (saves callers re-interning `schema.name`).
    pub fn tables_with_syms(&self) -> impl Iterator<Item = (Sym, &Table)> {
        self.order.iter().map(|s| (*s, &self.tables[s]))
    }

    /// Record that `derived` (in `relation`) has a derivation using `input`.
    pub fn index_dependency(&mut self, input: TupleId, relation: Sym, derived: TupleId) {
        self.dependents
            .entry(input)
            .or_default()
            .insert((relation, derived));
    }

    /// Tuples that have a derivation using `input`, as (relation, stored
    /// tuple, matching derivations) triples.
    pub fn dependents_of(&self, input: TupleId) -> Vec<(Sym, Tuple, Vec<Derivation>)> {
        let mut out = Vec::new();
        if let Some(deps) = self.dependents.get(&input) {
            // Deterministic order.
            let mut deps: Vec<_> = deps.iter().copied().collect();
            deps.sort();
            for (relation, derived_id) in deps {
                if let Some(r) = self
                    .tables
                    .get(&relation)
                    .and_then(|table| table.get_by_id(derived_id))
                {
                    let matching: Vec<Derivation> = r
                        .derivations()
                        .iter()
                        .filter(|d| d.inputs.contains(&input))
                        .cloned()
                        .collect();
                    if !matching.is_empty() {
                        out.push((relation, r.to_tuple(), matching));
                    }
                }
            }
        }
        out
    }

    /// Drop the dependency-index entry for `input` (after its dependents have
    /// been processed).
    pub fn clear_dependency(&mut self, input: TupleId) {
        self.dependents.remove(&input);
    }

    /// Compute summary statistics.
    pub fn stats(&self) -> DatabaseStats {
        let mut stats = DatabaseStats::default();
        for t in self.tables.values() {
            if !t.is_empty() {
                stats.nonempty_relations += 1;
            }
            stats.tuples += t.len();
            stats.derivations += t.iter().map(|r| r.derivations().len()).sum::<usize>();
        }
        stats
    }

    /// Resident bytes across all tables (see [`Table::storage_bytes`]).
    pub fn storage_bytes(&self) -> usize {
        self.tables.values().map(Table::storage_bytes).sum()
    }

    /// All tuples of a relation (empty vec when the relation is unknown).
    pub fn relation_tuples(&self, relation: &str) -> Vec<Tuple> {
        self.table(relation).map(|t| t.tuples()).unwrap_or_default()
    }
}

// Serialized as a name-ordered (relation, table) list; the dependency index
// is derived state and is rebuilt by the engine as derivations re-index.
impl Serialize for Database {
    fn serialize<S: serde::Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        let entries: Vec<(Sym, &Table)> = self.tables_with_syms().collect();
        entries.serialize(serializer)
    }
}

impl Deserialize for Database {
    fn deserialize<'de, D: serde::Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        let entries = Vec::<(Sym, Table)>::deserialize(d)?;
        let mut db = Database::default();
        if let Some((_, table)) = entries.first() {
            db.backing = table.backing();
        }
        for (sym, table) in entries {
            db.order.push(sym);
            db.tables.insert(sym, table);
        }
        db.order.sort();
        Ok(db)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schema(name: &str, arity: usize, keys: Vec<usize>) -> RelationSchema {
        RelationSchema {
            name: name.into(),
            arity,
            location_col: 0,
            key_cols: keys,
            is_base: true,
            lifetime: None,
        }
    }

    fn link(s: &str, d: &str, c: i64) -> Tuple {
        Tuple::new("link", vec![Value::addr(s), Value::addr(d), Value::Int(c)])
    }

    /// Run a test body against both backings.
    fn for_both_backings(f: impl Fn(TableBacking)) {
        f(TableBacking::Columnar);
        f(TableBacking::Row);
    }

    #[test]
    fn add_and_remove_derivations_track_membership() {
        for_both_backings(|backing| {
            let mut t = Table::with_backing(schema("link", 3, vec![0, 1, 2]), backing);
            let tup = link("a", "b", 1);
            let d1 = Derivation::base("a");
            let d2 = Derivation {
                rule: "r1".into(),
                node: "a".into(),
                inputs: vec![TupleId(42)],
            };
            assert_eq!(t.add_derivation(&tup, d1.clone()), Membership::Appeared);
            assert_eq!(
                t.add_derivation(&tup, d2.clone()),
                Membership::AddedDerivation
            );
            // Duplicate derivations are ignored.
            assert_eq!(t.add_derivation(&tup, d2.clone()), Membership::Unchanged);
            assert_eq!(t.get(&tup).unwrap().derivations().len(), 2);
            assert_eq!(t.get_by_id(tup.id()).unwrap().to_tuple(), tup);
            assert_eq!(
                t.remove_derivation(&tup, &d1),
                Membership::RemovedDerivation
            );
            assert_eq!(t.remove_derivation(&tup, &d1), Membership::NotFound);
            assert_eq!(t.remove_derivation(&tup, &d2), Membership::Disappeared);
            assert!(t.is_empty());
            assert!(t.get_by_id(tup.id()).is_none());
        });
    }

    #[test]
    fn update_in_place_replaces_by_key() {
        for_both_backings(|backing| {
            // keys(1,2): the cost column is not part of the key.
            let mut t = Table::with_backing(schema("link", 3, vec![0, 1]), backing);
            assert_eq!(
                t.add_derivation(&link("a", "b", 1), Derivation::base("a")),
                Membership::Appeared
            );
            match t.add_derivation(&link("a", "b", 7), Derivation::base("a")) {
                Membership::Replaced(old) => assert_eq!(old, link("a", "b", 1)),
                other => panic!("expected replacement, got {other:?}"),
            }
            assert_eq!(t.len(), 1);
            assert!(t.contains(&link("a", "b", 7)));
            assert!(!t.contains(&link("a", "b", 1)));
        });
    }

    #[test]
    fn remove_rule_derivations_only_touches_that_rule() {
        for_both_backings(|backing| {
            let mut t = Table::with_backing(schema("cost", 3, vec![0, 1, 2]), backing);
            let tup = link("a", "b", 4);
            t.add_derivation(&tup, Derivation::base("a"));
            t.add_derivation(
                &tup,
                Derivation {
                    rule: "r2".into(),
                    node: "a".into(),
                    inputs: vec![],
                },
            );
            assert_eq!(
                t.remove_rule_derivations(&tup, "r2"),
                Membership::RemovedDerivation
            );
            assert_eq!(t.remove_rule_derivations(&tup, "r2"), Membership::NotFound);
            assert_eq!(
                t.remove_rule_derivations(&tup, BASE_RULE),
                Membership::Disappeared
            );
        });
    }

    #[test]
    fn database_dependency_index_round_trip() {
        let mut db = Database::new(vec![
            schema("link", 3, vec![0, 1, 2]),
            schema("cost", 3, vec![0, 1, 2]),
        ]);
        let base = link("a", "b", 1);
        let derived = Tuple::new(
            "cost",
            vec![Value::addr("a"), Value::addr("b"), Value::Int(1)],
        );
        db.table_mut("link")
            .unwrap()
            .add_derivation(&base, Derivation::base("a"));
        let deriv = Derivation {
            rule: "r1".into(),
            node: "a".into(),
            inputs: vec![base.id()],
        };
        db.table_mut("cost")
            .unwrap()
            .add_derivation(&derived, deriv.clone());
        db.index_dependency(base.id(), Sym::new("cost"), derived.id());

        let deps = db.dependents_of(base.id());
        assert_eq!(deps.len(), 1);
        assert_eq!(deps[0].0, "cost");
        assert_eq!(deps[0].1, derived);
        assert_eq!(deps[0].2, vec![deriv]);

        db.clear_dependency(base.id());
        assert!(db.dependents_of(base.id()).is_empty());
    }

    #[test]
    fn stats_count_tuples_and_derivations() {
        let mut db = Database::new(vec![schema("link", 3, vec![0, 1, 2])]);
        db.table_mut("link")
            .unwrap()
            .add_derivation(&link("a", "b", 1), Derivation::base("a"));
        db.table_mut("link")
            .unwrap()
            .add_derivation(&link("a", "c", 2), Derivation::base("a"));
        let stats = db.stats();
        assert_eq!(stats.tuples, 2);
        assert_eq!(stats.derivations, 2);
        assert_eq!(stats.nonempty_relations, 1);
    }

    #[test]
    fn relation_tuples_of_unknown_relation_is_empty() {
        let db = Database::default();
        assert!(db.relation_tuples("nope").is_empty());
    }

    #[test]
    fn probe_uses_the_most_selective_index() {
        for_both_backings(|backing| {
            let mut t = Table::with_backing(schema("link", 3, vec![0, 1, 2]), backing);
            for i in 0..10 {
                t.add_derivation(&link("a", &format!("n{i}"), i), Derivation::base("a"));
            }
            t.add_derivation(&link("b", "n0", 99), Derivation::base("b"));

            // Column 0 = "a" matches 10 tuples; column 1 = "n3" matches 1.
            let candidates: Vec<_> = t
                .probe(&[(0, Value::addr("a")), (1, Value::addr("n3"))])
                .collect();
            assert_eq!(candidates.len(), 1);
            assert_eq!(candidates[0].to_tuple(), link("a", "n3", 3));

            // A single bound column still narrows to its posting list.
            assert_eq!(t.probe(&[(0, Value::addr("b"))]).count(), 1);
            // No bound columns: full scan.
            assert_eq!(t.probe(&[]).count(), 11);
            // A bound value absent from the index proves emptiness
            // immediately.
            assert_eq!(t.probe(&[(0, Value::addr("zz"))]).count(), 0);
        });
    }

    #[test]
    fn probe_verifies_every_bound_column() {
        // The probe contract: candidates match ALL bound columns, not just
        // the anchor posting list (the vectorized kernel verifies the
        // residual columns against the column vectors).
        for_both_backings(|backing| {
            let mut t = Table::with_backing(schema("link", 3, vec![0, 1, 2]), backing);
            t.add_derivation(&link("a", "x", 1), Derivation::base("a"));
            t.add_derivation(&link("a", "y", 2), Derivation::base("a"));
            t.add_derivation(&link("b", "x", 3), Derivation::base("b"));
            // Both columns have posting lists of length 2; only one tuple
            // matches both.
            let hits: Vec<_> = t
                .probe(&[(0, Value::addr("a")), (1, Value::addr("x"))])
                .map(|r| r.to_tuple())
                .collect();
            assert_eq!(hits, vec![link("a", "x", 1)]);
            // Residual verification on a numeric column too.
            assert_eq!(
                t.probe(&[(0, Value::addr("a")), (2, Value::Int(2))])
                    .count(),
                1
            );
            assert_eq!(
                t.probe(&[(0, Value::addr("a")), (2, Value::Int(3))])
                    .count(),
                0
            );
        });
    }

    #[test]
    fn probe_matches_addr_and_str_interchangeably() {
        for_both_backings(|backing| {
            let mut t = Table::with_backing(schema("link", 3, vec![0, 1, 2]), backing);
            t.add_derivation(&link("a", "b", 1), Derivation::base("a"));
            // Tuples carry Addr values; programs may probe with Str
            // constants.
            assert_eq!(t.probe(&[(0, Value::str("a"))]).count(), 1);
            assert_eq!(t.probe(&[(0, Value::addr("a"))]).count(), 1);
            // Str probes also verify as residual columns against the
            // dictionary-encoded column.
            assert_eq!(
                t.probe(&[(0, Value::str("a")), (1, Value::str("b"))])
                    .count(),
                1
            );
        });
    }

    #[test]
    fn probe_matches_int_and_double_interchangeably() {
        for_both_backings(|backing| {
            // Value's total order equates Int(2) and Double(2.0); the index
            // must agree with the scan path on such cross-type matches.
            let mut t = Table::with_backing(schema("cost", 3, vec![0, 1, 2]), backing);
            t.add_derivation(&link("a", "b", 2), Derivation::base("a"));
            let double_tuple = Tuple::new(
                "cost",
                vec![Value::addr("a"), Value::addr("c"), Value::Double(3.0)],
            );
            t.add_derivation(&double_tuple, Derivation::base("a"));

            // Stored Int probed with an equal Double, and vice versa.
            assert_eq!(t.probe(&[(2, Value::Double(2.0))]).count(), 1);
            assert_eq!(t.probe(&[(2, Value::Int(3))]).count(), 1);
            // Non-integral doubles match nothing here.
            assert_eq!(t.probe(&[(2, Value::Double(2.5))]).count(), 0);
            // Lists normalize their elements too.
            let list_tuple = Tuple::new(
                "cost",
                vec![
                    Value::addr("z"),
                    Value::List(vec![Value::Double(1.0)]),
                    Value::Int(9),
                ],
            );
            t.add_derivation(&list_tuple, Derivation::base("z"));
            assert_eq!(t.probe(&[(1, Value::List(vec![Value::Int(1)]))]).count(), 1);
        });
    }

    #[test]
    fn indexes_track_removals_and_replacements() {
        for_both_backings(|backing| {
            let mut t = Table::with_backing(schema("link", 3, vec![0, 1]), backing);
            t.add_derivation(&link("a", "b", 1), Derivation::base("a"));
            // Update-in-place: cost column changes, index entries must
            // follow.
            t.add_derivation(&link("a", "b", 7), Derivation::base("a"));
            assert_eq!(t.probe(&[(2, Value::Int(7))]).count(), 1);
            assert_eq!(t.probe(&[(2, Value::Int(1))]).count(), 0);
            t.remove_derivation(&link("a", "b", 7), &Derivation::base("a"));
            assert_eq!(t.probe(&[(0, Value::addr("a"))]).count(), 0);
        });
    }

    #[test]
    fn columnar_slots_recycle_through_the_free_list() {
        let mut t = Table::new(schema("link", 3, vec![0, 1, 2]));
        for i in 0..4 {
            t.add_derivation(&link("a", &format!("n{i}"), i), Derivation::base("a"));
        }
        t.remove_derivation(&link("a", "n1", 1), &Derivation::base("a"));
        t.remove_derivation(&link("a", "n2", 2), &Derivation::base("a"));
        assert_eq!(t.len(), 2);
        // Re-inserting reuses dead slots: the physical arena stays at 4.
        t.add_derivation(&link("b", "m1", 10), Derivation::base("b"));
        t.add_derivation(&link("b", "m2", 11), Derivation::base("b"));
        match &t.repr {
            Repr::Col(col) => {
                assert_eq!(col.ids.len(), 4, "free slots were not reused");
                assert_eq!(col.live_count, 4);
                assert!(col.free.is_empty());
            }
            Repr::Row(_) => unreachable!("default backing is columnar"),
        }
        assert_eq!(t.probe(&[(0, Value::addr("b"))]).count(), 2);
        assert_eq!(t.probe(&[(0, Value::addr("a"))]).count(), 2);
    }

    #[test]
    fn columnar_mixed_type_columns_promote_to_overflow() {
        let mut t = Table::new(schema("cost", 3, vec![0, 1, 2]));
        t.add_derivation(&link("a", "b", 2), Derivation::base("a"));
        // An integral column receiving a Double promotes to the overflow
        // column without corrupting the earlier value.
        let d = Tuple::new(
            "cost",
            vec![Value::addr("a"), Value::addr("c"), Value::Double(2.5)],
        );
        t.add_derivation(&d, Derivation::base("a"));
        assert_eq!(t.probe(&[(2, Value::Int(2))]).count(), 1);
        assert_eq!(t.probe(&[(2, Value::Double(2.5))]).count(), 1);
        // Both tuples keep their exact variants (TupleIds intact).
        assert!(t.get_by_id(link("a", "b", 2).id()).is_some());
        assert!(t.get_by_id(d.id()).is_some());
    }

    #[test]
    fn probe_candidates_do_not_materialize_tuples() {
        // The vectorized probe kernel must not allocate per candidate:
        // scanning a posting list and verifying residual bound columns
        // touches only the column vectors. Materialization happens only
        // when a caller explicitly asks for the tuple.
        let mut t = Table::new(schema("link", 3, vec![0, 1, 2]));
        for i in 0..256 {
            t.add_derivation(&link("a", &format!("n{i}"), i % 7), Derivation::base("a"));
        }
        let before = tuple_materializations();
        let mut seen = 0usize;
        for cand in t.probe(&[(0, Value::addr("a")), (2, Value::Int(3))]) {
            // Column matching is allocation-free too.
            assert!(cand.matches(0, &Value::addr("a")));
            assert!(cand.matches(2, &Value::Int(3)));
            assert!(!cand.matches(2, &Value::Int(4)));
            assert!(cand.id() != TupleId(0));
            seen += 1;
        }
        assert!(seen > 10, "probe must have real candidates to be a test");
        assert_eq!(
            tuple_materializations(),
            before,
            "iterating probe candidates materialized tuples"
        );
        // An explicit materialization is counted.
        let first = t.probe(&[(0, Value::addr("a"))]).next().unwrap().to_tuple();
        assert_eq!(first.relation.as_str(), "link");
        assert_eq!(tuple_materializations(), before + 1);
    }

    #[test]
    fn rebuild_index_restores_probing() {
        for_both_backings(|backing| {
            let mut t = Table::with_backing(schema("link", 3, vec![0, 1, 2]), backing);
            t.add_derivation(&link("a", "b", 1), Derivation::base("a"));
            t.add_derivation(&link("a", "c", 2), Derivation::base("a"));
            // Wreck the secondary structures, then rebuild.
            match &mut t.repr {
                Repr::Row(row) => {
                    row.by_id.clear();
                    row.col_indexes.clear();
                    // Stale row indexes degrade to a (filtered) scan rather
                    // than missing tuples.
                    assert_eq!(t.probe(&[(0, Value::addr("a"))]).count(), 2);
                }
                Repr::Col(col) => {
                    col.by_id.clear();
                    col.postings = vec![HashMap::new(); 3];
                    col.live.iter_mut().for_each(|w| *w = 0);
                }
            }
            t.rebuild_index();
            assert_eq!(t.probe(&[(0, Value::addr("a"))]).count(), 2);
            assert_eq!(t.probe(&[(1, Value::addr("b"))]).count(), 1);
            assert_eq!(
                t.get_by_id(link("a", "b", 1).id()).unwrap().to_tuple(),
                link("a", "b", 1)
            );
        });
    }

    #[test]
    fn serde_round_trip_rebuilds_column_arenas_and_probes_identically() {
        for_both_backings(|backing| {
            let mut t = Table::with_backing(schema("link", 3, vec![0, 1]), backing);
            for i in 0..8 {
                t.add_derivation(&link("a", &format!("n{i}"), i), Derivation::base("a"));
            }
            // Churn: removals punch holes, a replacement rewrites a slot.
            t.remove_derivation(&link("a", "n2", 2), &Derivation::base("a"));
            t.add_derivation(&link("a", "n5", 50), Derivation::base("a"));
            t.add_derivation(
                &Tuple::new(
                    "link",
                    vec![Value::addr("b"), Value::str("s"), Value::Double(4.0)],
                ),
                Derivation::base("b"),
            );

            let json = serde_json::to_string(&t).expect("table serializes");
            let restored: Table = serde_json::from_str(&json).expect("table deserializes");
            assert_eq!(restored.backing(), backing);
            assert_eq!(restored.len(), t.len());

            // Identical contents, key order and derivations.
            let dump = |t: &Table| -> Vec<(String, usize)> {
                t.iter()
                    .map(|r| (r.to_tuple().to_string(), r.derivations().len()))
                    .collect()
            };
            assert_eq!(dump(&restored), dump(&t));

            // A round trip is an index rebuild: posting lists come back in
            // canonical key order (the churned table had the replacement
            // appended last). Rebuild the original the same way, then every
            // probe must answer identically through the reconstructed
            // arenas, bitmap and posting lists — including normalized
            // cross-type keys.
            t.rebuild_index();
            let probes: Vec<Vec<(usize, Value)>> = vec![
                vec![(0, Value::addr("a"))],
                vec![(0, Value::str("a"))],
                vec![(1, Value::addr("n5"))],
                vec![(0, Value::addr("a")), (2, Value::Int(3))],
                vec![(2, Value::Int(4))],
                vec![(2, Value::Double(3.0))],
                vec![],
            ];
            for bound in &probes {
                let a: Vec<String> = t.probe(bound).map(|r| r.to_tuple().to_string()).collect();
                let b: Vec<String> = restored
                    .probe(bound)
                    .map(|r| r.to_tuple().to_string())
                    .collect();
                assert_eq!(a, b, "probe {bound:?} diverged after round trip");
            }
            // Id-addressed lookups survive the rebuild.
            for r in t.iter() {
                assert!(restored.get_by_id(r.id()).is_some());
            }
        });
    }

    #[test]
    fn storage_bytes_reflect_columnar_layout() {
        let sch = schema("link", 3, vec![0, 1, 2]);
        let mut col = Table::with_backing(sch.clone(), TableBacking::Columnar);
        let mut row = Table::with_backing(sch, TableBacking::Row);
        for i in 0..32 {
            let t = link("a", &format!("n{i}"), i);
            col.add_derivation(&t, Derivation::base("a"));
            row.add_derivation(&t, Derivation::base("a"));
        }
        assert!(col.storage_bytes() > 0);
        assert!(row.storage_bytes() > 0);
        // Dictionary-encoded addresses are 4 bytes/slot in columnar form;
        // the row layout prices each tuple's full wire encoding.
        assert!(
            col.storage_bytes() < row.storage_bytes(),
            "columnar {} should undercut row {} on an address-heavy relation",
            col.storage_bytes(),
            row.storage_bytes()
        );
    }
}
