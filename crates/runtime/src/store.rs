//! Tuple storage: per-relation tables with derivation tracking and the
//! per-node database.
//!
//! Every stored tuple carries the multiset of **derivations** that currently
//! support it. A derivation is either the distinguished *base* derivation
//! (the tuple was inserted by the environment — a link report, a received
//! trace event, ...) or a rule firing identified by the rule name, the node
//! where the rule executed and the identifiers of the input tuples. A tuple is
//! *present* while it has at least one supporting derivation; when the last
//! derivation is retracted the tuple disappears and the deletion cascades
//! through the reverse-dependency index. This is exactly the information the
//! ExSPAN provenance graph records, which is why NetTrails can reuse the same
//! machinery for both incremental maintenance and provenance.

use crate::catalog::RelationSchema;
use crate::tuple::{Tuple, TupleId};
use crate::value::{NodeId, Sym, Value};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, HashMap, HashSet};

/// The rule name used for base (externally inserted) tuples.
pub const BASE_RULE: &str = "__base";

/// The interned [`BASE_RULE`] symbol (memoized — callers on the firing hot
/// path compare handles with integer equality, no pool lookup).
pub fn base_rule_sym() -> Sym {
    static BASE: std::sync::OnceLock<Sym> = std::sync::OnceLock::new();
    *BASE.get_or_init(|| Sym::new(BASE_RULE))
}

/// One derivation supporting a tuple. Rule and node are interned handles, so
/// a `Derivation` clone copies three machine words plus the input-id list.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Derivation {
    /// Rule that fired (or [`BASE_RULE`]).
    pub rule: Sym,
    /// Node on which the rule executed.
    pub node: NodeId,
    /// Identifiers of the body tuples that fed the firing, in body order.
    pub inputs: Vec<TupleId>,
}

impl Derivation {
    /// The base derivation for externally inserted tuples at `node`.
    pub fn base(node: impl Into<NodeId>) -> Self {
        Derivation {
            rule: base_rule_sym(),
            node: node.into(),
            inputs: Vec::new(),
        }
    }

    /// True for base derivations.
    pub fn is_base(&self) -> bool {
        self.rule == base_rule_sym()
    }

    /// Wire size of the derivation in the interned encoding: fixed-width rule
    /// and node handles, a 4-byte input count and 8 bytes per input id. A
    /// shipped delta always carries its derivation (the receiving engine
    /// stores it for retraction), so traffic accounting must price it.
    pub fn wire_size(&self) -> usize {
        Sym::WIRE_SIZE + NodeId::WIRE_SIZE + 4 + 8 * self.inputs.len()
    }
}

/// A tuple plus its supporting derivations.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StoredTuple {
    /// The tuple.
    pub tuple: Tuple,
    /// Current supporting derivations (deduplicated).
    pub derivations: Vec<Derivation>,
}

/// Outcome of adding or removing a derivation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Membership {
    /// The tuple became present (0 -> 1 derivations) — an insertion delta.
    Appeared,
    /// The tuple was already present and gained a *new* alternative
    /// derivation. No membership change, but the provenance graph grows.
    AddedDerivation,
    /// The tuple was already present and lost one of several derivations.
    RemovedDerivation,
    /// Nothing changed (the derivation to add was already recorded).
    Unchanged,
    /// The tuple lost its last derivation — a deletion delta.
    Disappeared,
    /// Adding a tuple displaced an older tuple with the same primary key
    /// (update-in-place semantics of `materialize`). Carries the displaced
    /// tuple.
    Replaced(Tuple),
    /// The derivation to remove was not present / the tuple was unknown.
    NotFound,
}

impl Membership {
    /// True when the tuple is present after the operation.
    pub fn present(&self) -> bool {
        matches!(
            self,
            Membership::Appeared
                | Membership::AddedDerivation
                | Membership::RemovedDerivation
                | Membership::Unchanged
                | Membership::Replaced(_)
        )
    }
}

/// A single relation's storage.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Table {
    /// Schema of the relation.
    pub schema: RelationSchema,
    /// Stored tuples keyed by their primary-key projection.
    tuples: BTreeMap<Vec<Value>, StoredTuple>,
    /// Secondary index: tuple id -> primary key, for O(1) lookups by VID
    /// (provenance queries and cascade deletions address tuples by id).
    #[serde(skip)]
    by_id: HashMap<TupleId, Vec<Value>>,
    /// Secondary hash indexes, one per column: normalized column value ->
    /// ids of the tuples carrying it. These are what [`Table::probe`] uses to
    /// answer bound-column join probes without scanning. Rebuilt lazily after
    /// deserialization (the `len() != arity` state signals "stale").
    #[serde(skip)]
    col_indexes: Vec<HashMap<Value, Vec<TupleId>>>,
}

/// Normalize a value for secondary-index keys: whenever two values are equal
/// for matching purposes they must land on the same key, or index probes
/// would miss tuples the scan path finds.
///
/// * The engine's `values_match` treats `Addr` and `Str` with the same text
///   as equal (programs write location constants as strings; tuples carry
///   addresses) → `Addr` keys become `Str`.
/// * `Value`'s total order compares `Int` and `Double` numerically
///   (`Int(2) == Double(2.0)`) while their stable hashes differ → integral
///   doubles become `Int`. (Doubles at or beyond ±2^63 keep their own key;
///   equality with a saturating `Int` there is not representable anyway.)
/// * NaNs compare equal to each other regardless of payload bits → all NaNs
///   share one canonical key.
/// * Lists compare elementwise, so their elements are normalized
///   recursively.
fn index_key(v: &Value) -> Value {
    match v {
        Value::Addr(a) => Value::Str(a.as_str().to_string()),
        Value::Double(d) => {
            if d.is_nan() {
                Value::Double(f64::NAN)
            } else if d.fract() == 0.0 && *d >= i64::MIN as f64 && *d < i64::MAX as f64 {
                Value::Int(*d as i64)
            } else {
                Value::Double(*d)
            }
        }
        Value::List(l) => Value::List(l.iter().map(index_key).collect()),
        other => other.clone(),
    }
}

/// Iterator returned by [`Table::probe`]: either an index hit, a full scan,
/// or nothing (a bound column whose value is absent from its index).
pub enum ProbeIter<'a> {
    /// No tuple can match the bound columns.
    Empty,
    /// Candidates from the most selective matching index.
    Ids {
        table: &'a Table,
        ids: std::slice::Iter<'a, TupleId>,
    },
    /// Fallback: scan every stored tuple.
    Scan(std::collections::btree_map::Values<'a, Vec<Value>, StoredTuple>),
}

impl<'a> Iterator for ProbeIter<'a> {
    type Item = &'a StoredTuple;

    fn next(&mut self) -> Option<&'a StoredTuple> {
        match self {
            ProbeIter::Empty => None,
            ProbeIter::Ids { table, ids } => {
                for id in ids.by_ref() {
                    if let Some(st) = table.get_by_id(*id) {
                        return Some(st);
                    }
                }
                None
            }
            ProbeIter::Scan(values) => values.next(),
        }
    }
}

impl Table {
    /// Create an empty table.
    pub fn new(schema: RelationSchema) -> Self {
        let arity = schema.arity;
        Table {
            schema,
            tuples: BTreeMap::new(),
            by_id: HashMap::new(),
            col_indexes: vec![HashMap::new(); arity],
        }
    }

    /// Rebuild the secondary indexes (needed after deserialization, where
    /// they are skipped).
    pub fn rebuild_index(&mut self) {
        self.by_id = self
            .tuples
            .iter()
            .map(|(k, st)| (st.tuple.id(), k.clone()))
            .collect();
        self.col_indexes = vec![HashMap::new(); self.schema.arity];
        let entries: Vec<(TupleId, Vec<Value>)> = self
            .tuples
            .values()
            .map(|st| (st.tuple.id(), st.tuple.values.clone()))
            .collect();
        for (id, values) in entries {
            self.index_tuple_values(id, &values);
        }
    }

    fn index_tuple_values(&mut self, id: TupleId, values: &[Value]) {
        for (col, v) in values.iter().enumerate() {
            if let Some(index) = self.col_indexes.get_mut(col) {
                index.entry(index_key(v)).or_default().push(id);
            }
        }
    }

    fn unindex_tuple_values(&mut self, id: TupleId, values: &[Value]) {
        for (col, v) in values.iter().enumerate() {
            if let Some(index) = self.col_indexes.get_mut(col) {
                let key = index_key(v);
                if let Some(ids) = index.get_mut(&key) {
                    ids.retain(|i| *i != id);
                    if ids.is_empty() {
                        index.remove(&key);
                    }
                }
            }
        }
    }

    /// Make sure the column indexes are usable (they are lazily rebuilt after
    /// deserialization). Cheap no-op in the steady state.
    fn ensure_col_indexes(&mut self) {
        if self.col_indexes.len() != self.schema.arity {
            self.rebuild_index();
        }
    }

    /// Iterate over the candidate tuples for a join probe with the given
    /// bound columns. Picks the most selective available index among the
    /// bound columns; with no bound column (or stale indexes after
    /// deserialization) it degrades to a full scan. A bound value absent
    /// from its index short-circuits to an empty iterator.
    pub fn probe<'a>(&'a self, bound_cols: &[(usize, Value)]) -> ProbeIter<'a> {
        if self.col_indexes.len() == self.schema.arity {
            let mut best: Option<&'a Vec<TupleId>> = None;
            for (col, v) in bound_cols {
                let Some(index) = self.col_indexes.get(*col) else {
                    continue;
                };
                // Borrow the value directly in the common case; only the
                // variants that normalize need an owned key.
                let normalized;
                let key: &Value = match v {
                    Value::Addr(_) | Value::Double(_) | Value::List(_) => {
                        normalized = index_key(v);
                        &normalized
                    }
                    other => other,
                };
                match index.get(key) {
                    None => return ProbeIter::Empty,
                    Some(ids) => {
                        if best.is_none_or(|b| ids.len() < b.len()) {
                            best = Some(ids);
                        }
                    }
                }
            }
            if let Some(ids) = best {
                return ProbeIter::Ids {
                    table: self,
                    ids: ids.iter(),
                };
            }
        }
        ProbeIter::Scan(self.tuples.values())
    }

    /// Look up a stored tuple by its content-addressed identifier.
    pub fn get_by_id(&self, id: TupleId) -> Option<&StoredTuple> {
        self.by_id.get(&id).and_then(|k| self.tuples.get(k))
    }

    fn key_of(&self, tuple: &Tuple) -> Vec<Value> {
        tuple.project(&self.schema.key_cols)
    }

    /// Number of stored (present) tuples.
    pub fn len(&self) -> usize {
        self.tuples.len()
    }

    /// True when no tuple is present.
    pub fn is_empty(&self) -> bool {
        self.tuples.is_empty()
    }

    /// Iterate over present tuples in deterministic (key) order.
    pub fn iter(&self) -> impl Iterator<Item = &StoredTuple> {
        self.tuples.values()
    }

    /// Look up the stored entry for an exact tuple (same key *and* same
    /// content).
    pub fn get(&self, tuple: &Tuple) -> Option<&StoredTuple> {
        self.tuples
            .get(&self.key_of(tuple))
            .filter(|st| st.tuple == *tuple)
    }

    /// Look up by primary key only.
    pub fn get_by_key(&self, key: &[Value]) -> Option<&StoredTuple> {
        self.tuples.get(key)
    }

    /// True when the exact tuple is present.
    pub fn contains(&self, tuple: &Tuple) -> bool {
        self.get(tuple).is_some()
    }

    /// Add a derivation for `tuple`, inserting it if necessary.
    ///
    /// Returns how the table membership changed. When the relation has
    /// update-in-place keys and a *different* tuple with the same key was
    /// present, that tuple is removed and returned via
    /// [`Membership::Replaced`]; the caller is responsible for cascading the
    /// implied deletion.
    pub fn add_derivation(&mut self, tuple: &Tuple, derivation: Derivation) -> Membership {
        self.ensure_col_indexes();
        let key = self.key_of(tuple);
        match self.tuples.get_mut(&key) {
            Some(existing) if existing.tuple == *tuple => {
                if existing.derivations.contains(&derivation) {
                    Membership::Unchanged
                } else {
                    existing.derivations.push(derivation);
                    Membership::AddedDerivation
                }
            }
            Some(_) => {
                // Key collision with different content: replace.
                let old = self
                    .tuples
                    .insert(
                        key.clone(),
                        StoredTuple {
                            tuple: tuple.clone(),
                            derivations: vec![derivation],
                        },
                    )
                    .expect("entry existed");
                self.by_id.remove(&old.tuple.id());
                self.by_id.insert(tuple.id(), key);
                self.unindex_tuple_values(old.tuple.id(), &old.tuple.values);
                self.index_tuple_values(tuple.id(), &tuple.values);
                Membership::Replaced(old.tuple)
            }
            None => {
                self.tuples.insert(
                    key.clone(),
                    StoredTuple {
                        tuple: tuple.clone(),
                        derivations: vec![derivation],
                    },
                );
                self.by_id.insert(tuple.id(), key);
                self.index_tuple_values(tuple.id(), &tuple.values);
                Membership::Appeared
            }
        }
    }

    /// Remove one derivation of `tuple` (matching exactly). Returns
    /// [`Membership::Disappeared`] when that was the last derivation.
    pub fn remove_derivation(&mut self, tuple: &Tuple, derivation: &Derivation) -> Membership {
        self.ensure_col_indexes();
        let key = self.key_of(tuple);
        let Some(existing) = self.tuples.get_mut(&key) else {
            return Membership::NotFound;
        };
        if existing.tuple != *tuple {
            return Membership::NotFound;
        }
        let before = existing.derivations.len();
        existing.derivations.retain(|d| d != derivation);
        if existing.derivations.len() == before {
            return Membership::NotFound;
        }
        if existing.derivations.is_empty() {
            self.tuples.remove(&key);
            self.by_id.remove(&tuple.id());
            self.unindex_tuple_values(tuple.id(), &tuple.values);
            Membership::Disappeared
        } else {
            Membership::RemovedDerivation
        }
    }

    /// Remove every derivation of `tuple` produced by `rule` at `node`.
    /// Used when reconciling non-monotonic (negation / aggregate) rules.
    pub fn remove_rule_derivations(&mut self, tuple: &Tuple, rule: &str) -> Membership {
        self.ensure_col_indexes();
        let key = self.key_of(tuple);
        let Some(existing) = self.tuples.get_mut(&key) else {
            return Membership::NotFound;
        };
        if existing.tuple != *tuple {
            return Membership::NotFound;
        }
        let before = existing.derivations.len();
        existing.derivations.retain(|d| d.rule != rule);
        if existing.derivations.len() == before {
            return Membership::NotFound;
        }
        if existing.derivations.is_empty() {
            self.tuples.remove(&key);
            self.by_id.remove(&tuple.id());
            self.unindex_tuple_values(tuple.id(), &tuple.values);
            Membership::Disappeared
        } else {
            Membership::RemovedDerivation
        }
    }

    /// Forcefully remove a tuple and all of its derivations (used for
    /// update-in-place replacement cascades). Returns the stored entry if it
    /// was present.
    pub fn remove_tuple(&mut self, tuple: &Tuple) -> Option<StoredTuple> {
        self.ensure_col_indexes();
        let key = self.key_of(tuple);
        match self.tuples.get(&key) {
            Some(st) if st.tuple == *tuple => {
                self.by_id.remove(&tuple.id());
                self.unindex_tuple_values(tuple.id(), &tuple.values);
                self.tuples.remove(&key)
            }
            _ => None,
        }
    }

    /// All tuples currently present, cloned (snapshot order is deterministic).
    pub fn tuples(&self) -> Vec<Tuple> {
        self.tuples.values().map(|st| st.tuple.clone()).collect()
    }
}

/// Statistics about a database, used by the benchmarks to report state size
/// and by the log store for snapshot metadata.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct DatabaseStats {
    /// Total number of present tuples across relations.
    pub tuples: usize,
    /// Total number of derivations across tuples.
    pub derivations: usize,
    /// Number of relations with at least one tuple.
    pub nonempty_relations: usize,
}

/// The per-node database: one [`Table`] per relation plus the reverse
/// dependency index used for cascading deletions.
#[derive(Debug, Clone, Default)]
pub struct Database {
    /// Tables keyed by interned relation symbol. A `HashMap` so the join hot
    /// path pays one integer hash per lookup — `Sym`'s `Ord` resolves
    /// strings, which would put lock-taking string compares inside a B-tree
    /// walk.
    tables: HashMap<Sym, Table>,
    /// Relation symbols in name order (maintained on register), so iteration
    /// and serialization stay deterministic despite the hash map.
    order: Vec<Sym>,
    /// input tuple id -> (relation, derived tuple id) pairs of derivations
    /// that used it. The derived tuple ids refer to tuples stored in
    /// `tables`.
    dependents: HashMap<TupleId, HashSet<(Sym, TupleId)>>,
}

impl Database {
    /// Create an empty database with the given relation schemas.
    pub fn new(schemas: impl IntoIterator<Item = RelationSchema>) -> Self {
        let mut db = Database::default();
        for s in schemas {
            db.register(s);
        }
        db
    }

    /// Register an additional relation (idempotent).
    pub fn register(&mut self, schema: RelationSchema) {
        let sym = Sym::new(&schema.name);
        if let std::collections::hash_map::Entry::Vacant(v) = self.tables.entry(sym) {
            v.insert(Table::new(schema));
            let pos = self.order.partition_point(|s| *s < sym);
            self.order.insert(pos, sym);
        }
    }

    /// Access a table by (boundary) relation name.
    pub fn table(&self, relation: &str) -> Option<&Table> {
        self.tables.get(&Sym::new(relation))
    }

    /// Access a table by interned relation symbol (the hot-path lookup).
    pub fn table_sym(&self, relation: Sym) -> Option<&Table> {
        self.tables.get(&relation)
    }

    /// Mutable access to a table.
    pub fn table_mut(&mut self, relation: &str) -> Option<&mut Table> {
        self.tables.get_mut(&Sym::new(relation))
    }

    /// Mutable access to a table by interned symbol.
    pub fn table_mut_sym(&mut self, relation: Sym) -> Option<&mut Table> {
        self.tables.get_mut(&relation)
    }

    /// Iterate over all tables, in relation-name order.
    pub fn tables(&self) -> impl Iterator<Item = &Table> {
        self.order.iter().map(|s| &self.tables[s])
    }

    /// Iterate over `(relation symbol, table)` pairs in relation-name order
    /// (saves callers re-interning `schema.name`).
    pub fn tables_with_syms(&self) -> impl Iterator<Item = (Sym, &Table)> {
        self.order.iter().map(|s| (*s, &self.tables[s]))
    }

    /// Record that `derived` (in `relation`) has a derivation using `input`.
    pub fn index_dependency(&mut self, input: TupleId, relation: Sym, derived: TupleId) {
        self.dependents
            .entry(input)
            .or_default()
            .insert((relation, derived));
    }

    /// Tuples that have a derivation using `input`, as (relation, stored
    /// tuple, matching derivations) triples.
    pub fn dependents_of(&self, input: TupleId) -> Vec<(Sym, Tuple, Vec<Derivation>)> {
        let mut out = Vec::new();
        if let Some(deps) = self.dependents.get(&input) {
            // Deterministic order.
            let mut deps: Vec<_> = deps.iter().copied().collect();
            deps.sort();
            for (relation, derived_id) in deps {
                if let Some(st) = self
                    .tables
                    .get(&relation)
                    .and_then(|table| table.get_by_id(derived_id))
                {
                    let matching: Vec<Derivation> = st
                        .derivations
                        .iter()
                        .filter(|d| d.inputs.contains(&input))
                        .cloned()
                        .collect();
                    if !matching.is_empty() {
                        out.push((relation, st.tuple.clone(), matching));
                    }
                }
            }
        }
        out
    }

    /// Drop the dependency-index entry for `input` (after its dependents have
    /// been processed).
    pub fn clear_dependency(&mut self, input: TupleId) {
        self.dependents.remove(&input);
    }

    /// Compute summary statistics.
    pub fn stats(&self) -> DatabaseStats {
        let mut stats = DatabaseStats::default();
        for t in self.tables.values() {
            if !t.is_empty() {
                stats.nonempty_relations += 1;
            }
            stats.tuples += t.len();
            stats.derivations += t.iter().map(|st| st.derivations.len()).sum::<usize>();
        }
        stats
    }

    /// All tuples of a relation (empty vec when the relation is unknown).
    pub fn relation_tuples(&self, relation: &str) -> Vec<Tuple> {
        self.table(relation).map(|t| t.tuples()).unwrap_or_default()
    }
}

// Serialized as a name-ordered (relation, table) list; the dependency index
// is derived state and is rebuilt by the engine as derivations re-index.
impl Serialize for Database {
    fn serialize<S: serde::Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        let entries: Vec<(Sym, &Table)> = self.tables_with_syms().collect();
        entries.serialize(serializer)
    }
}

impl Deserialize for Database {
    fn deserialize<'de, D: serde::Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        let entries = Vec::<(Sym, Table)>::deserialize(d)?;
        let mut db = Database::default();
        for (sym, table) in entries {
            db.order.push(sym);
            db.tables.insert(sym, table);
        }
        db.order.sort();
        Ok(db)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schema(name: &str, arity: usize, keys: Vec<usize>) -> RelationSchema {
        RelationSchema {
            name: name.into(),
            arity,
            location_col: 0,
            key_cols: keys,
            is_base: true,
            lifetime: None,
        }
    }

    fn link(s: &str, d: &str, c: i64) -> Tuple {
        Tuple::new("link", vec![Value::addr(s), Value::addr(d), Value::Int(c)])
    }

    #[test]
    fn add_and_remove_derivations_track_membership() {
        let mut t = Table::new(schema("link", 3, vec![0, 1, 2]));
        let tup = link("a", "b", 1);
        let d1 = Derivation::base("a");
        let d2 = Derivation {
            rule: "r1".into(),
            node: "a".into(),
            inputs: vec![TupleId(42)],
        };
        assert_eq!(t.add_derivation(&tup, d1.clone()), Membership::Appeared);
        assert_eq!(
            t.add_derivation(&tup, d2.clone()),
            Membership::AddedDerivation
        );
        // Duplicate derivations are ignored.
        assert_eq!(t.add_derivation(&tup, d2.clone()), Membership::Unchanged);
        assert_eq!(t.get(&tup).unwrap().derivations.len(), 2);
        assert_eq!(t.get_by_id(tup.id()).unwrap().tuple, tup);
        assert_eq!(
            t.remove_derivation(&tup, &d1),
            Membership::RemovedDerivation
        );
        assert_eq!(t.remove_derivation(&tup, &d1), Membership::NotFound);
        assert_eq!(t.remove_derivation(&tup, &d2), Membership::Disappeared);
        assert!(t.is_empty());
        assert!(t.get_by_id(tup.id()).is_none());
    }

    #[test]
    fn update_in_place_replaces_by_key() {
        // keys(1,2): the cost column is not part of the key.
        let mut t = Table::new(schema("link", 3, vec![0, 1]));
        assert_eq!(
            t.add_derivation(&link("a", "b", 1), Derivation::base("a")),
            Membership::Appeared
        );
        match t.add_derivation(&link("a", "b", 7), Derivation::base("a")) {
            Membership::Replaced(old) => assert_eq!(old, link("a", "b", 1)),
            other => panic!("expected replacement, got {other:?}"),
        }
        assert_eq!(t.len(), 1);
        assert!(t.contains(&link("a", "b", 7)));
        assert!(!t.contains(&link("a", "b", 1)));
    }

    #[test]
    fn remove_rule_derivations_only_touches_that_rule() {
        let mut t = Table::new(schema("cost", 3, vec![0, 1, 2]));
        let tup = link("a", "b", 4);
        t.add_derivation(&tup, Derivation::base("a"));
        t.add_derivation(
            &tup,
            Derivation {
                rule: "r2".into(),
                node: "a".into(),
                inputs: vec![],
            },
        );
        assert_eq!(
            t.remove_rule_derivations(&tup, "r2"),
            Membership::RemovedDerivation
        );
        assert_eq!(t.remove_rule_derivations(&tup, "r2"), Membership::NotFound);
        assert_eq!(
            t.remove_rule_derivations(&tup, BASE_RULE),
            Membership::Disappeared
        );
    }

    #[test]
    fn database_dependency_index_round_trip() {
        let mut db = Database::new(vec![
            schema("link", 3, vec![0, 1, 2]),
            schema("cost", 3, vec![0, 1, 2]),
        ]);
        let base = link("a", "b", 1);
        let derived = Tuple::new(
            "cost",
            vec![Value::addr("a"), Value::addr("b"), Value::Int(1)],
        );
        db.table_mut("link")
            .unwrap()
            .add_derivation(&base, Derivation::base("a"));
        let deriv = Derivation {
            rule: "r1".into(),
            node: "a".into(),
            inputs: vec![base.id()],
        };
        db.table_mut("cost")
            .unwrap()
            .add_derivation(&derived, deriv.clone());
        db.index_dependency(base.id(), Sym::new("cost"), derived.id());

        let deps = db.dependents_of(base.id());
        assert_eq!(deps.len(), 1);
        assert_eq!(deps[0].0, "cost");
        assert_eq!(deps[0].1, derived);
        assert_eq!(deps[0].2, vec![deriv]);

        db.clear_dependency(base.id());
        assert!(db.dependents_of(base.id()).is_empty());
    }

    #[test]
    fn stats_count_tuples_and_derivations() {
        let mut db = Database::new(vec![schema("link", 3, vec![0, 1, 2])]);
        db.table_mut("link")
            .unwrap()
            .add_derivation(&link("a", "b", 1), Derivation::base("a"));
        db.table_mut("link")
            .unwrap()
            .add_derivation(&link("a", "c", 2), Derivation::base("a"));
        let stats = db.stats();
        assert_eq!(stats.tuples, 2);
        assert_eq!(stats.derivations, 2);
        assert_eq!(stats.nonempty_relations, 1);
    }

    #[test]
    fn relation_tuples_of_unknown_relation_is_empty() {
        let db = Database::default();
        assert!(db.relation_tuples("nope").is_empty());
    }

    #[test]
    fn probe_uses_the_most_selective_index() {
        let mut t = Table::new(schema("link", 3, vec![0, 1, 2]));
        for i in 0..10 {
            t.add_derivation(&link("a", &format!("n{i}"), i), Derivation::base("a"));
        }
        t.add_derivation(&link("b", "n0", 99), Derivation::base("b"));

        // Column 0 = "a" matches 10 tuples; column 1 = "n3" matches 1.
        let candidates: Vec<_> = t
            .probe(&[(0, Value::addr("a")), (1, Value::addr("n3"))])
            .collect();
        assert_eq!(candidates.len(), 1);
        assert_eq!(candidates[0].tuple, link("a", "n3", 3));

        // A single bound column still narrows to its posting list.
        assert_eq!(t.probe(&[(0, Value::addr("b"))]).count(), 1);
        // No bound columns: full scan.
        assert_eq!(t.probe(&[]).count(), 11);
        // A bound value absent from the index proves emptiness immediately.
        assert_eq!(t.probe(&[(0, Value::addr("zz"))]).count(), 0);
    }

    #[test]
    fn probe_matches_addr_and_str_interchangeably() {
        let mut t = Table::new(schema("link", 3, vec![0, 1, 2]));
        t.add_derivation(&link("a", "b", 1), Derivation::base("a"));
        // Tuples carry Addr values; programs may probe with Str constants.
        assert_eq!(t.probe(&[(0, Value::str("a"))]).count(), 1);
        assert_eq!(t.probe(&[(0, Value::addr("a"))]).count(), 1);
    }

    #[test]
    fn probe_matches_int_and_double_interchangeably() {
        // Value's total order equates Int(2) and Double(2.0); the index must
        // agree with the scan path on such cross-type matches.
        let mut t = Table::new(schema("cost", 3, vec![0, 1, 2]));
        t.add_derivation(&link("a", "b", 2), Derivation::base("a"));
        let double_tuple = Tuple::new(
            "cost",
            vec![Value::addr("a"), Value::addr("c"), Value::Double(3.0)],
        );
        t.add_derivation(&double_tuple, Derivation::base("a"));

        // Stored Int probed with an equal Double, and vice versa.
        assert_eq!(t.probe(&[(2, Value::Double(2.0))]).count(), 1);
        assert_eq!(t.probe(&[(2, Value::Int(3))]).count(), 1);
        // Non-integral doubles match nothing here.
        assert_eq!(t.probe(&[(2, Value::Double(2.5))]).count(), 0);
        // Lists normalize their elements too.
        let list_tuple = Tuple::new(
            "cost",
            vec![
                Value::addr("z"),
                Value::List(vec![Value::Double(1.0)]),
                Value::Int(9),
            ],
        );
        t.add_derivation(&list_tuple, Derivation::base("z"));
        assert_eq!(t.probe(&[(1, Value::List(vec![Value::Int(1)]))]).count(), 1);
    }

    #[test]
    fn indexes_track_removals_and_replacements() {
        let mut t = Table::new(schema("link", 3, vec![0, 1]));
        t.add_derivation(&link("a", "b", 1), Derivation::base("a"));
        // Update-in-place: cost column changes, index entries must follow.
        t.add_derivation(&link("a", "b", 7), Derivation::base("a"));
        assert_eq!(t.probe(&[(2, Value::Int(7))]).count(), 1);
        assert_eq!(t.probe(&[(2, Value::Int(1))]).count(), 0);
        t.remove_derivation(&link("a", "b", 7), &Derivation::base("a"));
        assert_eq!(t.probe(&[(0, Value::addr("a"))]).count(), 0);
    }

    #[test]
    fn rebuild_index_restores_probing() {
        let mut t = Table::new(schema("link", 3, vec![0, 1, 2]));
        t.add_derivation(&link("a", "b", 1), Derivation::base("a"));
        // Simulate the post-deserialization state: secondary indexes gone.
        t.by_id.clear();
        t.col_indexes.clear();
        // Stale indexes degrade to a scan rather than missing tuples.
        assert_eq!(t.probe(&[(0, Value::addr("a"))]).count(), 1);
        t.rebuild_index();
        assert_eq!(t.probe(&[(0, Value::addr("a"))]).count(), 1);
        assert_eq!(
            t.get_by_id(link("a", "b", 1).id()).unwrap().tuple,
            link("a", "b", 1)
        );
    }
}
