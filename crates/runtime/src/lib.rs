//! # nt-runtime — the per-node NDlog runtime of NetTrails
//!
//! This crate implements the execution engine that RapidNet provides in the
//! original system: every simulated node runs one [`engine::NodeEngine`] that
//! stores that node's partition of every relation, evaluates the localized
//! NDlog rules incrementally (generation-based semi-naive evaluation with
//! derivation-counted deletions, optionally parallelized across the shared
//! worker pool) and hands tuples destined for other nodes to the network
//! layer.
//!
//! The main types are:
//!
//! * [`value::Value`] / [`tuple::Tuple`] / [`tuple::Delta`] — the data model;
//! * [`catalog::Catalog`] — relation schemas inferred from a program;
//! * [`store::Database`] — per-node tables with derivation tracking;
//! * [`transform::localize_program`] — the automatic localization rewrite that
//!   turns link-restricted rules into purely local rules plus tuple shipping;
//! * [`compile::CompiledProgram`] — a validated, localized, executable program;
//! * [`engine::NodeEngine`] — the incremental evaluator;
//! * [`engine::Firing`] — the rule-execution events consumed by the
//!   provenance layer (crate `provenance`).
pub mod catalog;
pub mod compile;
pub mod engine;
pub mod error;
pub mod eval;
mod morsel;
pub mod store;
pub mod transform;
pub mod tuple;
pub mod value;

pub use catalog::{Catalog, RelationSchema};
pub use compile::{CompiledProgram, CompiledRule, ProbeStrategy};
pub use engine::{
    DeltaBatch, DeltaRecord, EngineConfig, EngineStats, Firing, NodeEngine, RemoteDelta,
    StepOutput, FIXPOINT_DISPATCH_THRESHOLD,
};
pub use error::{Result, RuntimeError};
pub use eval::Bindings;
pub use store::{
    base_rule_sym, normalize_for_index, tuple_materializations, Database, Derivation, Membership,
    ProbeIter, StoredTuple, Table, TableBacking, TupleRef, BASE_RULE,
};
pub use tuple::{Delta, Tuple, TupleId};
pub use value::{
    dict_entry_wire_size, rule_exec_digest, shard_route, Addr, Interner, InternerSnapshot, NodeId,
    StableHasher, Sym, Value,
};
